#!/usr/bin/env sh
# Offline CI gate: formatting, lints, and the full test suite (which
# includes tests/parallel_determinism.rs — the byte-identical
# sequential-vs-parallel checks for every batch entry point).
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test"
cargo test --workspace -q

echo "==> parallel determinism harness"
cargo test -q --test parallel_determinism

# Observability smoke tier: the golden §8 session traced with exact
# journal counters, every journal line revalidated as JSON, and the
# campaign journal fingerprint pinned across 1/2/8 worker threads.
echo "==> observability smoke (golden counters + JSON-lines journal)"
cargo test -q --test observability

# Bounded mutation smoke tier: fixed seed 2026, at most 50 mutants, run
# twice to pin fingerprint stability plus the >= 90% localization bar.
# The full 200+ mutant conformance campaign runs under `cargo test`
# above; this tier is the cheap re-check for quick iteration loops.
echo "==> mutation localization smoke (fixed seed, <=50 mutants)"
cargo test -q --test mutation_conformance bounded_smoke_campaign_is_deterministic_and_accurate

# Knowledge-store tier: the crash/corruption fault-injection suite and
# the cross-session §8 replay, run inside a throwaway TMPDIR sandbox
# (gadt-store's TempDir honours TMPDIR). The sandbox must come back
# empty — a leaked store directory fails the tier.
echo "==> knowledge-store tier (crash recovery + cross-session replay)"
STORE_TMP="$(mktemp -d)"
TMPDIR="$STORE_TMP" cargo test -q --test store_recovery
TMPDIR="$STORE_TMP" cargo test -q --test paper_reproduction \
    e13_cross_session_store_replay_asks_zero_user_questions
leftover="$(find "$STORE_TMP" -mindepth 1 | head -5 || true)"
if [ -n "$leftover" ]; then
    echo "ci: store tests leaked files into their sandbox:"
    echo "$leftover"
    exit 1
fi
rmdir "$STORE_TMP"

# Debugging-service tier: the release gadt-serve binary on a unix
# socket inside a throwaway sandbox, driven end-to-end (compile ->
# trace -> debug -> answer -> slice) by its own selftest client, which
# replays the golden §8 session against the server and then asks it to
# shut down. The clean-shutdown report line only prints after the final
# store compaction, and a report showing zero compactions fails the
# tier.
echo "==> debugging service tier (gadt-serve e2e over unix socket)"
cargo build --release -q -p gadt-serve --bin gadt-serve
SERVE_TMP="$(mktemp -d)"
SERVE_SOCK="$SERVE_TMP/gadt.sock"
SERVE_LOG="$SERVE_TMP/server.log"
./target/release/gadt-serve --listen "unix:$SERVE_SOCK" \
    --store "$SERVE_TMP/store" --shards 3 --threads 4 >"$SERVE_LOG" &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -S "$SERVE_SOCK" ] && break
    sleep 0.1
done
./target/release/gadt-serve --selftest "unix:$SERVE_SOCK" --shutdown
wait "$SERVE_PID"
grep -q "clean shutdown" "$SERVE_LOG" || {
    echo "ci: server did not shut down cleanly:"
    cat "$SERVE_LOG"
    exit 1
}
if grep -q " 0 compactions" "$SERVE_LOG"; then
    echo "ci: server shut down without ever compacting its store:"
    cat "$SERVE_LOG"
    exit 1
fi
grep "clean shutdown" "$SERVE_LOG"
rm -rf "$SERVE_TMP"

# Differential fuzz smoke tier: a bounded sweep through the seeded
# corpus generator — original vs transformed output agreement plus
# slice-replay soundness for every program-level variable; the binary
# exits non-zero and prints a minimized reproducer on any divergence.
# NOTE: the workspace build above does NOT produce the corpus bins
# (`cargo build` on the root package skips them) — build explicitly.
echo "==> differential fuzz smoke (seeds 0..2000)"
cargo build --release -q -p gadt-corpus --bins
./target/release/fuzz 0 2000 --threads 0

# Bench-baseline tier: tree-walker vs bytecode VM on the batch-trace,
# T-GEN batch, campaign, crash-screen and hashed-trace workloads,
# single worker with interleaved tree/vm sampling. The binary exits
# non-zero when the VM is slower than the tree-walker on batch tracing,
# when the campaign speedup falls below 1.3x (the monitor-free crash
# screen plus the compiled engine must keep paying for themselves), or
# when any workload drops below 0.8x its committed figure in
# BENCH_vm.json — the slack absorbs machine noise, not structural
# regressions. The fresh measurement goes to a scratch file; the
# committed baseline is read-only here.
echo "==> bench baseline (tree-walker vs bytecode VM)"
cargo build --release -q -p gadt-bench --bin vm_baseline
BENCH_TMP="$(mktemp)"
./target/release/vm_baseline "$BENCH_TMP" BENCH_vm.json
rm -f "$BENCH_TMP"

# Strategy tier: the traversal-strategy question-count lab on its CI
# legs — the 500-mutant smoke subsample of the strategy corpus plus
# the seeded-store replay sessions. The binary exits non-zero when
# optimal D&Q stops beating top-down on mean questions per bug, when
# the knowledge-weighted strategy stops beating optimal D&Q on live
# replay questions, or when any smoke/replay figure regresses against
# the committed BENCH_strategies.json (campaigns are deterministic, so
# the comparison is essentially exact). The full ≥2000-mutant corpus
# leg is regenerated only when refreshing the committed baseline:
# `./target/release/strategy_lab BENCH_strategies.json`.
echo "==> strategy lab (questions per bug by traversal strategy)"
cargo build --release -q -p gadt-bench --bin strategy_lab
STRAT_TMP="$(mktemp)"
./target/release/strategy_lab "$STRAT_TMP" BENCH_strategies.json --smoke
rm -f "$STRAT_TMP"

echo "ci: all green"
