#!/usr/bin/env sh
# Offline CI gate: formatting, lints, and the full test suite (which
# includes tests/parallel_determinism.rs — the byte-identical
# sequential-vs-parallel checks for every batch entry point).
set -eu

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> parallel determinism harness"
cargo test -q --test parallel_determinism

echo "ci: all green"
