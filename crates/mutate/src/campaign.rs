//! Mutant campaigns: fault injection × the full GADT pipeline, fanned
//! out over [`gadt_exec::BatchExecutor`].
//!
//! A campaign takes a set of known-good programs, enumerates every
//! mutation site, (optionally) subsamples them with a seeded LCG, and
//! runs each mutant through transform → trace → debug twice — once with
//! slicing, once without — judged by the golden-reference oracle
//! ([`gadt::oracle::GoldenOracle`]). Per-mutant work is fully
//! independent, so results are byte-identical at any thread count; only
//! the recorded wall-clock timings differ.

use crate::operators::{apply, enumerate_sites, MutationSite};
use crate::report::{CampaignSummary, LocalizationReport, MutantStatus};
use gadt::debugger::{DebugConfig, DebugOutcome, DebugResult, Strategy};
use gadt::error::{Error, Phase};
use gadt::oracle::{ChainOracle, CountingOracle, GoldenOracle};
use gadt::session::{self, Engine, PreparedProgram, TracedRun};
use gadt_exec::BatchExecutor;
use gadt_obs::Recorder;
use gadt_pascal::ast::Program;
use gadt_pascal::interp::Limits;
use gadt_pascal::parser::parse_program;
use gadt_pascal::pretty::print_program;
use gadt_pascal::sema::{compile, Module};
use gadt_pascal::value::Value;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seed for mutant subsampling (only consulted when the site count
    /// exceeds `max_mutants`).
    pub seed: u64,
    /// Upper bound on mutants run; `0` means all sites.
    pub max_mutants: usize,
    /// Worker threads for the batch executor (`0` = all cores).
    pub threads: usize,
    /// Interpreter step budget per mutant run — injected faults
    /// routinely loop forever; exhaustion classifies as crashed.
    pub max_steps: u64,
    /// Execution engine for golden and mutant runs alike. Verdicts,
    /// fingerprints and journals are engine-invariant
    /// (`tests/mutation_conformance.rs` pins this down), so the stored
    /// verdict keys deliberately do *not* include the engine.
    pub engine: Engine,
    /// Traversal strategy for both debug sessions of every mutant.
    /// Question counts *do* depend on it, so non-default strategies get
    /// their own stored verdict keys (a `@<slug>` suffix); the default
    /// [`Strategy::TopDown`] keeps the historical key shape.
    pub strategy: Strategy,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0xA11CE,
            max_mutants: 0,
            threads: 0,
            max_steps: 200_000,
            engine: Engine::default(),
            strategy: Strategy::TopDown,
        }
    }
}

/// One known-good subject program of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignProgram {
    /// Display name used in reports.
    pub name: String,
    /// Pascal source (must compile and run cleanly).
    pub source: String,
    /// Input stream for every run of this program and its mutants.
    pub input: Vec<Value>,
}

impl CampaignProgram {
    /// Convenience constructor for a no-input subject.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        CampaignProgram {
            name: name.into(),
            source: source.into(),
            input: Vec::new(),
        }
    }
}

/// The golden (un-mutated) context of one subject program, computed once
/// and shared read-only by every worker.
struct GoldenCtx {
    name: String,
    ast: Program,
    prepared: PreparedProgram,
    golden_run: TracedRun,
    /// Full execution-tree rendering — detects *any* behavioral divergence.
    golden_render: String,
    /// Top-level interface rendering — what a user of algorithmic
    /// debugging can actually observe (see [`interface_render`]).
    golden_interface: String,
    input: Vec<Value>,
    sites: Vec<MutationSite>,
    strategy: Strategy,
}

/// The observable top level of a run: the root node plus the In/Out line
/// of each top-level invocation. Algorithmic debugging starts from a
/// user-visible wrong result; a mutant whose program output and top-level
/// interfaces all match the golden run presents no such result, however
/// much its internals diverge.
fn interface_render(tree: &gadt_trace::ExecTree) -> String {
    let mut out = tree.render_node(tree.root);
    for &c in &tree.node(tree.root).children {
        out.push('\n');
        out.push_str(&tree.render_node(c));
    }
    out
}

fn golden_ctx(p: &CampaignProgram, config: &CampaignConfig) -> Result<GoldenCtx, Error> {
    let ctx = |e: Error| e.context(format!("golden program `{}`", p.name));
    let ast = parse_program(&p.source).map_err(|e| ctx(e.into()))?;
    let module = compile(&p.source).map_err(|e| ctx(e.into()))?;
    let prepared = session::prepare(&module)
        .map_err(|e| ctx(Error::from_diagnostic(Phase::Transform, e)))?
        .with_engine(config.engine);
    let golden_run =
        session::run_traced(&prepared, p.input.iter().cloned()).map_err(|e| ctx(e.into()))?;
    let golden_render = golden_run.tree.render(golden_run.tree.root);
    let golden_interface = interface_render(&golden_run.tree);
    let sites = enumerate_sites(&ast);
    Ok(GoldenCtx {
        name: p.name.clone(),
        ast,
        prepared,
        golden_run,
        golden_render,
        golden_interface,
        input: p.input.clone(),
        sites,
        strategy: config.strategy,
    })
}

/// Runs a campaign over `programs`.
///
/// # Errors
/// Fails with a [`Phase`]-tagged [`Error`] when a *golden* program does
/// not parse, compile, transform, or run — that is a harness
/// configuration error, not a mutant outcome.
pub fn run_campaign(
    programs: &[CampaignProgram],
    config: &CampaignConfig,
) -> Result<CampaignSummary, Error> {
    let contexts: Vec<GoldenCtx> = programs
        .iter()
        .map(|p| golden_ctx(p, config))
        .collect::<Result<_, _>>()?;

    let mut work: Vec<(usize, MutationSite)> = Vec::new();
    for (i, ctx) in contexts.iter().enumerate() {
        for site in &ctx.sites {
            work.push((i, site.clone()));
        }
    }
    if config.max_mutants > 0 && work.len() > config.max_mutants {
        work = subsample(work, config.max_mutants, config.seed);
    }

    let limits = Limits {
        max_steps: config.max_steps,
        // Injected faults routinely break recursion guards; the interpreter
        // executes Pascal calls by native recursion, so a tight depth limit
        // turns a runaway mutant into a crashed classification instead of a
        // native stack overflow. 64 is ~5x any legitimate subject's call
        // depth yet fits a 2 MiB stack even with debug-sized frames (the
        // single-thread batch path runs on the calling thread).
        max_depth: 64,
    };
    let pool = BatchExecutor::new(config.threads);
    let reports = pool.run(work, |_, (prog_idx, site)| {
        run_mutant(&contexts[prog_idx], &site, limits)
    });
    Ok(CampaignSummary { reports })
}

/// FNV-1a over a byte string — used to keep campaign verdict keys short.
fn fnv(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// The store key of one mutant's golden-reference verdict. A verdict is
/// only reusable while everything that determined it is unchanged, so
/// the key fingerprints the golden source, the input stream and the step
/// budget alongside the mutation site itself.
fn verdict_key(
    p: &CampaignProgram,
    max_steps: u64,
    strategy: Strategy,
    site: &MutationSite,
) -> String {
    let mut ident = p.source.as_bytes().to_vec();
    for v in &p.input {
        ident.extend_from_slice(v.to_string().as_bytes());
        ident.push(0);
    }
    ident.extend_from_slice(&max_steps.to_le_bytes());
    let mut key = format!(
        "campaign/{}/{:016x}/{}#{}@{}",
        p.name,
        fnv(&ident),
        site.op,
        site.ordinal,
        site.unit
    );
    // Question counts depend on the traversal strategy, so non-default
    // strategies key their own verdicts; TopDown keeps the historical
    // shape so existing stores stay warm.
    if strategy != Strategy::TopDown {
        key.push('@');
        key.push_str(strategy.slug());
    }
    key
}

/// Like [`run_campaign`], but with persistent golden-reference verdict
/// reuse: mutants whose verdict is already in `store` (same golden
/// source, input, step budget and mutation site) are **not** re-run —
/// their status comes back from disk with an empty journal — and every
/// freshly-judged mutant's status is recorded, streamed to the store in
/// campaign order as workers finish.
///
/// The summary's [`CampaignSummary::fingerprint`] is identical to a
/// fresh run's; only the journals of reused mutants are empty (the
/// store persists verdicts, not telemetry).
///
/// # Errors
/// Same golden-program errors as [`run_campaign`], plus a
/// [`Phase::Campaign`] error when the store cannot be read or written.
pub fn run_campaign_with_store(
    programs: &[CampaignProgram],
    config: &CampaignConfig,
    store: &gadt_store::SharedStore,
) -> Result<CampaignSummary, Error> {
    let contexts: Vec<GoldenCtx> = programs
        .iter()
        .map(|p| golden_ctx(p, config))
        .collect::<Result<_, _>>()?;

    let mut work: Vec<(usize, MutationSite)> = Vec::new();
    for (i, ctx) in contexts.iter().enumerate() {
        for site in &ctx.sites {
            work.push((i, site.clone()));
        }
    }
    if config.max_mutants > 0 && work.len() > config.max_mutants {
        work = subsample(work, config.max_mutants, config.seed);
    }

    let keys: Vec<String> = work
        .iter()
        .map(|(i, site)| verdict_key(&programs[*i], config.max_steps, config.strategy, site))
        .collect();

    // Stored verdicts first (lookups in campaign order), then only the
    // remainder goes through the pipeline.
    let mut cached: Vec<Option<MutantStatus>> = Vec::with_capacity(work.len());
    {
        let mut guard = store.lock().expect("store mutex poisoned");
        for key in &keys {
            cached.push(
                guard
                    .lookup_verdict(key)
                    .as_ref()
                    .and_then(MutantStatus::from_json),
            );
        }
    }
    let fresh: Vec<(usize, usize, MutationSite)> = work
        .iter()
        .enumerate()
        .filter(|(slot, _)| cached[*slot].is_none())
        .map(|(slot, (prog_idx, site))| (slot, *prog_idx, site.clone()))
        .collect();

    let limits = Limits {
        max_steps: config.max_steps,
        // Injected faults routinely break recursion guards; the interpreter
        // executes Pascal calls by native recursion, so a tight depth limit
        // turns a runaway mutant into a crashed classification instead of a
        // native stack overflow. 64 is ~5x any legitimate subject's call
        // depth yet fits a 2 MiB stack even with debug-sized frames (the
        // single-thread batch path runs on the calling thread).
        max_depth: 64,
    };
    let pool = BatchExecutor::new(config.threads);
    let mut sink_err: Option<std::io::Error> = None;
    let fresh_reports = pool.run_with_sink(
        fresh,
        |_, (slot, prog_idx, site)| (slot, run_mutant(&contexts[prog_idx], &site, limits)),
        |_, (slot, report)| {
            if sink_err.is_some() {
                return;
            }
            let mut guard = store.lock().expect("store mutex poisoned");
            if let Err(e) = guard.record_verdict(&keys[*slot], report.status.to_json()) {
                sink_err = Some(e);
            }
        },
    );
    if let Some(e) = sink_err {
        return Err(Error::new(
            Phase::Campaign,
            format!("recording campaign verdicts failed: {e}"),
        ));
    }
    store
        .lock()
        .expect("store mutex poisoned")
        .sync()
        .map_err(|e| Error::new(Phase::Campaign, format!("knowledge store sync failed: {e}")))?;

    // Reassemble in campaign order: cached verdicts become reports with
    // empty journals; fresh ones carry their full telemetry.
    let mut fresh_iter = fresh_reports.into_iter();
    let reports: Vec<LocalizationReport> = work
        .into_iter()
        .zip(cached)
        .map(|((prog_idx, site), cached_status)| match cached_status {
            Some(status) => {
                let journal = Recorder::untimed().finish();
                let timings = journal.phase_timings();
                LocalizationReport {
                    program: contexts[prog_idx].name.clone(),
                    op: site.op,
                    ordinal: site.ordinal,
                    mutated_unit: site.unit.clone(),
                    description: site.description.clone(),
                    status,
                    journal,
                    timings,
                }
            }
            None => {
                let (_, report) = fresh_iter.next().expect("fresh report missing");
                report
            }
        })
        .collect();
    Ok(CampaignSummary { reports })
}

/// The full pipeline on one mutant: mutate → print → compile →
/// transform → monitor-free crash screen → trace (bounded) → kill
/// check → debug twice (slicing on/off) against the golden oracle.
///
/// Every step journals into a per-mutant [`Recorder`]: a `mutant` root
/// span tagged with program/operator/ordinal, the standard
/// transform/trace/debug phase spans, and the two debug sessions adopted
/// under the `with_slicing.` / `without_slicing.` counter prefixes. The
/// report's [`gadt::session::PhaseTimings`] roll-up is derived from that
/// journal.
fn run_mutant(ctx: &GoldenCtx, site: &MutationSite, limits: Limits) -> LocalizationReport {
    let mut rec = Recorder::new();
    let mspan = gadt_obs::span!(
        rec,
        "mutant",
        program = ctx.name.as_str(),
        op = site.op.to_string(),
        ordinal = site.ordinal,
        unit = site.unit.as_str(),
    );
    let status = run_mutant_status(ctx, site, limits, &mut rec);
    rec.exit(mspan);
    let journal = rec.finish();
    let timings = journal.phase_timings();
    LocalizationReport {
        program: ctx.name.clone(),
        op: site.op,
        ordinal: site.ordinal,
        mutated_unit: site.unit.clone(),
        description: site.description.clone(),
        status,
        journal,
        timings,
    }
}

fn run_mutant_status(
    ctx: &GoldenCtx,
    site: &MutationSite,
    limits: Limits,
    rec: &mut Recorder,
) -> MutantStatus {
    let Some(mutant_ast) = apply(&ctx.ast, site) else {
        return MutantStatus::Stillborn {
            reason: "mutation site not found".into(),
        };
    };
    let source = print_program(&mutant_ast);
    let module = match compile(&source) {
        Ok(m) => m,
        Err(e) => return MutantStatus::Stillborn { reason: e.message },
    };
    let prepared = match session::prepare_observed(&module, rec) {
        Ok(p) => p.with_engine(ctx.prepared.engine()),
        Err(e) => return MutantStatus::Stillborn { reason: e.message },
    };

    let tspan = gadt_obs::span!(rec, "trace", inputs = 1u64);
    // Monitor-free crash screen: runaway mutants — the common kill mode,
    // and the most expensive to trace — burn their step budget here
    // without paying for dependence recording or tree building. The fast
    // path is result-identical to the traced run (same error, message
    // and span), so the Crashed classification is byte-for-byte what the
    // traced pipeline would have produced.
    if let Err(e) = session::run_fast_limited(&prepared, ctx.input.iter().cloned(), limits) {
        rec.exit(tspan);
        return MutantStatus::Crashed { error: e.message };
    }
    let run = session::run_traced_limited(&prepared, ctx.input.iter().cloned(), limits);
    let run = match run {
        Ok(r) => {
            r.trace.observe(rec);
            r.tree.observe(rec);
            rec.exit(tspan);
            r
        }
        Err(e) => {
            rec.exit(tspan);
            return MutantStatus::Crashed { error: e.message };
        }
    };

    // Killed means *observably* killed: the program output or a top-level
    // invocation's In/Out interface differs. Internal-only divergence is
    // masked — no symptom a user could hand to the debugger.
    let observable =
        run.output != ctx.golden_run.output || interface_render(&run.tree) != ctx.golden_interface;
    if !observable {
        let diverged = run.tree.render(run.tree.root) != ctx.golden_render;
        return if diverged {
            MutantStatus::Masked
        } else {
            MutantStatus::Equivalent
        };
    }

    let dspan = gadt_obs::span!(rec, "debug");
    let mut with_rec = rec.child();
    let with = debug_against_golden(ctx, &prepared, &run, true, &mut with_rec);
    rec.adopt(with_rec.finish(), Some("with_slicing"));
    let mut without_rec = rec.child();
    let without = debug_against_golden(ctx, &prepared, &run, false, &mut without_rec);
    rec.adopt(without_rec.finish(), Some("without_slicing"));
    rec.exit(dspan);
    rec.add(
        "campaign.questions_saved_by_slicing",
        without.total_queries().saturating_sub(with.total_queries()) as u64,
    );

    let unit = match &with.result {
        DebugResult::BugLocalized { unit, .. } => unit.clone(),
        DebugResult::NoBugFound => {
            // The start node is assumed incorrect, so a started search
            // always localizes; a killed mutant reaching here means the
            // root had no children at all — blame the program unit.
            ctx.name.clone()
        }
    };
    // Loop units belong to their owning procedure's body; a bug placed in
    // `loop in p` is a bug in `p`.
    let blamed = unit.strip_prefix("loop in ").unwrap_or(&unit);
    let exact = blamed.eq_ignore_ascii_case(&site.unit);
    let (mut ev, mut st, mut ca) = (0, 0, 0);
    for s in &with.slice_stats {
        ev += s.events;
        st += s.stmts;
        ca += s.calls;
    }
    MutantStatus::Localized {
        unit,
        exact,
        questions_with_slicing: with.total_queries(),
        questions_without_slicing: without.total_queries(),
        slices_taken: with.slices_taken,
        slice_events: ev,
        slice_stmts: st,
        slice_calls: ca,
    }
}

fn debug_against_golden(
    ctx: &GoldenCtx,
    prepared: &PreparedProgram,
    run: &TracedRun,
    slicing: bool,
    rec: &mut Recorder,
) -> DebugOutcome {
    // The oracle judges the mutant's transformed tree against the golden
    // program's transformed tree, so In/Out shapes line up.
    let golden_module: &Module = &ctx.prepared.transformed.module;
    let oracle = GoldenOracle::from_tree(golden_module, ctx.golden_run.tree.clone());
    let mut chain = ChainOracle::new();
    chain.push(CountingOracle::new(oracle));
    session::debug_observed(
        prepared,
        run,
        &mut chain,
        DebugConfig {
            strategy: ctx.strategy,
            slicing,
        },
        rec,
    )
}

/// Seeded Fisher–Yates prefix selection, then restored to campaign
/// order: deterministic in `seed`, independent of thread count.
fn subsample(
    mut work: Vec<(usize, MutationSite)>,
    max: usize,
    seed: u64,
) -> Vec<(usize, MutationSite)> {
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let n = work.len();
    for i in 0..max.min(n) {
        let j = i + (next() as usize) % (n - i);
        work.swap(i, j);
    }
    work.truncate(max);
    work.sort_by_key(|(prog, site)| (*prog, site.op, site.ordinal));
    work
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadt_pascal::testprogs;

    fn small_campaign(threads: usize) -> CampaignSummary {
        let programs = vec![CampaignProgram::new("pqr", testprogs::PQR_FIXED)];
        let config = CampaignConfig {
            threads,
            max_mutants: 12,
            ..CampaignConfig::default()
        };
        run_campaign(&programs, &config).unwrap()
    }

    #[test]
    fn campaign_runs_and_reports() {
        let summary = small_campaign(1);
        assert_eq!(summary.total(), 12);
        assert!(summary.localized() > 0, "{}", summary.fingerprint());
        let rendered = summary.render();
        assert!(rendered.contains("mutants: 12 total"), "{rendered}");
    }

    #[test]
    fn thread_count_does_not_change_the_fingerprint() {
        let one = small_campaign(1).fingerprint();
        let four = small_campaign(4).fingerprint();
        assert_eq!(one, four);
    }

    #[test]
    fn thread_count_does_not_change_the_journal() {
        let one = small_campaign(1).journal();
        let four = small_campaign(4).journal();
        assert_eq!(one.fingerprint(), four.fingerprint());
        assert_eq!(one.counter("campaign.mutants"), 12);
        // Every localized mutant ran two debug sessions; their question
        // counters land under distinct prefixes.
        assert!(one.counter("with_slicing.debug.questions") > 0);
        assert!(
            one.counter("without_slicing.debug.questions")
                >= one.counter("with_slicing.debug.questions")
        );
        assert_eq!(
            one.counter("campaign.questions_saved_by_slicing"),
            one.counter("without_slicing.debug.questions")
                - one.counter("with_slicing.debug.questions")
        );
    }

    #[test]
    fn subsampling_is_seed_deterministic() {
        let p = parse_program(testprogs::SQRTEST_FIXED).unwrap();
        let sites = enumerate_sites(&p);
        let work: Vec<(usize, MutationSite)> = sites.into_iter().map(|s| (0, s)).collect();
        let a = subsample(work.clone(), 10, 42);
        let b = subsample(work.clone(), 10, 42);
        let c = subsample(work, 10, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn campaign_with_store_reuses_judged_verdicts() {
        let programs = vec![CampaignProgram::new("pqr", testprogs::PQR_FIXED)];
        let config = CampaignConfig {
            threads: 2,
            max_mutants: 8,
            ..CampaignConfig::default()
        };
        let dir = gadt_store::TempDir::new("campaign-store");

        // Run 1: everything fresh, every verdict persisted.
        let store = gadt_store::KnowledgeStore::open(dir.path())
            .unwrap()
            .into_shared();
        let first = run_campaign_with_store(&programs, &config, &store).unwrap();
        assert_eq!(first.total(), 8);
        {
            let guard = store.lock().unwrap();
            assert_eq!(guard.verdicts_len(), 8);
            assert_eq!(guard.verdict_hits(), 0);
        }
        let fp_disk = store.lock().unwrap().disk_fingerprint().unwrap();

        // Run 2 (new process simulated by a reopen): all 8 come from the
        // store, nothing is re-judged, and the store's bytes are
        // untouched.
        drop(store);
        let store = gadt_store::KnowledgeStore::open(dir.path())
            .unwrap()
            .into_shared();
        let second = run_campaign_with_store(&programs, &config, &store).unwrap();
        assert_eq!(second.fingerprint(), first.fingerprint());
        {
            let mut guard = store.lock().unwrap();
            assert_eq!(guard.verdict_hits(), 8);
            assert_eq!(guard.verdict_misses(), 0);
            guard.sync().unwrap();
            assert_eq!(guard.disk_fingerprint().unwrap(), fp_disk);
        }
        // Reused reports carry no telemetry — the store persists
        // verdicts, not journals.
        assert!(second.reports.iter().all(|r| r.journal.is_empty()));

        // A changed step budget invalidates the keys: nothing is reused.
        let altered = CampaignConfig {
            max_steps: config.max_steps + 1,
            ..config.clone()
        };
        let third = run_campaign_with_store(&programs, &altered, &store).unwrap();
        assert_eq!(third.fingerprint(), first.fingerprint());
        assert_eq!(store.lock().unwrap().verdicts_len(), 16);
    }

    #[test]
    fn mutant_status_round_trips_through_json() {
        use crate::report::MutantStatus;
        let statuses = vec![
            MutantStatus::Stillborn {
                reason: "does not compile".into(),
            },
            MutantStatus::Crashed {
                error: "step budget exhausted".into(),
            },
            MutantStatus::Equivalent,
            MutantStatus::Masked,
            MutantStatus::Localized {
                unit: "q".into(),
                exact: true,
                questions_with_slicing: 3,
                questions_without_slicing: 5,
                slices_taken: 1,
                slice_events: 10,
                slice_stmts: 4,
                slice_calls: 2,
            },
        ];
        for s in statuses {
            let j = s.to_json();
            // Survives an actual store round-trip through bytes.
            let reparsed = gadt_store::parse(&j.to_string()).unwrap();
            assert_eq!(MutantStatus::from_json(&reparsed), Some(s));
        }
        assert_eq!(
            MutantStatus::from_json(&gadt_store::Json::Str("garbage".into())),
            None
        );
    }

    #[test]
    fn golden_failure_is_a_campaign_error() {
        let programs = vec![CampaignProgram::new("bad", "program x; begin y := 1 end.")];
        let err = run_campaign(&programs, &CampaignConfig::default()).unwrap_err();
        assert_eq!(err.phase(), Phase::Compile);
        assert!(err.to_string().contains("bad"), "{err}");
        assert!(std::error::Error::source(&err).is_some());
    }
}
