//! # gadt-mutate
//!
//! Mutation-based fault injection with an automated bug-localization
//! conformance harness for the GADT reproduction.
//!
//! The paper's central claim is that slicing-pruned algorithmic
//! debugging isolates a bug with fewer oracle questions (§5.3.3, §8).
//! This crate turns that claim into a measured, repeatable number, in
//! the spirit of Ohta & Mizuno's automated bug-localization framework
//! (see PAPERS.md):
//!
//! 1. [`operators`] plants realistic faults into known-good Pascal
//!    programs — relational-operator flips, arithmetic swaps,
//!    off-by-one constants, wrong variable references, deleted and
//!    duplicated assignments, negated conditions — each site tagged
//!    with the unit that owns the mutated statement;
//! 2. [`campaign`] runs every mutant through the full pipeline
//!    (transform → trace → dynamic slice → algorithmic debugging),
//!    with the **golden-reference oracle**
//!    ([`gadt::oracle::GoldenOracle`]) answering queries by consulting
//!    the un-mutated program in place of a human;
//! 3. [`report`] checks whether the debugger blamed exactly the mutated
//!    unit and how many questions slicing saved, aggregated into a
//!    [`report::CampaignSummary`].
//!
//! Campaigns fan out over [`gadt_exec::BatchExecutor`] and are
//! byte-identical at any thread count (timings aside).
//!
//! ## Quickstart
//!
//! ```
//! use gadt_mutate::campaign::{run_campaign, CampaignConfig, CampaignProgram};
//! use gadt_pascal::testprogs;
//!
//! let programs = vec![CampaignProgram::new("pqr", testprogs::PQR_FIXED)];
//! let config = CampaignConfig { max_mutants: 8, threads: 1, ..Default::default() };
//! let summary = run_campaign(&programs, &config).unwrap();
//! assert_eq!(summary.total(), 8);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod operators;
pub mod report;

pub use campaign::{run_campaign, run_campaign_with_store, CampaignConfig, CampaignProgram};
pub use operators::{apply, enumerate_sites, MutOp, MutationSite};
pub use report::{CampaignSummary, LocalizationReport, MutantStatus};
