//! Deterministic mutation operators over `gadt-pascal` ASTs.
//!
//! A *mutation site* is one place in a program where one operator can
//! plant one fault. [`enumerate_sites`] lists every site of a program in
//! a fixed traversal order; [`apply`] replays the same traversal and
//! performs the single requested mutation. Because both go through one
//! shared driver, a site's `(op, ordinal)` pair is a stable address: the
//! same pair always denotes the same fault, which is what makes mutant
//! campaigns reproducible from a seed.

use gadt_pascal::ast::*;
use gadt_pascal::ast_mut::{renumber, walk_stmt_exprs_mut, walk_stmt_mut};
use gadt_pascal::pretty;
use std::collections::{BTreeMap, BTreeSet};

/// A mutation operator: one class of planted fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MutOp {
    /// Weaken/strengthen a comparison: `=`↔`<>`, `<`↔`<=`, `>`↔`>=`.
    RelOpFlip,
    /// Swap an arithmetic operator: `+`↔`-`, `*`→`+`, `div`→`*`, ….
    ArithOpSwap,
    /// Replace an integer literal `n` with `n + 1`.
    OffByOneConst,
    /// Replace one variable reference with another visible in the unit.
    WrongVarRef,
    /// Delete an assignment statement.
    DeleteAssign,
    /// Execute an assignment statement twice.
    DuplicateAssign,
    /// Negate an `if`/`while`/`repeat` condition.
    NegateCondition,
}

impl MutOp {
    /// Every operator, in the traversal's tie-break order.
    pub const ALL: [MutOp; 7] = [
        MutOp::RelOpFlip,
        MutOp::ArithOpSwap,
        MutOp::OffByOneConst,
        MutOp::WrongVarRef,
        MutOp::DeleteAssign,
        MutOp::DuplicateAssign,
        MutOp::NegateCondition,
    ];

    /// Short stable name for reports (`rel-op-flip`, …).
    pub fn name(self) -> &'static str {
        match self {
            MutOp::RelOpFlip => "rel-op-flip",
            MutOp::ArithOpSwap => "arith-op-swap",
            MutOp::OffByOneConst => "off-by-one-const",
            MutOp::WrongVarRef => "wrong-var-ref",
            MutOp::DeleteAssign => "delete-assign",
            MutOp::DuplicateAssign => "duplicate-assign",
            MutOp::NegateCondition => "negate-condition",
        }
    }
}

impl std::fmt::Display for MutOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One place where one operator can plant one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationSite {
    /// The operator.
    pub op: MutOp,
    /// Per-operator index in traversal order; `(op, ordinal)` addresses
    /// the site stably across [`enumerate_sites`]/[`apply`].
    pub ordinal: u32,
    /// Display name of the unit owning the mutated statement: the
    /// procedure/function name, or the program name for the main body
    /// (matching execution-tree node names).
    pub unit: String,
    /// Human-readable description of the planted fault.
    pub description: String,
}

/// Lists every mutation site of `program`, in traversal order.
pub fn enumerate_sites(program: &Program) -> Vec<MutationSite> {
    let mut scratch = program.clone();
    let mut act = Action::enumerate();
    drive(&mut scratch, &mut act);
    act.sites
}

/// Applies the single mutation addressed by `(site.op, site.ordinal)`,
/// returning the mutated program with freshly renumbered ids. Returns
/// `None` if the address does not exist in `program` (wrong program or
/// stale site).
pub fn apply(program: &Program, site: &MutationSite) -> Option<Program> {
    let mut mutant = program.clone();
    let mut act = Action::apply(site.op, site.ordinal);
    drive(&mut mutant, &mut act);
    if !act.done {
        return None;
    }
    renumber(&mut mutant);
    Some(mutant)
}

/// Shared traversal state: enumerating records sites, applying mutates
/// at the addressed locus. Ordinals are per-operator counters advanced
/// at every eligible locus, so both modes agree on addresses.
struct Action {
    target: Option<(MutOp, u32)>,
    counters: BTreeMap<MutOp, u32>,
    sites: Vec<MutationSite>,
    done: bool,
}

impl Action {
    fn enumerate() -> Self {
        Action {
            target: None,
            counters: BTreeMap::new(),
            sites: Vec::new(),
            done: false,
        }
    }

    fn apply(op: MutOp, ordinal: u32) -> Self {
        Action {
            target: Some((op, ordinal)),
            ..Action::enumerate()
        }
    }

    /// Registers one locus for `op`; returns `true` exactly when the
    /// caller should perform the mutation (apply mode, address match).
    fn locus(&mut self, op: MutOp, unit: &str, description: String) -> bool {
        let ordinal = {
            let c = self.counters.entry(op).or_insert(0);
            let o = *c;
            *c += 1;
            o
        };
        match self.target {
            None => {
                self.sites.push(MutationSite {
                    op,
                    ordinal,
                    unit: unit.to_string(),
                    description,
                });
                false
            }
            Some((top, tord)) => {
                if top == op && tord == ordinal {
                    self.done = true;
                    true
                } else {
                    false
                }
            }
        }
    }
}

fn drive(program: &mut Program, act: &mut Action) {
    let program_name = program.name.name.clone();
    fn rec(block: &mut Block, act: &mut Action) {
        for p in &mut block.procs {
            let unit = p.name.name.clone();
            let own_key = p.name.key();
            visit_unit(&unit, &own_key, &mut p.block.body, act);
            rec(&mut p.block, act);
        }
    }
    rec(&mut program.block, act);
    let main_key = program.name.key();
    visit_unit(&program_name, &main_key, &mut program.block.body, act);
}

fn visit_unit(unit: &str, unit_key: &str, body: &mut Vec<Stmt>, act: &mut Action) {
    let cands = wrongvar_candidates(body, unit_key);
    for s in body {
        walk_stmt_mut(s, &mut |s| stmt_loci(s, unit, &cands, act));
    }
}

fn stmt_loci(s: &mut Stmt, unit: &str, cands: &BTreeSet<String>, act: &mut Action) {
    if act.done {
        return;
    }
    // Statement-level loci on assignments.
    if let StmtKind::Assign { lhs, rhs } = &s.kind {
        let rendered = format!("{} := {}", pretty::lvalue_str(lhs), pretty::expr_str(rhs));
        if act.locus(MutOp::DeleteAssign, unit, format!("delete `{rendered}`")) {
            s.kind = StmtKind::Empty;
            return;
        }
        if act.locus(
            MutOp::DuplicateAssign,
            unit,
            format!("duplicate `{rendered}`"),
        ) {
            let copy = s.clone();
            s.kind = StmtKind::Compound(vec![copy.clone(), copy]);
            return;
        }
    }
    if let StmtKind::Assign { lhs, .. } = &mut s.kind {
        if lhs.index.is_none() {
            if let Some(repl) = replacement(cands, &lhs.base.key()) {
                if act.locus(
                    MutOp::WrongVarRef,
                    unit,
                    format!("assign to `{repl}` instead of `{}`", lhs.base.name),
                ) {
                    lhs.base = Ident::synthetic(repl);
                    return;
                }
            }
        }
    }
    // Condition negation.
    let cond_slot = match &mut s.kind {
        StmtKind::If { cond, .. }
        | StmtKind::While { cond, .. }
        | StmtKind::Repeat { cond, .. } => Some(cond),
        _ => None,
    };
    if let Some(cond) = cond_slot {
        let desc = format!("negate `{}`", pretty::expr_str(cond));
        if act.locus(MutOp::NegateCondition, unit, desc) {
            negate(cond);
            return;
        }
    }
    // Expression-level loci.
    walk_stmt_exprs_mut(s, &mut |e| expr_locus(e, unit, cands, act));
}

fn expr_locus(e: &mut Expr, unit: &str, cands: &BTreeSet<String>, act: &mut Action) {
    if act.done {
        return;
    }
    enum Plan {
        Op(BinOp),
        Lit(i64),
        Name(String),
    }
    let planned = match &e.kind {
        ExprKind::Binary { op, .. } if op.is_relational() => {
            let new = flip_rel(*op);
            Some((
                MutOp::RelOpFlip,
                Plan::Op(new),
                format!("replace `{op}` with `{new}` in `{}`", pretty::expr_str(e)),
            ))
        }
        ExprKind::Binary { op, .. } if is_arith(*op) => {
            let new = swap_arith(*op);
            Some((
                MutOp::ArithOpSwap,
                Plan::Op(new),
                format!("replace `{op}` with `{new}` in `{}`", pretty::expr_str(e)),
            ))
        }
        ExprKind::IntLit(n) => Some((
            MutOp::OffByOneConst,
            Plan::Lit(n.wrapping_add(1)),
            format!("replace `{n}` with `{}`", n.wrapping_add(1)),
        )),
        ExprKind::Name(id) => replacement(cands, &id.key()).map(|repl| {
            let desc = format!("read `{repl}` instead of `{}`", id.name);
            (MutOp::WrongVarRef, Plan::Name(repl), desc)
        }),
        _ => None,
    };
    if let Some((op, plan, desc)) = planned {
        if act.locus(op, unit, desc) {
            match plan {
                Plan::Op(new) => {
                    if let ExprKind::Binary { op, .. } = &mut e.kind {
                        *op = new;
                    }
                }
                Plan::Lit(n) => e.kind = ExprKind::IntLit(n),
                Plan::Name(name) => e.kind = ExprKind::Name(Ident::synthetic(name)),
            }
        }
    }
}

fn flip_rel(op: BinOp) -> BinOp {
    match op {
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        BinOp::Lt => BinOp::Le,
        BinOp::Le => BinOp::Lt,
        BinOp::Gt => BinOp::Ge,
        BinOp::Ge => BinOp::Gt,
        other => other,
    }
}

fn is_arith(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod | BinOp::FDiv
    )
}

fn swap_arith(op: BinOp) -> BinOp {
    match op {
        BinOp::Add => BinOp::Sub,
        BinOp::Sub => BinOp::Add,
        BinOp::Mul => BinOp::Add,
        BinOp::Div => BinOp::Mul,
        BinOp::Mod => BinOp::Add,
        BinOp::FDiv => BinOp::Mul,
        other => other,
    }
}

fn negate(cond: &mut Expr) {
    let (id, span) = (cond.id, cond.span);
    // The duplicated id on the moved-in operand is resolved by the
    // renumbering pass that follows every application.
    let inner = std::mem::replace(
        cond,
        Expr {
            id,
            kind: ExprKind::BoolLit(false),
            span,
        },
    );
    cond.kind = ExprKind::Unary {
        op: UnOp::Not,
        operand: Box::new(inner),
    };
}

/// Names eligible as wrong-variable replacements within one unit: plain
/// scalar variable references of the body, minus array bases, callee
/// names, and the unit's own name (the Pascal function-result variable).
/// Staying inside names the body already uses keeps most mutants
/// well-typed; a mistyped survivor is rejected at compile time and
/// classified stillborn.
fn wrongvar_candidates(body: &[Stmt], unit_key: &str) -> BTreeSet<String> {
    enum Occ {
        Name(String),
        Excl(String),
    }
    fn collect_expr(e: &Expr, occs: &mut Vec<Occ>) {
        match &e.kind {
            ExprKind::Name(id) => occs.push(Occ::Name(id.key())),
            ExprKind::Index { base, index } => {
                occs.push(Occ::Excl(base.key()));
                collect_expr(index, occs);
            }
            ExprKind::Call { name, args } => {
                occs.push(Occ::Excl(name.key()));
                for a in args {
                    collect_expr(a, occs);
                }
            }
            ExprKind::Unary { operand, .. } => collect_expr(operand, occs),
            ExprKind::Binary { lhs, rhs, .. } => {
                collect_expr(lhs, occs);
                collect_expr(rhs, occs);
            }
            _ => {}
        }
    }
    fn collect_lvalue(lv: &LValue, occs: &mut Vec<Occ>) {
        match &lv.index {
            None => occs.push(Occ::Name(lv.base.key())),
            Some(i) => {
                occs.push(Occ::Excl(lv.base.key()));
                collect_expr(i, occs);
            }
        }
    }
    let mut occs = vec![Occ::Excl(unit_key.to_string())];
    for s in body {
        s.walk(&mut |s| match &s.kind {
            StmtKind::Assign { lhs, rhs } => {
                collect_lvalue(lhs, &mut occs);
                collect_expr(rhs, &mut occs);
            }
            StmtKind::Call { name, args } => {
                occs.push(Occ::Excl(name.key()));
                for a in args {
                    collect_expr(a, &mut occs);
                }
            }
            StmtKind::Write { args, .. } => {
                for a in args {
                    collect_expr(a, &mut occs);
                }
            }
            StmtKind::If { cond, .. }
            | StmtKind::While { cond, .. }
            | StmtKind::Repeat { cond, .. } => collect_expr(cond, &mut occs),
            StmtKind::Case { scrutinee, .. } => collect_expr(scrutinee, &mut occs),
            StmtKind::For { var, from, to, .. } => {
                occs.push(Occ::Name(var.key()));
                collect_expr(from, &mut occs);
                collect_expr(to, &mut occs);
            }
            StmtKind::Read { args, .. } => {
                for lv in args {
                    collect_lvalue(lv, &mut occs);
                }
            }
            _ => {}
        });
    }
    let mut names: BTreeSet<String> = BTreeSet::new();
    let mut excluded: BTreeSet<String> = BTreeSet::new();
    for occ in occs {
        match occ {
            Occ::Name(n) => {
                names.insert(n);
            }
            Occ::Excl(n) => {
                excluded.insert(n);
            }
        }
    }
    names.retain(|n| !excluded.contains(n));
    names
}

/// The cyclic-next candidate after `key`, or `None` when `key` is not a
/// candidate or has no alternative. Loci with no replacement are skipped
/// entirely (they consume no ordinal).
fn replacement(cands: &BTreeSet<String>, key: &str) -> Option<String> {
    if !cands.contains(key) || cands.len() < 2 {
        return None;
    }
    cands
        .iter()
        .skip_while(|c| c.as_str() != key)
        .nth(1)
        .or_else(|| cands.iter().next())
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadt_pascal::parser::parse_program;
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;

    #[test]
    fn enumeration_is_deterministic_and_nonempty() {
        for (name, src) in testprogs::ALL {
            let p = parse_program(src).unwrap();
            let a = enumerate_sites(&p);
            let b = enumerate_sites(&p);
            assert_eq!(a, b, "{name}");
            assert!(!a.is_empty(), "{name} has no mutation sites");
        }
    }

    #[test]
    fn ordinals_are_dense_per_operator() {
        let p = parse_program(testprogs::MULTICHAIN).unwrap();
        let sites = enumerate_sites(&p);
        for op in MutOp::ALL {
            let ords: Vec<u32> = sites
                .iter()
                .filter(|s| s.op == op)
                .map(|s| s.ordinal)
                .collect();
            let expect: Vec<u32> = (0..ords.len() as u32).collect();
            assert_eq!(ords, expect, "{op}");
        }
    }

    #[test]
    fn apply_changes_the_program_and_renumbers() {
        let p = parse_program(testprogs::MULTICHAIN).unwrap();
        for site in enumerate_sites(&p) {
            let m = apply(&p, &site).unwrap_or_else(|| panic!("site vanished: {site:?}"));
            let (mut a, mut b) = (p.clone(), m.clone());
            gadt_pascal::ast_mut::normalize(&mut a);
            gadt_pascal::ast_mut::normalize(&mut b);
            assert_ne!(a, b, "mutation had no structural effect: {site:?}");
        }
    }

    #[test]
    fn most_multichain_mutants_compile() {
        let p = parse_program(testprogs::MULTICHAIN).unwrap();
        let sites = enumerate_sites(&p);
        let compiled = sites
            .iter()
            .filter(|s| {
                let m = apply(&p, s).unwrap();
                compile(&gadt_pascal::pretty::print_program(&m)).is_ok()
            })
            .count();
        assert!(
            compiled * 10 >= sites.len() * 9,
            "only {compiled}/{} mutants compile",
            sites.len()
        );
    }

    #[test]
    fn stale_address_returns_none() {
        let p = parse_program(testprogs::PQR).unwrap();
        let site = MutationSite {
            op: MutOp::RelOpFlip,
            ordinal: 10_000,
            unit: "nowhere".into(),
            description: String::new(),
        };
        assert!(apply(&p, &site).is_none());
    }

    #[test]
    fn units_match_execution_tree_names() {
        let p = parse_program(testprogs::MULTICHAIN).unwrap();
        let units: BTreeSet<String> = enumerate_sites(&p).into_iter().map(|s| s.unit).collect();
        assert!(units.contains("probe3"), "{units:?}");
        assert!(
            units.contains("chain"),
            "main-body unit is the program name: {units:?}"
        );
    }
}
