//! Per-mutant localization reports and campaign-level aggregation.
//!
//! One [`LocalizationReport`] records what happened to one mutant:
//! whether it compiled, whether it was killed, where the debugger placed
//! the fault, and how many oracle questions that took with and without
//! slicing. A [`CampaignSummary`] aggregates the reports into the
//! paper-facing numbers: exact-unit localization accuracy and mean
//! questions saved by slicing.

use crate::operators::MutOp;
use gadt::session::PhaseTimings;
use gadt_obs::{Journal, Recorder};

/// What became of one mutant after the full pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutantStatus {
    /// The mutant failed to compile or transform — it never ran.
    Stillborn {
        /// The compile/transform error message.
        reason: String,
    },
    /// The mutant ran into a runtime error or exhausted its step budget.
    Crashed {
        /// The runtime error message.
        error: String,
    },
    /// The mutant behaved identically to the golden program (output and
    /// execution tree) — not killed, nothing to localize.
    Equivalent,
    /// The mutant's execution diverged internally (its execution tree
    /// differs from the golden one), but the program output and every
    /// top-level invocation's In/Out interface matched the golden run.
    /// There is no observable symptom, so algorithmic debugging — whose
    /// premise is a user-visible wrong result — has no entry point.
    Masked,
    /// The mutant was killed and the debugger localized a fault.
    Localized {
        /// The unit the debugger blamed (loop units reported as their
        /// owning procedure).
        unit: String,
        /// Whether the blamed unit is the mutated unit.
        exact: bool,
        /// Oracle questions asked with slicing enabled.
        questions_with_slicing: usize,
        /// Oracle questions asked with slicing disabled.
        questions_without_slicing: usize,
        /// Tree prunes performed during the slicing-enabled session.
        slices_taken: usize,
        /// Total relevant trace events across those slices.
        slice_events: usize,
        /// Total distinct statements across those slices.
        slice_stmts: usize,
        /// Total dynamic calls kept across those slices.
        slice_calls: usize,
    },
}

impl MutantStatus {
    /// Encodes the status as the opaque verdict payload `gadt-store`
    /// persists for campaign reuse. Deterministic; round-trips through
    /// [`MutantStatus::from_json`].
    pub fn to_json(&self) -> gadt_store::Json {
        use gadt_store::{obj, Json};
        match self {
            MutantStatus::Stillborn { reason } => obj(vec![
                ("s", Json::Str("stillborn".into())),
                ("reason", Json::Str(reason.clone())),
            ]),
            MutantStatus::Crashed { error } => obj(vec![
                ("s", Json::Str("crashed".into())),
                ("error", Json::Str(error.clone())),
            ]),
            MutantStatus::Equivalent => obj(vec![("s", Json::Str("equivalent".into()))]),
            MutantStatus::Masked => obj(vec![("s", Json::Str("masked".into()))]),
            MutantStatus::Localized {
                unit,
                exact,
                questions_with_slicing,
                questions_without_slicing,
                slices_taken,
                slice_events,
                slice_stmts,
                slice_calls,
            } => obj(vec![
                ("s", Json::Str("localized".into())),
                ("unit", Json::Str(unit.clone())),
                ("exact", Json::Bool(*exact)),
                ("qw", Json::Int(*questions_with_slicing as i64)),
                ("qwo", Json::Int(*questions_without_slicing as i64)),
                ("slices", Json::Int(*slices_taken as i64)),
                ("ev", Json::Int(*slice_events as i64)),
                ("st", Json::Int(*slice_stmts as i64)),
                ("ca", Json::Int(*slice_calls as i64)),
            ]),
        }
    }

    /// Decodes a stored verdict payload. `None` on an unknown or
    /// malformed shape — the campaign then simply re-judges the mutant.
    pub fn from_json(j: &gadt_store::Json) -> Option<MutantStatus> {
        let int = |field: &str| -> Option<usize> { usize::try_from(j.get(field)?.as_int()?).ok() };
        match j.get("s")?.as_str()? {
            "stillborn" => Some(MutantStatus::Stillborn {
                reason: j.get("reason")?.as_str()?.to_string(),
            }),
            "crashed" => Some(MutantStatus::Crashed {
                error: j.get("error")?.as_str()?.to_string(),
            }),
            "equivalent" => Some(MutantStatus::Equivalent),
            "masked" => Some(MutantStatus::Masked),
            "localized" => Some(MutantStatus::Localized {
                unit: j.get("unit")?.as_str()?.to_string(),
                exact: j.get("exact")?.as_bool()?,
                questions_with_slicing: int("qw")?,
                questions_without_slicing: int("qwo")?,
                slices_taken: int("slices")?,
                slice_events: int("ev")?,
                slice_stmts: int("st")?,
                slice_calls: int("ca")?,
            }),
            _ => None,
        }
    }
}

/// The conformance record of one mutant.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalizationReport {
    /// Name of the subject program.
    pub program: String,
    /// The operator that planted the fault.
    pub op: MutOp,
    /// The operator's site ordinal (see
    /// [`crate::operators::MutationSite`]).
    pub ordinal: u32,
    /// The unit owning the mutated statement.
    pub mutated_unit: String,
    /// Human-readable fault description.
    pub description: String,
    /// The pipeline outcome.
    pub status: MutantStatus,
    /// The mutant's observability journal: transform/trace/debug spans,
    /// per-question events of both debug sessions (under the
    /// `with_slicing.` / `without_slicing.` prefixes), and counters.
    /// Wall-clock lives only in the journal's time fields, which its
    /// fingerprint excludes — so campaign fingerprints stay thread-count
    /// independent.
    pub journal: Journal,
    /// Wall-clock per pipeline phase, derived from `journal` (excluded
    /// from [`Self::render_line`] so campaign fingerprints are
    /// thread-count independent).
    pub timings: PhaseTimings,
}

impl LocalizationReport {
    /// One deterministic line describing this mutant — everything except
    /// the (non-deterministic) timings. Concatenated lines form the
    /// campaign fingerprint compared across thread counts.
    pub fn render_line(&self) -> String {
        let status = match &self.status {
            MutantStatus::Stillborn { reason } => format!("stillborn: {reason}"),
            MutantStatus::Crashed { error } => format!("crashed: {error}"),
            MutantStatus::Equivalent => "equivalent".to_string(),
            MutantStatus::Masked => "masked (no observable symptom)".to_string(),
            MutantStatus::Localized {
                unit,
                exact,
                questions_with_slicing,
                questions_without_slicing,
                slices_taken,
                slice_events,
                slice_stmts,
                slice_calls,
            } => format!(
                "localized in {unit} ({}) q={questions_with_slicing}/{questions_without_slicing} \
                 slices={slices_taken} size={slice_events}ev/{slice_stmts}st/{slice_calls}ca",
                if *exact { "exact" } else { "MISS" }
            ),
        };
        format!(
            "{} {}#{} in {} [{}] -> {status}",
            self.program, self.op, self.ordinal, self.mutated_unit, self.description
        )
    }
}

/// Aggregated results of one mutation campaign.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// One report per mutant, in campaign order.
    pub reports: Vec<LocalizationReport>,
}

impl CampaignSummary {
    /// Total mutants attempted.
    pub fn total(&self) -> usize {
        self.reports.len()
    }

    fn count(&self, f: impl Fn(&MutantStatus) -> bool) -> usize {
        self.reports.iter().filter(|r| f(&r.status)).count()
    }

    /// Mutants that never ran (compile/transform failure).
    pub fn stillborn(&self) -> usize {
        self.count(|s| matches!(s, MutantStatus::Stillborn { .. }))
    }

    /// Mutants that crashed or exhausted their step budget.
    pub fn crashed(&self) -> usize {
        self.count(|s| matches!(s, MutantStatus::Crashed { .. }))
    }

    /// Mutants indistinguishable from the golden program.
    pub fn equivalent(&self) -> usize {
        self.count(|s| matches!(s, MutantStatus::Equivalent))
    }

    /// Mutants that diverged internally without an observable symptom.
    pub fn masked(&self) -> usize {
        self.count(|s| matches!(s, MutantStatus::Masked))
    }

    /// Killed mutants the debugger ran on.
    pub fn localized(&self) -> usize {
        self.count(|s| matches!(s, MutantStatus::Localized { .. }))
    }

    /// Localized mutants blamed on exactly the mutated unit.
    pub fn exact(&self) -> usize {
        self.count(|s| matches!(s, MutantStatus::Localized { exact: true, .. }))
    }

    /// Exact-unit localization accuracy over localized mutants, in
    /// `[0, 1]`; `None` when nothing was localized.
    pub fn accuracy(&self) -> Option<f64> {
        let n = self.localized();
        (n > 0).then(|| self.exact() as f64 / n as f64)
    }

    /// Localized mutants where slicing asked strictly fewer questions.
    pub fn strictly_fewer(&self) -> usize {
        self.count(|s| {
            matches!(s, MutantStatus::Localized {
                questions_with_slicing: w,
                questions_without_slicing: wo,
                ..
            } if w < wo)
        })
    }

    fn mean_questions(&self, with_slicing: bool) -> Option<f64> {
        let qs: Vec<usize> = self
            .reports
            .iter()
            .filter_map(|r| match &r.status {
                MutantStatus::Localized {
                    questions_with_slicing,
                    questions_without_slicing,
                    ..
                } => Some(if with_slicing {
                    *questions_with_slicing
                } else {
                    *questions_without_slicing
                }),
                _ => None,
            })
            .collect();
        (!qs.is_empty()).then(|| qs.iter().sum::<usize>() as f64 / qs.len() as f64)
    }

    /// Mean questions per localized mutant, slicing enabled.
    pub fn mean_questions_with_slicing(&self) -> Option<f64> {
        self.mean_questions(true)
    }

    /// Mean questions per localized mutant, slicing disabled.
    pub fn mean_questions_without_slicing(&self) -> Option<f64> {
        self.mean_questions(false)
    }

    /// The campaign-level journal: every mutant's journal merged in
    /// campaign order, plus the roll-up counters `campaign.mutants`,
    /// `campaign.stillborn`, `campaign.crashed`, `campaign.equivalent`,
    /// `campaign.masked`, `campaign.localized` and `campaign.exact`.
    /// Its [`Journal::fingerprint`] is byte-identical across thread
    /// counts for the same seed.
    pub fn journal(&self) -> Journal {
        let mut rec = Recorder::untimed();
        for r in &self.reports {
            rec.adopt(r.journal.clone(), None);
        }
        rec.add("campaign.mutants", self.total() as u64);
        rec.add("campaign.stillborn", self.stillborn() as u64);
        rec.add("campaign.crashed", self.crashed() as u64);
        rec.add("campaign.equivalent", self.equivalent() as u64);
        rec.add("campaign.masked", self.masked() as u64);
        rec.add("campaign.localized", self.localized() as u64);
        rec.add("campaign.exact", self.exact() as u64);
        rec.finish()
    }

    /// The deterministic campaign fingerprint: every report's
    /// [`LocalizationReport::render_line`], newline-joined. Byte-identical
    /// across thread counts for the same seed.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        for r in &self.reports {
            out.push_str(&r.render_line());
            out.push('\n');
        }
        out
    }

    /// The localization-accuracy distribution as a deterministic JSON
    /// payload fit for `gadt-store` persistence: campaign-level status
    /// counts, exact-unit accuracy, and the histogram of
    /// slicing-enabled oracle-question counts over localized mutants
    /// (sorted `[questions, mutants]` pairs). Identical across thread
    /// counts for the same campaign seed.
    pub fn distribution_json(&self) -> gadt_store::Json {
        use gadt_store::{obj, Json};
        let mut hist: std::collections::BTreeMap<usize, i64> = std::collections::BTreeMap::new();
        for r in &self.reports {
            if let MutantStatus::Localized {
                questions_with_slicing,
                ..
            } = &r.status
            {
                *hist.entry(*questions_with_slicing).or_insert(0) += 1;
            }
        }
        let hist_json = Json::Array(
            hist.into_iter()
                .map(|(q, n)| Json::Array(vec![Json::Int(q as i64), Json::Int(n)]))
                .collect(),
        );
        obj(vec![
            ("mutants", Json::Int(self.total() as i64)),
            ("stillborn", Json::Int(self.stillborn() as i64)),
            ("crashed", Json::Int(self.crashed() as i64)),
            ("equivalent", Json::Int(self.equivalent() as i64)),
            ("masked", Json::Int(self.masked() as i64)),
            ("localized", Json::Int(self.localized() as i64)),
            ("exact", Json::Int(self.exact() as i64)),
            (
                "accuracy",
                match self.accuracy() {
                    Some(a) => Json::Real(a),
                    None => Json::Null,
                },
            ),
            ("questions_hist", hist_json),
        ])
    }

    /// Human-readable campaign summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "mutants: {} total, {} stillborn, {} crashed, {} equivalent, {} masked, {} localized\n",
            self.total(),
            self.stillborn(),
            self.crashed(),
            self.equivalent(),
            self.masked(),
            self.localized()
        ));
        if let Some(acc) = self.accuracy() {
            out.push_str(&format!(
                "exact-unit localization: {}/{} ({:.1}%)\n",
                self.exact(),
                self.localized(),
                acc * 100.0
            ));
        }
        if let (Some(w), Some(wo)) = (
            self.mean_questions_with_slicing(),
            self.mean_questions_without_slicing(),
        ) {
            out.push_str(&format!(
                "questions per mutant: {w:.2} with slicing, {wo:.2} without \
                 (strictly fewer on {}/{})\n",
                self.strictly_fewer(),
                self.localized()
            ));
        }
        out
    }
}
