//! # gadt-obs
//!
//! A lightweight, std-only structured-observability layer for the GADT
//! pipeline. The paper's value proposition is measured in *questions
//! asked* and *statements pruned* (Fritzson et al., §5–§6); this crate
//! makes those numbers first-class:
//!
//! * **hierarchical spans** — `span!(rec, "slice", criterion = 3)`
//!   opens a named, field-tagged span; closing it records the duration;
//! * **monotonic counters** — dotted-path keys like `debug.questions`
//!   or `slice.cache.requests`, summed across merged workers;
//! * **an event journal** — every span boundary and point event in
//!   order, with pluggable sinks ([`MemorySink`], [`JsonLinesSink`],
//!   and the human-readable [`Journal::render_summary`]).
//!
//! ## Determinism rules
//!
//! The journal must be byte-identical however many worker threads the
//! batch engine uses. Three rules make that hold:
//!
//! 1. every parallel work item records into its **own** [`Recorder`]
//!    (constructed via [`Recorder::child`]);
//! 2. finished child journals are [`Recorder::adopt`]ed back in
//!    **submission order**, never completion order;
//! 3. wall-clock readings live only in the `time`/`dur` fields, which
//!    [`Journal::fingerprint`] excludes.
//!
//! ```
//! use gadt_obs::{span, Recorder};
//! let mut rec = Recorder::new();
//! let s = span!(rec, "slice", criterion = 3u64, out = 0u64);
//! rec.incr("slice.computed");
//! rec.exit(s);
//! let journal = rec.finish();
//! assert_eq!(journal.counter("slice.computed"), 1);
//! assert!(journal.fingerprint().contains("\"criterion\":3"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod journal;
pub mod json;
pub mod recorder;
pub mod sink;

pub use event::{Event, EventKind, FieldValue};
pub use journal::{Journal, PhaseTimings};
pub use recorder::{Recorder, SpanToken};
pub use sink::{JsonLinesSink, MemorySink, Sink};

/// Opens a span on a [`Recorder`] with named fields:
/// `span!(rec, "slice", criterion = call_id, out = k)`. Returns the
/// [`SpanToken`] to pass to [`Recorder::exit`].
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $rec.enter_with(
            $name,
            &[$((stringify!($key), $crate::FieldValue::from($value))),*],
        )
    };
}

/// Emits a point event with named fields:
/// `event!(rec, "question", unit = name, answer = rendered)`.
#[macro_export]
macro_rules! event {
    ($rec:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $rec.event(
            $name,
            &[$((stringify!($key), $crate::FieldValue::from($value))),*],
        )
    };
}

/// Slugifies a free-form label into a counter-key segment: lowercase
/// ASCII alphanumerics preserved, every other run collapsed to one `_`,
/// leading/trailing `_` trimmed.
///
/// ```
/// assert_eq!(gadt_obs::slug("simulated user (reference implementation)"),
///            "simulated_user_reference_implementation");
/// assert_eq!(gadt_obs::slug("test database"), "test_database");
/// ```
pub fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut pending_sep = false;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            if pending_sep && !out.is_empty() {
                out.push('_');
            }
            pending_sep = false;
            out.push(c.to_ascii_lowercase());
        } else {
            pending_sep = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_and_event_macros_record_fields() {
        let mut rec = Recorder::untimed();
        let s = span!(rec, "debug", slicing = true);
        event!(rec, "question", unit = "add", n = 2u64);
        rec.exit(s);
        let j = rec.finish();
        let q = j.events_named("question").next().unwrap();
        assert_eq!(q.field_str("unit"), Some("add"));
        assert_eq!(q.field("n"), Some(&FieldValue::UInt(2)));
        let d = j.events_named("debug").next().unwrap();
        assert_eq!(d.field("slicing"), Some(&FieldValue::Bool(true)));
    }

    #[test]
    fn slugs() {
        assert_eq!(
            slug("golden reference (un-mutated program)"),
            "golden_reference_un_mutated_program"
        );
        assert_eq!(slug("assertions"), "assertions");
        assert_eq!(slug("  weird -- label  "), "weird_label");
        assert_eq!(slug(""), "");
    }
}
