//! A minimal JSON encoder/validator, just big enough for the journal's
//! JSON-lines sink and the CI smoke tier that re-parses every emitted
//! line. Std-only by design — the build environment has no registry
//! access, so no serde.

/// Escapes a string for use inside a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validates that `input` is one complete JSON value (object, array,
/// string, number, boolean, or null) with nothing but whitespace after
/// it. Returns the byte offset of the first error.
///
/// # Errors
/// Returns `(offset, message)` describing the first syntax error.
pub fn validate(input: &str) -> Result<(), (usize, String)> {
    let b = input.as_bytes();
    let mut p = Parser { b, pos: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != b.len() {
        return Err((p.pos, "trailing characters after JSON value".into()));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T, (usize, String)> {
        Err((self.pos, msg.to_string()))
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), (usize, String)> {
        if self.eat(c) {
            Ok(())
        } else {
            self.err(&format!("expected `{}`", c as char))
        }
    }

    fn value(&mut self) -> Result<(), (usize, String)> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), (usize, String)> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            self.err(&format!("expected `{lit}`"))
        }
    }

    fn object(&mut self) -> Result<(), (usize, String)> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            return self.expect(b'}');
        }
    }

    fn array(&mut self) -> Result<(), (usize, String)> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.eat(b']') {
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            return self.expect(b']');
        }
    }

    fn string(&mut self) -> Result<(), (usize, String)> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !matches!(
                                    self.peek(),
                                    Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')
                                ) {
                                    return self.err("invalid \\u escape");
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return self.err("invalid escape"),
                    }
                }
                Some(c) if c < 0x20 => return self.err("control character in string"),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), (usize, String)> {
        self.eat(b'-');
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return self.err("expected digits");
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err("expected fraction digits");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err("expected exponent digits");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn validates_good_lines() {
        for ok in [
            "{}",
            "[1, 2.5, -3e4]",
            r#"{"k":"enter","name":"a b","fields":{"x":true,"y":null}}"#,
            r#""just a string""#,
            "  42  ",
        ] {
            assert!(validate(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn rejects_bad_lines() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "\"unterminated",
            "01x",
            "{} trailing",
            "{\"a\"\u{1}:1}",
        ] {
            assert!(validate(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn escaped_strings_round_trip_through_the_validator() {
        let line = format!(r#"{{"s":"{}"}}"#, escape("q(In a: 5)?\n\"quoted\"\\"));
        assert!(validate(&line).is_ok(), "{line}");
    }
}
