//! The journal's event model: typed field values and span/point events.

use std::fmt;
use std::time::Duration;

/// A typed value attached to an event field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (counters, sizes, ids).
    UInt(u64),
    /// A boolean flag.
    Bool(bool),
    /// A string (unit names, oracle sources, answers).
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Int(n) => write!(f, "{n}"),
            FieldValue::UInt(n) => write!(f, "{n}"),
            FieldValue::Bool(b) => write!(f, "{b}"),
            FieldValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::Int(v as i64)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::UInt(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::UInt(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::UInt(v as u64)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// What kind of journal entry an [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A hierarchical span opened (`enter`).
    Enter,
    /// The matching span closed (`exit`); carries the span's duration.
    Exit,
    /// A point-in-time event with no extent (e.g. one oracle question).
    Point,
}

impl EventKind {
    /// Short wire name used in the JSON-lines encoding.
    pub fn wire_name(self) -> &'static str {
        match self {
            EventKind::Enter => "enter",
            EventKind::Exit => "exit",
            EventKind::Point => "point",
        }
    }
}

/// One journal entry.
///
/// The deterministic payload is `(kind, name, depth, fields)`; the two
/// wall-clock members ([`Event::time`], [`Event::dur`]) are measurement
/// noise and are **excluded** from fingerprints so journals compare
/// byte-identical across thread counts and machines.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Entry kind.
    pub kind: EventKind,
    /// Event name (dotted-path convention, e.g. `debug.question`).
    pub name: String,
    /// Span-nesting depth at emission (0 = top level).
    pub depth: usize,
    /// Structured fields, in emission order.
    pub fields: Vec<(String, FieldValue)>,
    /// Wall-clock offset from the recorder's origin, when timing is on.
    pub time: Option<Duration>,
    /// For [`EventKind::Exit`]: the span's duration.
    pub dur: Option<Duration>,
}

impl Event {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Looks up a string field by name.
    pub fn field_str(&self, name: &str) -> Option<&str> {
        match self.field(name)? {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_lookup() {
        let e = Event {
            kind: EventKind::Point,
            name: "q".into(),
            depth: 1,
            fields: vec![
                ("unit".into(), FieldValue::from("add")),
                ("n".into(), FieldValue::from(3u64)),
            ],
            time: None,
            dur: None,
        };
        assert_eq!(e.field_str("unit"), Some("add"));
        assert_eq!(e.field("n"), Some(&FieldValue::UInt(3)));
        assert_eq!(e.field("missing"), None);
        assert_eq!(e.field_str("n"), None);
    }

    #[test]
    fn field_values_display() {
        assert_eq!(FieldValue::from(-3i64).to_string(), "-3");
        assert_eq!(FieldValue::from(7usize).to_string(), "7");
        assert_eq!(FieldValue::from(true).to_string(), "true");
        assert_eq!(FieldValue::from("x").to_string(), "x");
    }
}
