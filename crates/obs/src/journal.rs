//! The finished journal: an ordered event list plus aggregated counters,
//! with deterministic serialization and the `PhaseTimings` shim.

use crate::event::{Event, EventKind, FieldValue};
use crate::json;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// The output of one [`crate::Recorder`]: every event in emission order
/// plus the final counter values.
///
/// The journal has two serializations:
/// * [`Journal::fingerprint`] — timestamp-free, byte-identical for the
///   same logical work at any thread count;
/// * [`Journal::to_json_lines`] — the same lines with `t_us`/`dur_us`
///   wall-clock fields included.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Journal {
    /// Events in emission (and, across merged workers, submission) order.
    pub events: Vec<Event>,
    /// Final counter values, keyed by dotted-path counter name.
    pub counters: BTreeMap<String, u64>,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// The value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Iterates over counters whose name starts with `prefix`.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .iter()
            .filter(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over events with the given name.
    pub fn events_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// Number of journal events (counters excluded).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the journal holds no events and no counters.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.counters.is_empty()
    }

    fn event_line(e: &Event, with_time: bool) -> String {
        let mut line = format!(
            r#"{{"k":"{}","name":"{}","depth":{}"#,
            e.kind.wire_name(),
            json::escape(&e.name),
            e.depth
        );
        if !e.fields.is_empty() {
            line.push_str(",\"fields\":{");
            for (i, (k, v)) in e.fields.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                match v {
                    FieldValue::Int(n) => line.push_str(&format!(r#""{}":{n}"#, json::escape(k))),
                    FieldValue::UInt(n) => line.push_str(&format!(r#""{}":{n}"#, json::escape(k))),
                    FieldValue::Bool(b) => line.push_str(&format!(r#""{}":{b}"#, json::escape(k))),
                    FieldValue::Str(s) => {
                        line.push_str(&format!(r#""{}":"{}""#, json::escape(k), json::escape(s)))
                    }
                }
            }
            line.push('}');
        }
        if with_time {
            if let Some(t) = e.time {
                line.push_str(&format!(",\"t_us\":{}", t.as_micros()));
            }
            if let Some(d) = e.dur {
                line.push_str(&format!(",\"dur_us\":{}", d.as_micros()));
            }
        }
        line.push('}');
        line
    }

    fn render_lines(&self, with_time: bool) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&Self::event_line(e, with_time));
            out.push('\n');
        }
        for (k, v) in &self.counters {
            out.push_str(&format!(
                r#"{{"k":"counter","name":"{}","value":{v}}}"#,
                json::escape(k)
            ));
            out.push('\n');
        }
        out
    }

    /// The deterministic serialization: JSON lines with every wall-clock
    /// field omitted. Two runs of the same logical work produce
    /// byte-identical fingerprints regardless of thread count.
    pub fn fingerprint(&self) -> String {
        self.render_lines(false)
    }

    /// The timestamp-free JSON line of each event from index `from` on —
    /// the streaming serialization: a subscriber that has already seen
    /// `from` events receives exactly the new ones, and the
    /// concatenation of every increment equals the event portion of
    /// [`Journal::fingerprint`].
    pub fn event_lines_from(&self, from: usize) -> Vec<String> {
        self.events
            .iter()
            .skip(from)
            .map(|e| Self::event_line(e, false))
            .collect()
    }

    /// The full JSON-lines serialization, wall-clock fields included.
    /// One JSON object per line: events first (in order), then counters.
    pub fn to_json_lines(&self) -> String {
        self.render_lines(true)
    }

    /// Writes [`Journal::to_json_lines`] to `w`.
    ///
    /// # Errors
    /// Propagates I/O errors from `w`.
    pub fn write_json_lines<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(self.to_json_lines().as_bytes())
    }

    /// Streams the journal into a [`crate::sink::Sink`].
    pub fn emit(&self, sink: &mut dyn crate::sink::Sink) {
        for e in &self.events {
            sink.record(e);
        }
        for (k, v) in &self.counters {
            sink.counter(k, *v);
        }
        sink.flush();
    }

    /// A human-readable summary: the span tree (indented by depth, with
    /// durations when recorded) followed by a counter table.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let indent = "  ".repeat(e.depth);
            match e.kind {
                EventKind::Enter => {}
                EventKind::Exit => {
                    let dur = e.dur.map(|d| format!(" [{d:.2?}]")).unwrap_or_default();
                    let fields = if e.fields.is_empty() {
                        String::new()
                    } else {
                        let parts: Vec<String> =
                            e.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
                        format!(" ({})", parts.join(", "))
                    };
                    out.push_str(&format!("{indent}{}{fields}{dur}\n", e.name));
                }
                EventKind::Point => {
                    let parts: Vec<String> =
                        e.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
                    out.push_str(&format!("{indent}* {} {}\n", e.name, parts.join(", ")));
                }
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k} = {v}\n"));
            }
        }
        out
    }

    /// The per-phase wall-clock roll-up: sums the durations of every
    /// closed `transform`, `trace`, and `debug` span — the compatibility
    /// shim behind the pipeline's historical `PhaseTimings` API.
    pub fn phase_timings(&self) -> PhaseTimings {
        let mut t = PhaseTimings::default();
        for e in &self.events {
            if e.kind != EventKind::Exit {
                continue;
            }
            let Some(d) = e.dur else { continue };
            match e.name.as_str() {
                "transform" => t.transform += d,
                "trace" => t.trace += d,
                "debug" => t.debug += d,
                _ => {}
            }
        }
        t
    }
}

/// Per-phase wall-clock timings of a pipeline run. Phases map to the
/// paper's Figure 3: `transform` is Phase I (transformation + CFG
/// lowering), `trace` is Phase II (all traced executions of the batch),
/// `debug` is Phase III (bug localization).
///
/// Historically this was a stopwatch struct filled by hand in
/// `gadt::session`; it is now derived from the observability journal via
/// [`Journal::phase_timings`] and kept as a thin compatibility shim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Phase I: transformation and CFG lowering.
    pub transform: Duration,
    /// Phase II: traced execution(s), wall-clock (not summed per run —
    /// parallel tracing makes this less than the per-run sum).
    pub trace: Duration,
    /// Phase III: debugging, when measured (zero until a debug phase
    /// runs).
    pub debug: Duration,
}

impl PhaseTimings {
    /// Total wall-clock across the recorded phases.
    pub fn total(&self) -> Duration {
        self.transform + self.trace + self.debug
    }
}

impl fmt::Display for PhaseTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transform {:?}, trace {:?}, debug {:?} (total {:?})",
            self.transform,
            self.trace,
            self.debug,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn fingerprint_excludes_time_json_includes_it() {
        let mut rec = Recorder::new();
        let s = rec.enter("trace");
        rec.add("trace.events", 5);
        rec.exit(s);
        let j = rec.finish();
        let fp = j.fingerprint();
        assert!(!fp.contains("t_us"), "{fp}");
        assert!(!fp.contains("dur_us"), "{fp}");
        let full = j.to_json_lines();
        assert!(full.contains("dur_us"), "{full}");
        // Both serializations parse line by line.
        for line in full.lines().chain(fp.lines()) {
            crate::json::validate(line).unwrap_or_else(|e| panic!("{line}: {e:?}"));
        }
    }

    #[test]
    fn phase_timings_sum_span_durations() {
        let mut rec = Recorder::new();
        let t = rec.enter("transform");
        rec.exit(t);
        let a = rec.enter("trace");
        rec.exit(a);
        let b = rec.enter("trace");
        rec.exit(b);
        let j = rec.finish();
        let pt = j.phase_timings();
        assert_eq!(pt.debug, Duration::ZERO);
        assert_eq!(pt.total(), pt.transform + pt.trace);
        let rendered = pt.to_string();
        assert!(rendered.contains("transform"), "{rendered}");
    }

    #[test]
    fn untimed_recorders_produce_zero_timings() {
        let mut rec = Recorder::untimed();
        let t = rec.enter("transform");
        rec.exit(t);
        let j = rec.finish();
        assert_eq!(j.phase_timings(), PhaseTimings::default());
        assert_eq!(j.fingerprint(), j.to_json_lines());
    }

    #[test]
    fn summary_renders_spans_and_counters() {
        let mut rec = Recorder::new();
        let s = rec.enter_with("slice", &[("criterion", 3u64.into())]);
        rec.event("question", &[("unit", "add".into())]);
        rec.add("debug.questions", 1);
        rec.exit(s);
        let summary = rec.finish().render_summary();
        assert!(summary.contains("slice (criterion=3)"), "{summary}");
        assert!(summary.contains("* question unit=add"), "{summary}");
        assert!(summary.contains("debug.questions = 1"), "{summary}");
    }
}
