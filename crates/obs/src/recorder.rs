//! The recorder: the mutable collection half of the observability layer.
//!
//! A [`Recorder`] is cheap to construct, owns its buffers (no global
//! state, no channels), and is therefore trivially deterministic: give
//! every parallel work item its own recorder and [`Recorder::adopt`] the
//! finished journals back in **submission order**. Wall-clock readings
//! live only in the `time`/`dur` fields that fingerprints exclude, so
//! the merged journal is byte-identical at any thread count.

use crate::event::{Event, EventKind, FieldValue};
use crate::journal::Journal;
use std::collections::BTreeMap;
use std::time::Instant;

/// An open-span handle returned by [`Recorder::enter`]; pass it back to
/// [`Recorder::exit`]. Spans must close in LIFO order (enforced with a
/// debug assertion); [`Recorder::finish`] force-closes any span left
/// open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a span stays open until Recorder::exit receives this token"]
pub struct SpanToken {
    enter_index: usize,
}

/// Collects spans, point events, and counters into a [`Journal`].
#[derive(Debug)]
pub struct Recorder {
    enabled: bool,
    timed: bool,
    origin: Instant,
    events: Vec<Event>,
    counters: BTreeMap<String, u64>,
    stack: Vec<(usize, Instant)>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    fn with_flags(enabled: bool, timed: bool) -> Self {
        Recorder {
            enabled,
            timed,
            origin: Instant::now(),
            events: Vec::new(),
            counters: BTreeMap::new(),
            stack: Vec::new(),
        }
    }

    /// A recorder with wall-clock timing on (the default).
    pub fn new() -> Self {
        Recorder::with_flags(true, true)
    }

    /// A recorder that records no wall-clock at all: `time`/`dur` stay
    /// `None`, so [`Journal::to_json_lines`] equals
    /// [`Journal::fingerprint`]. Use in tests that compare full JSON.
    pub fn untimed() -> Self {
        Recorder::with_flags(true, false)
    }

    /// A no-op recorder: every operation does nothing and
    /// [`Recorder::finish`] returns an empty journal. This is what the
    /// unobserved compatibility entry points pass down, keeping the
    /// instrumented hot paths allocation-free when nobody is watching.
    pub fn disabled() -> Self {
        Recorder::with_flags(false, false)
    }

    /// Whether this recorder actually records.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// A recorder suitable for a child work item of this one: disabled
    /// if the parent is disabled, and timed the same way.
    pub fn child(&self) -> Recorder {
        Recorder::with_flags(self.enabled, self.timed)
    }

    fn now(&self) -> Option<std::time::Duration> {
        self.timed.then(|| self.origin.elapsed())
    }

    /// Opens a span.
    pub fn enter(&mut self, name: &str) -> SpanToken {
        self.enter_with(name, &[])
    }

    /// Opens a span with structured fields.
    pub fn enter_with(&mut self, name: &str, fields: &[(&str, FieldValue)]) -> SpanToken {
        if !self.enabled {
            return SpanToken {
                enter_index: usize::MAX,
            };
        }
        let idx = self.events.len();
        self.events.push(Event {
            kind: EventKind::Enter,
            name: name.to_string(),
            depth: self.stack.len(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            time: self.now(),
            dur: None,
        });
        self.stack.push((idx, Instant::now()));
        SpanToken { enter_index: idx }
    }

    /// Closes the span `token` refers to, emitting the matching exit
    /// event (which carries the span's fields and duration).
    pub fn exit(&mut self, token: SpanToken) {
        if !self.enabled {
            return;
        }
        let Some((idx, started)) = self.stack.pop() else {
            debug_assert!(false, "exit with no open span");
            return;
        };
        debug_assert_eq!(idx, token.enter_index, "spans must close in LIFO order");
        let dur = self.timed.then(|| started.elapsed());
        let enter = &self.events[idx];
        let (name, fields) = (enter.name.clone(), enter.fields.clone());
        self.events.push(Event {
            kind: EventKind::Exit,
            name,
            depth: self.stack.len(),
            fields,
            time: self.now(),
            dur,
        });
    }

    /// Emits a point event.
    pub fn event(&mut self, name: &str, fields: &[(&str, FieldValue)]) {
        if !self.enabled {
            return;
        }
        self.events.push(Event {
            kind: EventKind::Point,
            name: name.to_string(),
            depth: self.stack.len(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            time: self.now(),
            dur: None,
        });
    }

    /// Adds `n` to a monotonic counter.
    pub fn add(&mut self, counter: &str, n: u64) {
        if !self.enabled {
            return;
        }
        *self.counters.entry(counter.to_string()).or_insert(0) += n;
    }

    /// Adds 1 to a monotonic counter.
    pub fn incr(&mut self, counter: &str) {
        self.add(counter, 1);
    }

    /// The current value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Merges a finished child journal into this recorder: events are
    /// appended (depths shifted under the currently open spans) and
    /// counters are summed. With `prefix`, both event names and counter
    /// keys gain a `{prefix}.` namespace — how a campaign keeps its
    /// with-slicing and without-slicing debug sessions apart.
    ///
    /// Determinism rule: adopt children in **submission order**, never
    /// completion order. `gadt_exec`-style batch engines return results
    /// in input order, which is exactly that.
    pub fn adopt(&mut self, child: Journal, prefix: Option<&str>) {
        if !self.enabled {
            return;
        }
        let shift = self.stack.len();
        let rename = |name: &str| match prefix {
            Some(p) => format!("{p}.{name}"),
            None => name.to_string(),
        };
        for mut e in child.events {
            e.depth += shift;
            e.name = rename(&e.name);
            self.events.push(e);
        }
        for (k, v) in child.counters {
            *self.counters.entry(rename(&k)).or_insert(0) += v;
        }
    }

    /// A point-in-time copy of the journal so far, *without* consuming
    /// the recorder or closing open spans (their `Enter` events appear
    /// with no matching `Exit` yet). This is the live-streaming read: a
    /// server snapshots a session's recorder after each request and
    /// pushes [`Journal::event_lines_from`] the subscriber's high-water
    /// mark to every subscriber.
    pub fn snapshot(&self) -> Journal {
        Journal {
            events: self.events.clone(),
            counters: self.counters.clone(),
        }
    }

    /// Closes any spans left open (defensively) and returns the journal.
    pub fn finish(mut self) -> Journal {
        while let Some(&(idx, _)) = self.stack.last() {
            self.exit(SpanToken { enter_index: idx });
        }
        Journal {
            events: self.events,
            counters: self.counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_balance() {
        let mut rec = Recorder::untimed();
        let outer = rec.enter("outer");
        let inner = rec.enter("inner");
        rec.event("p", &[]);
        rec.exit(inner);
        rec.exit(outer);
        let j = rec.finish();
        let depths: Vec<(EventKind, usize)> = j.events.iter().map(|e| (e.kind, e.depth)).collect();
        assert_eq!(
            depths,
            vec![
                (EventKind::Enter, 0),
                (EventKind::Enter, 1),
                (EventKind::Point, 2),
                (EventKind::Exit, 1),
                (EventKind::Exit, 0),
            ]
        );
    }

    #[test]
    fn finish_force_closes_open_spans() {
        let mut rec = Recorder::untimed();
        let _t = rec.enter("a");
        let _u = rec.enter("b");
        let j = rec.finish();
        assert_eq!(j.events.len(), 4);
        assert_eq!(j.events.last().unwrap().kind, EventKind::Exit);
        assert_eq!(j.events.last().unwrap().name, "a");
    }

    #[test]
    fn counters_accumulate() {
        let mut rec = Recorder::new();
        rec.add("x", 2);
        rec.incr("x");
        rec.incr("y");
        assert_eq!(rec.counter("x"), 3);
        let j = rec.finish();
        assert_eq!(j.counter("x"), 3);
        assert_eq!(j.counter("y"), 1);
        assert_eq!(j.counter("z"), 0);
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let mut rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let t = rec.enter_with("s", &[("a", 1u64.into())]);
        rec.event("e", &[]);
        rec.add("c", 5);
        rec.exit(t);
        rec.adopt(
            Journal {
                events: vec![],
                counters: [("k".to_string(), 1)].into_iter().collect(),
            },
            None,
        );
        assert!(rec.finish().is_empty());
    }

    #[test]
    fn adopt_shifts_depth_and_prefixes_names() {
        let mut child = Recorder::untimed();
        let s = child.enter("debug");
        child.event("question", &[("unit", "p".into())]);
        child.add("debug.questions", 1);
        child.exit(s);
        let cj = child.finish();

        let mut parent = Recorder::untimed();
        let m = parent.enter("mutant");
        parent.adopt(cj.clone(), Some("with_slicing"));
        parent.adopt(cj, None);
        parent.exit(m);
        let j = parent.finish();
        assert_eq!(j.counter("with_slicing.debug.questions"), 1);
        assert_eq!(j.counter("debug.questions"), 1);
        let prefixed: Vec<&Event> = j.events_named("with_slicing.question").collect();
        assert_eq!(prefixed.len(), 1);
        assert_eq!(prefixed[0].depth, 2);
        assert_eq!(j.events_named("question").count(), 1);
    }

    #[test]
    fn adoption_order_fixes_the_fingerprint() {
        // Two children adopted in submission order produce the same
        // fingerprint however long either took to compute.
        let make_child = |unit: &str| {
            let mut r = Recorder::new();
            r.event("question", &[("unit", unit.into())]);
            r.finish()
        };
        let mut a = Recorder::new();
        a.adopt(make_child("first"), None);
        a.adopt(make_child("second"), None);
        let mut b = Recorder::new();
        b.adopt(make_child("first"), None);
        b.adopt(make_child("second"), None);
        assert_eq!(a.finish().fingerprint(), b.finish().fingerprint());
    }

    #[test]
    fn snapshot_streams_incrementally_without_consuming() {
        let mut rec = Recorder::untimed();
        rec.event("question", &[("unit", "p".into())]);
        let first = rec.snapshot();
        assert_eq!(first.events.len(), 1);
        rec.event("question", &[("unit", "q".into())]);
        rec.incr("debug.questions");
        let second = rec.snapshot();
        // The increment since the first snapshot is exactly the new line.
        let delta = second.event_lines_from(first.events.len());
        assert_eq!(delta.len(), 1);
        assert!(delta[0].contains("\"unit\":\"q\""), "{}", delta[0]);
        // Concatenated increments equal the final event lines.
        let all = second.event_lines_from(0);
        let mut catted = first.event_lines_from(0);
        catted.extend(delta);
        assert_eq!(all, catted);
        // The recorder is still usable and finishes normally.
        assert_eq!(rec.finish().counter("debug.questions"), 1);
    }

    #[test]
    fn child_inherits_flags() {
        assert!(!Recorder::disabled().child().is_enabled());
        assert!(Recorder::new().child().is_enabled());
        let mut c = Recorder::untimed().child();
        let t = c.enter("x");
        c.exit(t);
        assert!(c.finish().events.iter().all(|e| e.time.is_none()));
    }
}
