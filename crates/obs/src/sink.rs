//! Pluggable journal sinks: in-memory (tests), JSON-lines (machines),
//! and the human-readable summary renderer.

use crate::event::Event;
use crate::journal::Journal;
use std::io::Write;

/// A destination for journal entries. [`Journal::emit`] streams a
/// finished journal into one; long-running tools can also drive a sink
/// incrementally.
pub trait Sink {
    /// Receives one event.
    fn record(&mut self, event: &Event);
    /// Receives one final counter value.
    fn counter(&mut self, name: &str, value: u64);
    /// Called once after the last entry.
    fn flush(&mut self) {}
}

/// Collects everything back into a [`Journal`] — the test sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// The journal accumulated so far.
    pub journal: Journal,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        MemorySink::default()
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        self.journal.events.push(event.clone());
    }

    fn counter(&mut self, name: &str, value: u64) {
        *self.journal.counters.entry(name.to_string()).or_insert(0) += value;
    }
}

/// Writes one JSON object per line to any [`Write`] target.
///
/// With `with_time` off, the output is the deterministic
/// [`Journal::fingerprint`] encoding; with it on, wall-clock fields are
/// included.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    w: W,
    with_time: bool,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonLinesSink<W> {
    /// A sink including wall-clock fields.
    pub fn new(w: W) -> Self {
        JsonLinesSink {
            w,
            with_time: true,
            error: None,
        }
    }

    /// A sink omitting wall-clock fields (deterministic output).
    pub fn deterministic(w: W) -> Self {
        JsonLinesSink {
            w,
            with_time: false,
            error: None,
        }
    }

    /// Returns the writer, surfacing any I/O error swallowed during
    /// streaming.
    ///
    /// # Errors
    /// The first write error encountered, if any.
    pub fn into_inner(self) -> std::io::Result<W> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.w),
        }
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self
            .w
            .write_all(line.as_bytes())
            .and_then(|()| self.w.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }
}

impl<W: Write> Sink for JsonLinesSink<W> {
    fn record(&mut self, event: &Event) {
        let single = Journal {
            events: vec![event.clone()],
            counters: Default::default(),
        };
        let rendered = if self.with_time {
            single.to_json_lines()
        } else {
            single.fingerprint()
        };
        self.write_line(rendered.trim_end());
    }

    fn counter(&mut self, name: &str, value: u64) {
        let line = format!(
            r#"{{"k":"counter","name":"{}","value":{value}}}"#,
            crate::json::escape(name)
        );
        self.write_line(&line);
    }

    fn flush(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.w.flush() {
                self.error = Some(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample() -> Journal {
        let mut rec = Recorder::new();
        let s = rec.enter_with("slice", &[("criterion", "3.0".into())]);
        rec.event(
            "question",
            &[("unit", "add".into()), ("answer", "yes".into())],
        );
        rec.exit(s);
        rec.add("debug.questions", 7);
        rec.finish()
    }

    #[test]
    fn memory_sink_round_trips() {
        let j = sample();
        let mut sink = MemorySink::new();
        j.emit(&mut sink);
        assert_eq!(sink.journal, j);
    }

    #[test]
    fn json_lines_sink_matches_journal_serialization() {
        let j = sample();
        let mut sink = JsonLinesSink::new(Vec::new());
        j.emit(&mut sink);
        let bytes = sink.into_inner().unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), j.to_json_lines());

        let mut det = JsonLinesSink::deterministic(Vec::new());
        j.emit(&mut det);
        let bytes = det.into_inner().unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), j.fingerprint());
    }

    #[test]
    fn every_emitted_line_parses() {
        let j = sample();
        for line in j.to_json_lines().lines() {
            crate::json::validate(line).unwrap_or_else(|e| panic!("{line}: {e:?}"));
        }
    }
}
