//! # gadt-analysis
//!
//! Program flow analysis and slicing for the GADT reproduction
//! (*Generalized Algorithmic Debugging and Testing*, PLDI 1991).
//!
//! The paper uses program slicing — "a data flow analysis technique"
//! (§1) — to focus bug localization: when the user flags a specific wrong
//! output value, the slicer removes everything irrelevant to it, and the
//! debugger continues on the pruned execution tree (§5.3.3, §7). It also
//! relies on "global data-flow and alias analysis … to detect possible
//! side-effects" (§5.1) as the basis for the program transformations.
//! This crate implements all of that machinery:
//!
//! * [`callgraph`] — static call graph (expression calls included);
//! * [`effects`] — Banning-style MOD/REF and exit-effect summaries;
//! * [`controldep`] — postdominators and control dependence;
//! * [`dataflow`] — reaching definitions and liveness;
//! * [`slice_static`] — Weiser's static interprocedural slicing;
//! * [`dyntrace`] — dynamic traces with resolved data/control dependences
//!   and the dynamic call tree (execution-tree raw material);
//! * [`slice_dynamic`] — dynamic interprocedural slicing (Kamkar), which
//!   produces both relevant statements and the set of dynamic calls to
//!   keep when pruning the execution tree;
//! * [`slice_batch`] — multi-criterion slicing over one shared trace,
//!   fanned out across worker threads and memoized per
//!   `(call, output index)` so repeated debugger queries hit the cache.
//!
//! ## Quickstart: reproduce the paper's Figure 2 slice
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use gadt_pascal::{sema::compile, cfg::lower, pretty::print_slice, testprogs};
//! use gadt_analysis::slice_static::{static_slice, SliceContext, SliceCriterion};
//!
//! let module = compile(testprogs::FIGURE2)?;
//! let cfg = lower(&module);
//! let cx = SliceContext::new(&module, &cfg);
//! let criterion = SliceCriterion::at_program_end(&module, "mul").unwrap();
//! let slice = static_slice(&cx, &criterion);
//! let sliced_source = print_slice(&module.program, &slice.stmts);
//! assert!(sliced_source.contains("mul := x * y"));
//! assert!(!sliced_source.contains("sum"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod callgraph;
pub mod controldep;
pub mod dataflow;
pub mod dyntrace;
pub mod effects;
pub mod slice_batch;
pub mod slice_dynamic;
pub mod slice_static;

pub use callgraph::CallGraph;
pub use dyntrace::{record_trace, record_trace_shared, DynTrace};
pub use effects::Effects;
pub use slice_batch::{dynamic_slice_batch, SliceCache};
pub use slice_dynamic::{close_for_replay, dynamic_slice_final, dynamic_slice_output, DynSlice};
pub use slice_static::{static_slice, SliceContext, SliceCriterion, StaticSlice};
