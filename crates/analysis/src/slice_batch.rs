//! Multi-criterion dynamic slicing over one shared trace.
//!
//! A debugging session slices many times against the *same* recorded
//! [`DynTrace`]: §8's session alone slices twice, and the interaction
//! experiments (E8) slice once per candidate output. Each criterion is
//! independent, so a batch can fan out across worker threads — and
//! because debugger queries revisit criteria (the user asks about the
//! same call output again after the tree is pruned), a memo cache keyed
//! by `(call, output index)` amortizes repeated work to a map lookup.
//!
//! [`dynamic_slice_batch`] is the one-shot entry point;
//! [`SliceCache`] is the session-lifetime form the debugger can hold.

use crate::dyntrace::DynTrace;
use crate::slice_dynamic::{dynamic_slice_output, DynSlice};
use gadt_pascal::sema::Module;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A thread-safe memo cache of dynamic slices over one trace, keyed by
/// `(dynamic call id, output index)`.
///
/// Slices are stored behind [`Arc`], so a cache hit is a map lookup plus
/// a reference-count bump — no recomputation, no deep clone. The cache
/// is criterion-addressed, not trace-addressed: build one cache per
/// recorded trace.
#[derive(Debug, Default)]
pub struct SliceCache {
    slices: Mutex<HashMap<(u64, usize), Arc<DynSlice>>>,
    requests: AtomicU64,
}

impl SliceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SliceCache::default()
    }

    /// Returns the slice for `(call, out_index)`, computing and caching
    /// it on first use.
    pub fn get_or_compute(
        &self,
        module: &Module,
        trace: &DynTrace,
        call: u64,
        out_index: usize,
    ) -> Arc<DynSlice> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(hit) = self
            .slices
            .lock()
            .expect("slice cache poisoned")
            .get(&(call, out_index))
        {
            return Arc::clone(hit);
        }
        // Compute outside the lock: slicing can be expensive, and two
        // threads racing on the same criterion produce identical slices
        // (slicing is pure), so the loser's insert is harmless.
        let computed = Arc::new(dynamic_slice_output(module, trace, call, out_index));
        let mut map = self.slices.lock().expect("slice cache poisoned");
        Arc::clone(map.entry((call, out_index)).or_insert(computed))
    }

    /// Number of distinct criteria cached.
    pub fn len(&self) -> usize {
        self.slices.lock().expect("slice cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total [`SliceCache::get_or_compute`] calls so far. The request
    /// count depends only on how often callers ask, never on thread
    /// interleaving, so it is safe to fold into deterministic journals
    /// (unlike a hit/miss split, which races when two threads compute
    /// the same criterion concurrently).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Records the cache's lifetime statistics on `rec` as the counters
    /// `slice.cache.requests` and `slice.cache.computed` (distinct
    /// criteria actually sliced). Cache *hits* are the difference.
    pub fn observe(&self, rec: &mut gadt_obs::Recorder) {
        rec.add("slice.cache.requests", self.requests());
        rec.add("slice.cache.computed", self.len() as u64);
    }
}

/// Computes dynamic slices for many `(call, output index)` criteria
/// concurrently over one shared trace, on `threads` workers (`0` = all
/// cores).
///
/// Results come back in criterion order, each equal to what a direct
/// [`dynamic_slice_output`] call computes (`tests/parallel_determinism.rs`
/// asserts equality). Duplicate criteria are computed once via a shared
/// [`SliceCache`], which is also returned so a debugger session can keep
/// querying it.
///
/// # Examples
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gadt_pascal::{sema::compile, cfg::lower, testprogs};
/// use gadt_analysis::dyntrace::record_trace;
/// use gadt_analysis::slice_batch::dynamic_slice_batch;
/// let m = compile(testprogs::SQRTEST)?;
/// let cfg = lower(&m);
/// let trace = record_trace(&m, &cfg, [])?;
/// let criteria: Vec<(u64, usize)> = trace
///     .calls
///     .iter()
///     .flat_map(|c| (0..c.outs.len()).map(move |k| (c.id, k)))
///     .collect();
/// let (slices, cache) = dynamic_slice_batch(&m, &trace, &criteria, 0);
/// assert_eq!(slices.len(), criteria.len());
/// assert_eq!(cache.len(), criteria.len());
/// # Ok(())
/// # }
/// ```
pub fn dynamic_slice_batch(
    module: &Module,
    trace: &DynTrace,
    criteria: &[(u64, usize)],
    threads: usize,
) -> (Vec<Arc<DynSlice>>, SliceCache) {
    dynamic_slice_batch_observed(
        module,
        trace,
        criteria,
        threads,
        &mut gadt_obs::Recorder::disabled(),
    )
}

/// [`dynamic_slice_batch`] with instrumentation: wraps the batch in a
/// `slice_batch` span tagged with the criterion count, records one
/// `slice` point event per unique criterion (in deterministic sorted
/// criterion order, tagged with the slice's event/stmt/call sizes), and
/// folds in the cache statistics via [`SliceCache::observe`].
pub fn dynamic_slice_batch_observed(
    module: &Module,
    trace: &DynTrace,
    criteria: &[(u64, usize)],
    threads: usize,
    rec: &mut gadt_obs::Recorder,
) -> (Vec<Arc<DynSlice>>, SliceCache) {
    let span = gadt_obs::span!(rec, "slice_batch", criteria = criteria.len());
    let (slices, cache) = slice_batch_inner(module, trace, criteria, threads, rec);
    cache.observe(rec);
    rec.exit(span);
    (slices, cache)
}

fn slice_batch_inner(
    module: &Module,
    trace: &DynTrace,
    criteria: &[(u64, usize)],
    threads: usize,
    rec: &mut gadt_obs::Recorder,
) -> (Vec<Arc<DynSlice>>, SliceCache) {
    let cache = SliceCache::new();
    // Deduplicate first so each unique criterion is sliced exactly once,
    // however the batch repeats itself.
    let mut unique: Vec<(u64, usize)> = criteria.to_vec();
    unique.sort_unstable();
    unique.dedup();

    let pool = gadt_exec::BatchExecutor::new(threads);
    pool.run(unique.clone(), |_, (call, k)| {
        cache.get_or_compute(module, trace, call, k);
    });
    if rec.is_enabled() {
        for (call, k) in unique {
            let s = cache.get_or_compute(module, trace, call, k);
            gadt_obs::event!(
                rec,
                "slice",
                call = call,
                out = k,
                events = s.events.len(),
                stmts = s.stmts.len(),
                calls = s.calls.len(),
            );
        }
    }

    let slices = criteria
        .iter()
        .map(|&(call, k)| cache.get_or_compute(module, trace, call, k))
        .collect();
    (slices, cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dyntrace::record_trace;
    use gadt_pascal::cfg::lower;
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;

    fn sqrtest_trace() -> (Module, DynTrace) {
        let m = compile(testprogs::SQRTEST).unwrap();
        let cfg = lower(&m);
        let t = record_trace(&m, &cfg, []).unwrap();
        (m, t)
    }

    fn all_criteria(t: &DynTrace) -> Vec<(u64, usize)> {
        t.calls
            .iter()
            .flat_map(|c| (0..c.outs.len()).map(move |k| (c.id, k)))
            .collect()
    }

    #[test]
    fn batch_matches_per_criterion_slicing() {
        let (m, t) = sqrtest_trace();
        let criteria = all_criteria(&t);
        assert!(criteria.len() >= 10, "sqrtest has many sliceable outputs");
        for threads in [1, 2, 8] {
            let (slices, _) = dynamic_slice_batch(&m, &t, &criteria, threads);
            for (slice, &(call, k)) in slices.iter().zip(&criteria) {
                let direct = dynamic_slice_output(&m, &t, call, k);
                assert_eq!(**slice, direct, "threads={threads} call={call} out={k}");
            }
        }
    }

    #[test]
    fn duplicate_criteria_share_one_computation() {
        let (m, t) = sqrtest_trace();
        let call = t.calls[1].id;
        let criteria = vec![(call, 0); 16];
        let (slices, cache) = dynamic_slice_batch(&m, &t, &criteria, 4);
        assert_eq!(slices.len(), 16);
        assert_eq!(cache.len(), 1);
        for s in &slices[1..] {
            assert!(Arc::ptr_eq(&slices[0], s), "duplicates must share the Arc");
        }
    }

    #[test]
    fn cache_hits_return_the_same_slice() {
        let (m, t) = sqrtest_trace();
        let cache = SliceCache::new();
        assert!(cache.is_empty());
        let call = t.calls[1].id;
        let a = cache.get_or_compute(&m, &t, call, 0);
        let b = cache.get_or_compute(&m, &t, call, 0);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn observed_batch_is_thread_count_invariant() {
        let (m, t) = sqrtest_trace();
        let criteria = all_criteria(&t);
        let journal_at = |threads: usize| {
            let mut rec = gadt_obs::Recorder::untimed();
            t.observe(&mut rec);
            dynamic_slice_batch_observed(&m, &t, &criteria, threads, &mut rec);
            rec.finish()
        };
        let one = journal_at(1);
        assert_eq!(one.fingerprint(), journal_at(2).fingerprint());
        assert_eq!(one.fingerprint(), journal_at(8).fingerprint());
        assert_eq!(one.counter("trace.events"), t.events.len() as u64);
        assert_eq!(one.counter("slice.cache.computed"), criteria.len() as u64);
        assert!(one.counter("slice.cache.requests") >= one.counter("slice.cache.computed"));
        assert_eq!(one.events_named("slice").count(), criteria.len());
    }

    #[test]
    fn cache_counts_requests() {
        let (m, t) = sqrtest_trace();
        let cache = SliceCache::new();
        let call = t.calls[1].id;
        cache.get_or_compute(&m, &t, call, 0);
        cache.get_or_compute(&m, &t, call, 0);
        assert_eq!(cache.requests(), 2);
        let mut rec = gadt_obs::Recorder::untimed();
        cache.observe(&mut rec);
        let j = rec.finish();
        assert_eq!(j.counter("slice.cache.requests"), 2);
        assert_eq!(j.counter("slice.cache.computed"), 1);
    }

    #[test]
    fn empty_batch() {
        let (m, t) = sqrtest_trace();
        let (slices, cache) = dynamic_slice_batch(&m, &t, &[], 4);
        assert!(slices.is_empty());
        assert!(cache.is_empty());
    }
}
