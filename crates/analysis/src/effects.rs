//! Side-effect analysis in the style of Banning (the paper's cited basis
//! for detecting "variable side-effects and exit side-effects", §3/§6).
//!
//! For every procedure we compute:
//!
//! * **MOD** — non-local variables the procedure (or anything it calls)
//!   may write *directly* (not through a `var` parameter);
//! * **REF** — non-local variables it may read directly;
//! * **param reads/writes** — which formal parameters the procedure may
//!   read or write, transitively through calls that pass them on by
//!   reference;
//! * **exit effects** — the non-local labels the procedure may jump to
//!   via a global `goto` (directly or through callees).
//!
//! These sets drive the §6 transformations (which non-locals become
//! `in`/`out` parameters, which procedures need exit parameters) and make
//! call instructions' effects available to the static slicer.

use crate::callgraph::CallGraph;
use gadt_pascal::cfg::{CallArg, InstrKind, ProgramCfg, RExpr, Terminator};
use gadt_pascal::sema::{Module, ProcId, VarId};
use std::collections::{BTreeMap, BTreeSet};

/// Side-effect summary of one procedure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcEffects {
    /// Non-local variables possibly written (directly or via callees).
    pub mods: BTreeSet<VarId>,
    /// Non-local variables possibly read.
    pub refs: BTreeSet<VarId>,
    /// Formal parameters (by VarId) possibly read.
    pub param_reads: BTreeSet<VarId>,
    /// Formal parameters possibly written (meaningful for `var`/`out`).
    pub param_writes: BTreeSet<VarId>,
    /// Non-local goto targets: `(owner proc, label)` pairs this procedure
    /// may transfer control to (the paper's *exit side-effects*).
    pub exits: BTreeSet<(ProcId, String)>,
}

/// Side-effect summaries for every procedure.
#[derive(Debug, Clone)]
pub struct Effects {
    per_proc: Vec<ProcEffects>,
}

impl Effects {
    /// The summary of one procedure.
    ///
    /// # Panics
    /// Panics if `p` is out of range.
    pub fn of(&self, p: ProcId) -> &ProcEffects {
        &self.per_proc[p.0 as usize]
    }

    /// Whether `p` has any global side effect the paper's transformation
    /// must remove (variable or exit).
    pub fn has_global_side_effects(&self, p: ProcId) -> bool {
        let e = self.of(p);
        !e.mods.is_empty() || !e.refs.is_empty() || !e.exits.is_empty()
    }

    /// Computes effects for all procedures by fixpoint over the call graph.
    ///
    /// # Examples
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// use gadt_pascal::{sema::compile, cfg::lower};
    /// use gadt_analysis::{callgraph::CallGraph, effects::Effects};
    /// let m = compile(gadt_pascal::testprogs::SECTION6_GLOBALS)?;
    /// let cfg = lower(&m);
    /// let fx = Effects::compute(&m, &cfg, &CallGraph::build(&m, &cfg));
    /// let p = m.proc_by_name("p").unwrap();
    /// assert!(fx.has_global_side_effects(p));
    /// # Ok(())
    /// # }
    /// ```
    pub fn compute(module: &Module, cfg: &ProgramCfg, cg: &CallGraph) -> Self {
        let n = module.procs.len();
        let mut fx: Vec<ProcEffects> = vec![ProcEffects::default(); n];

        // Local (direct) contributions, plus a record of ref-arg flows:
        // (caller, callee, callee_param → caller place var) per call.
        let mut ref_flows: Vec<(ProcId, ProcId, BTreeMap<VarId, VarId>)> = Vec::new();
        for pcfg in &cfg.procs {
            let p = pcfg.proc;
            let mut direct = ProcEffects::default();
            let note_write = |v: VarId, direct: &mut ProcEffects| {
                if module.var(v).owner != p {
                    direct.mods.insert(v);
                } else if module.var(v).is_param() {
                    direct.param_writes.insert(v);
                }
            };
            let note_expr = |e: &RExpr, direct: &mut ProcEffects| {
                let mut uses = Vec::new();
                e.collect_uses(&mut uses);
                for u in uses {
                    if module.var(u).owner != p {
                        direct.refs.insert(u);
                    } else if module.var(u).is_param() {
                        direct.param_reads.insert(u);
                    }
                }
            };
            let note_call_args =
                |callee: ProcId,
                 args: &[CallArg],
                 direct: &mut ProcEffects,
                 flows: &mut Vec<(ProcId, ProcId, BTreeMap<VarId, VarId>)>| {
                    let mut map = BTreeMap::new();
                    for (&param, a) in module.proc(callee).params.iter().zip(args) {
                        match a {
                            CallArg::Value(e) => note_expr(e, direct),
                            CallArg::Ref(place) => {
                                if let Some(ix) = &place.index {
                                    note_expr(ix, direct);
                                }
                                map.insert(param, place.var);
                            }
                        }
                    }
                    if !map.is_empty() {
                        flows.push((p, callee, map));
                    }
                };

            // Walk expressions for nested calls too.
            fn walk_calls(e: &RExpr, f: &mut dyn FnMut(ProcId, &[CallArg])) {
                match e {
                    RExpr::Call { callee, args } => {
                        f(*callee, args);
                        for a in args {
                            match a {
                                CallArg::Value(x) => walk_calls(x, f),
                                CallArg::Ref(pl) => {
                                    if let Some(ix) = &pl.index {
                                        walk_calls(ix, f);
                                    }
                                }
                            }
                        }
                    }
                    RExpr::Index { index, .. } => walk_calls(index, f),
                    RExpr::Intrinsic { arg, .. } => walk_calls(arg, f),
                    RExpr::Unary { operand, .. } => walk_calls(operand, f),
                    RExpr::Binary { lhs, rhs, .. } => {
                        walk_calls(lhs, f);
                        walk_calls(rhs, f);
                    }
                    RExpr::Lit(_) | RExpr::Var(_) => {}
                }
            }

            let mut exprs_with_calls: Vec<RExpr> = Vec::new();
            for (_, b) in pcfg.iter() {
                for ins in &b.instrs {
                    match &ins.kind {
                        InstrKind::Assign { lhs, rhs } => {
                            note_expr(rhs, &mut direct);
                            if let Some(ix) = &lhs.index {
                                note_expr(ix, &mut direct);
                                // Element write also reads the base array
                                // conceptually, but only writes it for
                                // side-effect purposes.
                            }
                            note_write(lhs.var, &mut direct);
                            exprs_with_calls.push(rhs.clone());
                            if let Some(ix) = &lhs.index {
                                exprs_with_calls.push((**ix).clone());
                            }
                        }
                        InstrKind::Call { callee, args } => {
                            note_call_args(*callee, args, &mut direct, &mut ref_flows);
                            for a in args {
                                if let Some(e) = arg_expr(a) {
                                    exprs_with_calls.push(e.clone());
                                }
                            }
                        }
                        InstrKind::Read { target } => {
                            if let Some(ix) = &target.index {
                                note_expr(ix, &mut direct);
                                exprs_with_calls.push((**ix).clone());
                            }
                            note_write(target.var, &mut direct);
                        }
                        InstrKind::Write { args, .. } => {
                            for a in args {
                                note_expr(a, &mut direct);
                                exprs_with_calls.push(a.clone());
                            }
                        }
                    }
                }
                match &b.term {
                    Terminator::Branch { cond, .. } => {
                        note_expr(cond, &mut direct);
                        exprs_with_calls.push(cond.clone());
                    }
                    Terminator::NonLocalGoto { owner, label, .. } => {
                        direct.exits.insert((*owner, label.clone()));
                    }
                    _ => {}
                }
            }
            // Ref args of calls nested in expressions.
            for e in &exprs_with_calls {
                walk_calls(e, &mut |callee, args| {
                    note_call_args(callee, args, &mut direct, &mut ref_flows);
                });
            }
            fx[p.0 as usize] = direct;
        }

        // Fixpoint: propagate callee effects into callers.
        let mut changed = true;
        while changed {
            changed = false;
            for site in cg.sites() {
                let callee_fx = fx[site.callee.0 as usize].clone();
                let caller_fx = &mut fx[site.caller.0 as usize];
                // Non-local variables of the callee that are still
                // non-local (or param) from the caller's perspective.
                for v in &callee_fx.mods {
                    let info = module.var(*v);
                    if info.owner != site.caller {
                        changed |= caller_fx.mods.insert(*v);
                    } else if info.is_param() {
                        changed |= caller_fx.param_writes.insert(*v);
                    }
                }
                for v in &callee_fx.refs {
                    let info = module.var(*v);
                    if info.owner != site.caller {
                        changed |= caller_fx.refs.insert(*v);
                    } else if info.is_param() {
                        changed |= caller_fx.param_reads.insert(*v);
                    }
                }
                // Exit effects propagate until the owner is reached.
                for (owner, label) in &callee_fx.exits {
                    if *owner != site.caller {
                        changed |= caller_fx.exits.insert((*owner, label.clone()));
                    }
                }
            }
            // Ref-parameter flows: callee reading/writing its param means
            // the caller reads/writes the bound place.
            for (caller, callee, map) in &ref_flows {
                let callee_fx = fx[callee.0 as usize].clone();
                let caller_fx = &mut fx[caller.0 as usize];
                for (param, caller_var) in map {
                    let caller_var_info = module.var(*caller_var);
                    if callee_fx.param_writes.contains(param) {
                        if caller_var_info.owner != *caller {
                            changed |= caller_fx.mods.insert(*caller_var);
                        } else if caller_var_info.is_param() {
                            changed |= caller_fx.param_writes.insert(*caller_var);
                        }
                    }
                    if callee_fx.param_reads.contains(param) {
                        if caller_var_info.owner != *caller {
                            changed |= caller_fx.refs.insert(*caller_var);
                        } else if caller_var_info.is_param() {
                            changed |= caller_fx.param_reads.insert(*caller_var);
                        }
                    }
                }
            }
        }

        Effects { per_proc: fx }
    }
}

fn arg_expr(a: &CallArg) -> Option<&RExpr> {
    match a {
        CallArg::Value(e) => Some(e),
        CallArg::Ref(p) => p.index.as_deref(),
    }
}

/// The defs and uses of one instruction *as seen by the caller*, with
/// interprocedural effects folded in via the summaries. Used by the static
/// slicer.
#[derive(Debug, Clone, Default)]
pub struct InstrEffects {
    /// Variables possibly defined.
    pub defs: Vec<VarId>,
    /// Whether the defs are a *strong* (killing) update of a single
    /// scalar variable.
    pub strong: bool,
    /// Variables used.
    pub uses: Vec<VarId>,
}

/// Computes caller-visible defs/uses of an instruction.
pub fn instr_effects(module: &Module, fx: &Effects, kind: &InstrKind) -> InstrEffects {
    let mut out = InstrEffects::default();
    match kind {
        InstrKind::Assign { lhs, rhs } => {
            rhs.collect_uses(&mut out.uses);
            collect_expr_call_effects(module, fx, rhs, &mut out);
            if let Some(ix) = &lhs.index {
                ix.collect_uses(&mut out.uses);
                collect_expr_call_effects(module, fx, ix, &mut out);
                out.defs.push(lhs.var);
                out.strong = false; // weak update of one element
            } else {
                out.defs.push(lhs.var);
                out.strong = true;
            }
        }
        InstrKind::Call { callee, args } => {
            call_effects(module, fx, *callee, args, &mut out);
        }
        InstrKind::Read { target } => {
            if let Some(ix) = &target.index {
                ix.collect_uses(&mut out.uses);
                collect_expr_call_effects(module, fx, ix, &mut out);
                out.defs.push(target.var);
                out.strong = false;
            } else {
                out.defs.push(target.var);
                out.strong = true;
            }
        }
        InstrKind::Write { args, .. } => {
            for a in args {
                a.collect_uses(&mut out.uses);
                collect_expr_call_effects(module, fx, a, &mut out);
            }
        }
    }
    out
}

/// Folds one call's interprocedural defs/uses into `out`.
fn call_effects(
    module: &Module,
    fx: &Effects,
    callee: ProcId,
    args: &[CallArg],
    out: &mut InstrEffects,
) {
    let summary = fx.of(callee);
    for (&param, a) in module.proc(callee).params.iter().zip(args) {
        match a {
            CallArg::Value(e) => {
                // Value args are always evaluated; count their uses.
                e.collect_uses(&mut out.uses);
                collect_expr_call_effects(module, fx, e, out);
            }
            CallArg::Ref(place) => {
                if let Some(ix) = &place.index {
                    ix.collect_uses(&mut out.uses);
                    collect_expr_call_effects(module, fx, ix, out);
                }
                if summary.param_writes.contains(&param) {
                    out.defs.push(place.var);
                }
                if summary.param_reads.contains(&param) {
                    out.uses.push(place.var);
                }
            }
        }
    }
    // Non-local effects visible at this call site.
    for v in &summary.mods {
        out.defs.push(*v);
    }
    for v in &summary.refs {
        out.uses.push(*v);
    }
    out.strong = false;
}

fn collect_expr_call_effects(module: &Module, fx: &Effects, e: &RExpr, out: &mut InstrEffects) {
    match e {
        RExpr::Call { callee, args } => {
            call_effects(module, fx, *callee, args, out);
        }
        RExpr::Index { index, .. } => collect_expr_call_effects(module, fx, index, out),
        RExpr::Intrinsic { arg, .. } => collect_expr_call_effects(module, fx, arg, out),
        RExpr::Unary { operand, .. } => collect_expr_call_effects(module, fx, operand, out),
        RExpr::Binary { lhs, rhs, .. } => {
            collect_expr_call_effects(module, fx, lhs, out);
            collect_expr_call_effects(module, fx, rhs, out);
        }
        RExpr::Lit(_) | RExpr::Var(_) => {}
    }
}

/// Convenience wrapper: computes call graph and effects for a module.
pub fn analyze(module: &Module, cfg: &ProgramCfg) -> (CallGraph, Effects) {
    let cg = CallGraph::build(module, cfg);
    let fx = Effects::compute(module, cfg, &cg);
    (cg, fx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadt_pascal::cfg::lower;
    use gadt_pascal::sema::{compile, MAIN_PROC};
    use gadt_pascal::testprogs;

    fn effects(src: &str) -> (Module, Effects) {
        let m = compile(src).expect("compile");
        let cfg = lower(&m);
        let cg = CallGraph::build(&m, &cfg);
        let fx = Effects::compute(&m, &cfg, &cg);
        (m, fx)
    }

    fn names(m: &Module, set: &BTreeSet<VarId>) -> Vec<String> {
        let mut v: Vec<String> = set.iter().map(|x| m.var(*x).name.clone()).collect();
        v.sort();
        v
    }

    #[test]
    fn section6_globals_mod_ref() {
        let (m, fx) = effects(testprogs::SECTION6_GLOBALS);
        let p = m.proc_by_name("p").unwrap();
        let e = fx.of(p);
        assert_eq!(names(&m, &e.refs), vec!["x"]);
        assert_eq!(names(&m, &e.mods), vec!["z"]);
        assert!(e.param_writes.len() == 1); // writes var param y
        assert!(fx.has_global_side_effects(p));
    }

    #[test]
    fn effects_propagate_through_calls() {
        let (m, fx) = effects(
            "program t; var g: integer;
             procedure inner; begin g := g + 1 end;
             procedure outer; begin inner end;
             begin outer end.",
        );
        let outer = m.proc_by_name("outer").unwrap();
        assert_eq!(names(&m, &fx.of(outer).mods), vec!["g"]);
        assert_eq!(names(&m, &fx.of(outer).refs), vec!["g"]);
    }

    #[test]
    fn propagation_stops_at_owner() {
        let (m, fx) = effects(
            "program t;
             procedure outer;
             var x: integer;
               procedure inner; begin x := 1 end;
             begin inner end;
             begin outer end.",
        );
        let outer = m.proc_by_name("outer").unwrap();
        let inner = m.proc_by_name("inner").unwrap();
        // x is non-local to inner but local to outer.
        assert_eq!(names(&m, &fx.of(inner).mods), vec!["x"]);
        assert!(fx.of(outer).mods.is_empty());
        assert!(!fx.has_global_side_effects(outer));
    }

    #[test]
    fn param_write_through_ref_chain() {
        let (m, fx) = effects(
            "program t; var g: integer;
             procedure bottom(var b: integer); begin b := 1 end;
             procedure middle(var a: integer); begin bottom(a) end;
             begin middle(g) end.",
        );
        let middle = m.proc_by_name("middle").unwrap();
        let bottom = m.proc_by_name("bottom").unwrap();
        assert_eq!(fx.of(bottom).param_writes.len(), 1);
        assert_eq!(fx.of(middle).param_writes.len(), 1);
        // g itself is written only via explicit parameters: not in MOD.
        assert!(fx.of(middle).mods.is_empty());
        assert!(fx.of(MAIN_PROC).mods.is_empty());
    }

    #[test]
    fn ref_arg_binding_a_global_is_a_mod() {
        let (m, fx) = effects(
            "program t; var g: integer;
             procedure w(var b: integer); begin b := 1 end;
             procedure caller; begin w(g) end;
             begin caller end.",
        );
        // caller passes global g by ref to w which writes it → caller MODs g.
        let caller = m.proc_by_name("caller").unwrap();
        assert_eq!(names(&m, &fx.of(caller).mods), vec!["g"]);
    }

    #[test]
    fn exit_effects_detected_and_propagate() {
        let (m, fx) = effects(testprogs::SECTION6_GOTO);
        let q = m.proc_by_name("q").unwrap();
        let p = m.proc_by_name("p").unwrap();
        assert_eq!(fx.of(q).exits.len(), 1);
        let (owner, label) = fx.of(q).exits.iter().next().unwrap();
        assert_eq!(*owner, p);
        assert_eq!(label, "9");
        // p owns the label: the exit effect does not escape p.
        assert!(fx.of(p).exits.is_empty());
    }

    #[test]
    fn recursive_effects_reach_fixpoint() {
        let (m, fx) = effects(
            "program t; var g: integer;
             procedure p(n: integer);
             begin if n > 0 then begin g := g + 1; p(n - 1) end end;
             begin p(3) end.",
        );
        let p = m.proc_by_name("p").unwrap();
        assert_eq!(names(&m, &fx.of(p).mods), vec!["g"]);
        assert!(fx.of(p).param_reads.len() == 1);
    }

    #[test]
    fn sqrtest_is_side_effect_free_at_procedure_level() {
        // Figure 4's program communicates exclusively through parameters:
        // no procedure needs transformation (main writes its own globals).
        let (m, fx) = effects(testprogs::SQRTEST);
        for p in &m.procs {
            if p.id == MAIN_PROC {
                continue;
            }
            assert!(
                !fx.has_global_side_effects(p.id),
                "{} unexpectedly has global side effects",
                p.name
            );
        }
    }

    #[test]
    fn instr_effects_for_call_include_summary() {
        let (m, fx) = effects(
            "program t; var g, x: integer;
             procedure p(a: integer; var b: integer); begin b := a + g end;
             begin p(1, x) end.",
        );
        let cfg = lower(&m);
        let main = cfg.proc(MAIN_PROC);
        let call = &main.blocks[0].instrs[0];
        let eff = instr_effects(&m, &fx, &call.kind);
        let x = m.var_in_scope(MAIN_PROC, "x").unwrap();
        let g = m.var_in_scope(MAIN_PROC, "g").unwrap();
        assert!(eff.defs.contains(&x));
        assert!(eff.uses.contains(&g));
        assert!(!eff.strong);
    }

    #[test]
    fn write_only_out_params_not_read() {
        let (m, fx) = effects(
            "program t; var x: integer;
             procedure p(out z: integer); begin z := 1 end;
             begin p(x) end.",
        );
        let p = m.proc_by_name("p").unwrap();
        assert!(fx.of(p).param_reads.is_empty());
        assert_eq!(fx.of(p).param_writes.len(), 1);
    }
}
