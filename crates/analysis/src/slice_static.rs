//! Static interprocedural program slicing (Weiser 1984).
//!
//! A slice criterion is a program point plus a variable set; the slice is
//! the set of statements that might affect those variables' values at that
//! point. The algorithm is Weiser's relevant-variable iteration on the
//! CFG, with
//!
//! * control dependence feedback (predicates controlling included
//!   statements join the slice, and their uses become relevant);
//! * interprocedural *descend* (a call writing relevant variables demands
//!   a slice of the callee at its exit, and the callee's entry-relevant
//!   variables map back through the argument list);
//! * interprocedural *ascend* (a sliced procedure's entry-relevant
//!   variables induce criteria at every call site, so the slice crosses
//!   procedure boundaries in both directions, as in the paper's §4).
//!
//! All sets grow monotonically, so the global fixpoint terminates.

use crate::callgraph::CallGraph;
use crate::controldep::ProgramControlDeps;
use crate::effects::{instr_effects, Effects};
use gadt_pascal::ast::StmtId;
use gadt_pascal::cfg::{CallArg, InstrKind, ProgramCfg, Terminator};
use gadt_pascal::sema::{Module, ProcId, VarId};
use std::collections::{BTreeMap, BTreeSet};

/// Where a slice criterion is anchored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlicePoint {
    /// Immediately after the given statement.
    AfterStmt(StmtId),
    /// At the procedure's exit.
    ProcExit,
}

/// A static slicing criterion: ⟨point, variables⟩ in one procedure.
#[derive(Debug, Clone)]
pub struct SliceCriterion {
    /// Procedure containing the point.
    pub proc: ProcId,
    /// The point.
    pub point: SlicePoint,
    /// The variables of interest.
    pub vars: BTreeSet<VarId>,
}

impl SliceCriterion {
    /// Criterion "value of global `name` at the end of the program" —
    /// the form used for the paper's Figure 2 example.
    pub fn at_program_end(module: &Module, name: &str) -> Option<SliceCriterion> {
        let v = module.var_in_scope(gadt_pascal::sema::MAIN_PROC, name)?;
        Some(SliceCriterion {
            proc: gadt_pascal::sema::MAIN_PROC,
            point: SlicePoint::ProcExit,
            vars: BTreeSet::from([v]),
        })
    }

    /// Criterion "value of `var` at the exit of `proc`" — the form used
    /// when a user flags a wrong output variable of a procedure (§5.3.3).
    pub fn at_proc_exit(proc: ProcId, vars: impl IntoIterator<Item = VarId>) -> SliceCriterion {
        SliceCriterion {
            proc,
            point: SlicePoint::ProcExit,
            vars: vars.into_iter().collect(),
        }
    }
}

/// The result of static slicing.
#[derive(Debug, Clone, Default)]
pub struct StaticSlice {
    /// Statements in the slice (across all procedures).
    pub stmts: BTreeSet<StmtId>,
    /// Variables relevant at each sliced procedure's entry.
    pub entry_relevant: BTreeMap<ProcId, BTreeSet<VarId>>,
}

impl StaticSlice {
    /// Whether a statement is in the slice.
    pub fn contains(&self, s: StmtId) -> bool {
        self.stmts.contains(&s)
    }

    /// Number of statements in the slice.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }
}

/// Precomputed analysis context shared by slicing queries.
#[derive(Debug, Clone)]
pub struct SliceContext<'m> {
    /// The module being sliced.
    pub module: &'m Module,
    /// Its CFG.
    pub cfg: &'m ProgramCfg,
    /// Call graph.
    pub cg: CallGraph,
    /// Side-effect summaries.
    pub fx: Effects,
    /// Control dependence.
    pub cd: ProgramControlDeps,
}

impl<'m> SliceContext<'m> {
    /// Builds the analysis context for a module.
    pub fn new(module: &'m Module, cfg: &'m ProgramCfg) -> Self {
        let cg = CallGraph::build(module, cfg);
        let fx = Effects::compute(module, cfg, &cg);
        let cd = ProgramControlDeps::compute(module, cfg);
        SliceContext {
            module,
            cfg,
            cg,
            fx,
            cd,
        }
    }
}

/// Per-procedure accumulated demands during the fixpoint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct ProcDemand {
    /// Variables relevant at procedure exit.
    exit_vars: BTreeSet<VarId>,
    /// Variables to inject as relevant immediately after a statement.
    inject_after: BTreeMap<StmtId, BTreeSet<VarId>>,
    /// Statements force-included (e.g. call sites discovered by ascend).
    force_include: BTreeSet<StmtId>,
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct ProcResult {
    stmts: BTreeSet<StmtId>,
    entry_relevant: BTreeSet<VarId>,
}

/// Computes a static slice for `criterion`.
///
/// # Examples
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gadt_pascal::{sema::compile, cfg::lower, testprogs};
/// use gadt_analysis::slice_static::{static_slice, SliceContext, SliceCriterion};
/// let m = compile(testprogs::FIGURE2)?;
/// let cfg = lower(&m);
/// let cx = SliceContext::new(&m, &cfg);
/// let c = SliceCriterion::at_program_end(&m, "mul").unwrap();
/// let slice = static_slice(&cx, &c);
/// assert!(!slice.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn static_slice(cx: &SliceContext<'_>, criterion: &SliceCriterion) -> StaticSlice {
    let n = cx.module.procs.len();
    let mut demands: Vec<ProcDemand> = vec![ProcDemand::default(); n];
    let mut results: Vec<ProcResult> = vec![ProcResult::default(); n];
    let mut demanded: BTreeSet<ProcId> = BTreeSet::new();

    // Seed with the root criterion.
    demanded.insert(criterion.proc);
    match &criterion.point {
        SlicePoint::ProcExit => {
            demands[criterion.proc.0 as usize]
                .exit_vars
                .extend(criterion.vars.iter().copied());
        }
        SlicePoint::AfterStmt(s) => {
            demands[criterion.proc.0 as usize]
                .inject_after
                .entry(*s)
                .or_default()
                .extend(criterion.vars.iter().copied());
        }
    }

    // Global fixpoint.
    loop {
        let mut changed = false;
        for p in demanded.clone() {
            let demand = demands[p.0 as usize].clone();
            let (res, callee_demands) = slice_proc(cx, p, &demand, &results);
            if res != results[p.0 as usize] {
                results[p.0 as usize] = res;
                changed = true;
            }
            // Descend: register demands on callees.
            for (q, vars) in callee_demands {
                let d = &mut demands[q.0 as usize];
                let before = d.exit_vars.len();
                d.exit_vars.extend(vars);
                if d.exit_vars.len() != before || demanded.insert(q) {
                    changed = true;
                }
            }
        }
        // Ascend: entry-relevant variables induce criteria at call sites.
        for p in demanded.clone() {
            let entry_rel = results[p.0 as usize].entry_relevant.clone();
            if entry_rel.is_empty() && results[p.0 as usize].stmts.is_empty() {
                continue;
            }
            for site in cx.cg.sites().iter().filter(|s| s.callee == p) {
                let caller = site.caller;
                // Map entry-relevant callee vars back to caller vars.
                let mapped = map_entry_to_call_site(cx, caller, p, site.stmt, &entry_rel);
                let d = &mut demands[caller.0 as usize];
                let mut local_change = false;
                if !results[p.0 as usize].stmts.is_empty() {
                    local_change |= d.force_include.insert(site.stmt);
                }
                if !mapped.is_empty() {
                    let e = d.inject_after.entry(site.stmt).or_default();
                    // Injected *before* the call conceptually; the slicer
                    // treats inject_after at a call statement as "relevant
                    // just before the call executes" via the call's uses,
                    // so we inject after the *preceding* point by marking
                    // the call's own uses. Simpler: inject at the call and
                    // let the call's backward transfer see them.
                    let before = e.len();
                    e.extend(mapped);
                    local_change |= e.len() != before;
                }
                if local_change {
                    demanded.insert(caller);
                    changed = true;
                }
            }
        }
        if !changed {
            // Input-order preservation: a slice that drops an *earlier*
            // `read` would shift the input stream seen by kept reads
            // (Weiser's executable-slice I/O caveat). Keep every read
            // that can execute before a kept read.
            let mut extra = false;
            let kept: BTreeSet<StmtId> = results
                .iter()
                .flat_map(|r| r.stmts.iter().copied())
                .collect();
            for (proc_idx, read_stmt) in reads_to_preserve(cx, &kept) {
                let d = &mut demands[proc_idx];
                if d.force_include.insert(read_stmt) {
                    demanded.insert(ProcId(proc_idx as u32));
                    extra = true;
                }
            }
            if !extra {
                break;
            }
        }
    }

    let mut out = StaticSlice::default();
    for p in &demanded {
        let r = &results[p.0 as usize];
        out.stmts.extend(r.stmts.iter().copied());
        if !r.entry_relevant.is_empty() || !r.stmts.is_empty() {
            out.entry_relevant.insert(*p, r.entry_relevant.clone());
        }
    }
    out
}

/// Unkept `read` statements that may execute before a kept read and must
/// therefore stay in the slice to preserve input order. Returns
/// `(proc index, stmt)` pairs.
fn reads_to_preserve(cx: &SliceContext<'_>, kept: &BTreeSet<StmtId>) -> Vec<(usize, StmtId)> {
    // All read sites: (proc, block, instr index, stmt, kept?).
    struct ReadSite {
        proc: usize,
        block: u32,
        index: usize,
        stmt: StmtId,
        kept: bool,
    }
    let mut sites = Vec::new();
    for pcfg in &cx.cfg.procs {
        for (bid, b) in pcfg.iter() {
            for (i, ins) in b.instrs.iter().enumerate() {
                if matches!(ins.kind, InstrKind::Read { .. }) {
                    sites.push(ReadSite {
                        proc: pcfg.proc.0 as usize,
                        block: bid.0,
                        index: i,
                        stmt: ins.stmt,
                        kept: kept.contains(&ins.stmt),
                    });
                }
            }
        }
    }
    if !sites.iter().any(|s| s.kept) {
        return Vec::new();
    }
    // Per-proc forward reachability over blocks.
    let reachable_from = |proc: usize, from: u32| -> BTreeSet<u32> {
        let pcfg = &cx.cfg.procs[proc];
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(b) = stack.pop() {
            if !seen.insert(b) {
                continue;
            }
            for s in pcfg.blocks[b as usize].term.successors() {
                stack.push(s.0);
            }
        }
        seen
    };
    // Procs contributing at least one kept statement (reads elsewhere
    // never run in the slice).
    let mut live_procs: BTreeSet<usize> = BTreeSet::new();
    for info in &cx.module.procs {
        let mut any = false;
        for st in cx.module.proc_body(info.id) {
            st.walk(&mut |x| any |= kept.contains(&x.id));
        }
        if any {
            live_procs.insert(info.id.0 as usize);
        }
    }
    let mut out = Vec::new();
    for r in sites.iter().filter(|s| !s.kept) {
        if !live_procs.contains(&r.proc) {
            continue;
        }
        let must_keep = sites.iter().filter(|k| k.kept).any(|k| {
            if k.proc != r.proc {
                // Cross-procedure ordering: keep conservatively.
                true
            } else if k.block == r.block {
                k.index > r.index
            } else {
                reachable_from(r.proc, r.block).contains(&k.block)
            }
        });
        if must_keep {
            out.push((r.proc, r.stmt));
        }
    }
    out
}

/// Maps a callee's entry-relevant variables to caller-side variables at a
/// call site: parameters map through the argument list, visible non-locals
/// map to themselves.
fn map_entry_to_call_site(
    cx: &SliceContext<'_>,
    caller: ProcId,
    callee: ProcId,
    stmt: StmtId,
    entry_rel: &BTreeSet<VarId>,
) -> BTreeSet<VarId> {
    let mut mapped = BTreeSet::new();
    for v in entry_rel {
        let info = cx.module.var(*v);
        if info.owner != callee {
            // A non-local: visible in the caller under the same VarId.
            mapped.insert(*v);
        }
    }
    // Parameters: find the call's argument list(s) — statement-level
    // calls and calls nested inside the statement's expressions.
    let params = &cx.module.proc(callee).params;
    let pcfg = cx.cfg.proc(caller);
    let map_args = |args: &[CallArg], mapped: &mut BTreeSet<VarId>| {
        for (param, arg) in params.iter().zip(args) {
            if !entry_rel.contains(param) {
                continue;
            }
            match arg {
                CallArg::Value(e) => {
                    let mut uses = Vec::new();
                    e.collect_uses(&mut uses);
                    mapped.extend(uses);
                }
                CallArg::Ref(place) => {
                    mapped.insert(place.var);
                    if let Some(ix) = &place.index {
                        let mut uses = Vec::new();
                        ix.collect_uses(&mut uses);
                        mapped.extend(uses);
                    }
                }
            }
        }
    };
    for (_, b) in pcfg.iter() {
        for ins in &b.instrs {
            if ins.stmt != stmt {
                continue;
            }
            if let InstrKind::Call { callee: c, args } = &ins.kind {
                if *c == callee {
                    map_args(args, &mut mapped);
                }
            }
            for_each_expr_call(&ins.kind, &mut |c, args| {
                if c == callee {
                    map_args(args, &mut mapped);
                }
            });
        }
        if let Terminator::Branch { cond, stmt: ts, .. } = &b.term {
            if *ts == stmt {
                walk_rexpr_calls(cond, &mut |c, args| {
                    if c == callee {
                        map_args(args, &mut mapped);
                    }
                });
            }
        }
    }
    mapped
}

/// Visits every function call nested in an instruction's expressions.
fn for_each_expr_call(kind: &InstrKind, f: &mut dyn FnMut(ProcId, &[CallArg])) {
    match kind {
        InstrKind::Assign { lhs, rhs } => {
            walk_rexpr_calls(rhs, f);
            if let Some(ix) = &lhs.index {
                walk_rexpr_calls(ix, f);
            }
        }
        InstrKind::Call { args, .. } => {
            for a in args {
                match a {
                    CallArg::Value(e) => walk_rexpr_calls(e, f),
                    CallArg::Ref(p) => {
                        if let Some(ix) = &p.index {
                            walk_rexpr_calls(ix, f);
                        }
                    }
                }
            }
        }
        InstrKind::Read { target } => {
            if let Some(ix) = &target.index {
                walk_rexpr_calls(ix, f);
            }
        }
        InstrKind::Write { args, .. } => {
            for a in args {
                walk_rexpr_calls(a, f);
            }
        }
    }
}

fn walk_rexpr_calls(e: &gadt_pascal::cfg::RExpr, f: &mut dyn FnMut(ProcId, &[CallArg])) {
    use gadt_pascal::cfg::RExpr as R;
    match e {
        R::Call { callee, args } => {
            f(*callee, args);
            for a in args {
                match a {
                    CallArg::Value(x) => walk_rexpr_calls(x, f),
                    CallArg::Ref(p) => {
                        if let Some(ix) = &p.index {
                            walk_rexpr_calls(ix, f);
                        }
                    }
                }
            }
        }
        R::Index { index, .. } => walk_rexpr_calls(index, f),
        R::Intrinsic { arg, .. } => walk_rexpr_calls(arg, f),
        R::Unary { operand, .. } => walk_rexpr_calls(operand, f),
        R::Binary { lhs, rhs, .. } => {
            walk_rexpr_calls(lhs, f);
            walk_rexpr_calls(rhs, f);
        }
        R::Lit(_) | R::Var(_) => {}
    }
}

/// Slices one procedure given its accumulated demand. Returns the result
/// plus exit-var demands discovered for callees.
fn slice_proc(
    cx: &SliceContext<'_>,
    proc: ProcId,
    demand: &ProcDemand,
    results: &[ProcResult],
) -> (ProcResult, BTreeMap<ProcId, BTreeSet<VarId>>) {
    let pcfg = cx.cfg.proc(proc);
    let nblocks = pcfg.blocks.len();
    let cd = cx.cd.of(proc);

    let mut slice: BTreeSet<StmtId> = demand.force_include.clone();
    let mut callee_demands: BTreeMap<ProcId, BTreeSet<VarId>> = BTreeMap::new();
    // Relevant variables at the entry of each block.
    let mut rel_entry: Vec<BTreeSet<VarId>> = vec![BTreeSet::new(); nblocks];
    let mut entry_relevant: BTreeSet<VarId> = BTreeSet::new();

    // Close slice under control dependence.
    fn include(s: StmtId, slice: &mut BTreeSet<StmtId>, cd: &crate::controldep::ControlDeps) {
        if slice.insert(s) {
            for b in cd.controlling(s).collect::<Vec<_>>() {
                include(b, slice, cd);
            }
        }
    }
    for s in demand.force_include.iter().copied().collect::<Vec<_>>() {
        include(s, &mut slice, cd);
    }

    loop {
        let mut changed = false;
        // Backward pass over blocks (reverse order is a decent heuristic).
        for bi in (0..nblocks).rev() {
            let block = &pcfg.blocks[bi];
            // Relevant after the terminator.
            let mut r: BTreeSet<VarId> = match &block.term {
                Terminator::Return | Terminator::NonLocalGoto { .. } => demand.exit_vars.clone(),
                t => {
                    let mut acc = BTreeSet::new();
                    for s in t.successors() {
                        acc.extend(rel_entry[s.0 as usize].iter().copied());
                    }
                    acc
                }
            };
            // Branch terminator.
            if let Terminator::Branch { cond, stmt, .. } = &block.term {
                if slice.contains(stmt) {
                    let mut uses = Vec::new();
                    cond.collect_uses(&mut uses);
                    r.extend(uses);
                }
            }
            // Instructions, backward.
            for ins in block.instrs.iter().rev() {
                // Criterion/ascend injections take effect after the instr.
                if let Some(vars) = demand.inject_after.get(&ins.stmt) {
                    r.extend(vars.iter().copied());
                }
                let eff = instr_effects(cx.module, &cx.fx, &ins.kind);
                let relevant_defs: Vec<VarId> =
                    eff.defs.iter().copied().filter(|d| r.contains(d)).collect();
                if !relevant_defs.is_empty() || slice.contains(&ins.stmt) {
                    if !relevant_defs.is_empty() {
                        include(ins.stmt, &mut slice, cd);
                    }
                    if eff.strong {
                        for d in &eff.defs {
                            r.remove(d);
                        }
                    }
                    // Refined call handling: demand callee slices and map
                    // entry-relevant variables back precisely.
                    if let InstrKind::Call { callee, args } = &ins.kind {
                        let exit_demand = callee_exit_demand(cx, *callee, args, &relevant_defs);
                        if !exit_demand.is_empty() {
                            callee_demands
                                .entry(*callee)
                                .or_default()
                                .extend(exit_demand.iter().copied());
                        }
                        let callee_entry = &results[callee.0 as usize].entry_relevant;
                        r.extend(map_callee_entry_uses(cx, *callee, args, callee_entry));
                    } else {
                        r.extend(eff.uses.iter().copied());
                    }
                    // Function calls nested in this statement's
                    // expressions: their results feed the included
                    // statement, so demand slices of their bodies too.
                    for_each_expr_call(&ins.kind, &mut |callee, args| {
                        let mut dem: BTreeSet<VarId> = BTreeSet::new();
                        if let Some(rv) = cx.module.proc(callee).result_var {
                            dem.insert(rv);
                        }
                        for (param, arg) in cx.module.proc(callee).params.iter().zip(args) {
                            if matches!(arg, CallArg::Ref(_)) {
                                dem.insert(*param);
                            }
                        }
                        dem.extend(cx.fx.of(callee).mods.iter().copied());
                        if !dem.is_empty() {
                            callee_demands.entry(callee).or_default().extend(dem);
                        }
                    });
                }
            }
            if r != rel_entry[bi] {
                rel_entry[bi] = r;
                changed = true;
            }
        }
        let new_entry = rel_entry[pcfg.entry.0 as usize].clone();
        if new_entry != entry_relevant {
            entry_relevant = new_entry;
            changed = true;
        }
        if !changed {
            break;
        }
    }

    // Unconditional jumps can decide whether relevant statements execute
    // at all; when the procedure contributes to the slice, keep its gotos,
    // their target labels, and the branches controlling the gotos, so the
    // printed slice preserves control flow (conservative, à la Weiser).
    if !slice.is_empty() {
        let body = cx.module.proc_body(proc);
        let mut gotos: Vec<StmtId> = Vec::new();
        let mut labels: Vec<StmtId> = Vec::new();
        for s in body {
            s.walk(&mut |st| match &st.kind {
                gadt_pascal::ast::StmtKind::Goto(_) => gotos.push(st.id),
                gadt_pascal::ast::StmtKind::Labeled { .. } => labels.push(st.id),
                _ => {}
            });
        }
        if !gotos.is_empty() {
            for g in gotos {
                include(g, &mut slice, cd);
            }
            for l in labels {
                slice.insert(l);
            }
        }
    }

    // Entry-relevant: restrict to parameters and non-locals (locals dead
    // at entry carry no information).
    let entry_relevant = entry_relevant
        .into_iter()
        .filter(|v| {
            let info = cx.module.var(*v);
            info.owner != proc || info.is_param()
        })
        .collect();

    (
        ProcResult {
            stmts: slice,
            entry_relevant,
        },
        callee_demands,
    )
}

/// Which variables must be relevant at the callee's exit, given the
/// caller-relevant definitions of this call.
fn callee_exit_demand(
    cx: &SliceContext<'_>,
    callee: ProcId,
    args: &[CallArg],
    relevant_defs: &[VarId],
) -> BTreeSet<VarId> {
    let mut out = BTreeSet::new();
    let params = &cx.module.proc(callee).params;
    for (param, arg) in params.iter().zip(args) {
        if let CallArg::Ref(place) = arg {
            if relevant_defs.contains(&place.var) {
                out.insert(*param);
            }
        }
    }
    if let Some(rv) = cx.module.proc(callee).result_var {
        // Function result is always the point of a function call.
        out.insert(rv);
    }
    // Non-local MODs that are relevant.
    for v in &cx.fx.of(callee).mods {
        if relevant_defs.contains(v) {
            out.insert(*v);
        }
    }
    out
}

/// Maps a callee's entry-relevant set to caller-side uses at this call.
fn map_callee_entry_uses(
    cx: &SliceContext<'_>,
    callee: ProcId,
    args: &[CallArg],
    callee_entry: &BTreeSet<VarId>,
) -> BTreeSet<VarId> {
    let mut out = BTreeSet::new();
    let params = &cx.module.proc(callee).params;
    for (param, arg) in params.iter().zip(args) {
        let wanted = callee_entry.contains(param);
        match arg {
            CallArg::Value(e) => {
                if wanted {
                    let mut uses = Vec::new();
                    e.collect_uses(&mut uses);
                    out.extend(uses);
                }
            }
            CallArg::Ref(place) => {
                if wanted {
                    out.insert(place.var);
                }
                if let Some(ix) = &place.index {
                    let mut uses = Vec::new();
                    ix.collect_uses(&mut uses);
                    out.extend(uses);
                }
            }
        }
    }
    // Visible non-locals relevant at callee entry.
    for v in callee_entry {
        if cx.module.var(*v).owner != callee {
            out.insert(*v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadt_pascal::ast::StmtKind;
    use gadt_pascal::cfg::lower;
    use gadt_pascal::pretty::print_slice;
    use gadt_pascal::sema::{compile, MAIN_PROC};
    use gadt_pascal::testprogs;

    fn slice_on_global(src: &str, name: &str) -> (Module, StaticSlice) {
        let m = compile(src).expect("compile");
        let cfg = lower(&m);
        let cx = SliceContext::new(&m, &cfg);
        let c = SliceCriterion::at_program_end(&m, name).expect("global exists");
        let s = static_slice(&cx, &c);
        (m, s)
    }

    /// Collects the source text of sliced statements for readable asserts.
    fn kept_sources(m: &Module, src: &str, s: &StaticSlice) -> Vec<String> {
        let mut out = Vec::new();
        let mut visit = |st: &gadt_pascal::ast::Stmt| {
            if s.contains(st.id)
                && !matches!(st.kind, StmtKind::Compound(_) | StmtKind::Labeled { .. })
            {
                let text = st.span.text(src).lines().next().unwrap_or("").trim();
                out.push(text.to_string());
            }
        };
        m.program.block.walk_stmts(&mut visit);
        m.program
            .walk_procs(&mut |_, p| p.block.walk_stmts(&mut visit));
        out
    }

    #[test]
    fn figure2_slice_on_mul_matches_paper() {
        let (m, s) = slice_on_global(testprogs::FIGURE2, "mul");
        let kept = kept_sources(&m, testprogs::FIGURE2, &s);
        // Figure 2(b): read(x,y); mul := 0; if x <= 1 …; mul := x * y.
        assert!(kept.iter().any(|t| t.starts_with("read(x, y)")), "{kept:?}");
        assert!(kept.iter().any(|t| t.starts_with("mul := 0")), "{kept:?}");
        assert!(kept.iter().any(|t| t.starts_with("if x <= 1")), "{kept:?}");
        assert!(
            kept.iter().any(|t| t.starts_with("mul := x * y")),
            "{kept:?}"
        );
        // Dropped: sum := 0, sum := x + y, read(z).
        assert!(!kept.iter().any(|t| t.contains("sum")), "{kept:?}");
        assert!(!kept.iter().any(|t| t.starts_with("read(z)")), "{kept:?}");
    }

    #[test]
    fn figure2_slice_on_sum_is_the_complement_core() {
        let (m, s) = slice_on_global(testprogs::FIGURE2, "sum");
        let kept = kept_sources(&m, testprogs::FIGURE2, &s);
        assert!(kept.iter().any(|t| t.starts_with("sum := 0")), "{kept:?}");
        assert!(
            kept.iter().any(|t| t.starts_with("sum := x + y")),
            "{kept:?}"
        );
        assert!(!kept.iter().any(|t| t.starts_with("mul")), "{kept:?}");
    }

    #[test]
    fn sliced_program_reparses_and_preserves_criterion_value() {
        // Differential test: run original and slice on the same input and
        // compare the criterion variable.
        let (m, s) = slice_on_global(testprogs::FIGURE2, "mul");
        let printed = print_slice(&m.program, &s.stmts);
        let m2 = compile(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        for input in [vec![0i64, 9], vec![1, 5], vec![3, 5, 7], vec![10, 2, 4]] {
            let mut i1 = gadt_pascal::interp::Interpreter::new(&m);
            i1.set_input(input.iter().map(|&n| gadt_pascal::value::Value::Int(n)));
            let o1 = i1.run().expect("original runs");
            let mut i2 = gadt_pascal::interp::Interpreter::new(&m2);
            i2.set_input(input.iter().map(|&n| gadt_pascal::value::Value::Int(n)));
            let o2 = i2.run().expect("slice runs");
            assert_eq!(o1.global("mul"), o2.global("mul"), "input {input:?}");
        }
    }

    #[test]
    fn slice_descends_into_procedures() {
        let src = "program t; var a, b, r1, r2: integer;
             procedure f(x: integer; var y: integer); begin y := x * 2 end;
             procedure g(x: integer; var y: integer); begin y := x + 1 end;
             begin
               read(a); read(b);
               f(a, r1);
               g(b, r2);
               writeln(r1, r2)
             end.";
        let (m, s) = slice_on_global(src, "r1");
        let kept = kept_sources(&m, src, &s);
        assert!(kept.iter().any(|t| t.starts_with("f(a, r1)")), "{kept:?}");
        assert!(kept.iter().any(|t| t.starts_with("y := x * 2")), "{kept:?}");
        assert!(kept.iter().any(|t| t.starts_with("read(a)")), "{kept:?}");
        // g and b are irrelevant to r1.
        assert!(!kept.iter().any(|t| t.starts_with("g(b, r2)")), "{kept:?}");
        assert!(
            !kept.iter().any(|t| t.starts_with("y := x + 1")),
            "{kept:?}"
        );
        assert!(!kept.iter().any(|t| t.starts_with("read(b)")), "{kept:?}");
    }

    #[test]
    fn figure5_slice_drops_irrelevant_calls() {
        let (m, s) = slice_on_global(testprogs::FIGURE5, "y");
        let kept = kept_sources(&m, testprogs::FIGURE5, &s);
        assert!(kept.iter().any(|t| t.starts_with("pn(x, y)")), "{kept:?}");
        assert!(kept.iter().any(|t| t.starts_with("x := 6")), "{kept:?}");
        assert!(!kept.iter().any(|t| t.starts_with("p1(u1)")), "{kept:?}");
        assert!(!kept.iter().any(|t| t.starts_with("p2(u2)")), "{kept:?}");
        assert!(!kept.iter().any(|t| t.starts_with("p3(u3)")), "{kept:?}");
    }

    #[test]
    fn criterion_inside_procedure_ascends_to_callers() {
        // Slice on `y` at the exit of pn: x's computation in main must be
        // included via ascend.
        let m = compile(testprogs::FIGURE5).unwrap();
        let cfg = lower(&m);
        let cx = SliceContext::new(&m, &cfg);
        let pn = m.proc_by_name("pn").unwrap();
        let y_param = m.var_in_scope(pn, "y").unwrap();
        let c = SliceCriterion::at_proc_exit(pn, [y_param]);
        let s = static_slice(&cx, &c);
        let kept = kept_sources(&m, testprogs::FIGURE5, &s);
        assert!(kept.iter().any(|t| t.starts_with("y := x * x")), "{kept:?}");
        assert!(kept.iter().any(|t| t.starts_with("x := 6")), "{kept:?}");
        assert!(!kept.iter().any(|t| t.starts_with("u1 := 1")), "{kept:?}");
    }

    #[test]
    fn loops_keep_their_own_updates() {
        let src = "program t; var i, s, junk: integer;
             begin
               s := 0; junk := 0;
               for i := 1 to 5 do begin s := s + i; junk := junk + 2 end;
               writeln(s)
             end.";
        let (m, s) = slice_on_global(src, "s");
        let kept = kept_sources(&m, src, &s);
        assert!(kept.iter().any(|t| t.starts_with("s := 0")), "{kept:?}");
        assert!(
            kept.iter().any(|t| t.starts_with("for i := 1 to 5")),
            "{kept:?}"
        );
        assert!(kept.iter().any(|t| t.starts_with("s := s + i")), "{kept:?}");
        assert!(
            !kept.iter().any(|t| t.starts_with("junk := junk + 2")),
            "{kept:?}"
        );
    }

    #[test]
    fn while_predicate_variables_are_relevant() {
        let src = "program t; var i, n, s: integer;
             begin
               read(n); i := 0; s := 0;
               while i < n do begin s := s + 1; i := i + 1 end;
               writeln(s)
             end.";
        let (m, s) = slice_on_global(src, "s");
        let kept = kept_sources(&m, src, &s);
        // n controls the loop, so read(n) is in the slice.
        assert!(kept.iter().any(|t| t.starts_with("read(n)")), "{kept:?}");
        assert!(kept.iter().any(|t| t.starts_with("i := 0")), "{kept:?}");
    }

    #[test]
    fn function_calls_slice_into_function_bodies() {
        let (m, s) = slice_on_global(testprogs::SQRTEST, "isok");
        // Everything contributing to isok is in the slice, including the
        // buggy decrement body.
        let decrement = m.proc_by_name("decrement").unwrap();
        let dec_stmts: Vec<StmtId> = m.proc_body(decrement).iter().map(|st| st.id).collect();
        assert!(
            dec_stmts.iter().any(|id| s.contains(*id)),
            "decrement body must be in the isok slice"
        );
    }

    #[test]
    fn slice_on_r1_excludes_r2_chain() {
        // Slice on sqrtest's r1 at its exit: comput2/square must be out.
        let m = compile(testprogs::SQRTEST).unwrap();
        let cfg = lower(&m);
        let cx = SliceContext::new(&m, &cfg);
        let sqrtest = m.proc_by_name("sqrtest").unwrap();
        let r1 = m.var_in_scope(sqrtest, "r1").unwrap();
        let c = SliceCriterion::at_proc_exit(sqrtest, [r1]);
        let s = static_slice(&cx, &c);
        let square = m.proc_by_name("square").unwrap();
        let square_in_slice = m.proc_body(square).iter().any(|st| {
            let mut any = false;
            st.walk(&mut |x| any |= s.contains(x.id));
            any
        });
        assert!(!square_in_slice, "square is irrelevant to r1");
        let sum2 = m.proc_by_name("sum2").unwrap();
        let sum2_in_slice = m.proc_body(sum2).iter().any(|st| {
            let mut any = false;
            st.walk(&mut |x| any |= s.contains(x.id));
            any
        });
        assert!(sum2_in_slice, "sum2 computes s2 which feeds r1 via add");
    }

    #[test]
    fn empty_criterion_gives_empty_slice() {
        let m = compile(testprogs::FIGURE2).unwrap();
        let cfg = lower(&m);
        let cx = SliceContext::new(&m, &cfg);
        let c = SliceCriterion::at_proc_exit(MAIN_PROC, []);
        let s = static_slice(&cx, &c);
        assert!(s.is_empty());
    }

    #[test]
    fn misnamed_variable_slice_excludes_mistyped_computation() {
        // §5.3.3: a misnamed variable in an argument causes a should-be
        // relevant computation to be sliced out; the slice on the wrong
        // output still contains the call itself.
        let src = "program t; var a, b, r: integer;
             procedure f(x: integer; var y: integer); begin y := x * 2 end;
             begin
               a := 1; b := 99;
               f(b, r); (* should have been f(a, r) *)
               writeln(r)
             end.";
        let (m, s) = slice_on_global(src, "r");
        let kept = kept_sources(&m, src, &s);
        assert!(kept.iter().any(|t| t.starts_with("f(b, r)")), "{kept:?}");
        assert!(kept.iter().any(|t| t.starts_with("b := 99")), "{kept:?}");
        assert!(!kept.iter().any(|t| t.starts_with("a := 1")), "{kept:?}");
    }

    #[test]
    fn earlier_reads_are_kept_to_preserve_input_order() {
        // Dropping read(a) would make read(b) consume a's input value
        // (Weiser's executable-slice I/O caveat). The slicer must keep it.
        let src = "program t; var a, b: integer;
             begin read(a); read(b); writeln(b) end.";
        let (m, s) = slice_on_global(src, "b");
        let printed = print_slice(&m.program, &s.stmts);
        assert!(printed.contains("read(a)"), "{printed}");
        let sm = compile(&printed).unwrap();
        let run = |mm: &Module| {
            let mut i = gadt_pascal::interp::Interpreter::new(mm);
            i.set_input([
                gadt_pascal::value::Value::Int(7),
                gadt_pascal::value::Value::Int(42),
            ]);
            i.run().unwrap().global("b").cloned()
        };
        assert_eq!(run(&m), run(&sm));
    }

    #[test]
    fn later_reads_can_still_be_dropped() {
        // The paper's Figure 2 relies on dropping read(z), which executes
        // strictly after the kept read — that stays possible.
        let src = "program t; var a, b, z: integer;
             begin read(a); read(b); read(z); writeln(b) end.";
        let (m, s) = slice_on_global(src, "b");
        let printed = print_slice(&m.program, &s.stmts);
        assert!(printed.contains("read(a)"), "{printed}");
        assert!(printed.contains("read(b)"), "{printed}");
        assert!(!printed.contains("read(z)"), "{printed}");
    }

    #[test]
    fn goto_programs_slice_conservatively_and_run() {
        let (m, s) = slice_on_global(testprogs::SECTION6_LOOP_GOTO, "s");
        let printed = print_slice(&m.program, &s.stmts);
        // The slice must re-parse; goto/label structure is preserved when
        // relevant.
        compile(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
    }
}
