//! Dynamic trace recording: the substrate for dynamic interprocedural
//! slicing (Kamkar's method, which the paper's §9 reports as "under
//! implementation" — here it is implemented).
//!
//! A [`DependenceRecorder`] is an interpreter [`Monitor`] that captures
//! every step with resolved dynamic data dependences (use → the event
//! that last defined the used location) and dynamic control dependences
//! (event → the most recent branch instance its statement is statically
//! control-dependent on, or the call event that created its frame).
//! It also records the dynamic call tree — one [`CallRecord`] per
//! invocation with In/Out values — which the `gadt-trace` crate renders
//! as the paper's execution tree.

use crate::controldep::ProgramControlDeps;
use gadt_pascal::ast::StmtId;
use gadt_pascal::cfg::{BlockId, LoopId};
use gadt_pascal::interp::{Event, MemLoc, Monitor};
use gadt_pascal::sema::{Module, ProcId, VarId};
use gadt_pascal::value::Value;
use std::collections::HashMap;

/// One recorded step (instruction or branch instance).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Position in the event list.
    pub idx: usize,
    /// Frame instance that executed the step.
    pub frame: u64,
    /// Procedure.
    pub proc: ProcId,
    /// Block.
    pub block: BlockId,
    /// Source statement.
    pub stmt: StmtId,
    /// Locations defined.
    pub defs: Vec<MemLoc>,
    /// Resolved data dependences: indices of defining events.
    pub data_deps: Vec<usize>,
    /// Used locations that resolved to *no* defining event — they were
    /// never written before this step. In a well-formed run every use has
    /// a reaching definition; an entry here is the dynamic signature of an
    /// omission fault (a deleted or misdirected write), where backward
    /// slices are structurally incomplete and must compensate (see
    /// `slice_dynamic`).
    pub unresolved_uses: Vec<MemLoc>,
    /// Resolved dynamic control dependence.
    pub control_dep: Option<usize>,
    /// For branch instances, the outcome.
    pub branch_taken: Option<bool>,
    /// The dynamic call this event belongs to.
    pub call: u64,
}

/// One dynamic procedure invocation.
#[derive(Debug, Clone)]
pub struct CallRecord {
    /// Dynamic call id (0 = main).
    pub id: u64,
    /// Frame instance id.
    pub frame: u64,
    /// The procedure invoked.
    pub proc: ProcId,
    /// The invoking call (`None` for main).
    pub parent: Option<u64>,
    /// Call statement at the call site, if a call statement.
    pub site_stmt: Option<StmtId>,
    /// Call depth (main = 0).
    pub depth: usize,
    /// Parameter values at entry.
    pub args: Vec<(VarId, Value)>,
    /// Reference-parameter bindings to ultimate memory locations.
    pub bindings: Vec<(VarId, MemLoc)>,
    /// Output values at exit (reference params, function result).
    pub outs: Vec<(VarId, Value)>,
    /// Non-local variables read (first-read values).
    pub nonlocal_reads: Vec<(VarId, Value)>,
    /// Non-local variables written (exit values).
    pub nonlocal_writes: Vec<(VarId, Value)>,
    /// Reference parameters read before written (render as `In`).
    pub ref_params_read: Vec<VarId>,
    /// Index of the first event inside the call (== events recorded before
    /// entry).
    pub enter_idx: usize,
    /// Index one past the last event inside the call.
    pub exit_idx: usize,
    /// Whether the invocation was aborted by a non-local goto.
    pub via_goto: bool,
    /// Children call ids, in execution order.
    pub children: Vec<u64>,
    /// The caller's event that performed this call (parameters' defining
    /// event), if any.
    pub call_event: Option<usize>,
}

/// One dynamic loop instance.
#[derive(Debug, Clone)]
pub struct LoopRecord {
    /// Loop instance id.
    pub instance: u64,
    /// The static loop.
    pub loop_id: LoopId,
    /// The frame executing the loop.
    pub frame: u64,
    /// The call the loop instance belongs to.
    pub call: u64,
    /// Event index range of the instance.
    pub enter_idx: usize,
    /// End of the range (set at exit).
    pub exit_idx: usize,
    /// Total header arrivals.
    pub iterations: u64,
    /// Per-iteration snapshots of loop-assigned variables (iteration 2
    /// onward, plus the exit snapshot).
    pub snapshots: Vec<(u64, Vec<(VarId, Value)>)>,
}

/// A complete dynamic trace.
#[derive(Debug, Clone, Default)]
pub struct DynTrace {
    /// All step events, in execution order.
    pub events: Vec<TraceEvent>,
    /// All invocations, indexed by call id.
    pub calls: Vec<CallRecord>,
    /// All loop instances, indexed by instance id.
    pub loops: Vec<LoopRecord>,
}

impl DynTrace {
    /// The main invocation.
    ///
    /// # Panics
    /// Panics on an empty trace.
    pub fn main_call(&self) -> &CallRecord {
        &self.calls[0]
    }

    /// The record of one call.
    pub fn call(&self, id: u64) -> &CallRecord {
        &self.calls[id as usize]
    }

    /// Finds the last event at or before `at` that defines the location of
    /// variable `var` in the frame of call `call` (looking through
    /// reference-parameter bindings is the caller's responsibility — pass
    /// the resolved location's frame via `frame`).
    pub fn last_def_of(&self, frame: u64, var: VarId, before: usize) -> Option<usize> {
        self.events[..before.min(self.events.len())]
            .iter()
            .rev()
            .find(|e| e.defs.iter().any(|d| d.frame == frame && d.var == var))
            .map(|e| e.idx)
    }

    /// Records this trace's sizes on `rec` as the counters
    /// `trace.events`, `trace.calls` and `trace.loops`, plus one
    /// `trace.runs` tick so merged journals count traced executions.
    pub fn observe(&self, rec: &mut gadt_obs::Recorder) {
        rec.incr("trace.runs");
        rec.add("trace.events", self.events.len() as u64);
        rec.add("trace.calls", self.calls.len() as u64);
        rec.add("trace.loops", self.loops.len() as u64);
    }
}

/// Records a dynamic trace while the interpreter runs.
///
/// # Examples
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gadt_pascal::{sema::compile, cfg::lower, interp::Interpreter};
/// use gadt_analysis::controldep::ProgramControlDeps;
/// use gadt_analysis::dyntrace::DependenceRecorder;
/// let m = compile("program t; var x: integer; begin x := 1; x := x + 1 end.")?;
/// let cfg = lower(&m);
/// let cd = ProgramControlDeps::compute(&m, &cfg);
/// let mut rec = DependenceRecorder::new(&cd);
/// Interpreter::new(&m).run_with(&mut rec)?;
/// let trace = rec.finish();
/// assert_eq!(trace.events.len(), 2);
/// assert_eq!(trace.events[1].data_deps, vec![0]); // x+1 uses x := 1
/// # Ok(())
/// # }
/// ```
pub struct DependenceRecorder<'a> {
    cd: &'a ProgramControlDeps,
    trace: DynTrace,
    /// Last definition per whole location.
    last_def: HashMap<(u64, VarId), WholeAndElems>,
    /// Call stack of (call id).
    call_stack: Vec<u64>,
    /// Per frame: the call event that created it.
    frame_call_event: HashMap<u64, Option<usize>>,
    /// Per frame: last branch event per branch statement.
    frame_branches: HashMap<u64, HashMap<StmtId, usize>>,
    /// The index of the most recent step event (used to attribute
    /// parameter binding at CallEnter).
    last_step: Option<usize>,
    /// Open loop instances: instance id → index in trace.loops.
    open_loops: HashMap<u64, usize>,
}

#[derive(Debug, Clone, Default)]
struct WholeAndElems {
    whole: Option<usize>,
    elems: HashMap<i64, usize>,
}

impl<'a> DependenceRecorder<'a> {
    /// Creates a recorder over precomputed control dependences.
    pub fn new(cd: &'a ProgramControlDeps) -> Self {
        DependenceRecorder {
            cd,
            trace: DynTrace::default(),
            last_def: HashMap::new(),
            call_stack: Vec::new(),
            frame_call_event: HashMap::new(),
            frame_branches: HashMap::new(),
            last_step: None,
            open_loops: HashMap::new(),
        }
    }

    /// Consumes the recorder, returning the trace.
    pub fn finish(self) -> DynTrace {
        self.trace
    }

    fn resolve_use(&self, u: &MemLoc) -> Vec<usize> {
        let Some(slot) = self.last_def.get(&(u.frame, u.var)) else {
            return vec![];
        };
        match u.elem {
            Some(i) => {
                // Element use: the later of the element def and whole def.
                let mut best: Option<usize> = None;
                if let Some(&e) = slot.elems.get(&i) {
                    best = Some(e);
                }
                if let Some(w) = slot.whole {
                    best = Some(best.map_or(w, |b| b.max(w)));
                }
                best.into_iter().collect()
            }
            None => {
                // Whole use (scalar, or whole-array copy): all element defs
                // after the whole def still matter.
                let mut deps: Vec<usize> = slot.elems.values().copied().collect();
                if let Some(w) = slot.whole {
                    deps.push(w);
                }
                deps.sort_unstable();
                deps.dedup();
                deps
            }
        }
    }

    fn register_def(&mut self, d: &MemLoc, idx: usize) {
        let slot = self.last_def.entry((d.frame, d.var)).or_default();
        match d.elem {
            Some(i) => {
                slot.elems.insert(i, idx);
            }
            None => {
                slot.whole = Some(idx);
                slot.elems.clear();
            }
        }
    }

    fn control_parent(&self, frame: u64, proc: ProcId, stmt: StmtId) -> Option<usize> {
        // Most recent branch instance in this frame whose statement
        // statically controls `stmt`; otherwise the frame's call event.
        let controlling: Vec<StmtId> = self.cd.of(proc).controlling(stmt).collect();
        if !controlling.is_empty() {
            if let Some(branches) = self.frame_branches.get(&frame) {
                let best = controlling
                    .iter()
                    .filter_map(|b| branches.get(b).copied())
                    .max();
                if let Some(b) = best {
                    return Some(b);
                }
            }
        }
        self.frame_call_event.get(&frame).copied().flatten()
    }
}

impl Monitor for DependenceRecorder<'_> {
    fn on_event(&mut self, module: &Module, event: &Event<'_>) {
        match event {
            Event::Step {
                frame,
                proc,
                block,
                stmt,
                defs,
                uses,
                branch_taken,
                ..
            } => {
                let idx = self.trace.events.len();
                let mut data_deps: Vec<usize> = Vec::new();
                let mut unresolved_uses: Vec<MemLoc> = Vec::new();
                for u in *uses {
                    let resolved = self.resolve_use(u);
                    if resolved.is_empty() {
                        unresolved_uses.push(*u);
                    }
                    data_deps.extend(resolved);
                }
                data_deps.sort_unstable();
                data_deps.dedup();
                let control_dep = self.control_parent(*frame, *proc, *stmt);
                for d in *defs {
                    self.register_def(d, idx);
                }
                if branch_taken.is_some() {
                    self.frame_branches
                        .entry(*frame)
                        .or_default()
                        .insert(*stmt, idx);
                }
                let call = self.call_stack.last().copied().unwrap_or(0);
                self.trace.events.push(TraceEvent {
                    idx,
                    frame: *frame,
                    proc: *proc,
                    block: *block,
                    stmt: *stmt,
                    defs: defs.to_vec(),
                    data_deps,
                    unresolved_uses,
                    control_dep,
                    branch_taken: *branch_taken,
                    call,
                });
                self.last_step = Some(idx);
            }
            Event::CallEnter {
                call,
                frame,
                proc,
                site_stmt,
                args,
                bindings,
                depth,
            } => {
                let parent = self.call_stack.last().copied();
                if let Some(p) = parent {
                    self.trace.calls[p as usize].children.push(*call);
                }
                let call_event = if *depth == 0 { None } else { self.last_step };
                self.frame_call_event.insert(*frame, call_event);
                // Parameter values are defined "by the call": attribute
                // their definitions to the caller's call step so data flows
                // from argument uses into the callee.
                if let Some(ce) = call_event {
                    let info = module.proc(*proc);
                    for &p in &info.params {
                        self.register_def(
                            &MemLoc {
                                frame: *frame,
                                var: p,
                                elem: None,
                            },
                            ce,
                        );
                    }
                }
                debug_assert_eq!(*call as usize, self.trace.calls.len());
                self.trace.calls.push(CallRecord {
                    id: *call,
                    frame: *frame,
                    proc: *proc,
                    parent,
                    site_stmt: *site_stmt,
                    depth: *depth,
                    args: args.to_vec(),
                    bindings: bindings.to_vec(),
                    outs: Vec::new(),
                    nonlocal_reads: Vec::new(),
                    nonlocal_writes: Vec::new(),
                    ref_params_read: Vec::new(),
                    enter_idx: self.trace.events.len(),
                    exit_idx: usize::MAX,
                    via_goto: false,
                    children: Vec::new(),
                    call_event,
                });
                self.call_stack.push(*call);
            }
            Event::CallExit {
                call,
                outs,
                nonlocal_reads,
                nonlocal_writes,
                param_reads,
                via_goto,
                ..
            } => {
                let rec = &mut self.trace.calls[*call as usize];
                rec.outs = outs.to_vec();
                rec.nonlocal_reads = nonlocal_reads.to_vec();
                rec.nonlocal_writes = nonlocal_writes.to_vec();
                rec.ref_params_read = param_reads.to_vec();
                rec.exit_idx = self.trace.events.len();
                rec.via_goto = *via_goto;
                self.call_stack.pop();
            }
            Event::LoopEnter {
                loop_id,
                frame,
                instance,
            } => {
                let call = self.call_stack.last().copied().unwrap_or(0);
                let pos = self.trace.loops.len();
                self.trace.loops.push(LoopRecord {
                    instance: *instance,
                    loop_id: *loop_id,
                    frame: *frame,
                    call,
                    enter_idx: self.trace.events.len(),
                    exit_idx: usize::MAX,
                    iterations: 1,
                    snapshots: Vec::new(),
                });
                self.open_loops.insert(*instance, pos);
            }
            Event::LoopIter {
                instance,
                iteration,
                vars,
                ..
            } => {
                if let Some(&pos) = self.open_loops.get(instance) {
                    let rec = &mut self.trace.loops[pos];
                    rec.iterations = *iteration;
                    rec.snapshots.push((*iteration, vars.to_vec()));
                }
            }
            Event::LoopExit {
                instance,
                iterations,
                vars,
                ..
            } => {
                if let Some(pos) = self.open_loops.remove(instance) {
                    let rec = &mut self.trace.loops[pos];
                    rec.iterations = *iterations;
                    rec.exit_idx = self.trace.events.len();
                    rec.snapshots.push((*iterations, vars.to_vec()));
                }
            }
        }
    }
}

/// Runs a module once and returns its dynamic trace.
///
/// Convenience wrapper; `input` is pushed before running. Clones the
/// lowering for the run — callers holding an `Arc`ed lowering (oracles,
/// batch harnesses) should use [`record_trace_shared`] instead.
///
/// # Errors
/// Propagates interpreter runtime errors.
pub fn record_trace(
    module: &Module,
    cfg: &gadt_pascal::cfg::ProgramCfg,
    input: impl IntoIterator<Item = Value>,
) -> gadt_pascal::error::Result<DynTrace> {
    record_trace_shared(module, std::sync::Arc::new(cfg.clone()), input)
}

/// [`record_trace`] over an already-shared lowering: no per-run CFG
/// clone.
///
/// # Errors
/// Propagates interpreter runtime errors.
pub fn record_trace_shared(
    module: &Module,
    cfg: std::sync::Arc<gadt_pascal::cfg::ProgramCfg>,
    input: impl IntoIterator<Item = Value>,
) -> gadt_pascal::error::Result<DynTrace> {
    let cd = ProgramControlDeps::compute(module, &cfg);
    let mut rec = DependenceRecorder::new(&cd);
    let mut interp = gadt_pascal::interp::Interpreter::with_shared_cfg(module, cfg);
    interp.set_input(input);
    interp.run_with(&mut rec)?;
    Ok(rec.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadt_pascal::cfg::lower;
    use gadt_pascal::sema::{compile, MAIN_PROC};
    use gadt_pascal::testprogs;

    fn trace_of(src: &str, input: Vec<i64>) -> (Module, DynTrace) {
        let m = compile(src).expect("compile");
        let cfg = lower(&m);
        let t = record_trace(&m, &cfg, input.into_iter().map(Value::Int)).expect("run");
        (m, t)
    }

    #[test]
    fn data_deps_chain() {
        let (_, t) = trace_of(
            "program t; var x, y, z: integer;
             begin x := 1; y := x + 1; z := y * 2 end.",
            vec![],
        );
        assert_eq!(t.events.len(), 3);
        assert_eq!(t.events[1].data_deps, vec![0]);
        assert_eq!(t.events[2].data_deps, vec![1]);
    }

    #[test]
    fn control_deps_on_branches() {
        let (_, t) = trace_of(
            "program t; var x, y: integer;
             begin read(x); if x > 0 then y := 1 else y := 2 end.",
            vec![5],
        );
        // events: read, branch, assign
        assert_eq!(t.events.len(), 3);
        let branch = &t.events[1];
        assert_eq!(branch.branch_taken, Some(true));
        assert_eq!(branch.data_deps, vec![0]);
        let assign = &t.events[2];
        assert_eq!(assign.control_dep, Some(1));
    }

    #[test]
    fn call_records_form_a_tree() {
        let (m, t) = trace_of(testprogs::SQRTEST, vec![]);
        // main + 15 calls (sqrtest, arrsum, computs, comput1, partialsums,
        // sum1, increment, sum2, decrement, add, comput2, square, test) —
        // 13 procedure invocations + main = 14 records.
        assert_eq!(t.calls.len(), 14);
        let main = t.main_call();
        assert_eq!(main.children.len(), 1);
        let sqrtest = t.call(main.children[0]);
        assert_eq!(m.proc(sqrtest.proc).name, "sqrtest");
        assert_eq!(sqrtest.children.len(), 3);
        let names: Vec<&str> = sqrtest
            .children
            .iter()
            .map(|&c| m.proc(t.call(c).proc).name.as_str())
            .collect();
        assert_eq!(names, vec!["arrsum", "computs", "test"]);
    }

    #[test]
    fn call_records_capture_figure7_values() {
        let (m, t) = trace_of(testprogs::SQRTEST, vec![]);
        let find = |name: &str| {
            t.calls
                .iter()
                .find(|c| m.proc(c.proc).name == name)
                .unwrap_or_else(|| panic!("call {name} not found"))
        };
        // arrsum(In [1,2], In 2, Out 3)
        let arrsum = find("arrsum");
        assert_eq!(arrsum.args[0].1.to_string(), "[1,2]");
        assert_eq!(arrsum.args[1].1, Value::Int(2));
        assert_eq!(arrsum.outs[0].1, Value::Int(3));
        // computs(In 3, Out 12, Out 9)
        let computs = find("computs");
        assert_eq!(computs.args[0].1, Value::Int(3));
        assert_eq!(computs.outs[0].1, Value::Int(12));
        assert_eq!(computs.outs[1].1, Value::Int(9));
        // decrement(In 3) = 4
        let dec = find("decrement");
        assert_eq!(dec.args[0].1, Value::Int(3));
        assert_eq!(dec.outs[0].1, Value::Int(4));
        // test(In 12, In 9, Out false)
        let test = find("test");
        assert_eq!(test.args[0].1, Value::Int(12));
        assert_eq!(test.args[1].1, Value::Int(9));
        assert_eq!(test.outs[0].1, Value::Bool(false));
    }

    #[test]
    fn param_defs_link_to_call_event() {
        let (m, t) = trace_of(
            "program t; var a, r: integer;
             procedure p(x: integer; var y: integer); begin y := x * 2 end;
             begin a := 21; p(a, r) end.",
            vec![],
        );
        // events: a := 21 (0), call step (1), y := x*2 (2)
        assert_eq!(t.events.len(), 3);
        let call_step = &t.events[1];
        assert_eq!(call_step.data_deps, vec![0], "call uses a");
        let body = &t.events[2];
        // x's def is the call step; y's target is caller's r.
        assert!(body.data_deps.contains(&1));
        let r = m.var_in_scope(MAIN_PROC, "r").unwrap();
        assert!(body.defs.iter().any(|d| d.var == r));
    }

    #[test]
    fn callee_events_control_depend_on_call() {
        let (_, t) = trace_of(
            "program t; var r: integer;
             procedure p(var y: integer); begin y := 7 end;
             begin p(r) end.",
            vec![],
        );
        // events: call step (0), body assign (1)
        let body = &t.events[1];
        assert_eq!(body.control_dep, Some(0));
    }

    #[test]
    fn array_element_dependences_are_precise() {
        let (_, t) = trace_of(
            "program t; var a: array[1..3] of integer; x: integer;
             begin a[1] := 10; a[2] := 20; x := a[1] end.",
            vec![],
        );
        // x := a[1] depends only on a[1] := 10.
        assert_eq!(t.events[2].data_deps, vec![0]);
    }

    #[test]
    fn whole_array_use_depends_on_all_element_defs() {
        let (_, t) = trace_of(
            "program t; type arr = array[1..2] of integer;
             var a: arr; s: integer;
             procedure p(b: arr; var r: integer); begin r := b[1] + b[2] end;
             begin a[1] := 1; a[2] := 2; p(a, s) end.",
            vec![],
        );
        // The call step uses whole `a` → both element defs.
        let call_step = t
            .events
            .iter()
            .find(|e| !e.data_deps.is_empty() && e.defs.is_empty())
            .expect("call step");
        assert_eq!(call_step.data_deps, vec![0, 1]);
    }

    #[test]
    fn loop_records_snapshot_iterations() {
        let (_, t) = trace_of(
            "program t; var i, s: integer;
             begin s := 0; for i := 1 to 3 do s := s + i end.",
            vec![],
        );
        assert_eq!(t.loops.len(), 1);
        let l = &t.loops[0];
        // 3 body iterations + final header arrival = 4 arrivals.
        assert_eq!(l.iterations, 4);
        assert!(l.exit_idx > l.enter_idx);
        assert!(!l.snapshots.is_empty());
    }

    #[test]
    fn last_def_lookup() {
        let (m, t) = trace_of(
            "program t; var x: integer; begin x := 1; x := 2 end.",
            vec![],
        );
        let x = m.var_in_scope(MAIN_PROC, "x").unwrap();
        let frame = t.events[0].frame;
        assert_eq!(t.last_def_of(frame, x, 1), Some(0));
        assert_eq!(t.last_def_of(frame, x, 2), Some(1));
        assert_eq!(t.last_def_of(frame, x, 0), None);
    }

    #[test]
    fn function_result_flows_to_use_site() {
        let (_, t) = trace_of(
            "program t; var r: integer;
             function f(x: integer): integer; begin f := x + 1 end;
             begin r := f(41) end.",
            vec![],
        );
        // events: call step (0), f := x+1 (1), r := … (2)
        assert_eq!(t.events.len(), 3);
        let assign = &t.events[2];
        assert!(assign.data_deps.contains(&1), "{:?}", assign.data_deps);
    }
}
