//! Dynamic interprocedural slicing (after Kamkar), over a recorded
//! [`DynTrace`].
//!
//! The debugger activates this when the user points at a *specific wrong
//! output variable* of a procedure invocation (§5.3.3, §7): the slice is
//! the backward closure over dynamic data and control dependences from
//! that value's defining event. The result identifies both the relevant
//! statements (for display) and the relevant dynamic calls (for pruning
//! the execution tree into the "corresponding execution tree" of §7).

use crate::dyntrace::{CallRecord, DynTrace};
use gadt_pascal::ast::{ParamMode, StmtId};
use gadt_pascal::interp::MemLoc;
use gadt_pascal::sema::{Module, VarId};
use std::collections::{BTreeSet, HashMap};

/// A dynamic slicing criterion: one output value of one dynamic call.
#[derive(Debug, Clone)]
pub struct DynCriterion {
    /// The dynamic call whose output is wrong.
    pub call: u64,
    /// The variable (a `var`/`out` parameter, the function result, or a
    /// written non-local) whose value at the call's exit is wrong.
    pub var: VarId,
}

impl DynCriterion {
    /// Criterion for the `index`-th output of a call (0-based over the
    /// call's `outs` list: reference parameters in declaration order, then
    /// the function result).
    pub fn output(trace: &DynTrace, call: u64, index: usize) -> Option<DynCriterion> {
        let rec = trace.call(call);
        rec.outs
            .get(index)
            .map(|(v, _)| DynCriterion { call, var: *v })
    }
}

/// The result of dynamic slicing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DynSlice {
    /// Relevant event indices.
    pub events: BTreeSet<usize>,
    /// Source statements of relevant events.
    pub stmts: BTreeSet<StmtId>,
    /// Dynamic calls containing at least one relevant event, plus all
    /// their ancestors (so the pruned execution tree stays connected).
    pub calls: BTreeSet<u64>,
    /// Whether the backward closure is *complete*: the criterion value had
    /// a defining event and every use traversed had a reaching definition.
    /// An incomplete closure is the signature of an omission fault (a
    /// deleted or misdirected write). Such slices are *repaired* before
    /// being returned: every call that could have written the undefined
    /// location — the call owning its frame, and every call that received
    /// it by reference — is kept (see `repair_omissions`), so pruning on
    /// the slice remains sound even for faults of omission.
    pub complete: bool,
}

/// Size accounting for one dynamic slice — how much of the traced
/// execution the criterion actually depends on. Campaign reports use this
/// to quantify pruning (mean slice size vs. trace size).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SliceStats {
    /// Relevant trace events.
    pub events: usize,
    /// Distinct source statements among them.
    pub stmts: usize,
    /// Dynamic calls kept (including ancestors for connectivity).
    pub calls: usize,
}

impl DynSlice {
    /// Whether a dynamic call is relevant.
    pub fn keeps_call(&self, id: u64) -> bool {
        self.calls.contains(&id)
    }

    /// Size accounting for this slice.
    pub fn stats(&self) -> SliceStats {
        SliceStats {
            events: self.events.len(),
            stmts: self.stmts.len(),
            calls: self.calls.len(),
        }
    }
}

/// Computes the backward dynamic slice for `criterion`.
///
/// # Examples
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gadt_pascal::{sema::compile, cfg::lower, testprogs};
/// use gadt_analysis::dyntrace::record_trace;
/// use gadt_analysis::slice_dynamic::dynamic_slice_output;
/// let m = compile(testprogs::SQRTEST)?;
/// let cfg = lower(&m);
/// let trace = record_trace(&m, &cfg, [])?;
/// let computs = trace.calls.iter()
///     .find(|c| m.proc(c.proc).name == "computs").unwrap();
/// // Slice on computs' first output (r1), as in the paper's §8 step 2.
/// let slice = dynamic_slice_output(&m, &trace, computs.id, 0);
/// assert!(!slice.events.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn dynamic_slice(module: &Module, trace: &DynTrace, criterion: &DynCriterion) -> DynSlice {
    let rec = trace.call(criterion.call);
    let seed = criterion_def_event(module, trace, rec, criterion.var);

    match seed {
        Some(seed_event) => slice_from_seed(trace, seed_event, rec),
        None => {
            // The output was never defined during the call (it still has
            // its initial value): the write that should have defined it is
            // exactly what is missing. Keep every candidate writer.
            let mut slice = DynSlice::default();
            keep_ancestors(trace, criterion.call, &mut slice);
            let loc = rec
                .bindings
                .iter()
                .find(|(p, _)| *p == criterion.var)
                .map(|(_, l)| *l)
                .unwrap_or(MemLoc {
                    frame: rec.frame,
                    var: criterion.var,
                    elem: None,
                });
            repair_omissions(trace, &[loc], &mut slice);
            slice
        }
    }
}

/// Compensates for omission faults: for each location that was used (or
/// demanded as a criterion) without ever being defined, keeps every call
/// that *could have* written it — the call owning the location's frame,
/// and every call that received the location through a reference-parameter
/// binding. After the GADT transformation all data flows through explicit
/// parameters (no non-local access), so these are exactly the units a
/// deleted or misdirected write could hide in; keeping them makes pruning
/// on an incomplete slice sound.
fn repair_omissions(trace: &DynTrace, missing: &[MemLoc], slice: &mut DynSlice) {
    for loc in missing {
        for c in &trace.calls {
            let owns = c.frame == loc.frame;
            let bound = c.bindings.iter().any(|(_, b)| {
                b.frame == loc.frame
                    && b.var == loc.var
                    && (b.elem == loc.elem || b.elem.is_none() || loc.elem.is_none())
            });
            if owns || bound {
                keep_ancestors(trace, c.id, slice);
            }
        }
    }
}

fn keep_ancestors(trace: &DynTrace, mut call: u64, slice: &mut DynSlice) {
    loop {
        if !slice.calls.insert(call) {
            return;
        }
        match trace.call(call).parent {
            Some(p) => call = p,
            None => return,
        }
    }
}

/// Finds the event that defines the criterion variable's value observed at
/// the call's exit, for result variables and written non-locals. Reference
/// parameters are resolved via bindings in [`dynamic_slice_output`].
fn criterion_def_event(
    module: &Module,
    trace: &DynTrace,
    rec: &CallRecord,
    var: VarId,
) -> Option<usize> {
    let info = module.var(var);
    let range = rec.enter_idx..rec.exit_idx.min(trace.events.len());
    match info.kind {
        gadt_pascal::sema::VarKind::Result => trace.events[range]
            .iter()
            .rev()
            .find(|e| e.defs.iter().any(|d| d.frame == rec.frame && d.var == var))
            .map(|e| e.idx),
        _ => trace.events[range]
            .iter()
            .rev()
            .find(|e| e.defs.iter().any(|d| d.var == var))
            .map(|e| e.idx),
    }
}

/// Like [`dynamic_slice`] but resolves the criterion variable's *binding*
/// via the recorded call: for a reference-parameter output, the defining
/// events are those that wrote the bound caller-side location during the
/// call's dynamic extent. This is the precise entry point the debugger
/// uses for §5.3.3's "error on output variable k".
pub fn dynamic_slice_output(
    module: &Module,
    trace: &DynTrace,
    call: u64,
    out_index: usize,
) -> DynSlice {
    let rec = trace.call(call);
    let Some((var, _)) = rec.outs.get(out_index) else {
        return DynSlice::default();
    };
    let info = module.var(*var);
    let own_loc = MemLoc {
        frame: rec.frame,
        var: *var,
        elem: None,
    };
    let (seed, criterion_loc) = match info.kind {
        gadt_pascal::sema::VarKind::Param {
            mode: ParamMode::Var | ParamMode::Out,
            ..
        } => {
            // Resolve the parameter's binding and find the last write to
            // that location inside the call's extent.
            match rec.bindings.iter().find(|(p, _)| p == var) {
                Some((_, loc)) => {
                    let range = rec.enter_idx..rec.exit_idx.min(trace.events.len());
                    let seed = trace.events[range]
                        .iter()
                        .rev()
                        .find(|e| {
                            e.defs.iter().any(|d| {
                                d.frame == loc.frame
                                    && d.var == loc.var
                                    && (d.elem == loc.elem
                                        || d.elem.is_none()
                                        || loc.elem.is_none())
                            })
                        })
                        .map(|e| e.idx);
                    (seed, *loc)
                }
                None => (None, own_loc),
            }
        }
        _ => (criterion_def_event(module, trace, rec, *var), own_loc),
    };
    match seed {
        Some(seed_event) => slice_from_seed(trace, seed_event, rec),
        None => {
            // The criterion output was never written — an omission fault
            // at the criterion itself. Keep every candidate writer of the
            // bound location so the faulty unit survives pruning.
            let mut s = DynSlice::default();
            keep_ancestors(trace, call, &mut s);
            repair_omissions(trace, &[criterion_loc], &mut s);
            s
        }
    }
}

/// Slices from the *final* value of a program-level variable: the
/// criterion is the last event (anywhere in the run) that wrote the
/// variable's program-level storage location. This is the differential
/// fuzzing harness's entry point — the final value of each global is a
/// machine-checkable slicing criterion with a replay oracle (the slice,
/// re-run on the same input, must reproduce the value; after Ricciotti
/// et al.), with no user in the loop.
///
/// Returns `None` when the variable does not exist at program level or
/// was never written during the run (its final value is its
/// zero-initialization, so the empty slice trivially replays).
pub fn dynamic_slice_final(module: &Module, trace: &DynTrace, name: &str) -> Option<DynSlice> {
    let var = module.var_in_scope(gadt_pascal::sema::MAIN_PROC, name)?;
    let rec = trace.main_call();
    let main_frame = rec.frame;
    let seed = trace
        .events
        .iter()
        .rev()
        .find(|e| {
            e.defs
                .iter()
                .any(|d| d.frame == main_frame && d.var == var && d.elem.is_none())
        })
        .map(|e| e.idx)?;
    Some(slice_from_seed(trace, seed, rec))
}

/// Termination-sensitive replay closure (after Ricciotti et al.'s
/// soundness criterion: a slice must *replay* to the criterion value).
///
/// A backward dynamic slice keeps exactly the events the criterion
/// value depends on — which is correct for fault localization but not
/// for replay: printing the slice keeps whole *static* statements, and
/// re-running executes every kept statement each time control reaches
/// it. Two gaps open up:
///
/// * **termination**: a kept loop re-runs with its original exit
///   condition, but the statements that only drove the exit decision
///   (e.g. a fuel decrement) were sliced away — the replay diverges or
///   never terminates;
/// * **instance mismatch**: a kept statement re-executes in iterations
///   whose input-defining events were sliced away, so the replayed
///   instance reads values produced by different writes than in the
///   original run.
///
/// The closure fixes both by closing over *static* statements: while
/// any event of a kept statement has a data/control dependence on an
/// event of an unkept statement, that statement joins the slice. Two
/// structural closures ride along, because the printed slice re-emits
/// syntax that dynamic dependences alone do not reach:
///
/// * every loop/branch statement *enclosing* a kept statement — the
///   printed slice re-executes its condition even when the kept
///   statement's only kept instance ran unconditionally (e.g. the
///   first iteration of a `repeat` body has no control dependence on
///   the `until` condition, yet the replay still evaluates it);
/// * every call-site statement on the call chain of a kept event —
///   without the call, the replay never reaches the kept statement;
/// * every `goto` and labeled statement — a fired goto steers control
///   (e.g. exits a `for` early, fixing the control variable's final
///   value) yet defines nothing, so no dependence ever reaches it. Its
///   guards join the closure through the structural rule, and guards
///   replay with their original values, so gotos that never fired in
///   the recorded run stay dormant in the replay too.
///
/// The result — a superset of the input slice — executes, under replay,
/// exactly the same instance sequence with the same values for every
/// kept statement, so the criterion value is reproduced.
pub fn close_for_replay(module: &Module, trace: &DynTrace, slice: &mut DynSlice) {
    let (parents, jumps) = control_info(&module.program);
    slice.stmts.extend(jumps);
    let mut processed = vec![false; trace.events.len()];
    loop {
        let mut changed = false;
        for s in slice.stmts.clone() {
            let mut cur = s;
            while let Some(&p) = parents.get(&cur) {
                if !slice.stmts.insert(p) {
                    break;
                }
                changed = true;
                cur = p;
            }
        }
        for e in &trace.events {
            if processed[e.idx] || !slice.stmts.contains(&e.stmt) {
                continue;
            }
            processed[e.idx] = true;
            changed = true;
            slice.events.insert(e.idx);
            for &d in &e.data_deps {
                slice.stmts.insert(trace.events[d].stmt);
            }
            if let Some(c) = e.control_dep {
                slice.stmts.insert(trace.events[c].stmt);
            }
            if !e.unresolved_uses.is_empty() {
                slice.complete = false;
            }
            let mut call = e.call;
            loop {
                let rec = trace.call(call);
                if let Some(site) = rec.site_stmt {
                    slice.stmts.insert(site);
                }
                match rec.parent {
                    Some(p) => call = p,
                    None => break,
                }
            }
        }
        if !changed {
            break;
        }
    }
    for e in slice.events.clone() {
        keep_ancestors(trace, trace.events[e].call, slice);
    }
}

/// Walks the program once, producing (a) a map from each statement to its
/// nearest enclosing control statement (loop, `if`, or `case`) within the
/// same body — compound and labeled wrappers are transparent, they do not
/// gate execution — and (b) every `goto` statement and `label:` wrapper.
fn control_info(program: &gadt_pascal::ast::Program) -> (HashMap<StmtId, StmtId>, Vec<StmtId>) {
    use gadt_pascal::ast::{Block, Stmt, StmtKind};
    fn visit(
        s: &Stmt,
        enclosing: Option<StmtId>,
        map: &mut HashMap<StmtId, StmtId>,
        jumps: &mut Vec<StmtId>,
    ) {
        if let Some(p) = enclosing {
            map.insert(s.id, p);
        }
        match &s.kind {
            StmtKind::Compound(ss) => {
                for c in ss {
                    visit(c, enclosing, map, jumps);
                }
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                visit(then_branch, Some(s.id), map, jumps);
                if let Some(e) = else_branch {
                    visit(e, Some(s.id), map, jumps);
                }
            }
            StmtKind::Case { arms, else_arm, .. } => {
                for a in arms {
                    visit(&a.stmt, Some(s.id), map, jumps);
                }
                if let Some(e) = else_arm {
                    visit(e, Some(s.id), map, jumps);
                }
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                visit(body, Some(s.id), map, jumps);
            }
            StmtKind::Repeat { body, .. } => {
                for c in body {
                    visit(c, Some(s.id), map, jumps);
                }
            }
            StmtKind::Labeled { stmt, .. } => {
                jumps.push(s.id);
                visit(stmt, enclosing, map, jumps);
            }
            StmtKind::Goto(_) => jumps.push(s.id),
            _ => {}
        }
    }
    fn visit_block(b: &Block, map: &mut HashMap<StmtId, StmtId>, jumps: &mut Vec<StmtId>) {
        for p in &b.procs {
            visit_block(&p.block, map, jumps);
        }
        for s in &b.body {
            visit(s, None, map, jumps);
        }
    }
    let mut map = HashMap::new();
    let mut jumps = Vec::new();
    visit_block(&program.block, &mut map, &mut jumps);
    (map, jumps)
}

fn slice_from_seed(trace: &DynTrace, seed: usize, rec: &CallRecord) -> DynSlice {
    let mut slice = DynSlice {
        complete: true,
        ..DynSlice::default()
    };
    let mut missing: Vec<MemLoc> = Vec::new();
    let mut work = vec![seed];
    while let Some(e) = work.pop() {
        if !slice.events.insert(e) {
            continue;
        }
        let ev = &trace.events[e];
        if !ev.unresolved_uses.is_empty() {
            slice.complete = false;
            missing.extend(ev.unresolved_uses.iter().copied());
        }
        slice.stmts.insert(ev.stmt);
        for &d in &ev.data_deps {
            if !slice.events.contains(&d) {
                work.push(d);
            }
        }
        if let Some(c) = ev.control_dep {
            if !slice.events.contains(&c) {
                work.push(c);
            }
        }
    }
    for e in slice.events.clone() {
        keep_ancestors(trace, trace.events[e].call, &mut slice);
    }
    keep_ancestors(trace, rec.id, &mut slice);
    repair_omissions(trace, &missing, &mut slice);
    slice
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dyntrace::record_trace;
    use gadt_pascal::cfg::lower;
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;

    fn sqrtest_trace() -> (Module, DynTrace) {
        let m = compile(testprogs::SQRTEST).expect("compile");
        let cfg = lower(&m);
        let t = record_trace(&m, &cfg, []).expect("run");
        (m, t)
    }

    fn call_named(m: &Module, t: &DynTrace, name: &str) -> u64 {
        t.calls
            .iter()
            .find(|c| m.proc(c.proc).name == name)
            .unwrap_or_else(|| panic!("call {name} not found"))
            .id
    }

    fn kept_names(m: &Module, t: &DynTrace, s: &DynSlice) -> Vec<String> {
        t.calls
            .iter()
            .filter(|c| s.keeps_call(c.id))
            .map(|c| m.proc(c.proc).name.clone())
            .collect()
    }

    #[test]
    fn figure8_slice_on_computs_first_output() {
        // §8 step 2: slice on computs' first output (r1 = 12) keeps the
        // comput1 subtree and drops comput2/square (Figure 8).
        let (m, t) = sqrtest_trace();
        let computs = call_named(&m, &t, "computs");
        let s = dynamic_slice_output(&m, &t, computs, 0);
        let kept = kept_names(&m, &t, &s);
        assert!(kept.contains(&"computs".to_string()), "{kept:?}");
        assert!(kept.contains(&"comput1".to_string()), "{kept:?}");
        assert!(kept.contains(&"partialsums".to_string()), "{kept:?}");
        assert!(kept.contains(&"sum1".to_string()), "{kept:?}");
        assert!(kept.contains(&"sum2".to_string()), "{kept:?}");
        assert!(kept.contains(&"increment".to_string()), "{kept:?}");
        assert!(kept.contains(&"decrement".to_string()), "{kept:?}");
        assert!(kept.contains(&"add".to_string()), "{kept:?}");
        assert!(!kept.contains(&"comput2".to_string()), "{kept:?}");
        assert!(!kept.contains(&"square".to_string()), "{kept:?}");
        assert!(!kept.contains(&"test".to_string()), "{kept:?}");
    }

    #[test]
    fn figure9_slice_on_partialsums_second_output() {
        // §8 step 4: slice on partialsums' second output (s2 = 6) keeps
        // sum2 → decrement and drops sum1/increment (Figure 9).
        let (m, t) = sqrtest_trace();
        let partialsums = call_named(&m, &t, "partialsums");
        let s = dynamic_slice_output(&m, &t, partialsums, 1);
        let kept = kept_names(&m, &t, &s);
        assert!(kept.contains(&"partialsums".to_string()), "{kept:?}");
        assert!(kept.contains(&"sum2".to_string()), "{kept:?}");
        assert!(kept.contains(&"decrement".to_string()), "{kept:?}");
        assert!(!kept.contains(&"sum1".to_string()), "{kept:?}");
        assert!(!kept.contains(&"increment".to_string()), "{kept:?}");
        assert!(!kept.contains(&"add".to_string()), "{kept:?}");
    }

    #[test]
    fn slice_on_first_output_of_partialsums_keeps_sum1() {
        let (m, t) = sqrtest_trace();
        let partialsums = call_named(&m, &t, "partialsums");
        let s = dynamic_slice_output(&m, &t, partialsums, 0);
        let kept = kept_names(&m, &t, &s);
        assert!(kept.contains(&"sum1".to_string()), "{kept:?}");
        assert!(kept.contains(&"increment".to_string()), "{kept:?}");
        assert!(!kept.contains(&"sum2".to_string()), "{kept:?}");
        assert!(!kept.contains(&"decrement".to_string()), "{kept:?}");
    }

    #[test]
    fn function_result_criterion() {
        let (m, t) = sqrtest_trace();
        let dec = call_named(&m, &t, "decrement");
        let s = dynamic_slice_output(&m, &t, dec, 0);
        let kept = kept_names(&m, &t, &s);
        assert!(kept.contains(&"decrement".to_string()), "{kept:?}");
        // arrsum computed the value 3 that feeds decrement's argument.
        assert!(kept.contains(&"arrsum".to_string()), "{kept:?}");
        assert!(!kept.contains(&"increment".to_string()), "{kept:?}");
    }

    #[test]
    fn figure5_dynamic_slice_drops_irrelevant_procs() {
        // §7: p1..p3 execute before pn but are irrelevant to y.
        let m = compile(testprogs::FIGURE5).unwrap();
        let cfg = lower(&m);
        let t = record_trace(&m, &cfg, []).unwrap();
        let pn = call_named(&m, &t, "pn");
        let s = dynamic_slice_output(&m, &t, pn, 0);
        let kept = kept_names(&m, &t, &s);
        assert!(kept.contains(&"pn".to_string()), "{kept:?}");
        assert!(!kept.contains(&"p1".to_string()), "{kept:?}");
        assert!(!kept.contains(&"p2".to_string()), "{kept:?}");
        assert!(!kept.contains(&"p3".to_string()), "{kept:?}");
    }

    #[test]
    fn slice_includes_control_dependences() {
        let m = compile(
            "program t; var x, y: integer;
             procedure p(c: integer; var r: integer);
             begin if c > 0 then r := 1 else r := 2 end;
             begin x := 5; p(x, y) end.",
        )
        .unwrap();
        let cfg = lower(&m);
        let t = record_trace(&m, &cfg, []).unwrap();
        let p = call_named(&m, &t, "p");
        let s = dynamic_slice_output(&m, &t, p, 0);
        // The branch and x := 5 must be in the slice.
        let branch_in = t
            .events
            .iter()
            .any(|e| e.branch_taken.is_some() && s.events.contains(&e.idx));
        assert!(branch_in, "branch instance must be in the slice");
        assert!(s.events.contains(&0), "x := 5 must be in the slice");
    }

    #[test]
    fn loop_carried_dependences_traced() {
        let m = compile(
            "program t; var i, s: integer;
             procedure acc(n: integer; var r: integer);
             var j: integer;
             begin r := 0; for j := 1 to n do r := r + j end;
             begin acc(3, s) end.",
        )
        .unwrap();
        let cfg = lower(&m);
        let t = record_trace(&m, &cfg, []).unwrap();
        let acc = call_named(&m, &t, "acc");
        let s = dynamic_slice_output(&m, &t, acc, 0);
        // All loop iterations' adds are in the slice.
        let add_events = t
            .events
            .iter()
            .filter(|e| s.events.contains(&e.idx) && !e.defs.is_empty())
            .count();
        assert!(add_events >= 4, "r := 0 plus three r := r + j updates");
    }

    #[test]
    fn criterion_on_never_written_output_keeps_only_spine() {
        let m = compile(
            "program t; var x: integer;
             procedure p(var y: integer); begin end;
             begin p(x) end.",
        )
        .unwrap();
        let cfg = lower(&m);
        let t = record_trace(&m, &cfg, []).unwrap();
        let p = call_named(&m, &t, "p");
        let s = dynamic_slice_output(&m, &t, p, 0);
        assert!(s.keeps_call(p));
        assert!(s.events.is_empty());
        assert!(!s.complete, "a slice with no criterion def is incomplete");
    }

    #[test]
    fn slice_over_uninitialized_read_is_incomplete() {
        // `r := u + 1` reads `u`, which nothing ever wrote — the classic
        // shape left behind by a deleted assignment. The slice must flag
        // itself incomplete so the debugger does not prune on it.
        let m = compile(
            "program t; var x: integer;
             procedure p(var r: integer); var u: integer; begin r := u + 1 end;
             begin p(x) end.",
        )
        .unwrap();
        let cfg = lower(&m);
        let t = record_trace(&m, &cfg, []).unwrap();
        let p = call_named(&m, &t, "p");
        let s = dynamic_slice_output(&m, &t, p, 0);
        assert!(!s.events.is_empty());
        assert!(!s.complete, "unresolved use must mark the slice incomplete");
    }

    #[test]
    fn fully_defined_slices_are_complete() {
        let (m, t) = sqrtest_trace();
        let computs = call_named(&m, &t, "computs");
        let s = dynamic_slice_output(&m, &t, computs, 0);
        assert!(s.complete, "all uses in SQRTEST have reaching defs");
    }
}
