//! Classic intraprocedural data-flow analyses over the lowered CFG.
//!
//! Program slicing "is a data flow analysis technique" (paper §1); the
//! static slicer's relevant-variable iteration is built on the same
//! def/use machinery exposed here. Reaching definitions and liveness are
//! provided both as reusable analyses and as cross-checks for the slicer
//! (a variable relevant at a point must be live there).

use crate::effects::{instr_effects, Effects};
use gadt_pascal::ast::StmtId;
use gadt_pascal::cfg::{BlockId, ProcCfg, Terminator};
use gadt_pascal::sema::{Module, VarId};
use std::collections::{BTreeMap, BTreeSet};

/// A definition site: instruction `index` in `block` defining `var`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DefSite {
    /// Block containing the definition.
    pub block: BlockId,
    /// Instruction index within the block.
    pub index: usize,
    /// The defined variable.
    pub var: VarId,
    /// Source statement.
    pub stmt: StmtId,
}

/// Reaching definitions for one procedure.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// Definitions reaching the *entry* of each block.
    pub entry: BTreeMap<BlockId, BTreeSet<DefSite>>,
    /// All definition sites in the procedure.
    pub sites: Vec<DefSite>,
}

impl ReachingDefs {
    /// Computes reaching definitions for `proc`.
    ///
    /// Call instructions define their interprocedural MOD sets (weakly).
    pub fn compute(module: &Module, cfg: &ProcCfg, fx: &Effects) -> Self {
        // Collect definition sites and per-block gen/kill.
        let mut sites = Vec::new();
        for (bid, b) in cfg.iter() {
            for (i, ins) in b.instrs.iter().enumerate() {
                let eff = instr_effects(module, fx, &ins.kind);
                for v in eff.defs {
                    sites.push(DefSite {
                        block: bid,
                        index: i,
                        var: v,
                        stmt: ins.stmt,
                    });
                }
            }
        }

        let n = cfg.blocks.len();
        let mut entry: Vec<BTreeSet<DefSite>> = vec![BTreeSet::new(); n];
        let mut exit: Vec<BTreeSet<DefSite>> = vec![BTreeSet::new(); n];
        let preds = cfg.predecessors();

        let mut changed = true;
        while changed {
            changed = false;
            for (bid, b) in cfg.iter() {
                let bi = bid.0 as usize;
                let mut inset: BTreeSet<DefSite> = BTreeSet::new();
                for p in &preds[bi] {
                    inset.extend(exit[p.0 as usize].iter().copied());
                }
                if inset != entry[bi] {
                    entry[bi] = inset.clone();
                    changed = true;
                }
                // Transfer through the block.
                let mut cur = inset;
                for (i, ins) in b.instrs.iter().enumerate() {
                    let eff = instr_effects(module, fx, &ins.kind);
                    if eff.strong {
                        for v in &eff.defs {
                            cur.retain(|d| d.var != *v);
                        }
                    }
                    for v in &eff.defs {
                        cur.insert(DefSite {
                            block: bid,
                            index: i,
                            var: *v,
                            stmt: ins.stmt,
                        });
                    }
                }
                if cur != exit[bi] {
                    exit[bi] = cur;
                    changed = true;
                }
            }
        }

        ReachingDefs {
            entry: cfg.iter().map(|(id, _)| id).zip(entry).collect(),
            sites,
        }
    }

    /// The definitions of `var` reaching the entry of `block`.
    pub fn reaching(&self, block: BlockId, var: VarId) -> Vec<DefSite> {
        self.entry
            .get(&block)
            .map(|s| s.iter().filter(|d| d.var == var).copied().collect())
            .unwrap_or_default()
    }
}

/// Live variables for one procedure (backward may-analysis).
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Variables live at the entry of each block.
    pub live_in: BTreeMap<BlockId, BTreeSet<VarId>>,
    /// Variables live at the exit of each block.
    pub live_out: BTreeMap<BlockId, BTreeSet<VarId>>,
}

impl Liveness {
    /// Computes liveness for `proc`, with `at_exit` live at every
    /// procedure exit (e.g. `var` parameters and the function result).
    pub fn compute(
        module: &Module,
        cfg: &ProcCfg,
        fx: &Effects,
        at_exit: &BTreeSet<VarId>,
    ) -> Self {
        let n = cfg.blocks.len();
        let mut live_in: Vec<BTreeSet<VarId>> = vec![BTreeSet::new(); n];
        let mut live_out: Vec<BTreeSet<VarId>> = vec![BTreeSet::new(); n];

        let mut changed = true;
        while changed {
            changed = false;
            for (bid, b) in cfg.iter().collect::<Vec<_>>().into_iter().rev() {
                let bi = bid.0 as usize;
                let mut out: BTreeSet<VarId> = BTreeSet::new();
                match &b.term {
                    Terminator::Return | Terminator::NonLocalGoto { .. } => {
                        out.extend(at_exit.iter().copied());
                    }
                    t => {
                        for s in t.successors() {
                            out.extend(live_in[s.0 as usize].iter().copied());
                        }
                    }
                }
                if let Terminator::Branch { cond, .. } = &b.term {
                    let mut uses = Vec::new();
                    cond.collect_uses(&mut uses);
                    out.extend(uses);
                }
                if out != live_out[bi] {
                    live_out[bi] = out.clone();
                    changed = true;
                }
                let mut cur = out;
                for ins in b.instrs.iter().rev() {
                    let eff = instr_effects(module, fx, &ins.kind);
                    if eff.strong {
                        for v in &eff.defs {
                            cur.remove(v);
                        }
                    }
                    cur.extend(eff.uses.iter().copied());
                }
                if cur != live_in[bi] {
                    live_in[bi] = cur;
                    changed = true;
                }
            }
        }

        Liveness {
            live_in: cfg.iter().map(|(id, _)| id).zip(live_in).collect(),
            live_out: cfg.iter().map(|(id, _)| id).zip(live_out).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use gadt_pascal::cfg::lower;
    use gadt_pascal::sema::{compile, MAIN_PROC};

    fn setup(src: &str) -> (Module, gadt_pascal::cfg::ProgramCfg, Effects) {
        let m = compile(src).expect("compile");
        let cfg = lower(&m);
        let cg = CallGraph::build(&m, &cfg);
        let fx = Effects::compute(&m, &cfg, &cg);
        (m, cfg, fx)
    }

    #[test]
    fn reaching_defs_straight_line() {
        let (m, cfg, fx) = setup(
            "program t; var x, y: integer;
             begin x := 1; y := x; x := 2 end.",
        );
        let rd = ReachingDefs::compute(&m, cfg.proc(MAIN_PROC), &fx);
        // Three definition sites total.
        assert_eq!(rd.sites.len(), 3);
    }

    #[test]
    fn reaching_defs_merge_at_join() {
        let (m, cfg, fx) = setup(
            "program t; var x, c: integer;
             begin
               read(c);
               if c > 0 then x := 1 else x := 2;
               c := x
             end.",
        );
        let rd = ReachingDefs::compute(&m, cfg.proc(MAIN_PROC), &fx);
        let x = m.var_in_scope(MAIN_PROC, "x").unwrap();
        // Find the join block (the one whose instr assigns c := x).
        let main = cfg.proc(MAIN_PROC);
        let join = main
            .iter()
            .find(|(_, b)| {
                b.instrs.iter().any(|i| {
                    matches!(&i.kind, gadt_pascal::cfg::InstrKind::Assign { lhs, rhs }
                        if lhs.index.is_none()
                        && matches!(rhs, gadt_pascal::cfg::RExpr::Var(_))
                        && m.var(lhs.var).name == "c")
                })
            })
            .map(|(id, _)| id)
            .expect("join block");
        let defs = rd.reaching(join, x);
        assert_eq!(defs.len(), 2, "both branch definitions reach the join");
    }

    #[test]
    fn strong_update_kills_previous_def() {
        let (m, cfg, fx) = setup(
            "program t; var x: integer;
             begin
               x := 1;
               x := 2;
               while x > 0 do x := x - 1
             end.",
        );
        let rd = ReachingDefs::compute(&m, cfg.proc(MAIN_PROC), &fx);
        let x = m.var_in_scope(MAIN_PROC, "x").unwrap();
        // Find the loop header block.
        let main = cfg.proc(MAIN_PROC);
        let header = main
            .iter()
            .find(|(_, b)| matches!(b.term, Terminator::Branch { .. }))
            .map(|(id, _)| id)
            .unwrap();
        let defs = rd.reaching(header, x);
        // x := 1 must be killed; x := 2 and the loop body def reach.
        assert_eq!(defs.len(), 2);
    }

    #[test]
    fn array_defs_are_weak() {
        let (m, cfg, fx) = setup(
            "program t; var a: array[1..3] of integer; i: integer;
             begin a[1] := 1; a[2] := 2; i := a[1] end.",
        );
        let rd = ReachingDefs::compute(&m, cfg.proc(MAIN_PROC), &fx);
        let a = m.var_in_scope(MAIN_PROC, "a").unwrap();
        // Both element writes reach the end (weak updates).
        let main = cfg.proc(MAIN_PROC);
        let last_block = main.iter().last().map(|(id, _)| id).unwrap();
        let _ = last_block;
        let all_a: Vec<_> = rd.sites.iter().filter(|d| d.var == a).collect();
        assert_eq!(all_a.len(), 2);
    }

    #[test]
    fn liveness_backward_from_exit() {
        let (m, cfg, fx) = setup(
            "program t; var x, y, dead: integer;
             begin x := 1; dead := 5; y := x + 1; writeln(y) end.",
        );
        let x = m.var_in_scope(MAIN_PROC, "x").unwrap();
        let live = Liveness::compute(&m, cfg.proc(MAIN_PROC), &fx, &BTreeSet::new());
        // x is live after its definition (used by y := x+1) — at block
        // entry nothing is live in a single-block program, but x is not
        // live at exit.
        let main_entry = cfg.proc(MAIN_PROC).entry;
        assert!(!live.live_out[&main_entry].contains(&x));
    }

    #[test]
    fn loop_keeps_variables_live() {
        let (m, cfg, fx) = setup(
            "program t; var i, s: integer;
             begin
               i := 0; s := 0;
               while i < 10 do begin s := s + i; i := i + 1 end;
               writeln(s)
             end.",
        );
        let s = m.var_in_scope(MAIN_PROC, "s").unwrap();
        let i = m.var_in_scope(MAIN_PROC, "i").unwrap();
        let live = Liveness::compute(&m, cfg.proc(MAIN_PROC), &fx, &BTreeSet::new());
        // At the loop header both i and s are live.
        let main = cfg.proc(MAIN_PROC);
        let header = main
            .iter()
            .find(|(_, b)| matches!(b.term, Terminator::Branch { .. }))
            .map(|(id, _)| id)
            .unwrap();
        assert!(live.live_in[&header].contains(&s));
        assert!(live.live_in[&header].contains(&i));
    }
}
