//! Static call graph construction.
//!
//! Built from the lowered CFG, so calls inside expressions are included.
//! The call graph drives the side-effect fixpoint ([`crate::effects`]) and
//! the interprocedural slicer.

use gadt_pascal::ast::StmtId;
use gadt_pascal::cfg::{CallArg, InstrKind, ProgramCfg, RExpr, Terminator};
use gadt_pascal::sema::{Module, ProcId};
use std::collections::BTreeSet;

/// One syntactic call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The procedure containing the call.
    pub caller: ProcId,
    /// The procedure being called.
    pub callee: ProcId,
    /// The statement the call occurs in (the call statement itself, or the
    /// enclosing statement for calls inside expressions).
    pub stmt: StmtId,
}

/// The program's static call graph.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Per caller: set of direct callees.
    callees: Vec<BTreeSet<ProcId>>,
    /// Per callee: set of direct callers.
    callers: Vec<BTreeSet<ProcId>>,
    /// All call sites.
    sites: Vec<CallSite>,
}

impl CallGraph {
    /// Builds the call graph of a module from its CFG.
    ///
    /// # Examples
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// use gadt_pascal::{sema::compile, cfg::lower};
    /// use gadt_analysis::callgraph::CallGraph;
    /// let m = compile(
    ///     "program t; var x: integer;
    ///      procedure p; begin x := 1 end;
    ///      begin p end.",
    /// )?;
    /// let cg = CallGraph::build(&m, &lower(&m));
    /// let p = m.proc_by_name("p").unwrap();
    /// assert!(cg.callees_of(gadt_pascal::sema::MAIN_PROC).contains(&p));
    /// # Ok(())
    /// # }
    /// ```
    pub fn build(module: &Module, cfg: &ProgramCfg) -> Self {
        let n = module.procs.len();
        let mut callees = vec![BTreeSet::new(); n];
        let mut callers = vec![BTreeSet::new(); n];
        let mut sites = Vec::new();
        for pcfg in &cfg.procs {
            let caller = pcfg.proc;
            let mut add = |callee: ProcId, stmt: StmtId| {
                callees[caller.0 as usize].insert(callee);
                callers[callee.0 as usize].insert(caller);
                sites.push(CallSite {
                    caller,
                    callee,
                    stmt,
                });
            };
            for (_, b) in pcfg.iter() {
                for ins in &b.instrs {
                    match &ins.kind {
                        InstrKind::Call { callee, args } => {
                            add(*callee, ins.stmt);
                            for a in args {
                                collect_expr_calls(a_expr(a), &mut |c| add(c, ins.stmt));
                            }
                        }
                        InstrKind::Assign { lhs, rhs } => {
                            collect_expr_calls(Some(rhs), &mut |c| add(c, ins.stmt));
                            if let Some(ix) = &lhs.index {
                                collect_expr_calls(Some(ix), &mut |c| add(c, ins.stmt));
                            }
                        }
                        InstrKind::Read { target } => {
                            if let Some(ix) = &target.index {
                                collect_expr_calls(Some(ix), &mut |c| add(c, ins.stmt));
                            }
                        }
                        InstrKind::Write { args, .. } => {
                            for a in args {
                                collect_expr_calls(Some(a), &mut |c| add(c, ins.stmt));
                            }
                        }
                    }
                }
                if let Terminator::Branch { cond, stmt, .. } = &b.term {
                    collect_expr_calls(Some(cond), &mut |c| add(c, *stmt));
                }
            }
        }
        CallGraph {
            callees,
            callers,
            sites,
        }
    }

    /// Direct callees of a procedure.
    pub fn callees_of(&self, p: ProcId) -> &BTreeSet<ProcId> {
        &self.callees[p.0 as usize]
    }

    /// Direct callers of a procedure.
    pub fn callers_of(&self, p: ProcId) -> &BTreeSet<ProcId> {
        &self.callers[p.0 as usize]
    }

    /// All call sites, in CFG order.
    pub fn sites(&self) -> &[CallSite] {
        &self.sites
    }

    /// Procedures reachable from `root` (including `root`).
    pub fn reachable_from(&self, root: ProcId) -> BTreeSet<ProcId> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![root];
        while let Some(p) = stack.pop() {
            if seen.insert(p) {
                stack.extend(self.callees_of(p).iter().copied());
            }
        }
        seen
    }

    /// A bottom-up ordering: callees before callers where possible
    /// (cycles broken arbitrarily). Useful for one-pass summaries of
    /// non-recursive programs; recursive programs need the fixpoint in
    /// [`crate::effects`].
    pub fn bottom_up_order(&self) -> Vec<ProcId> {
        let n = self.callees.len();
        let mut order = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = visiting, 2 = done
        fn visit(
            p: usize,
            callees: &[BTreeSet<ProcId>],
            state: &mut [u8],
            order: &mut Vec<ProcId>,
        ) {
            if state[p] != 0 {
                return;
            }
            state[p] = 1;
            for c in &callees[p] {
                if state[c.0 as usize] == 0 {
                    visit(c.0 as usize, callees, state, order);
                }
            }
            state[p] = 2;
            order.push(ProcId(p as u32));
        }
        for p in 0..n {
            visit(p, &self.callees, &mut state, &mut order);
        }
        order
    }
}

fn a_expr(a: &CallArg) -> Option<&RExpr> {
    match a {
        CallArg::Value(e) => Some(e),
        CallArg::Ref(p) => p.index.as_deref(),
    }
}

fn collect_expr_calls(e: Option<&RExpr>, add: &mut dyn FnMut(ProcId)) {
    let Some(e) = e else { return };
    let mut calls = Vec::new();
    e.collect_calls(&mut calls);
    for c in calls {
        add(c);
    }
    // collect_calls already recurses into nested args.
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadt_pascal::cfg::lower;
    use gadt_pascal::sema::{compile, MAIN_PROC};
    use gadt_pascal::testprogs;

    fn graph(src: &str) -> (Module, CallGraph) {
        let m = compile(src).expect("compile");
        let cfg = lower(&m);
        let cg = CallGraph::build(&m, &cfg);
        (m, cg)
    }

    #[test]
    fn sqrtest_call_structure() {
        let (m, cg) = graph(testprogs::SQRTEST);
        let sqrtest = m.proc_by_name("sqrtest").unwrap();
        let computs = m.proc_by_name("computs").unwrap();
        let comput1 = m.proc_by_name("comput1").unwrap();
        let sum2 = m.proc_by_name("sum2").unwrap();
        let decrement = m.proc_by_name("decrement").unwrap();
        assert!(cg.callees_of(MAIN_PROC).contains(&sqrtest));
        assert!(cg.callees_of(sqrtest).contains(&computs));
        assert!(cg.callees_of(computs).contains(&comput1));
        // decrement is called inside an expression in sum2.
        assert!(cg.callees_of(sum2).contains(&decrement));
        assert_eq!(cg.callers_of(decrement), &[sum2].into_iter().collect());
    }

    #[test]
    fn reachability_covers_whole_paper_program() {
        let (m, cg) = graph(testprogs::SQRTEST);
        let reach = cg.reachable_from(MAIN_PROC);
        assert_eq!(reach.len(), m.procs.len());
    }

    #[test]
    fn unreachable_proc_not_reported() {
        let (m, cg) = graph(
            "program t; var x: integer;
             procedure dead; begin x := 0 end;
             procedure live; begin x := 1 end;
             begin live end.",
        );
        let dead = m.proc_by_name("dead").unwrap();
        let reach = cg.reachable_from(MAIN_PROC);
        assert!(!reach.contains(&dead));
    }

    #[test]
    fn bottom_up_order_puts_callees_first() {
        let (m, cg) = graph(testprogs::SQRTEST);
        let order = cg.bottom_up_order();
        let pos = |p: ProcId| order.iter().position(|&q| q == p).unwrap();
        let sum2 = m.proc_by_name("sum2").unwrap();
        let decrement = m.proc_by_name("decrement").unwrap();
        assert!(pos(decrement) < pos(sum2));
        assert_eq!(order.len(), m.procs.len());
    }

    #[test]
    fn recursion_forms_cycle_but_terminates() {
        let (m, cg) = graph(
            "program t;
             function f(n: integer): integer;
             begin if n <= 0 then f := 0 else f := f(n - 1) end;
             begin writeln(f(3)) end.",
        );
        let f = m.proc_by_name("f").unwrap();
        assert!(cg.callees_of(f).contains(&f));
        assert_eq!(cg.bottom_up_order().len(), m.procs.len());
    }

    #[test]
    fn call_sites_record_statements() {
        let (_, cg) = graph(testprogs::PQR);
        // q and r called from p's body, p from main = 3 sites.
        assert_eq!(cg.sites().len(), 3);
    }
}
