//! Postdominators and control dependence.
//!
//! Control dependence (Ferrante–Ottenstein–Warren on the CFG with a
//! virtual exit) tells the slicers which branch decides whether a
//! statement executes. Both the static slicer (include the predicates
//! controlling included statements) and the dynamic slicer (dynamic
//! control parents) consume this.

use gadt_pascal::ast::StmtId;
use gadt_pascal::cfg::{BlockId, ProcCfg, ProgramCfg, Terminator};
use gadt_pascal::sema::{Module, ProcId};
use std::collections::{BTreeMap, BTreeSet};

/// Postdominator sets for one procedure's CFG.
#[derive(Debug, Clone)]
pub struct PostDom {
    /// `sets[b]` = blocks that postdominate block `b` (including `b`).
    /// The virtual exit is not represented explicitly.
    sets: Vec<BTreeSet<u32>>,
}

impl PostDom {
    /// Computes postdominators of a procedure CFG.
    pub fn compute(cfg: &ProcCfg) -> Self {
        let n = cfg.blocks.len();
        let exit = n; // virtual exit index
        let all: BTreeSet<u32> = (0..=n as u32).collect();
        let mut sets: Vec<BTreeSet<u32>> = vec![all.clone(); n + 1];
        sets[exit] = BTreeSet::from([exit as u32]);

        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..n).rev() {
                let succs: Vec<usize> = match &cfg.blocks[b].term {
                    Terminator::Return | Terminator::NonLocalGoto { .. } => vec![exit],
                    t => t.successors().iter().map(|s| s.0 as usize).collect(),
                };
                let mut inter: Option<BTreeSet<u32>> = None;
                for s in succs {
                    inter = Some(match inter {
                        None => sets[s].clone(),
                        Some(acc) => acc.intersection(&sets[s]).copied().collect(),
                    });
                }
                let mut new = inter.unwrap_or_default();
                new.insert(b as u32);
                if new != sets[b] {
                    sets[b] = new;
                    changed = true;
                }
            }
        }
        PostDom { sets }
    }

    /// Whether block `a` postdominates block `b`.
    pub fn postdominates(&self, a: BlockId, b: BlockId) -> bool {
        self.sets[b.0 as usize].contains(&a.0)
    }
}

/// Control dependence for one procedure, at block and statement level.
#[derive(Debug, Clone)]
pub struct ControlDeps {
    /// Per block: the branch blocks it is control-dependent on.
    pub block_deps: BTreeMap<BlockId, BTreeSet<BlockId>>,
    /// Per statement: the branch statements it is control-dependent on.
    pub stmt_deps: BTreeMap<StmtId, BTreeSet<StmtId>>,
}

impl ControlDeps {
    /// Computes control dependence for one procedure.
    pub fn compute(cfg: &ProcCfg) -> Self {
        let pdom = PostDom::compute(cfg);
        let mut block_deps: BTreeMap<BlockId, BTreeSet<BlockId>> = BTreeMap::new();

        for (a, blk) in cfg.iter() {
            let Terminator::Branch {
                then_bb, else_bb, ..
            } = &blk.term
            else {
                continue;
            };
            for s in [*then_bb, *else_bb] {
                // Every block b that postdominates s but does not strictly
                // postdominate a is control-dependent on a.
                for b in cfg.iter().map(|(id, _)| id) {
                    let pd_s = b == s || pdom.postdominates(b, s);
                    let strictly_pd_a = b != a && pdom.postdominates(b, a);
                    if pd_s && !strictly_pd_a {
                        block_deps.entry(b).or_default().insert(a);
                    }
                }
            }
        }

        // Statement-level projection.
        let mut stmt_deps: BTreeMap<StmtId, BTreeSet<StmtId>> = BTreeMap::new();
        let branch_stmt_of = |b: BlockId| -> Option<StmtId> {
            match &cfg.block(b).term {
                Terminator::Branch { stmt, .. } => Some(*stmt),
                _ => None,
            }
        };
        for (b, blk) in cfg.iter() {
            let Some(deps) = block_deps.get(&b) else {
                continue;
            };
            let dep_stmts: BTreeSet<StmtId> =
                deps.iter().filter_map(|a| branch_stmt_of(*a)).collect();
            if dep_stmts.is_empty() {
                continue;
            }
            for ins in &blk.instrs {
                let e = stmt_deps.entry(ins.stmt).or_default();
                e.extend(dep_stmts.iter().copied());
            }
            if let Some(ts) = blk.term.stmt() {
                // A branch's own statement may be control-dependent on
                // another branch (e.g. loop predicates on themselves).
                let deps_for_term: BTreeSet<StmtId> =
                    dep_stmts.iter().copied().filter(|s| *s != ts).collect();
                let self_dep = dep_stmts.contains(&ts);
                let e = stmt_deps.entry(ts).or_default();
                e.extend(deps_for_term);
                if self_dep {
                    e.insert(ts);
                }
            }
        }
        ControlDeps {
            block_deps,
            stmt_deps,
        }
    }

    /// Branch statements controlling `stmt` (empty if none).
    pub fn controlling(&self, stmt: StmtId) -> impl Iterator<Item = StmtId> + '_ {
        self.stmt_deps
            .get(&stmt)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }
}

/// Control dependence for every procedure of a program.
#[derive(Debug, Clone)]
pub struct ProgramControlDeps {
    per_proc: Vec<ControlDeps>,
}

impl ProgramControlDeps {
    /// Computes control dependence for all procedures.
    pub fn compute(_module: &Module, cfg: &ProgramCfg) -> Self {
        ProgramControlDeps {
            per_proc: cfg.procs.iter().map(ControlDeps::compute).collect(),
        }
    }

    /// The per-procedure result.
    ///
    /// # Panics
    /// Panics if `p` is out of range.
    pub fn of(&self, p: ProcId) -> &ControlDeps {
        &self.per_proc[p.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadt_pascal::ast::StmtKind;
    use gadt_pascal::cfg::lower;
    use gadt_pascal::sema::{compile, MAIN_PROC};

    /// Finds the statement id of the first statement whose printed form
    /// contains `needle`.
    fn stmt_matching(m: &Module, proc: ProcId, pred: impl Fn(&StmtKind) -> bool) -> StmtId {
        let mut found = None;
        for s in m.proc_body(proc) {
            s.walk(&mut |st| {
                if found.is_none() && pred(&st.kind) {
                    found = Some(st.id);
                }
            });
        }
        found.expect("statement not found")
    }

    #[test]
    fn if_branches_depend_on_condition() {
        let m = compile(
            "program t; var x, y: integer;
             begin
               read(x);
               if x > 0 then y := 1 else y := 2;
               y := 3
             end.",
        )
        .unwrap();
        let cfg = lower(&m);
        let cd = ControlDeps::compute(cfg.proc(MAIN_PROC));
        let if_stmt = stmt_matching(&m, MAIN_PROC, |k| matches!(k, StmtKind::If { .. }));
        let then_assign = stmt_matching(&m, MAIN_PROC, |k| {
            matches!(k, StmtKind::Assign { rhs, .. }
                if matches!(rhs.kind, gadt_pascal::ast::ExprKind::IntLit(1)))
        });
        let after = stmt_matching(&m, MAIN_PROC, |k| {
            matches!(k, StmtKind::Assign { rhs, .. }
                if matches!(rhs.kind, gadt_pascal::ast::ExprKind::IntLit(3)))
        });
        let deps: Vec<StmtId> = cd.controlling(then_assign).collect();
        assert_eq!(deps, vec![if_stmt]);
        assert_eq!(cd.controlling(after).count(), 0);
        let read = stmt_matching(&m, MAIN_PROC, |k| matches!(k, StmtKind::Read { .. }));
        assert_eq!(cd.controlling(read).count(), 0);
    }

    #[test]
    fn loop_body_depends_on_loop_predicate() {
        let m = compile(
            "program t; var i, s: integer;
             begin while i < 3 do begin s := s + 1; i := i + 1 end end.",
        )
        .unwrap();
        let cfg = lower(&m);
        let cd = ControlDeps::compute(cfg.proc(MAIN_PROC));
        let while_stmt = stmt_matching(&m, MAIN_PROC, |k| matches!(k, StmtKind::While { .. }));
        let body_assign = stmt_matching(&m, MAIN_PROC, |k| matches!(k, StmtKind::Assign { .. }));
        let deps: Vec<StmtId> = cd.controlling(body_assign).collect();
        assert_eq!(deps, vec![while_stmt]);
        // The loop predicate controls itself (back edge).
        let self_deps: Vec<StmtId> = cd.controlling(while_stmt).collect();
        assert_eq!(self_deps, vec![while_stmt]);
    }

    #[test]
    fn nested_ifs_stack_dependences() {
        let m = compile(
            "program t; var a, b, x: integer;
             begin
               if a > 0 then
                 if b > 0 then
                   x := 1
             end.",
        )
        .unwrap();
        let cfg = lower(&m);
        let cd = ControlDeps::compute(cfg.proc(MAIN_PROC));
        let assign = stmt_matching(&m, MAIN_PROC, |k| matches!(k, StmtKind::Assign { .. }));
        // x := 1 is directly controlled by the inner if only; transitivity
        // comes from the inner if being controlled by the outer.
        let deps: Vec<StmtId> = cd.controlling(assign).collect();
        assert_eq!(deps.len(), 1);
        let inner_if = deps[0];
        let outer: Vec<StmtId> = cd.controlling(inner_if).collect();
        assert_eq!(outer.len(), 1);
        assert_ne!(outer[0], inner_if);
    }

    #[test]
    fn straight_line_has_no_dependences() {
        let m = compile("program t; var x: integer; begin x := 1; x := 2 end.").unwrap();
        let cfg = lower(&m);
        let cd = ControlDeps::compute(cfg.proc(MAIN_PROC));
        assert!(cd.stmt_deps.is_empty());
    }

    #[test]
    fn postdom_basics() {
        let m = compile(
            "program t; var x: integer;
             begin if x > 0 then x := 1 else x := 2; x := 3 end.",
        )
        .unwrap();
        let cfg = lower(&m);
        let pd = PostDom::compute(cfg.proc(MAIN_PROC));
        // The join block (containing x := 3) postdominates the entry.
        let main = cfg.proc(MAIN_PROC);
        let join = main
            .iter()
            .find(|(_, b)| {
                b.instrs
                    .iter()
                    .any(|i| matches!(&i.kind, gadt_pascal::cfg::InstrKind::Assign { rhs, .. }
                        if matches!(rhs, gadt_pascal::cfg::RExpr::Lit(gadt_pascal::value::Value::Int(3)))))
            })
            .map(|(id, _)| id)
            .expect("join block");
        assert!(pd.postdominates(join, main.entry));
        // Then-block does not postdominate entry.
        let then_blk = main
            .iter()
            .find(|(_, b)| {
                b.instrs
                    .iter()
                    .any(|i| matches!(&i.kind, gadt_pascal::cfg::InstrKind::Assign { rhs, .. }
                        if matches!(rhs, gadt_pascal::cfg::RExpr::Lit(gadt_pascal::value::Value::Int(1)))))
            })
            .map(|(id, _)| id)
            .unwrap();
        assert!(!pd.postdominates(then_blk, main.entry));
    }

    #[test]
    fn program_control_deps_cover_all_procs() {
        let m = compile(gadt_pascal::testprogs::SQRTEST).unwrap();
        let cfg = lower(&m);
        let pcd = ProgramControlDeps::compute(&m, &cfg);
        // arrsum's loop body assign is controlled by the for statement.
        let arrsum = m.proc_by_name("arrsum").unwrap();
        let cd = pcd.of(arrsum);
        assert!(!cd.stmt_deps.is_empty());
    }
}

#[cfg(test)]
mod unreachable_tests {
    use super::*;
    use gadt_pascal::cfg::lower;
    use gadt_pascal::sema::{compile, MAIN_PROC};

    #[test]
    fn postdom_and_cd_handle_unreachable_blocks() {
        // `x := 2` is parked in an unreachable block after the goto.
        let m = compile(
            "program t; label 9; var x: integer;
             begin
               x := 1;
               goto 9;
               x := 2;
               if x > 0 then x := 3;
               9: writeln(x)
             end.",
        )
        .unwrap();
        let cfg = lower(&m);
        // Must not panic or loop; control dependences stay well-formed.
        let cd = ControlDeps::compute(cfg.proc(MAIN_PROC));
        for deps in cd.stmt_deps.values() {
            assert!(!deps.is_empty());
        }
        let _ = PostDom::compute(cfg.proc(MAIN_PROC));
    }

    #[test]
    fn static_slice_with_unreachable_code_is_executable() {
        use crate::slice_static::{static_slice, SliceContext, SliceCriterion};
        let m = compile(
            "program t; label 9; var x, y: integer;
             begin
               x := 1; y := 5;
               goto 9;
               y := 99;
               9: x := x + y;
               writeln(x)
             end.",
        )
        .unwrap();
        let cfg = lower(&m);
        let cx = SliceContext::new(&m, &cfg);
        let crit = SliceCriterion::at_program_end(&m, "x").unwrap();
        let slice = static_slice(&cx, &crit);
        let printed = gadt_pascal::pretty::print_slice(&m.program, &slice.stmts);
        let sm = gadt_pascal::sema::compile(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        let o1 = gadt_pascal::interp::Interpreter::new(&m).run().unwrap();
        let o2 = gadt_pascal::interp::Interpreter::new(&sm).run().unwrap();
        assert_eq!(o1.global("x"), o2.global("x"), "{printed}");
    }
}
