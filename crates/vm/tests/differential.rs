//! In-crate differential suite: the bytecode VM against the
//! tree-walking reference interpreter, event by event.
//!
//! Every fixture in `gadt_pascal::testprogs::ALL` runs on both engines
//! through both entry points (`run_with` and `run_proc_with`), and the
//! full `Debug`-rendered event streams must match byte for byte, along
//! with outputs, step counts, and final globals. On divergence the test
//! prints the first differing event with context.

use gadt_pascal::cfg::lower;
use gadt_pascal::interp::{Interpreter, Limits, Outcome, ProcRun};
use gadt_pascal::parser::parse_program;
use gadt_pascal::sema::{analyze, Module, MAIN_PROC};
use gadt_pascal::testprogs;
use gadt_pascal::types::Type;
use gadt_pascal::value::Value;
use gadt_vm::conformance::EventLog;
use gadt_vm::{CallSemantics, Engine, PreparedEngine};

fn compile(src: &str) -> Module {
    analyze(parse_program(src).expect("parse")).expect("analyze")
}

fn assert_same_events(name: &str, what: &str, tree: &EventLog, vm: &EventLog) {
    if tree.events == vm.events {
        return;
    }
    let n = tree.events.len().min(vm.events.len());
    for i in 0..n {
        if tree.events[i] != vm.events[i] {
            panic!(
                "{name} [{what}]: event {i} diverges\n  tree: {:?}\n  vm:   {:?}\n  \
                 (tree emitted {} events, vm {})",
                tree.events[i],
                vm.events[i],
                tree.events.len(),
                vm.events.len()
            );
        }
    }
    panic!(
        "{name} [{what}]: event streams have a common prefix but different \
         lengths: tree {} vs vm {}\n  first extra: {:?}",
        tree.events.len(),
        vm.events.len(),
        if tree.events.len() > n {
            &tree.events[n]
        } else {
            &vm.events[n]
        }
    );
}

fn assert_same_outcome(name: &str, tree: &Outcome, vm: &Outcome) {
    assert_eq!(tree.output_text(), vm.output_text(), "{name}: output");
    assert_eq!(tree.steps, vm.steps, "{name}: steps");
    assert_eq!(tree.globals, vm.globals, "{name}: globals");
}

#[test]
fn run_with_is_byte_identical_across_engines() {
    // Enough values to satisfy any fixture's `read` statements; both
    // engines see the same queue.
    let input: Vec<Value> = [3, 5, 2, 7, 1, 4, 6, 8].map(Value::Int).to_vec();
    for (name, src) in testprogs::ALL {
        let module = compile(src);
        let cfg = lower(&module);

        let mut tree_log = EventLog::new();
        let mut interp = Interpreter::with_cfg(&module, cfg.clone());
        interp.set_input(input.iter().cloned());
        let tree_out = interp.run_with(&mut tree_log).expect(name);

        let engine = PreparedEngine::new(&module, &cfg, Engine::Vm);
        let mut vm_log = EventLog::new();
        let vm_out = engine
            .run_with(input.clone(), Limits::default(), &mut vm_log)
            .expect(name);

        assert_same_events(name, "run", &tree_log, &vm_log);
        assert_same_outcome(name, &tree_out, &vm_out);
    }
}

/// Small argument vector for a procedure: distinct positive integers for
/// integer params, `true`/`1.5`/zero-values otherwise.
fn sample_args(module: &Module, params: &[gadt_pascal::sema::VarId]) -> Vec<Value> {
    params
        .iter()
        .enumerate()
        .map(|(i, &p)| match &module.var(p).ty {
            Type::Integer => Value::Int(i as i64 + 2),
            Type::Real => Value::Real(1.5),
            Type::Boolean => Value::Bool(true),
            ty => Value::zero_of(ty),
        })
        .collect()
}

#[test]
fn run_proc_is_byte_identical_across_engines() {
    let mut covered = 0usize;
    for (name, src) in testprogs::ALL {
        let module = compile(src);
        let cfg = lower(&module);
        let engine = PreparedEngine::new(&module, &cfg, Engine::Vm);

        for info in &module.procs {
            if info.id == MAIN_PROC || info.parent != Some(MAIN_PROC) {
                continue;
            }
            let args = sample_args(&module, &info.params);

            let mut tree_log = EventLog::new();
            let mut interp = Interpreter::with_cfg(&module, cfg.clone());
            let tree_run: Result<ProcRun, _> =
                interp.run_proc_with(info.id, args.clone(), &mut tree_log);

            let mut vm_log = EventLog::new();
            let vm_run = engine.run_proc_with(info.id, args, Limits::default(), &mut vm_log);

            let what = format!("run_proc {}", info.name);
            assert_same_events(name, &what, &tree_log, &vm_log);
            match (&tree_run, &vm_run) {
                (Ok(t), Ok(v)) => {
                    assert_eq!(
                        format!("{t:?}"),
                        format!("{v:?}"),
                        "{name} [{what}]: ProcRun"
                    );
                }
                (Err(t), Err(v)) => {
                    assert_eq!(t.to_string(), v.to_string(), "{name} [{what}]: error");
                }
                _ => panic!(
                    "{name} [{what}]: outcome kind diverges: tree {tree_run:?} vs vm {vm_run:?}"
                ),
            }
            covered += 1;
        }
    }
    assert!(
        covered > 20,
        "expected to exercise many procedures, got {covered}"
    );
}
