//! Bytecode compilation: lowering a [`ProgramCfg`] into flat per-procedure
//! op vectors with *resolved variable slots*.
//!
//! The tree-walking interpreter resolves every variable reference at run
//! time: a name lookup in a `HashMap<VarId, Value>` after a static-link
//! walk driven by owner-procedure comparison. The compiler moves all of
//! that to compile time:
//!
//! * every variable of a procedure gets a dense **slot** index into the
//!   frame's `Vec<Value>`;
//! * every variable *reference* becomes a `SlotRef`: a static-link hop
//!   count (the lexical level difference, a compile-time constant) plus
//!   the slot — or a reference-parameter binding lookup for `var`/`out`
//!   parameters;
//! * expressions flatten to stack ops, basic blocks concatenate into one
//!   `Vec<Op>` per procedure with a `block_start` table, and loop
//!   snapshot variable lists (which the tree-walker computes and caches
//!   lazily) are precomputed per loop.
//!
//! Nothing about the *semantics* moves: the op stream is arranged so the
//! VM fires the exact event sequence the interpreter does, in the same
//! order, with the same payloads (see `exec.rs`).

use gadt_pascal::ast::{BinOp, StmtId, UnOp};
use gadt_pascal::cfg::{BlockId, CallArg, InstrKind, LoopId, Place, ProgramCfg, RExpr, Terminator};
use gadt_pascal::sema::{Intrinsic, Module, ProcId, VarId, VarKind, MAIN_PROC};
use gadt_pascal::span::Span;
use gadt_pascal::types::Type;
use gadt_pascal::value::Value;
use std::collections::HashMap;

/// A compile-time-resolved variable reference.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotRef {
    /// Static-link hops from the executing frame to the owner frame
    /// (the lexical level difference; 0 for locals and globals-in-main).
    pub hops: u32,
    /// Slot in the owner frame (meaningless when `binding` is set).
    pub slot: u32,
    /// The variable, for event reporting.
    pub var: VarId,
    /// Whether the variable is a reference parameter of its owner: the
    /// access must go through the owner frame's binding table.
    pub binding: bool,
}

/// Static context of a step-firing op: which block/instr/statement the
/// resulting `Event::Step` reports.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StepCtx {
    pub block: BlockId,
    pub instr: Option<u32>,
    pub stmt: StmtId,
}

/// A call site's static data.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CallSite {
    pub callee: ProcId,
    /// The call statement for statement calls, `None` for calls inside
    /// expressions (mirrors the interpreter's `site_stmt`).
    pub site_stmt: Option<StmtId>,
    /// Whether the call occurs in expression position (its result feeds
    /// an enclosing expression; non-local gotos may not escape it).
    pub expr_pos: bool,
    /// Step context for the call's own Step event (the caller's).
    pub step: u32,
}

/// A non-local goto site's static data.
#[derive(Debug, Clone)]
pub(crate) struct GotoSite {
    pub owner: ProcId,
    /// The label's block in `owner`, resolved at compile time.
    pub target: BlockId,
    pub step: u32,
}

/// Destination type of a store, for coercion.
#[derive(Debug, Clone)]
pub(crate) enum StoreTy {
    /// Store into a destination of this static type.
    Direct(Type),
    /// The lowering indexed a non-array variable: always a runtime error
    /// (kept for bug-for-bug parity with the tree-walker).
    ElemOfNonArray,
}

/// One value-parameter spec, in declaration order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ParamSpec {
    pub var: VarId,
    pub slot: u32,
    pub is_ref: bool,
    pub passes_back: bool,
    /// Integer arguments widen to real for real-typed parameters.
    pub widen_real: bool,
}

/// Bytecode operations. Expression ops push onto the operand stack;
/// statement-level ops pop their operands, perform the effect, and fire
/// the instruction's Step event.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Set the current error span (one per source instruction; dummy for
    /// branch conditions, mirroring the interpreter).
    SpanCtx(Span),
    /// Push a constant from the per-proc pool.
    Const(u32),
    /// Resolve a [`SlotRef`], record the use, push the value.
    Load(u32),
    /// Pop an index, resolve a [`SlotRef`] element, record the use, push.
    LoadElem(u32),
    /// Apply a unary operator to the top of stack.
    Unary(UnOp),
    /// Apply a binary operator to the top two stack values.
    Binary(BinOp),
    /// Apply an intrinsic to the top of stack.
    IntrinsicCall(Intrinsic),
    /// Begin a call: depth check, push a pending-call record and a fresh
    /// uses buffer for the argument evaluation.
    BeginCall,
    /// Pop a value argument into the pending call.
    PushArg { var: VarId, slot: u32, widen: bool },
    /// Bind a reference argument (popping an index first if `indexed`).
    RefArg { sr: u32, var: VarId, indexed: bool },
    /// Fire the call's Step event, push the callee frame, enter it.
    DoCall(u32),
    /// Assignment: pop index (if `indexed`) then value; coerce via
    /// `store_tys[ty]`; write; fire the Step event `step`.
    Store {
        sr: u32,
        indexed: bool,
        ty: u32,
        step: u32,
    },
    /// `read`: pop index (if `indexed`); take a value from the input
    /// queue; coerce; write; fire the Step event.
    ReadInto {
        sr: u32,
        indexed: bool,
        ty: u32,
        step: u32,
    },
    /// Pop a value and append its textual form to the output buffer.
    WritePush,
    /// Finish a `write`/`writeln` statement and fire its Step event.
    WriteEnd { newline: bool, step: u32 },
    /// Unconditional jump to a block (fires loop transfer events).
    JumpTo(u32),
    /// Pop the condition, fire the branch Step event, jump.
    BranchIf {
        then_bb: u32,
        else_bb: u32,
        step: u32,
    },
    /// Return from the current frame.
    Ret,
    /// Non-local goto: unwind frames toward the owner procedure.
    Goto(u32),
    /// Superinstruction: `Load(a); Load(b); Binary(op)` fused into one
    /// dispatch. Semantics (use recording, read bookkeeping, errors) are
    /// identical to the unfused sequence, in the same order.
    LoadLoadBin { a: u32, b: u32, op: BinOp },
    /// Superinstruction: `Load(sr); Const(k); Binary(op)` fused.
    LoadConstBin { sr: u32, k: u32, op: BinOp },
    /// Superinstruction: `Binary(cmp); BranchIf` fused — pop two
    /// operands, apply the comparison, fire the branch Step, jump.
    CmpBranch {
        op: BinOp,
        then_bb: u32,
        else_bb: u32,
        step: u32,
    },
}

/// Whether `op` is a comparison (always yields a boolean): the only
/// binaries fused into [`Op::CmpBranch`].
fn is_cmp(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
    )
}

/// A compiled procedure: dense slot table plus flat code.
#[derive(Debug)]
pub(crate) struct VmProc {
    /// Slot of each variable owned by the proc (slots are dense indices
    /// in `vars_of` order).
    pub slot_of: HashMap<VarId, u32>,
    /// Zero-initialized frame prototype (cloned per activation).
    pub zeros: Vec<Value>,
    /// Parameters in declaration order.
    pub params: Vec<ParamSpec>,
    /// The function-result pseudo-variable's slot, if any.
    pub result: Option<(VarId, u32)>,
    /// Lexical level (main = 0).
    pub level: u32,
    /// Lexical parent.
    pub parent: Option<ProcId>,
    /// Flattened code for all blocks.
    pub code: Vec<Op>,
    /// `code` offset of each block, by `BlockId.0`.
    pub block_start: Vec<usize>,
    /// Enclosing-loop chain per block (outermost first), by `BlockId.0`.
    pub block_loops: Vec<Vec<LoopId>>,
    pub entry: BlockId,
    // Per-proc pools referenced by ops.
    pub consts: Vec<Value>,
    pub slotrefs: Vec<SlotRef>,
    pub steps: Vec<StepCtx>,
    pub calls: Vec<CallSite>,
    pub gotos: Vec<GotoSite>,
    pub store_tys: Vec<StoreTy>,
    /// For `MAIN_PROC` only: global variables as (lowercase name, slot),
    /// for capturing [`gadt_pascal::interp::Outcome::globals`].
    pub globals: Vec<(String, u32)>,
}

/// Precomputed per-loop data.
#[derive(Debug)]
pub(crate) struct VmLoop {
    pub header: BlockId,
    /// Loop-assigned variables (the tree-walker's `loop_assigned_vars`
    /// order), resolved relative to the loop's own procedure.
    pub snapshot: Vec<(VarId, SlotRef)>,
}

/// A fully compiled program: immutable, shareable across threads, and
/// executable any number of times (the VM keeps all mutable state in a
/// per-run machine).
#[derive(Debug)]
pub struct VmProgram {
    pub(crate) procs: Vec<VmProc>,
    pub(crate) loops: Vec<VmLoop>,
}

impl VmProgram {
    /// Compiles a lowered CFG into bytecode. Deterministic: the same
    /// module and CFG always produce the same program.
    pub fn compile(module: &Module, cfg: &ProgramCfg) -> VmProgram {
        let mut procs = Vec::with_capacity(cfg.procs.len());
        for pcfg in &cfg.procs {
            let mut c = ProcCompiler::new(module, cfg, pcfg.proc);
            c.compile_proc();
            procs.push(c.finish());
        }
        // Procs are indexed by ProcId; the CFG lists them in id order.
        procs.sort_by_key(|(id, _)| id.0);
        let procs: Vec<VmProc> = procs.into_iter().map(|(_, p)| p).collect();

        let mut loops = Vec::with_capacity(cfg.loops.len());
        for info in &cfg.loops {
            let vars = loop_assigned_vars(module, cfg, info.id);
            let snapshot = vars
                .into_iter()
                .map(|v| (v, slot_ref(module, &procs, info.proc, v)))
                .collect();
            loops.push(VmLoop {
                header: info.header,
                snapshot,
            });
        }
        VmProgram { procs, loops }
    }

    pub(crate) fn proc(&self, id: ProcId) -> &VmProc {
        &self.procs[id.0 as usize]
    }
}

/// Resolves variable `v` as referenced from executing procedure `from`.
fn slot_ref(module: &Module, procs: &[VmProc], from: ProcId, v: VarId) -> SlotRef {
    let info = module.var(v);
    let owner = info.owner;
    let hops = procs[from.0 as usize].level - procs[owner.0 as usize].level;
    let binding = info.param_mode().is_some_and(|m| m.is_reference());
    let slot = procs[owner.0 as usize].slot_of[&v];
    SlotRef {
        hops,
        slot,
        var: v,
        binding,
    }
}

/// The tree-walker's `loop_assigned_vars`, reproduced statically: every
/// variable assigned (or passed by reference) inside the loop, in block
/// order, temps excluded.
fn loop_assigned_vars(module: &Module, cfg: &ProgramCfg, lid: LoopId) -> Vec<VarId> {
    let info = cfg.loop_info(lid);
    let pcfg = cfg.proc(info.proc);
    let mut vars = Vec::new();
    for (_, b) in pcfg.iter() {
        if !b.loops.contains(&lid) {
            continue;
        }
        for ins in &b.instrs {
            match &ins.kind {
                InstrKind::Assign { lhs, .. } | InstrKind::Read { target: lhs } => {
                    if !vars.contains(&lhs.var) {
                        vars.push(lhs.var);
                    }
                }
                InstrKind::Call { args, .. } => {
                    for a in args {
                        if let CallArg::Ref(p) = a {
                            if !vars.contains(&p.var) {
                                vars.push(p.var);
                            }
                        }
                    }
                }
                InstrKind::Write { .. } => {}
            }
        }
    }
    vars.retain(|v| module.var(*v).kind != VarKind::Temp);
    vars
}

/// Compiles one procedure. Slot assignment happens first (so intra-proc
/// `SlotRef`s resolve), then code emission; cross-proc slot lookups go
/// through a local owner-slot computation identical to the global one.
struct ProcCompiler<'a> {
    module: &'a Module,
    cfg: &'a ProgramCfg,
    proc: ProcId,
    out: VmProc,
}

impl<'a> ProcCompiler<'a> {
    fn new(module: &'a Module, cfg: &'a ProgramCfg, proc: ProcId) -> Self {
        let info = module.proc(proc);
        let mut slot_of = HashMap::new();
        let mut zeros = Vec::new();
        for v in module.vars_of(proc) {
            slot_of.insert(v.id, zeros.len() as u32);
            zeros.push(Value::zero_of(&v.ty));
        }
        let params = info
            .params
            .iter()
            .map(|&p| {
                let pv = module.var(p);
                let mode = pv.param_mode().expect("param mode");
                ParamSpec {
                    var: p,
                    slot: slot_of[&p],
                    is_ref: mode.is_reference(),
                    passes_back: mode.passes_back(),
                    widen_real: pv.ty == Type::Real,
                }
            })
            .collect();
        let result = info.result_var.map(|rv| (rv, slot_of[&rv]));
        let mut globals = Vec::new();
        if proc == MAIN_PROC {
            for v in module.vars_of(proc) {
                if v.kind == VarKind::Global {
                    globals.push((v.name.to_ascii_lowercase(), slot_of[&v.id]));
                }
            }
        }
        let pcfg = cfg.proc(proc);
        let block_loops = pcfg.blocks.iter().map(|b| b.loops.clone()).collect();
        ProcCompiler {
            module,
            cfg,
            proc,
            out: VmProc {
                slot_of,
                zeros,
                params,
                result,
                level: info.level,
                parent: info.parent,
                code: Vec::new(),
                block_start: Vec::new(),
                block_loops,
                entry: pcfg.entry,
                consts: Vec::new(),
                slotrefs: Vec::new(),
                steps: Vec::new(),
                calls: Vec::new(),
                gotos: Vec::new(),
                store_tys: Vec::new(),
                globals,
            },
        }
    }

    fn finish(self) -> (ProcId, VmProc) {
        (self.proc, self.out)
    }

    // -- pool helpers --------------------------------------------------

    fn sref(&mut self, v: VarId) -> u32 {
        let info = self.module.var(v);
        let owner = info.owner;
        let hops = self.module.proc(self.proc).level - self.module.proc(owner).level;
        let binding = info.param_mode().is_some_and(|m| m.is_reference());
        let slot = if owner == self.proc {
            self.out.slot_of[&v]
        } else {
            // Owner slots follow the same vars_of order everywhere.
            owner_slot(self.module, owner, v)
        };
        self.out.slotrefs.push(SlotRef {
            hops,
            slot,
            var: v,
            binding,
        });
        (self.out.slotrefs.len() - 1) as u32
    }

    fn konst(&mut self, v: &Value) -> u32 {
        self.out.consts.push(v.clone());
        (self.out.consts.len() - 1) as u32
    }

    fn step(&mut self, block: BlockId, instr: Option<usize>, stmt: StmtId) -> u32 {
        self.out.steps.push(StepCtx {
            block,
            instr: instr.map(|i| i as u32),
            stmt,
        });
        (self.out.steps.len() - 1) as u32
    }

    fn store_ty(&mut self, var: VarId, indexed: bool) -> u32 {
        let base_ty = &self.module.var(var).ty;
        let ty = match (indexed, base_ty) {
            (true, Type::Array { elem, .. }) => StoreTy::Direct((**elem).clone()),
            (true, _) => StoreTy::ElemOfNonArray,
            (false, t) => StoreTy::Direct(t.clone()),
        };
        self.out.store_tys.push(ty);
        (self.out.store_tys.len() - 1) as u32
    }

    // -- code emission -------------------------------------------------

    fn compile_proc(&mut self) {
        let pcfg = self.cfg.proc(self.proc);
        for (bi, block) in pcfg.blocks.iter().enumerate() {
            self.out.block_start.push(self.out.code.len());
            let block_at = self.out.code.len();
            let bid = BlockId(bi as u32);
            for (i, instr) in block.instrs.iter().enumerate() {
                self.out.code.push(Op::SpanCtx(instr.span));
                match &instr.kind {
                    InstrKind::Assign { lhs, rhs } => {
                        self.emit_expr(rhs, bid, Some(i), instr.stmt);
                        let indexed = self.emit_place_index(lhs, bid, Some(i), instr.stmt);
                        let sr = self.sref(lhs.var);
                        let ty = self.store_ty(lhs.var, indexed);
                        let step = self.step(bid, Some(i), instr.stmt);
                        self.out.code.push(Op::Store {
                            sr,
                            indexed,
                            ty,
                            step,
                        });
                    }
                    InstrKind::Call { callee, args } => {
                        self.emit_call(
                            *callee,
                            args,
                            Some(instr.stmt),
                            false,
                            bid,
                            Some(i),
                            instr.stmt,
                        );
                    }
                    InstrKind::Read { target } => {
                        let indexed = self.emit_place_index(target, bid, Some(i), instr.stmt);
                        let sr = self.sref(target.var);
                        let ty = self.store_ty(target.var, indexed);
                        let step = self.step(bid, Some(i), instr.stmt);
                        self.out.code.push(Op::ReadInto {
                            sr,
                            indexed,
                            ty,
                            step,
                        });
                    }
                    InstrKind::Write { args, newline } => {
                        for a in args {
                            self.emit_expr(a, bid, Some(i), instr.stmt);
                            self.out.code.push(Op::WritePush);
                        }
                        let step = self.step(bid, Some(i), instr.stmt);
                        self.out.code.push(Op::WriteEnd {
                            newline: *newline,
                            step,
                        });
                    }
                }
            }
            match &block.term {
                Terminator::Jump(b) => self.out.code.push(Op::JumpTo(b.0)),
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                    stmt,
                } => {
                    // The interpreter evaluates branch conditions with a
                    // dummy span and `instr: None` context.
                    self.out.code.push(Op::SpanCtx(Span::dummy()));
                    self.emit_expr(cond, bid, None, *stmt);
                    let step = self.step(bid, None, *stmt);
                    self.out.code.push(Op::BranchIf {
                        then_bb: then_bb.0,
                        else_bb: else_bb.0,
                        step,
                    });
                }
                Terminator::Return => self.out.code.push(Op::Ret),
                Terminator::NonLocalGoto { owner, label, stmt } => {
                    let target = self.cfg.proc(*owner).labels[label];
                    let step = self.step(bid, None, *stmt);
                    self.out.gotos.push(GotoSite {
                        owner: *owner,
                        target,
                        step,
                    });
                    let idx = (self.out.gotos.len() - 1) as u32;
                    self.out.code.push(Op::Goto(idx));
                }
            }
            // Peephole-fuse inside the block we just emitted. Safe at
            // this point because every jump targets a `block_start`
            // offset and this block's start is already recorded: index
            // shifts stay strictly within the block.
            self.fuse_block(block_at);
        }
    }

    /// Replaces adjacent op patterns within `code[start..]` by fused
    /// superinstructions (left-to-right greedy, longest pattern first).
    fn fuse_block(&mut self, start: usize) {
        let tail = self.out.code.split_off(start);
        let mut i = 0;
        while i < tail.len() {
            if i + 2 < tail.len() {
                if let (Op::Load(a), Op::Load(b), Op::Binary(op)) =
                    (&tail[i], &tail[i + 1], &tail[i + 2])
                {
                    self.out.code.push(Op::LoadLoadBin {
                        a: *a,
                        b: *b,
                        op: *op,
                    });
                    i += 3;
                    continue;
                }
                if let (Op::Load(sr), Op::Const(k), Op::Binary(op)) =
                    (&tail[i], &tail[i + 1], &tail[i + 2])
                {
                    self.out.code.push(Op::LoadConstBin {
                        sr: *sr,
                        k: *k,
                        op: *op,
                    });
                    i += 3;
                    continue;
                }
            }
            if i + 1 < tail.len() {
                if let (
                    Op::Binary(op),
                    Op::BranchIf {
                        then_bb,
                        else_bb,
                        step,
                    },
                ) = (&tail[i], &tail[i + 1])
                {
                    if is_cmp(*op) {
                        self.out.code.push(Op::CmpBranch {
                            op: *op,
                            then_bb: *then_bb,
                            else_bb: *else_bb,
                            step: *step,
                        });
                        i += 2;
                        continue;
                    }
                }
            }
            self.out.code.push(tail[i].clone());
            i += 1;
        }
    }

    /// Emits the index expression of an lvalue, if any. Returns whether
    /// the place is element-indexed.
    fn emit_place_index(
        &mut self,
        place: &Place,
        block: BlockId,
        instr: Option<usize>,
        stmt: StmtId,
    ) -> bool {
        match &place.index {
            None => false,
            Some(ix) => {
                self.emit_expr(ix, block, instr, stmt);
                true
            }
        }
    }

    fn emit_expr(&mut self, e: &RExpr, block: BlockId, instr: Option<usize>, stmt: StmtId) {
        match e {
            RExpr::Lit(v) => {
                let k = self.konst(v);
                self.out.code.push(Op::Const(k));
            }
            RExpr::Var(v) => {
                let sr = self.sref(*v);
                self.out.code.push(Op::Load(sr));
            }
            RExpr::Index { base, index } => {
                self.emit_expr(index, block, instr, stmt);
                let sr = self.sref(*base);
                self.out.code.push(Op::LoadElem(sr));
            }
            RExpr::Call { callee, args } => {
                self.emit_call(*callee, args, None, true, block, instr, stmt);
            }
            RExpr::Intrinsic { which, arg } => {
                self.emit_expr(arg, block, instr, stmt);
                self.out.code.push(Op::IntrinsicCall(*which));
            }
            RExpr::Unary { op, operand } => {
                self.emit_expr(operand, block, instr, stmt);
                self.out.code.push(Op::Unary(*op));
            }
            RExpr::Binary { op, lhs, rhs } => {
                self.emit_expr(lhs, block, instr, stmt);
                self.emit_expr(rhs, block, instr, stmt);
                self.out.code.push(Op::Binary(*op));
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_call(
        &mut self,
        callee: ProcId,
        args: &[CallArg],
        site_stmt: Option<StmtId>,
        expr_pos: bool,
        block: BlockId,
        instr: Option<usize>,
        stmt: StmtId,
    ) {
        let step = self.step(block, instr, stmt);
        self.out.calls.push(CallSite {
            callee,
            site_stmt,
            expr_pos,
            step,
        });
        let site = (self.out.calls.len() - 1) as u32;
        self.out.code.push(Op::BeginCall);
        let info = self.module.proc(callee).clone();
        for (&p, a) in info.params.iter().zip(args) {
            let pinfo = self.module.var(p);
            match a {
                CallArg::Value(e) => {
                    let widen = pinfo.ty == Type::Real;
                    let slot = owner_slot(self.module, callee, p);
                    self.emit_expr(e, block, instr, stmt);
                    self.out.code.push(Op::PushArg {
                        var: p,
                        slot,
                        widen,
                    });
                }
                CallArg::Ref(place) => {
                    let indexed = self.emit_place_index(place, block, instr, stmt);
                    let sr = self.sref(place.var);
                    self.out.code.push(Op::RefArg {
                        sr,
                        var: p,
                        indexed,
                    });
                }
            }
        }
        self.out.code.push(Op::DoCall(site));
    }
}

/// Slot of `v` within its owner procedure, computed from the canonical
/// `vars_of` order (the same order `ProcCompiler::new` assigns).
fn owner_slot(module: &Module, owner: ProcId, v: VarId) -> u32 {
    module
        .vars_of(owner)
        .position(|info| info.id == v)
        .expect("variable owned by proc") as u32
}
