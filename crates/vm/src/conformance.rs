//! Conformance monitors: cheap, stable renderings of an event stream for
//! cross-engine comparison.
//!
//! [`EventLog`] records every event's full `Debug` rendering — the
//! strongest (and most debuggable) equality, used by the conformance
//! test suites. [`EventHasher`] folds the same renderings into a single
//! FNV-1a fingerprint — constant memory, used by the corpus fuzzer's
//! three-way differential leg and the benchmark harness.

use gadt_pascal::interp::{Event, Monitor};
use gadt_pascal::sema::Module;

/// Records the `Debug` rendering of every event.
#[derive(Debug, Default, Clone)]
pub struct EventLog {
    /// One entry per event, in firing order.
    pub events: Vec<String>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Monitor for EventLog {
    fn on_event(&mut self, _module: &Module, event: &Event<'_>) {
        self.events.push(format!("{event:?}"));
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds every event's `Debug` rendering into one 64-bit FNV-1a hash.
#[derive(Debug, Clone)]
pub struct EventHasher {
    hash: u64,
    count: u64,
}

impl Default for EventHasher {
    fn default() -> Self {
        EventHasher {
            hash: FNV_OFFSET,
            count: 0,
        }
    }
}

impl EventHasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fingerprint over all events seen so far.
    pub fn digest(&self) -> u64 {
        // Mix in the count so a truncated stream can't collide with its
        // own prefix.
        let mut h = self.hash;
        for b in self.count.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// Number of events hashed.
    pub fn count(&self) -> u64 {
        self.count
    }

    fn absorb(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash = (self.hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
}

impl Monitor for EventHasher {
    fn on_event(&mut self, _module: &Module, event: &Event<'_>) {
        let rendered = format!("{event:?}");
        self.absorb(rendered.as_bytes());
        self.absorb(b"\n");
        self.count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_distinguishes_order_and_count() {
        let mut a = EventHasher::new();
        let mut b = EventHasher::new();
        a.absorb(b"xy");
        b.absorb(b"x");
        assert_ne!(a.digest(), b.digest());
        let empty = EventHasher::new();
        assert_ne!(empty.digest(), 0);
    }
}
