//! Conformance monitors: cheap, stable renderings of an event stream for
//! cross-engine comparison.
//!
//! [`EventLog`] records every event *structurally* (an owned mirror of
//! [`Event`]) — the strongest equality, used by the conformance test
//! suites, with `Debug` rendering deferred to divergence reporting.
//! [`EventHasher`] folds every event's fields directly into a single
//! FNV-1a fingerprint — constant memory, no per-event formatting, used
//! by the corpus fuzzer's three-way differential leg and the benchmark
//! harness.

use gadt_pascal::ast::StmtId;
use gadt_pascal::cfg::{BlockId, LoopId};
use gadt_pascal::interp::{Event, MemLoc, Monitor};
use gadt_pascal::sema::{Module, ProcId, VarId};
use gadt_pascal::value::Value;

/// An owned copy of one [`Event`]. Variant and field names mirror the
/// borrowed enum exactly so the derived `Debug` rendering stays as
/// readable as the original event's (owned `Vec`s print like slices).
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedEvent {
    /// See [`Event::CallEnter`].
    CallEnter {
        call: u64,
        frame: u64,
        proc: ProcId,
        site_stmt: Option<StmtId>,
        args: Vec<(VarId, Value)>,
        bindings: Vec<(VarId, MemLoc)>,
        depth: usize,
    },
    /// See [`Event::CallExit`].
    CallExit {
        call: u64,
        frame: u64,
        proc: ProcId,
        outs: Vec<(VarId, Value)>,
        nonlocal_reads: Vec<(VarId, Value)>,
        nonlocal_writes: Vec<(VarId, Value)>,
        param_reads: Vec<VarId>,
        via_goto: bool,
    },
    /// See [`Event::LoopEnter`].
    LoopEnter {
        loop_id: LoopId,
        frame: u64,
        instance: u64,
    },
    /// See [`Event::LoopIter`].
    LoopIter {
        loop_id: LoopId,
        frame: u64,
        instance: u64,
        iteration: u64,
        vars: Vec<(VarId, Value)>,
    },
    /// See [`Event::LoopExit`].
    LoopExit {
        loop_id: LoopId,
        frame: u64,
        instance: u64,
        iterations: u64,
        vars: Vec<(VarId, Value)>,
    },
    /// See [`Event::Step`].
    Step {
        idx: u64,
        frame: u64,
        proc: ProcId,
        block: BlockId,
        instr: Option<usize>,
        stmt: StmtId,
        defs: Vec<MemLoc>,
        uses: Vec<MemLoc>,
        branch_taken: Option<bool>,
    },
}

impl OwnedEvent {
    /// Deep-copies a borrowed event.
    pub fn from_event(event: &Event<'_>) -> Self {
        match *event {
            Event::CallEnter {
                call,
                frame,
                proc,
                site_stmt,
                args,
                bindings,
                depth,
            } => OwnedEvent::CallEnter {
                call,
                frame,
                proc,
                site_stmt,
                args: args.to_vec(),
                bindings: bindings.to_vec(),
                depth,
            },
            Event::CallExit {
                call,
                frame,
                proc,
                outs,
                nonlocal_reads,
                nonlocal_writes,
                param_reads,
                via_goto,
            } => OwnedEvent::CallExit {
                call,
                frame,
                proc,
                outs: outs.to_vec(),
                nonlocal_reads: nonlocal_reads.to_vec(),
                nonlocal_writes: nonlocal_writes.to_vec(),
                param_reads: param_reads.to_vec(),
                via_goto,
            },
            Event::LoopEnter {
                loop_id,
                frame,
                instance,
            } => OwnedEvent::LoopEnter {
                loop_id,
                frame,
                instance,
            },
            Event::LoopIter {
                loop_id,
                frame,
                instance,
                iteration,
                vars,
            } => OwnedEvent::LoopIter {
                loop_id,
                frame,
                instance,
                iteration,
                vars: vars.to_vec(),
            },
            Event::LoopExit {
                loop_id,
                frame,
                instance,
                iterations,
                vars,
            } => OwnedEvent::LoopExit {
                loop_id,
                frame,
                instance,
                iterations,
                vars: vars.to_vec(),
            },
            Event::Step {
                idx,
                frame,
                proc,
                block,
                instr,
                stmt,
                defs,
                uses,
                branch_taken,
            } => OwnedEvent::Step {
                idx,
                frame,
                proc,
                block,
                instr,
                stmt,
                defs: defs.to_vec(),
                uses: uses.to_vec(),
                branch_taken,
            },
        }
    }
}

/// Records every event structurally, in firing order.
#[derive(Debug, Default, Clone)]
pub struct EventLog {
    /// One entry per event, in firing order.
    pub events: Vec<OwnedEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Monitor for EventLog {
    fn on_event(&mut self, _module: &Module, event: &Event<'_>) {
        self.events.push(OwnedEvent::from_event(event));
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds every event's fields directly into one 64-bit FNV-1a hash —
/// no intermediate `Debug` rendering. Both engines feed the hasher the
/// same field values in the same order, so equal event streams produce
/// equal digests (and the digest changed, deliberately, relative to the
/// old `Debug`-string scheme; see `structural_digest_is_pinned`).
#[derive(Debug, Clone)]
pub struct EventHasher {
    hash: u64,
    count: u64,
}

impl Default for EventHasher {
    fn default() -> Self {
        EventHasher {
            hash: FNV_OFFSET,
            count: 0,
        }
    }
}

impl EventHasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fingerprint over all events seen so far.
    pub fn digest(&self) -> u64 {
        // Mix in the count so a truncated stream can't collide with its
        // own prefix.
        let mut h = self.hash;
        for b in self.count.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// Number of events hashed.
    pub fn count(&self) -> u64 {
        self.count
    }

    fn absorb(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash = (self.hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    #[inline]
    fn u64(&mut self, v: u64) {
        self.absorb(&v.to_le_bytes());
    }

    #[inline]
    fn byte(&mut self, b: u8) {
        self.hash = (self.hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }

    fn value(&mut self, v: &Value) {
        match v {
            Value::Int(n) => {
                self.byte(0);
                self.u64(*n as u64);
            }
            Value::Real(x) => {
                self.byte(1);
                self.u64(x.to_bits());
            }
            Value::Bool(b) => {
                self.byte(2);
                self.byte(u8::from(*b));
            }
            Value::Char(c) => {
                self.byte(3);
                self.u64(u64::from(u32::from(*c)));
            }
            Value::Str(s) => {
                self.byte(4);
                self.u64(s.len() as u64);
                self.absorb(s.as_bytes());
            }
            Value::Array(a) => {
                self.byte(5);
                self.u64(a.lo as u64);
                self.u64(a.elems.len() as u64);
                for e in &a.elems {
                    self.value(e);
                }
            }
        }
    }

    fn memloc(&mut self, m: &MemLoc) {
        self.u64(m.frame);
        self.u64(u64::from(m.var.0));
        match m.elem {
            None => self.byte(0),
            Some(i) => {
                self.byte(1);
                self.u64(i as u64);
            }
        }
    }

    fn var_values(&mut self, vs: &[(VarId, Value)]) {
        self.u64(vs.len() as u64);
        for (v, val) in vs {
            self.u64(u64::from(v.0));
            self.value(val);
        }
    }

    fn memlocs(&mut self, ms: &[MemLoc]) {
        self.u64(ms.len() as u64);
        for m in ms {
            self.memloc(m);
        }
    }
}

impl Monitor for EventHasher {
    fn on_event(&mut self, _module: &Module, event: &Event<'_>) {
        match *event {
            Event::CallEnter {
                call,
                frame,
                proc,
                site_stmt,
                args,
                bindings,
                depth,
            } => {
                self.byte(0);
                self.u64(call);
                self.u64(frame);
                self.u64(u64::from(proc.0));
                match site_stmt {
                    None => self.byte(0),
                    Some(s) => {
                        self.byte(1);
                        self.u64(u64::from(s.0));
                    }
                }
                self.var_values(args);
                self.u64(bindings.len() as u64);
                for (p, m) in bindings {
                    self.u64(u64::from(p.0));
                    self.memloc(m);
                }
                self.u64(depth as u64);
            }
            Event::CallExit {
                call,
                frame,
                proc,
                outs,
                nonlocal_reads,
                nonlocal_writes,
                param_reads,
                via_goto,
            } => {
                self.byte(1);
                self.u64(call);
                self.u64(frame);
                self.u64(u64::from(proc.0));
                self.var_values(outs);
                self.var_values(nonlocal_reads);
                self.var_values(nonlocal_writes);
                self.u64(param_reads.len() as u64);
                for p in param_reads {
                    self.u64(u64::from(p.0));
                }
                self.byte(u8::from(via_goto));
            }
            Event::LoopEnter {
                loop_id,
                frame,
                instance,
            } => {
                self.byte(2);
                self.u64(u64::from(loop_id.0));
                self.u64(frame);
                self.u64(instance);
            }
            Event::LoopIter {
                loop_id,
                frame,
                instance,
                iteration,
                vars,
            } => {
                self.byte(3);
                self.u64(u64::from(loop_id.0));
                self.u64(frame);
                self.u64(instance);
                self.u64(iteration);
                self.var_values(vars);
            }
            Event::LoopExit {
                loop_id,
                frame,
                instance,
                iterations,
                vars,
            } => {
                self.byte(4);
                self.u64(u64::from(loop_id.0));
                self.u64(frame);
                self.u64(instance);
                self.u64(iterations);
                self.var_values(vars);
            }
            Event::Step {
                idx,
                frame,
                proc,
                block,
                instr,
                stmt,
                defs,
                uses,
                branch_taken,
            } => {
                self.byte(5);
                self.u64(idx);
                self.u64(frame);
                self.u64(u64::from(proc.0));
                self.u64(u64::from(block.0));
                match instr {
                    None => self.byte(0),
                    Some(i) => {
                        self.byte(1);
                        self.u64(i as u64);
                    }
                }
                self.u64(u64::from(stmt.0));
                self.memlocs(defs);
                self.memlocs(uses);
                match branch_taken {
                    None => self.byte(0),
                    Some(t) => {
                        self.byte(1);
                        self.byte(u8::from(t));
                    }
                }
            }
        }
        self.count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_distinguishes_order_and_count() {
        let mut a = EventHasher::new();
        let mut b = EventHasher::new();
        a.absorb(b"xy");
        b.absorb(b"x");
        assert_ne!(a.digest(), b.digest());
        let empty = EventHasher::new();
        assert_ne!(empty.digest(), 0);
    }

    /// The structural digest is part of the persisted-fingerprint
    /// surface (corpus findings and benchmark records carry digests), so
    /// pin it: this value changed *deliberately* when hashing moved from
    /// `Debug`-string rendering to direct field folds, and must not
    /// change again by accident. Both engines must produce it.
    #[test]
    fn structural_digest_is_pinned() {
        use crate::{CallSemantics, Engine, PreparedEngine};
        use gadt_pascal::interp::Limits;

        let module = gadt_pascal::sema::compile(
            "program p; var i, s: integer; \
             begin s := 0; i := 0; \
             while i < 3 do begin i := i + 1; s := s + i end; \
             writeln(s) end.",
        )
        .unwrap();
        let cfg = gadt_pascal::cfg::lower(&module);
        let mut digests = Vec::new();
        for engine in [Engine::TreeWalker, Engine::Vm] {
            let prepared = PreparedEngine::new(&module, &cfg, engine);
            let mut h = EventHasher::new();
            prepared
                .run_with(Vec::new(), Limits::default(), &mut h)
                .unwrap();
            digests.push(h.digest());
        }
        assert_eq!(digests[0], digests[1], "engines disagree");
        assert_eq!(
            digests[0], 0xaef8_ba37_ef78_ba36,
            "structural digest drifted"
        );
    }

    #[test]
    fn value_hash_separates_shapes() {
        let mut int = EventHasher::new();
        int.value(&Value::Int(1));
        let mut real = EventHasher::new();
        real.value(&Value::Real(f64::from_bits(1)));
        assert_ne!(int.digest(), real.digest());

        let mut s = EventHasher::new();
        s.value(&Value::Str("ab".into()));
        let mut s2 = EventHasher::new();
        s2.value(&Value::Str("a".into()));
        s2.value(&Value::Str("b".into()));
        assert_ne!(s.digest(), s2.digest());
    }
}
