//! The stack-frame VM.
//!
//! Executes a [`VmProgram`] with explicit frame, operand, and uses-buffer
//! stacks (no native recursion), firing the *exact* [`Event`] stream the
//! tree-walking interpreter fires — same ordering, same payloads, same
//! counters — so traces, slices, execution trees, and journals built on
//! either engine are byte-identical. Every bookkeeping quirk of the
//! interpreter is reproduced deliberately (e.g. reference-parameter
//! first-access lists are recorded on the *top* frame, and missing
//! variables in the non-local write walk default to `0`), because the
//! differential harness compares engines bug-for-bug.

use crate::compile::{Op, SlotRef, StoreTy, VmProc, VmProgram};
use gadt_pascal::cfg::{BlockId, LoopId};
use gadt_pascal::error::{Diagnostic, Result, Stage};
use gadt_pascal::interp::{
    coerce_store, eval_binary_op, eval_intrinsic_op, eval_unary_op, Event, Limits, MemLoc, Monitor,
    NoopMonitor, Outcome, ProcRun,
};
use gadt_pascal::sema::{Module, ProcId, VarId, MAIN_PROC};
use gadt_pascal::span::Span;
use gadt_pascal::value::Value;
use std::collections::{HashMap, VecDeque};

fn rt_err(msg: impl Into<String>, span: Span) -> Diagnostic {
    Diagnostic::new(Stage::Runtime, msg, span)
}

/// An absolute storage location: frame-stack index + slot + element.
#[derive(Debug, Clone, Copy)]
struct VmLoc {
    frame_idx: usize,
    slot: u32,
    /// The variable stored at `slot`, for event reporting.
    var: VarId,
    elem: Option<i64>,
    /// `Some(param)` when reached through a reference-parameter binding.
    via_param: Option<VarId>,
}

/// Saved caller state for a frame return.
#[derive(Debug, Clone, Copy)]
struct ReturnCtx {
    proc: ProcId,
    ip: usize,
    expr_pos: bool,
    span: Span,
}

struct VmFrame {
    id: u64,
    call: u64,
    proc: ProcId,
    static_link: Option<usize>,
    slots: Vec<Value>,
    /// Extra root-frame storage for `run_proc` reference parameters,
    /// appended past the proc's own slots: (param, slot index).
    extras: Vec<(VarId, u32)>,
    /// Reference-parameter bindings: (param, ultimate location).
    bindings: Vec<(VarId, VmLoc)>,
    loop_stack: Vec<(LoopId, u64, u64)>,
    nl_reads: Vec<(VarId, Value)>,
    nl_written: Vec<VarId>,
    ref_read: Vec<VarId>,
    ref_written: Vec<VarId>,
    site_stmt: Option<gadt_pascal::ast::StmtId>,
    /// Operand-stack level at frame entry (for goto landing cleanup).
    stack_base: usize,
    /// Index of this frame's uses buffer in the uses stack.
    uses_top: usize,
    /// How to resume the caller, `None` for base frames.
    ret: Option<ReturnCtx>,
}

/// Argument record accumulated between `BeginCall` and `DoCall`.
#[derive(Default)]
struct PendingCall {
    entry_args: Vec<(VarId, Value)>,
    params: Vec<(u32, Value)>,
    bindings: Vec<(VarId, VmLoc)>,
}

/// One VM execution. Create via [`Vm::new`], feed input, then call
/// [`Vm::run_with`] or [`Vm::run_proc_with`]; the compiled program is
/// immutable and may be shared across any number of concurrent `Vm`s.
pub struct Vm<'m> {
    module: &'m Module,
    program: &'m VmProgram,
    input: VecDeque<Value>,
    output: String,
    limits: Limits,
    frames: Vec<VmFrame>,
    stack: Vec<Value>,
    uses_stack: Vec<Vec<MemLoc>>,
    pending: Vec<PendingCall>,
    next_frame: u64,
    next_call: u64,
    next_loop_instance: u64,
    steps: u64,
    cur_span: Span,
}

impl<'m> std::fmt::Debug for Vm<'m> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("steps", &self.steps)
            .field("frames", &self.frames.len())
            .finish()
    }
}

impl<'m> Vm<'m> {
    /// Creates a VM over a compiled program.
    pub fn new(module: &'m Module, program: &'m VmProgram) -> Self {
        Vm {
            module,
            program,
            input: VecDeque::new(),
            output: String::new(),
            limits: Limits::default(),
            frames: Vec::new(),
            stack: Vec::new(),
            uses_stack: Vec::new(),
            pending: Vec::new(),
            next_frame: 0,
            next_call: 0,
            next_loop_instance: 0,
            steps: 0,
            cur_span: Span::dummy(),
        }
    }

    /// Replaces the execution limits.
    pub fn set_limits(&mut self, limits: Limits) {
        self.limits = limits;
    }

    /// Replaces the input queue.
    pub fn set_input(&mut self, values: impl IntoIterator<Item = Value>) {
        self.input = values.into_iter().collect();
    }

    fn reset(&mut self) {
        self.frames.clear();
        self.stack.clear();
        self.uses_stack.clear();
        self.pending.clear();
        self.output.clear();
        self.steps = 0;
        self.next_frame = 0;
        self.next_call = 0;
        self.next_loop_instance = 0;
        self.cur_span = Span::dummy();
    }

    /// Runs the whole program (the `run_with` entry point).
    ///
    /// # Errors
    /// The same runtime errors, with the same messages and spans, as
    /// [`gadt_pascal::interp::Interpreter::run_with`].
    pub fn run_with(&mut self, monitor: &mut dyn Monitor) -> Result<Outcome> {
        self.run_impl::<true>(monitor)
    }

    /// Monitor-free fast path: same output, step count, final globals,
    /// and errors as [`Vm::run_with`], but with all event construction
    /// and read/write-set bookkeeping statically compiled out. Use when
    /// only the *result* of a run matters (kill checks, differential
    /// output comparison, verdict-only batches).
    pub fn run(&mut self) -> Result<Outcome> {
        self.run_impl::<false>(&mut NoopMonitor)
    }

    fn run_impl<const TRACE: bool>(&mut self, monitor: &mut dyn Monitor) -> Result<Outcome> {
        self.reset();
        if TRACE {
            self.uses_stack.push(Vec::new());
        }
        self.push_frame(MAIN_PROC, None, Vec::new(), Vec::new(), None, None);
        if TRACE {
            self.fire_call_enter(monitor, &[]);
        }
        self.exec::<TRACE>(MAIN_PROC, 1, monitor)?;
        // Capture globals before popping.
        let mut globals = HashMap::new();
        for (name, slot) in &self.program.proc(MAIN_PROC).globals {
            globals.insert(name.clone(), self.frames[0].slots[*slot as usize].clone());
        }
        if TRACE {
            self.fire_call_exit(monitor, false);
        }
        self.frames.pop();
        Ok(Outcome::from_parts(
            std::mem::take(&mut self.output),
            self.steps,
            globals,
        ))
    }

    /// Runs a single top-level procedure in isolation (the T-GEN entry
    /// point).
    ///
    /// # Errors
    /// The same conditions as
    /// [`gadt_pascal::interp::Interpreter::run_proc_with`].
    pub fn run_proc_with(
        &mut self,
        proc: ProcId,
        args: Vec<Value>,
        monitor: &mut dyn Monitor,
    ) -> Result<ProcRun> {
        self.run_proc_impl::<true>(proc, args, monitor)
    }

    /// Monitor-free fast path for isolated procedure runs: identical
    /// `ProcRun`/error results to [`Vm::run_proc_with`] with all event
    /// machinery statically compiled out.
    pub fn run_proc(&mut self, proc: ProcId, args: Vec<Value>) -> Result<ProcRun> {
        self.run_proc_impl::<false>(proc, args, &mut NoopMonitor)
    }

    fn run_proc_impl<const TRACE: bool>(
        &mut self,
        proc: ProcId,
        args: Vec<Value>,
        monitor: &mut dyn Monitor,
    ) -> Result<ProcRun> {
        let info = self.module.proc(proc).clone();
        if info.parent != Some(MAIN_PROC) {
            return Err(rt_err(
                format!("procedure `{}` is not declared at the top level", info.name),
                Span::dummy(),
            ));
        }
        if info.params.len() != args.len() {
            return Err(rt_err(
                format!(
                    "`{}` expects {} argument(s), got {}",
                    info.name,
                    info.params.len(),
                    args.len()
                ),
                Span::dummy(),
            ));
        }
        self.reset();
        if TRACE {
            self.uses_stack.push(Vec::new());
        }
        self.push_frame(MAIN_PROC, None, Vec::new(), Vec::new(), None, None);
        if TRACE {
            self.fire_call_enter(monitor, &[]);
        }

        let callee = self.program.proc(proc);
        let mut params = Vec::new();
        let mut bindings = Vec::new();
        let mut entry_args = Vec::new();
        for (spec, v) in callee.params.iter().zip(args) {
            let pinfo = self.module.var(spec.var);
            let v = match (&v, spec.widen_real) {
                (Value::Int(n), true) => Value::Real(*n as f64),
                _ => v,
            };
            if !pinfo.ty.assignable_from(&v.type_of()) {
                return Err(rt_err(
                    format!(
                        "argument for `{}` has type `{}`, expected `{}`",
                        pinfo.name,
                        v.type_of(),
                        pinfo.ty
                    ),
                    Span::dummy(),
                ));
            }
            if TRACE {
                entry_args.push((spec.var, v.clone()));
            }
            if spec.is_ref {
                // Hidden storage appended to the root frame.
                let root = &mut self.frames[0];
                let slot = root.slots.len() as u32;
                root.slots.push(v);
                root.extras.push((spec.var, slot));
                bindings.push((
                    spec.var,
                    VmLoc {
                        frame_idx: 0,
                        slot,
                        var: spec.var,
                        elem: None,
                        via_param: None,
                    },
                ));
            } else {
                params.push((spec.slot, v));
            }
        }
        if TRACE {
            self.uses_stack.push(Vec::new());
        }
        self.push_frame(proc, Some(0), params, bindings, None, None);
        if TRACE {
            self.fire_call_enter(monitor, &entry_args);
        }
        self.exec::<TRACE>(proc, 2, monitor)?;

        let mut outs = Vec::new();
        for spec in &callee.params {
            if spec.passes_back {
                if let Some(&(_, slot)) = self.frames[0].extras.iter().find(|(p, _)| *p == spec.var)
                {
                    outs.push((spec.var, self.frames[0].slots[slot as usize].clone()));
                }
            }
        }
        let result = callee
            .result
            .map(|(_, slot)| self.top().slots[slot as usize].clone());
        if TRACE {
            self.fire_call_exit(monitor, false);
        }
        self.frames.pop();
        if TRACE {
            self.fire_call_exit(monitor, false);
        }
        self.frames.pop();
        Ok(ProcRun {
            outs,
            result,
            output: std::mem::take(&mut self.output),
            steps: self.steps,
        })
    }

    // ------------------------------------------------------------------
    // Frames and locations
    // ------------------------------------------------------------------

    fn push_frame(
        &mut self,
        proc: ProcId,
        static_link: Option<usize>,
        params: Vec<(u32, Value)>,
        bindings: Vec<(VarId, VmLoc)>,
        site_stmt: Option<gadt_pascal::ast::StmtId>,
        ret: Option<ReturnCtx>,
    ) {
        let vproc = self.program.proc(proc);
        let mut slots = vproc.zeros.clone();
        for (slot, v) in params {
            slots[slot as usize] = v;
        }
        let id = self.next_frame;
        self.next_frame += 1;
        let call = self.next_call;
        self.next_call += 1;
        self.frames.push(VmFrame {
            id,
            call,
            proc,
            static_link,
            slots,
            extras: Vec::new(),
            bindings,
            loop_stack: Vec::new(),
            nl_reads: Vec::new(),
            nl_written: Vec::new(),
            ref_read: Vec::new(),
            ref_written: Vec::new(),
            site_stmt,
            stack_base: self.stack.len(),
            uses_top: self.uses_stack.len().saturating_sub(1),
            ret,
        });
    }

    fn top(&self) -> &VmFrame {
        self.frames.last().expect("frame stack nonempty")
    }

    /// Resolves a compile-time [`SlotRef`] against the current frame
    /// stack: a fixed number of static-link hops, then (for reference
    /// parameters) one binding lookup.
    fn resolve(&self, sr: &SlotRef) -> VmLoc {
        let mut idx = self.frames.len() - 1;
        for _ in 0..sr.hops {
            idx = self.frames[idx]
                .static_link
                .expect("variable owner must be on the static chain");
        }
        if sr.binding {
            let f = &self.frames[idx];
            let (_, b) = f
                .bindings
                .iter()
                .find(|(p, _)| *p == sr.var)
                .expect("reference parameter is bound");
            VmLoc {
                via_param: Some(sr.var),
                ..*b
            }
        } else {
            VmLoc {
                frame_idx: idx,
                slot: sr.slot,
                var: sr.var,
                elem: None,
                via_param: None,
            }
        }
    }

    fn memloc(&self, loc: VmLoc) -> MemLoc {
        MemLoc {
            frame: self.frames[loc.frame_idx].id,
            var: loc.var,
            elem: loc.elem,
        }
    }

    fn read_loc<const TRACE: bool>(&mut self, loc: VmLoc, span: Span) -> Result<Value> {
        let base = &self.frames[loc.frame_idx].slots[loc.slot as usize];
        let value = match loc.elem {
            None => base.clone(),
            Some(i) => match base {
                Value::Array(a) => a
                    .get(i)
                    .ok_or_else(|| {
                        rt_err(
                            format!("array index {i} out of bounds [{}..{}]", a.lo, a.hi()),
                            span,
                        )
                    })?
                    .clone(),
                _ => return Err(rt_err("indexing a non-array value", span)),
            },
        };
        if TRACE {
            if let Some(p) = loc.via_param {
                let f = self.frames.last_mut().expect("frame");
                if !f.ref_written.contains(&p) && !f.ref_read.contains(&p) {
                    f.ref_read.push(p);
                }
            }
            self.note_nonlocal_read(loc, &value);
        }
        Ok(value)
    }

    /// Reads without bookkeeping (incoming-value capture for reporting).
    fn peek_loc(&self, loc: VmLoc, span: Span) -> Result<Value> {
        let base = &self.frames[loc.frame_idx].slots[loc.slot as usize];
        match loc.elem {
            None => Ok(base.clone()),
            Some(i) => match base {
                Value::Array(a) => a
                    .get(i)
                    .cloned()
                    .ok_or_else(|| rt_err("array index out of bounds", span)),
                _ => Err(rt_err("indexing a non-array value", span)),
            },
        }
    }

    fn write_loc<const TRACE: bool>(&mut self, loc: VmLoc, value: Value, span: Span) -> Result<()> {
        if TRACE {
            if let Some(p) = loc.via_param {
                let f = self.frames.last_mut().expect("frame");
                if !f.ref_written.contains(&p) {
                    f.ref_written.push(p);
                }
            }
            self.note_nonlocal_write(loc);
        }
        let base = &mut self.frames[loc.frame_idx].slots[loc.slot as usize];
        match loc.elem {
            None => {
                *base = value;
                Ok(())
            }
            Some(i) => match base {
                Value::Array(a) => {
                    let (lo, hi) = (a.lo, a.hi());
                    let slot = a.get_mut(i).ok_or_else(|| {
                        rt_err(format!("array index {i} out of bounds [{lo}..{hi}]"), span)
                    })?;
                    *slot = value;
                    Ok(())
                }
                _ => Err(rt_err("indexing a non-array value", span)),
            },
        }
    }

    fn note_nonlocal_read(&mut self, loc: VmLoc, value: &Value) {
        let top = self.frames.len() - 1;
        if loc.via_param.is_some() || loc.frame_idx >= top {
            return;
        }
        for idx in ((loc.frame_idx + 1)..=top).rev() {
            let already_written = self.frames[idx].nl_written.contains(&loc.var);
            let already_read = self.frames[idx].nl_reads.iter().any(|(v, _)| *v == loc.var);
            if !already_written && !already_read {
                let v = value.clone();
                self.frames[idx].nl_reads.push((loc.var, v));
            }
        }
    }

    fn note_nonlocal_write(&mut self, loc: VmLoc) {
        let top = self.frames.len() - 1;
        if loc.via_param.is_some() || loc.frame_idx >= top {
            return;
        }
        for idx in (loc.frame_idx + 1)..=top {
            if !self.frames[idx].nl_written.contains(&loc.var) {
                self.frames[idx].nl_written.push(loc.var);
            }
        }
    }

    /// What the interpreter's `frames[idx].vars.get(&v)` returns: `None`
    /// when the variable is a reference parameter bound in that frame
    /// (bindings shadow storage) or not stored there at all.
    fn frame_value(&self, idx: usize, v: VarId) -> Option<&Value> {
        let f = &self.frames[idx];
        if f.bindings.iter().any(|(p, _)| *p == v) {
            return None;
        }
        if let Some(&slot) = self.program.proc(f.proc).slot_of.get(&v) {
            return Some(&f.slots[slot as usize]);
        }
        f.extras
            .iter()
            .find(|(p, _)| *p == v)
            .map(|&(_, slot)| &f.slots[slot as usize])
    }

    // ------------------------------------------------------------------
    // Events
    // ------------------------------------------------------------------

    fn fire_call_enter(&mut self, monitor: &mut dyn Monitor, args: &[(VarId, Value)]) {
        let f = self.top();
        let mut bindings: Vec<(VarId, MemLoc)> = f
            .bindings
            .iter()
            .map(|(p, loc)| {
                (
                    *p,
                    MemLoc {
                        frame: self.frames[loc.frame_idx].id,
                        var: loc.var,
                        elem: loc.elem,
                    },
                )
            })
            .collect();
        bindings.sort_by_key(|(p, _)| *p);
        let f = self.top();
        let ev = Event::CallEnter {
            call: f.call,
            frame: f.id,
            proc: f.proc,
            site_stmt: f.site_stmt,
            args,
            bindings: &bindings,
            depth: self.frames.len() - 1,
        };
        monitor.on_event(self.module, &ev);
    }

    fn fire_call_exit(&mut self, monitor: &mut dyn Monitor, via_goto: bool) {
        let f = self.frames.last().expect("frame");
        let vproc = self.program.proc(f.proc);
        let mut outs = Vec::new();
        for spec in &vproc.params {
            if spec.passes_back {
                if let Some((_, b)) = f.bindings.iter().find(|(p, _)| *p == spec.var) {
                    let base = &self.frames[b.frame_idx].slots[b.slot as usize];
                    let v = match b.elem {
                        None => base.clone(),
                        Some(i) => match base {
                            Value::Array(a) => a.get(i).cloned().unwrap_or(Value::Int(0)),
                            other => other.clone(),
                        },
                    };
                    outs.push((spec.var, v));
                }
            }
        }
        if let Some((rv, slot)) = vproc.result {
            outs.push((rv, f.slots[slot as usize].clone()));
        }
        let nl_writes: Vec<(VarId, Value)> = f
            .nl_written
            .iter()
            .map(|&v| {
                // Resolve from this frame's perspective, by owner-proc
                // walk (with the interpreter's frame-0 fallback).
                let owner = self.module.var(v).owner;
                let mut idx = self.frames.len() - 1;
                let frame_idx = loop {
                    if self.frames[idx].proc == owner {
                        break idx;
                    }
                    match self.frames[idx].static_link {
                        Some(n) => idx = n,
                        None => break 0,
                    }
                };
                let val = self
                    .frame_value(frame_idx, v)
                    .cloned()
                    .unwrap_or(Value::Int(0));
                (v, val)
            })
            .collect();
        let f = self.top();
        let ev = Event::CallExit {
            call: f.call,
            frame: f.id,
            proc: f.proc,
            outs: &outs,
            nonlocal_reads: &f.nl_reads,
            nonlocal_writes: &nl_writes,
            param_reads: &f.ref_read,
            via_goto,
        };
        monitor.on_event(self.module, &ev);
    }

    /// Step counting + limit check alone: the fast path's replacement
    /// for [`Vm::fire_step`] (same count, same error, no event).
    #[inline]
    fn bump_step(&mut self) -> Result<()> {
        self.steps += 1;
        if self.steps > self.limits.max_steps {
            return Err(rt_err(
                format!("step limit of {} exceeded", self.limits.max_steps),
                Span::dummy(),
            ));
        }
        Ok(())
    }

    fn fire_step(
        &mut self,
        monitor: &mut dyn Monitor,
        step: u32,
        defs: &[MemLoc],
        uses: &[MemLoc],
        branch_taken: Option<bool>,
    ) -> Result<()> {
        let ctx = self.program.proc(self.top().proc).steps[step as usize];
        self.bump_step()?;
        let f = self.top();
        let ev = Event::Step {
            idx: self.steps,
            frame: f.id,
            proc: f.proc,
            block: ctx.block,
            instr: ctx.instr.map(|i| i as usize),
            stmt: ctx.stmt,
            defs,
            uses,
            branch_taken,
        };
        monitor.on_event(self.module, &ev);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Loop events
    // ------------------------------------------------------------------

    fn loop_snapshot(&self, lid: LoopId) -> Vec<(VarId, Value)> {
        let info = &self.program.loops[lid.0 as usize];
        let mut snap = Vec::new();
        for (v, sr) in &info.snapshot {
            let loc = self.resolve(sr);
            if let Ok(val) = self.peek_loc(loc, Span::dummy()) {
                snap.push((*v, val));
            }
        }
        snap
    }

    fn transfer_loops(&mut self, to_block: BlockId, monitor: &mut dyn Monitor) {
        let proc = self.top().proc;
        let to_loops = &self.program.proc(proc).block_loops[to_block.0 as usize];
        let cur: Vec<LoopId> = self.top().loop_stack.iter().map(|(l, _, _)| *l).collect();
        let mut common = 0;
        while common < cur.len() && common < to_loops.len() && cur[common] == to_loops[common] {
            common += 1;
        }
        let entering: Vec<LoopId> = to_loops[common..].to_vec();
        let to_len = to_loops.len();
        // Exit loops we left, innermost first.
        for i in (common..cur.len()).rev() {
            let (lid, instance, iters) = self.top().loop_stack[i];
            let vars = self.loop_snapshot(lid);
            let frame = self.top().id;
            monitor.on_event(
                self.module,
                &Event::LoopExit {
                    loop_id: lid,
                    frame,
                    instance,
                    iterations: iters,
                    vars: &vars,
                },
            );
            self.frames.last_mut().expect("frame").loop_stack.pop();
        }
        // Enter loops newly containing the target.
        for lid in entering {
            let instance = self.next_loop_instance;
            self.next_loop_instance += 1;
            let frame = self.top().id;
            monitor.on_event(
                self.module,
                &Event::LoopEnter {
                    loop_id: lid,
                    frame,
                    instance,
                },
            );
            self.frames
                .last_mut()
                .expect("frame")
                .loop_stack
                .push((lid, instance, 1));
        }
        // Back-edge to the innermost active loop's header = new iteration.
        if let Some(&(lid, instance, iters)) = self.top().loop_stack.last() {
            if common == to_len
                && common == cur.len()
                && self.program.loops[lid.0 as usize].header == to_block
            {
                let iteration = iters + 1;
                let vars = self.loop_snapshot(lid);
                let frame = self.top().id;
                monitor.on_event(
                    self.module,
                    &Event::LoopIter {
                        loop_id: lid,
                        frame,
                        instance,
                        iteration,
                        vars: &vars,
                    },
                );
                self.frames
                    .last_mut()
                    .expect("frame")
                    .loop_stack
                    .last_mut()
                    .expect("loop")
                    .2 = iteration;
            }
        }
    }

    fn exit_all_loops(&mut self, monitor: &mut dyn Monitor) {
        while let Some(&(lid, instance, iters)) = self.top().loop_stack.last() {
            let vars = self.loop_snapshot(lid);
            let frame = self.top().id;
            monitor.on_event(
                self.module,
                &Event::LoopExit {
                    loop_id: lid,
                    frame,
                    instance,
                    iterations: iters,
                    vars: &vars,
                },
            );
            self.frames.last_mut().expect("frame").loop_stack.pop();
        }
    }

    // ------------------------------------------------------------------
    // The dispatch loop
    // ------------------------------------------------------------------

    /// Runs bytecode starting at the top frame's entry until the frame at
    /// `base_frames` returns. `base_frames` is 1 for whole-program runs
    /// and 2 for isolated procedure runs.
    ///
    /// Monomorphized over `TRACE`: the `false` instantiation compiles
    /// out every event construction, uses-buffer push, and read/write
    /// bookkeeping while keeping step counting, limits, and all runtime
    /// errors byte-identical to the monitored run.
    fn exec<const TRACE: bool>(
        &mut self,
        start: ProcId,
        base_frames: usize,
        monitor: &mut dyn Monitor,
    ) -> Result<()> {
        let mut proc = start;
        let mut vproc: &VmProc = self.program.proc(proc);
        let mut ip = vproc.block_start[vproc.entry.0 as usize];
        if TRACE {
            self.transfer_loops(vproc.entry, monitor);
        }
        macro_rules! reload {
            ($p:expr, $i:expr) => {{
                proc = $p;
                vproc = self.program.proc(proc);
                ip = $i;
            }};
        }
        loop {
            let op = &vproc.code[ip];
            ip += 1;
            match op {
                Op::SpanCtx(span) => self.cur_span = *span,
                Op::Const(k) => self.stack.push(vproc.consts[*k as usize].clone()),
                Op::Load(sr) => {
                    let loc = self.resolve(&vproc.slotrefs[*sr as usize]);
                    if TRACE {
                        let ml = self.memloc(loc);
                        self.uses_stack.last_mut().expect("uses").push(ml);
                    }
                    let v = self.read_loc::<TRACE>(loc, self.cur_span)?;
                    self.stack.push(v);
                }
                Op::LoadElem(sr) => {
                    let loc = self.indexed_loc(&vproc.slotrefs[*sr as usize])?;
                    if TRACE {
                        let ml = self.memloc(loc);
                        self.uses_stack.last_mut().expect("uses").push(ml);
                    }
                    let v = self.read_loc::<TRACE>(loc, self.cur_span)?;
                    self.stack.push(v);
                }
                Op::LoadLoadBin { a, b, op } => {
                    let la = self.resolve(&vproc.slotrefs[*a as usize]);
                    if TRACE {
                        let ml = self.memloc(la);
                        self.uses_stack.last_mut().expect("uses").push(ml);
                    }
                    let va = self.read_loc::<TRACE>(la, self.cur_span)?;
                    let lb = self.resolve(&vproc.slotrefs[*b as usize]);
                    if TRACE {
                        let ml = self.memloc(lb);
                        self.uses_stack.last_mut().expect("uses").push(ml);
                    }
                    let vb = self.read_loc::<TRACE>(lb, self.cur_span)?;
                    let r = eval_binary_op(*op, va, vb, self.cur_span)?;
                    self.stack.push(r);
                }
                Op::LoadConstBin { sr, k, op } => {
                    let loc = self.resolve(&vproc.slotrefs[*sr as usize]);
                    if TRACE {
                        let ml = self.memloc(loc);
                        self.uses_stack.last_mut().expect("uses").push(ml);
                    }
                    let v = self.read_loc::<TRACE>(loc, self.cur_span)?;
                    let c = vproc.consts[*k as usize].clone();
                    let r = eval_binary_op(*op, v, c, self.cur_span)?;
                    self.stack.push(r);
                }
                Op::Unary(op) => {
                    let v = self.stack.pop().expect("operand");
                    let r = eval_unary_op(*op, v, self.cur_span)?;
                    self.stack.push(r);
                }
                Op::Binary(op) => {
                    let b = self.stack.pop().expect("operand");
                    let a = self.stack.pop().expect("operand");
                    let r = eval_binary_op(*op, a, b, self.cur_span)?;
                    self.stack.push(r);
                }
                Op::IntrinsicCall(which) => {
                    let v = self.stack.pop().expect("operand");
                    let r = eval_intrinsic_op(*which, v, self.cur_span)?;
                    self.stack.push(r);
                }
                Op::BeginCall => {
                    if self.frames.len() >= self.limits.max_depth {
                        return Err(rt_err(
                            format!("call depth limit of {} exceeded", self.limits.max_depth),
                            self.cur_span,
                        ));
                    }
                    self.pending.push(PendingCall::default());
                    if TRACE {
                        self.uses_stack.push(Vec::new());
                    }
                }
                Op::PushArg { var, slot, widen } => {
                    let v = self.stack.pop().expect("argument");
                    let v = match (&v, widen) {
                        (Value::Int(n), true) => Value::Real(*n as f64),
                        _ => v,
                    };
                    let p = self.pending.last_mut().expect("pending call");
                    if TRACE {
                        p.entry_args.push((*var, v.clone()));
                    }
                    p.params.push((*slot, v));
                }
                Op::RefArg { sr, var, indexed } => {
                    let loc = if *indexed {
                        self.indexed_loc(&vproc.slotrefs[*sr as usize])?
                    } else {
                        self.resolve(&vproc.slotrefs[*sr as usize])
                    };
                    // The incoming-value capture doubles as the bounds
                    // check for indexed ref args: it must run (and its
                    // error must surface) in both modes.
                    let current = self.peek_loc(loc, self.cur_span)?;
                    let p = self.pending.last_mut().expect("pending call");
                    if TRACE {
                        p.entry_args.push((*var, current));
                    }
                    p.bindings.push((*var, loc));
                }
                Op::DoCall(site_idx) => {
                    let site = vproc.calls[*site_idx as usize];
                    // The call's own Step event, in the caller's context,
                    // before the callee runs.
                    if TRACE {
                        let uses = self.uses_stack.pop().expect("call uses");
                        self.fire_step(monitor, site.step, &[], &uses, None)?;
                        // Reuse the argument buffer as the callee's exec
                        // buffer.
                        let mut buf = uses;
                        buf.clear();
                        self.uses_stack.push(buf);
                    } else {
                        self.bump_step()?;
                    }
                    // Static link: nearest frame on the current static
                    // chain whose proc is the callee's lexical parent.
                    let callee = self.program.proc(site.callee);
                    let static_link = match callee.parent {
                        None => None,
                        Some(parent) => {
                            let mut idx = self.frames.len() - 1;
                            loop {
                                if self.frames[idx].proc == parent {
                                    break Some(idx);
                                }
                                match self.frames[idx].static_link {
                                    Some(n) => idx = n,
                                    None => break Some(0),
                                }
                            }
                        }
                    };
                    let pend = self.pending.pop().expect("pending call");
                    let ret = ReturnCtx {
                        proc,
                        ip,
                        expr_pos: site.expr_pos,
                        span: self.cur_span,
                    };
                    self.push_frame(
                        site.callee,
                        static_link,
                        pend.params,
                        pend.bindings,
                        site.site_stmt,
                        Some(ret),
                    );
                    if TRACE {
                        self.fire_call_enter(monitor, &pend.entry_args);
                    }
                    let entry = callee.entry;
                    reload!(site.callee, callee.block_start[entry.0 as usize]);
                    if TRACE {
                        self.transfer_loops(entry, monitor);
                    }
                }
                Op::Store {
                    sr,
                    indexed,
                    ty,
                    step,
                } => {
                    let loc = if *indexed {
                        self.indexed_loc(&vproc.slotrefs[*sr as usize])?
                    } else {
                        self.resolve(&vproc.slotrefs[*sr as usize])
                    };
                    let value = self.stack.pop().expect("store value");
                    let value = self.coerce(value, &vproc.store_tys[*ty as usize])?;
                    if TRACE {
                        let def = self.memloc(loc);
                        self.write_loc::<true>(loc, value, self.cur_span)?;
                        let uses = std::mem::take(self.uses_stack.last_mut().expect("uses"));
                        self.fire_step(monitor, *step, &[def], &uses, None)?;
                        let mut buf = uses;
                        buf.clear();
                        *self.uses_stack.last_mut().expect("uses") = buf;
                    } else {
                        self.write_loc::<false>(loc, value, self.cur_span)?;
                        self.bump_step()?;
                    }
                }
                Op::ReadInto {
                    sr,
                    indexed,
                    ty,
                    step,
                } => {
                    let loc = if *indexed {
                        self.indexed_loc(&vproc.slotrefs[*sr as usize])?
                    } else {
                        self.resolve(&vproc.slotrefs[*sr as usize])
                    };
                    let raw = self
                        .input
                        .pop_front()
                        .ok_or_else(|| rt_err("input exhausted", self.cur_span))?;
                    let value = self.coerce(raw, &vproc.store_tys[*ty as usize])?;
                    if TRACE {
                        let def = self.memloc(loc);
                        self.write_loc::<true>(loc, value, self.cur_span)?;
                        let uses = std::mem::take(self.uses_stack.last_mut().expect("uses"));
                        self.fire_step(monitor, *step, &[def], &uses, None)?;
                        let mut buf = uses;
                        buf.clear();
                        *self.uses_stack.last_mut().expect("uses") = buf;
                    } else {
                        self.write_loc::<false>(loc, value, self.cur_span)?;
                        self.bump_step()?;
                    }
                }
                Op::WritePush => {
                    let v = self.stack.pop().expect("write value");
                    self.output.push_str(&v.to_string());
                }
                Op::WriteEnd { newline, step } => {
                    if *newline {
                        self.output.push('\n');
                    }
                    if TRACE {
                        let uses = std::mem::take(self.uses_stack.last_mut().expect("uses"));
                        self.fire_step(monitor, *step, &[], &uses, None)?;
                        let mut buf = uses;
                        buf.clear();
                        *self.uses_stack.last_mut().expect("uses") = buf;
                    } else {
                        self.bump_step()?;
                    }
                }
                Op::JumpTo(b) => {
                    if TRACE {
                        let target = BlockId(*b);
                        self.transfer_loops(target, monitor);
                    }
                    ip = vproc.block_start[*b as usize];
                }
                Op::BranchIf {
                    then_bb,
                    else_bb,
                    step,
                } => {
                    let v = self.stack.pop().expect("condition");
                    let taken = v
                        .as_bool()
                        .ok_or_else(|| rt_err("branch condition is not boolean", Span::dummy()))?;
                    if TRACE {
                        let uses = std::mem::take(self.uses_stack.last_mut().expect("uses"));
                        self.fire_step(monitor, *step, &[], &uses, Some(taken))?;
                        let mut buf = uses;
                        buf.clear();
                        *self.uses_stack.last_mut().expect("uses") = buf;
                    } else {
                        self.bump_step()?;
                    }
                    let b = if taken { *then_bb } else { *else_bb };
                    let target = BlockId(b);
                    if TRACE {
                        self.transfer_loops(target, monitor);
                    }
                    ip = vproc.block_start[b as usize];
                }
                Op::CmpBranch {
                    op,
                    then_bb,
                    else_bb,
                    step,
                } => {
                    let b = self.stack.pop().expect("operand");
                    let a = self.stack.pop().expect("operand");
                    let r = eval_binary_op(*op, a, b, self.cur_span)?;
                    let taken = r
                        .as_bool()
                        .ok_or_else(|| rt_err("branch condition is not boolean", Span::dummy()))?;
                    if TRACE {
                        let uses = std::mem::take(self.uses_stack.last_mut().expect("uses"));
                        self.fire_step(monitor, *step, &[], &uses, Some(taken))?;
                        let mut buf = uses;
                        buf.clear();
                        *self.uses_stack.last_mut().expect("uses") = buf;
                    } else {
                        self.bump_step()?;
                    }
                    let t = if taken { *then_bb } else { *else_bb };
                    let target = BlockId(t);
                    if TRACE {
                        self.transfer_loops(target, monitor);
                    }
                    ip = vproc.block_start[t as usize];
                }
                Op::Ret => {
                    if TRACE {
                        self.exit_all_loops(monitor);
                    }
                    if self.frames.len() == base_frames {
                        return Ok(());
                    }
                    let result = vproc
                        .result
                        .map(|(_, slot)| self.top().slots[slot as usize].clone());
                    if TRACE {
                        self.fire_call_exit(monitor, false);
                    }
                    let popped = self.frames.pop().expect("frame");
                    if TRACE {
                        self.uses_stack.pop();
                    }
                    let rctx = popped.ret.expect("non-base frame has a return ctx");
                    self.cur_span = rctx.span;
                    if rctx.expr_pos {
                        match result {
                            Some(v) => {
                                if TRACE {
                                    if let Some((rv, _)) = vproc.result {
                                        self.uses_stack.last_mut().expect("uses").push(MemLoc {
                                            frame: popped.id,
                                            var: rv,
                                            elem: None,
                                        });
                                    }
                                }
                                self.stack.push(v);
                            }
                            None => {
                                return Err(rt_err("function returned no value", rctx.span));
                            }
                        }
                    }
                    reload!(rctx.proc, rctx.ip);
                }
                Op::Goto(g) => {
                    let site = vproc.gotos[*g as usize].clone();
                    if TRACE {
                        self.fire_step(monitor, site.step, &[], &[], None)?;
                        self.exit_all_loops(monitor);
                    } else {
                        self.bump_step()?;
                    }
                    if self.top().proc == site.owner {
                        let target = site.target;
                        self.land::<TRACE>(target, monitor);
                        let lp = self.top().proc;
                        reload!(lp, self.program.proc(lp).block_start[target.0 as usize]);
                        continue;
                    }
                    loop {
                        if self.frames.len() <= base_frames {
                            // Only reachable from isolated procedure runs:
                            // main-program lowering always finds the owner.
                            return Err(rt_err(
                                "non-local goto escaped an isolated procedure run",
                                Span::dummy(),
                            ));
                        }
                        if TRACE {
                            self.fire_call_exit(monitor, true);
                        }
                        let popped = self.frames.pop().expect("frame");
                        if TRACE {
                            self.uses_stack.pop();
                        }
                        let rctx = popped.ret.expect("non-base frame has a return ctx");
                        self.cur_span = rctx.span;
                        if rctx.expr_pos {
                            return Err(rt_err(
                                "non-local goto out of a function used in an expression",
                                rctx.span,
                            ));
                        }
                        if self.top().proc == site.owner {
                            let target = site.target;
                            self.land::<TRACE>(target, monitor);
                            let lp = self.top().proc;
                            reload!(lp, self.program.proc(lp).block_start[target.0 as usize]);
                            break;
                        }
                        if TRACE {
                            self.exit_all_loops(monitor);
                        }
                    }
                }
            }
        }
    }

    /// Lands a non-local goto in the (already top) owner frame: discard
    /// abandoned partial evaluation, then transfer loop context.
    fn land<const TRACE: bool>(&mut self, target: BlockId, monitor: &mut dyn Monitor) {
        let f = self.frames.last().expect("frame");
        let (sb, ut) = (f.stack_base, f.uses_top);
        self.stack.truncate(sb);
        if TRACE {
            self.uses_stack.truncate(ut + 1);
            self.uses_stack.last_mut().expect("uses").clear();
        }
        self.pending.clear();
        if TRACE {
            self.transfer_loops(target, monitor);
        }
    }

    /// Pops an index and resolves an element location (the interpreter's
    /// `loc_with_elem` with an index present).
    fn indexed_loc(&mut self, sr: &SlotRef) -> Result<VmLoc> {
        let iv = self.stack.pop().expect("index");
        let i = iv
            .as_int()
            .ok_or_else(|| rt_err("array index is not an integer", self.cur_span))?;
        let base = self.resolve(sr);
        if base.elem.is_some() {
            return Err(rt_err("cannot index a scalar location", self.cur_span));
        }
        Ok(VmLoc {
            elem: Some(i),
            ..base
        })
    }

    fn coerce(&self, value: Value, ty: &StoreTy) -> Result<Value> {
        match ty {
            StoreTy::Direct(t) => coerce_store(value, t, self.cur_span),
            StoreTy::ElemOfNonArray => Err(rt_err("indexing a non-array variable", self.cur_span)),
        }
    }
}
