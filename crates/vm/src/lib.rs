//! `gadt-vm`: a compiled bytecode execution core for the GADT
//! reproduction.
//!
//! The tree-walking interpreter in `gadt-pascal` is the semantic
//! reference: simple, auditable, and slow — every variable access is a
//! name lookup behind a static-link walk, and every re-execution (trace,
//! T-GEN case, mutant run) walks the CFG instruction tree again. This
//! crate lowers the CFG once into flat per-procedure bytecode with
//! **resolved variable slots** ([`compile::VmProgram`]) and executes it
//! on an explicit stack-frame VM ([`exec::Vm`]) that fires the *exact*
//! same [`Event`](gadt_pascal::interp::Event) stream: traces, dynamic
//! slices, execution trees, and campaign journals are byte-identical
//! across engines, which the differential harnesses in this repository
//! verify continuously.
//!
//! # Engine selection
//!
//! [`Engine`] names an execution strategy; [`PreparedEngine`] pairs a
//! module with a ready-to-run backend and exposes both entry points
//! through the [`CallSemantics`] trait:
//!
//! ```
//! use gadt_pascal::{parser::parse_program, sema::analyze, cfg::lower};
//! use gadt_pascal::interp::{Limits, NoopMonitor};
//! use gadt_vm::{CallSemantics, Engine, PreparedEngine};
//!
//! let module = analyze(parse_program(
//!     "program P; var x: integer; begin x := 2 + 2; writeln(x) end.",
//! ).unwrap()).unwrap();
//! let cfg = lower(&module);
//! let engine = PreparedEngine::new(&module, &cfg, Engine::Vm);
//! let out = engine
//!     .run_with(Vec::new(), Limits::default(), &mut NoopMonitor)
//!     .unwrap();
//! assert_eq!(out.output_text(), "4\n");
//! ```
//!
//! A `PreparedEngine` borrows the module and CFG immutably and keeps all
//! mutable run state per call, so one compiled program can serve any
//! number of concurrent runs (mutation campaigns share one across worker
//! threads).

pub mod compile;
pub mod conformance;
pub mod exec;

pub use compile::VmProgram;
pub use exec::Vm;

use gadt_pascal::cfg::ProgramCfg;
use gadt_pascal::error::Result;
use gadt_pascal::interp::{Interpreter, Limits, Monitor, NoopMonitor, Outcome, ProcRun};
use gadt_pascal::sema::{Module, ProcId};
use gadt_pascal::value::Value;
use std::sync::Arc;

/// Which execution engine runs the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// The tree-walking reference interpreter
    /// ([`gadt_pascal::interp::Interpreter`]) — the semantic reference,
    /// retained for differential verification.
    TreeWalker,
    /// The compiled bytecode VM ([`exec::Vm`]) — the default engine.
    #[default]
    Vm,
}

impl Engine {
    /// A short stable name, for reports and benchmark records.
    pub fn name(self) -> &'static str {
        match self {
            Engine::TreeWalker => "tree",
            Engine::Vm => "vm",
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The call-semantics boundary every execution engine implements: run
/// the whole program, or one top-level procedure in isolation, feeding
/// events to a monitor. Implementations take `&self` — all per-run state
/// is internal to the call — so one prepared engine serves concurrent
/// callers.
pub trait CallSemantics {
    /// Runs the whole program with the given input queue.
    ///
    /// # Errors
    /// Runtime errors (identical across engines, message and span).
    fn run_with(
        &self,
        input: Vec<Value>,
        limits: Limits,
        monitor: &mut dyn Monitor,
    ) -> Result<Outcome>;

    /// Runs one top-level procedure in isolation (the T-GEN entry
    /// point).
    ///
    /// # Errors
    /// Runtime errors, plus the argument-arity/type and isolation
    /// errors of [`Interpreter::run_proc_with`].
    fn run_proc_with(
        &self,
        proc: ProcId,
        args: Vec<Value>,
        limits: Limits,
        monitor: &mut dyn Monitor,
    ) -> Result<ProcRun>;

    /// Monitor-free whole-program run: identical output, step count,
    /// final globals, and errors to [`CallSemantics::run_with`] with a
    /// no-op monitor, but engines may skip all observation machinery.
    /// Use when only the *result* matters (kill checks, differential
    /// output comparison).
    ///
    /// # Errors
    /// Same conditions as [`CallSemantics::run_with`].
    fn run_fast(&self, input: Vec<Value>, limits: Limits) -> Result<Outcome> {
        self.run_with(input, limits, &mut NoopMonitor)
    }

    /// Monitor-free isolated procedure run (the verdict-only T-GEN
    /// path); result-identical to [`CallSemantics::run_proc_with`] with
    /// a no-op monitor.
    ///
    /// # Errors
    /// Same conditions as [`CallSemantics::run_proc_with`].
    fn run_proc_fast(&self, proc: ProcId, args: Vec<Value>, limits: Limits) -> Result<ProcRun> {
        self.run_proc_with(proc, args, limits, &mut NoopMonitor)
    }
}

enum Backend {
    /// Tree-walker: one shared lowering, handed by `Arc` to a fresh
    /// interpreter per run (no per-run CFG clone).
    Tree(Arc<ProgramCfg>),
    /// Bytecode VM: compiled once, shared by every run.
    Vm(VmProgram),
}

/// A module paired with a ready-to-run execution backend.
pub struct PreparedEngine<'m> {
    module: &'m Module,
    engine: Engine,
    backend: Backend,
}

impl<'m> PreparedEngine<'m> {
    /// Prepares an engine over an already-lowered CFG. For
    /// [`Engine::Vm`] this compiles the bytecode program (one-time
    /// cost, amortized over every subsequent run).
    pub fn new(module: &'m Module, cfg: &'m ProgramCfg, engine: Engine) -> Self {
        let backend = match engine {
            // One clone total at preparation time; every run shares it.
            Engine::TreeWalker => Backend::Tree(Arc::new(cfg.clone())),
            Engine::Vm => Backend::Vm(VmProgram::compile(module, cfg)),
        };
        PreparedEngine {
            module,
            engine,
            backend,
        }
    }

    /// Which engine this backend runs on.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The underlying module.
    pub fn module(&self) -> &'m Module {
        self.module
    }
}

impl std::fmt::Debug for PreparedEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedEngine")
            .field("engine", &self.engine)
            .finish()
    }
}

impl CallSemantics for PreparedEngine<'_> {
    fn run_with(
        &self,
        input: Vec<Value>,
        limits: Limits,
        monitor: &mut dyn Monitor,
    ) -> Result<Outcome> {
        match &self.backend {
            Backend::Tree(cfg) => {
                let mut interp = Interpreter::with_shared_cfg(self.module, Arc::clone(cfg));
                interp.set_limits(limits);
                interp.set_input(input);
                interp.run_with(monitor)
            }
            Backend::Vm(program) => {
                let mut vm = Vm::new(self.module, program);
                vm.set_limits(limits);
                vm.set_input(input);
                vm.run_with(monitor)
            }
        }
    }

    fn run_proc_with(
        &self,
        proc: ProcId,
        args: Vec<Value>,
        limits: Limits,
        monitor: &mut dyn Monitor,
    ) -> Result<ProcRun> {
        match &self.backend {
            Backend::Tree(cfg) => {
                let mut interp = Interpreter::with_shared_cfg(self.module, Arc::clone(cfg));
                interp.set_limits(limits);
                interp.run_proc_with(proc, args, monitor)
            }
            Backend::Vm(program) => {
                let mut vm = Vm::new(self.module, program);
                vm.set_limits(limits);
                vm.run_proc_with(proc, args, monitor)
            }
        }
    }

    fn run_fast(&self, input: Vec<Value>, limits: Limits) -> Result<Outcome> {
        match &self.backend {
            Backend::Tree(cfg) => {
                let mut interp = Interpreter::with_shared_cfg(self.module, Arc::clone(cfg));
                interp.set_limits(limits);
                interp.set_input(input);
                interp.run_with(&mut NoopMonitor)
            }
            Backend::Vm(program) => {
                let mut vm = Vm::new(self.module, program);
                vm.set_limits(limits);
                vm.set_input(input);
                vm.run()
            }
        }
    }

    fn run_proc_fast(&self, proc: ProcId, args: Vec<Value>, limits: Limits) -> Result<ProcRun> {
        match &self.backend {
            Backend::Tree(cfg) => {
                let mut interp = Interpreter::with_shared_cfg(self.module, Arc::clone(cfg));
                interp.set_limits(limits);
                interp.run_proc_with(proc, args, &mut NoopMonitor)
            }
            Backend::Vm(program) => {
                let mut vm = Vm::new(self.module, program);
                vm.set_limits(limits);
                vm.run_proc(proc, args)
            }
        }
    }
}
