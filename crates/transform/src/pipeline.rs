//! The complete transformation pipeline (paper §5.1 / §6) plus
//! instrumentation rendering and growth metrics.

use crate::gotos::{break_global_gotos, break_loop_gotos};
use crate::mapping::Mapping;
use gadt_pascal::ast::{Ident, ParamMode, ProcDecl, Stmt, StmtKind};
use gadt_pascal::error::{Diagnostic, Result, Stage};
use gadt_pascal::pretty::print_program;
use gadt_pascal::sema::{analyze, Module};
use gadt_pascal::span::Span;

/// A transformed, re-analyzed program plus its construct mapping.
#[derive(Debug, Clone)]
pub struct Transformed {
    /// The transformed module (equivalent semantics, no global side
    /// effects at the procedure level, no global gotos, loops without
    /// exit gotos).
    pub module: Module,
    /// The original↔transformed construct mapping (§5.1).
    pub mapping: Mapping,
}

/// Runs the full transformation phase:
///
/// 1. global variables → `in`/`out`/`var` parameters (phase A);
/// 2. gotos out of `while`/`repeat` loops → leave flags (phase B);
/// 3. global gotos → exit-condition parameters (phase C);
///
/// phases B and C alternate until a fixpoint, because each can expose
/// work for the other (the paper's "handled by a later transformation").
///
/// # Errors
/// * semantic errors in intermediate programs (a transformation bug —
///   surfaced rather than hidden);
/// * unsupported shapes: a function with exit side-effects called inside
///   an expression, or label capture (see [`break_global_gotos`]).
///
/// # Examples
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gadt_pascal::{sema::compile, testprogs};
/// use gadt_transform::transform;
/// let m = compile(testprogs::SECTION6_GLOBALS)?;
/// let t = transform(&m)?;
/// let p = t.module.proc_by_name("p").unwrap();
/// // The transformed p takes the globals as parameters.
/// assert_eq!(t.module.proc(p).params.len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn transform(module: &Module) -> Result<Transformed> {
    transform_observed(module, &mut gadt_obs::Recorder::disabled())
}

/// [`transform`] with instrumentation: wraps the phase in a
/// `transform` span and records the counters `transform.rounds`,
/// `transform.synthetic_stmts` and `transform.added_params`.
///
/// # Errors
/// Same as [`transform`].
pub fn transform_observed(module: &Module, rec: &mut gadt_obs::Recorder) -> Result<Transformed> {
    let span = gadt_obs::span!(rec, "transform");
    let result = transform_inner(module, rec);
    if let Ok(t) = &result {
        rec.add(
            "transform.synthetic_stmts",
            t.mapping.synthetic_stmts.len() as u64,
        );
        rec.add(
            "transform.added_params",
            t.mapping
                .added_params
                .values()
                .map(|v| v.len() as u64)
                .sum(),
        );
    }
    rec.exit(span);
    result
}

fn transform_inner(module: &Module, rec: &mut gadt_obs::Recorder) -> Result<Transformed> {
    let (prog, mut mapping) = crate::globals::convert_globals(module)?;
    let mut m = reanalyze(prog)?;
    for _round in 0..16 {
        rec.incr("transform.rounds");
        let (prog_b, map_b, changed_b) = break_loop_gotos(&m)?;
        if changed_b {
            mapping.merge(map_b);
            m = reanalyze(prog_b)?;
        }
        let (prog_c, map_c, changed_c) = break_global_gotos(&m)?;
        if changed_c {
            mapping.merge(map_c);
            m = reanalyze(prog_c)?;
        }
        if !changed_b && !changed_c {
            // Verify the §6 postconditions.
            debug_assert!(
                m.goto_res
                    .iter()
                    .all(|(s, (owner, _))| m.proc_of_stmt[s] == *owner),
                "global gotos must be eliminated"
            );
            return Ok(Transformed { module: m, mapping });
        }
    }
    Err(Diagnostic::new(
        Stage::Sema,
        "goto transformation did not converge",
        Span::dummy(),
    ))
}

fn reanalyze(prog: gadt_pascal::ast::Program) -> Result<Module> {
    let printed = print_program(&prog);
    analyze(prog).map_err(|e| {
        Diagnostic::new(
            Stage::Sema,
            format!(
                "transformed program failed re-analysis: {e}\n--- transformed source ---\n{printed}"
            ),
            e.span,
        )
    })
}

/// Statement-growth factor of a transformation (§9: "Small procedures
/// usually grow less than a factor of two after transformations").
pub fn growth_factor(original: &Module, transformed: &Transformed) -> f64 {
    let before = original.program.stmt_count().max(1) as f64;
    let after = transformed.module.program.stmt_count() as f64;
    after / before
}

/// Renders the transformed program with the paper's trace-generating
/// actions inserted (display only — the calls name conceptual runtime
/// routines; actual tracing happens through interpreter monitors):
///
/// ```pascal
/// procedure p(var y: …; in x: …; out z: …);
/// begin
///   create_exectree_rec;
///   save_incoming_values(x, y);
///   y := x + 1;
///   z := y - x;
///   save_outgoing_values(y, z);
/// end;
/// ```
pub fn instrumented_source(t: &Transformed) -> String {
    let mut program = t.module.program.clone();
    let mut next_stmt = program.next_stmt_id;
    let mut next_expr = program.next_expr_id;

    fn pseudo_call(name: &str, args: &[String], next_stmt: &mut u32, next_expr: &mut u32) -> Stmt {
        let arg_exprs = args
            .iter()
            .map(|a| {
                let e = gadt_pascal::ast::Expr {
                    id: gadt_pascal::ast::ExprId(*next_expr),
                    kind: gadt_pascal::ast::ExprKind::Name(Ident::synthetic(a.clone())),
                    span: Span::dummy(),
                };
                *next_expr += 1;
                e
            })
            .collect();
        let s = Stmt {
            id: gadt_pascal::ast::StmtId(*next_stmt),
            kind: StmtKind::Call {
                name: Ident::synthetic(name),
                args: arg_exprs,
            },
            span: Span::dummy(),
        };
        *next_stmt += 1;
        s
    }

    fn instrument(decl: &mut ProcDecl, next_stmt: &mut u32, next_expr: &mut u32) {
        for q in &mut decl.block.procs {
            instrument(q, next_stmt, next_expr);
        }
        let mut ins: Vec<String> = Vec::new();
        let mut outs: Vec<String> = Vec::new();
        for g in &decl.params {
            for n in &g.names {
                match g.mode {
                    ParamMode::Value | ParamMode::In => ins.push(n.name.clone()),
                    ParamMode::Var => {
                        ins.push(n.name.clone());
                        outs.push(n.name.clone());
                    }
                    ParamMode::Out => outs.push(n.name.clone()),
                }
            }
        }
        if decl.is_function() {
            outs.push(decl.name.name.clone());
        }
        let mut prologue = vec![pseudo_call(
            "create_exectree_rec",
            &[],
            next_stmt,
            next_expr,
        )];
        if !ins.is_empty() {
            prologue.push(pseudo_call(
                "save_incoming_values",
                &ins,
                next_stmt,
                next_expr,
            ));
        }
        let mut body = std::mem::take(&mut decl.block.body);
        prologue.append(&mut body);
        if !outs.is_empty() {
            prologue.push(pseudo_call(
                "save_outgoing_values",
                &outs,
                next_stmt,
                next_expr,
            ));
        }
        decl.block.body = prologue;
    }

    for decl in &mut program.block.procs {
        instrument(decl, &mut next_stmt, &mut next_expr);
    }
    print_program(&program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadt_pascal::interp::Interpreter;
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;
    use gadt_pascal::value::Value;

    fn outputs_match(src: &str, inputs: Vec<Vec<i64>>) {
        let m = compile(src).expect("compile");
        let t = transform(&m).expect("transform");
        for input in inputs {
            let mut i1 = Interpreter::new(&m);
            i1.set_input(input.iter().map(|&n| Value::Int(n)));
            let o1 = i1.run().expect("original");
            let mut i2 = Interpreter::new(&t.module);
            i2.set_input(input.iter().map(|&n| Value::Int(n)));
            let o2 = i2.run().expect("transformed");
            assert_eq!(o1.output_text(), o2.output_text(), "for input {input:?}");
        }
    }

    #[test]
    fn full_pipeline_on_all_fixtures() {
        for (name, src) in testprogs::ALL {
            if *name == "figure2" {
                outputs_match(src, vec![vec![0, 9], vec![5, 6, 7]]);
            } else {
                outputs_match(src, vec![vec![]]);
            }
        }
    }

    #[test]
    fn pipeline_removes_all_global_side_effects() {
        let m = compile(testprogs::SECTION6_GOTO).unwrap();
        let t = transform(&m).unwrap();
        let cfg = gadt_pascal::cfg::lower(&t.module);
        let (_cg, fx) = gadt_analysis::effects::analyze(&t.module, &cfg);
        for p in &t.module.procs {
            if p.id == gadt_pascal::sema::MAIN_PROC {
                continue;
            }
            assert!(
                !fx.has_global_side_effects(p.id),
                "{} keeps side effects: {:?}",
                p.name,
                fx.of(p.id)
            );
        }
    }

    #[test]
    fn combined_goto_and_globals() {
        // q writes a global *and* performs a non-local goto: both kinds of
        // side effect must be eliminated together.
        let src = "program t; var trace: integer;
             procedure p(n: integer);
             label 9;
               procedure q(n: integer);
               begin
                 trace := trace + 1;
                 if n > 0 then goto 9;
                 trace := trace + 10;
               end;
             begin
               q(n);
               trace := trace + 100;
               9: trace := trace + 1000;
             end;
             begin trace := 0; p(1); writeln(trace) end.";
        outputs_match(src, vec![vec![]]);
        let m = compile(src).unwrap();
        let t = transform(&m).unwrap();
        let cfg = gadt_pascal::cfg::lower(&t.module);
        let (_cg, fx) = gadt_analysis::effects::analyze(&t.module, &cfg);
        let q = t.module.proc_by_name("q").unwrap();
        assert!(!fx.has_global_side_effects(q));
    }

    #[test]
    fn growth_stays_under_factor_two_for_paper_examples() {
        for (name, src) in testprogs::ALL {
            let m = compile(src).unwrap();
            let t = transform(&m).unwrap();
            let g = growth_factor(&m, &t);
            assert!(
                g < 2.0,
                "{name}: growth factor {g:.2} exceeds the paper's bound"
            );
        }
    }

    #[test]
    fn instrumented_source_shows_trace_actions() {
        let m = compile(testprogs::SECTION6_GLOBALS).unwrap();
        let t = transform(&m).unwrap();
        let src = instrumented_source(&t);
        assert!(src.contains("create_exectree_rec"), "{src}");
        assert!(
            src.contains("save_incoming_values(x, y)")
                || src.contains("save_incoming_values(y, x)"),
            "{src}"
        );
        assert!(src.contains("save_outgoing_values(y, z)"), "{src}");
    }

    #[test]
    fn mapping_tracks_synthetic_statements() {
        let m = compile(testprogs::SECTION6_GOTO).unwrap();
        let t = transform(&m).unwrap();
        assert!(!t.mapping.synthetic_stmts.is_empty());
        // Every synthetic statement id actually exists in the program.
        let mut ids = std::collections::BTreeSet::new();
        t.module.program.block.walk_stmts(&mut |s| {
            ids.insert(s.id);
        });
        t.module.program.walk_procs(&mut |_, p| {
            p.block.walk_stmts(&mut |s| {
                ids.insert(s.id);
            })
        });
        for s in t.mapping.synthetic_stmts.keys() {
            assert!(ids.contains(s), "synthetic stmt {s} not in program");
        }
    }

    #[test]
    fn idempotent_on_clean_programs() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let t = transform(&m).unwrap();
        assert_eq!(t.module.program.block, m.program.block);
        assert!(t.mapping.synthetic_stmts.is_empty());
        assert!(t.mapping.added_params.is_empty());
    }

    #[test]
    fn observed_transform_records_span_and_counters() {
        let m = compile(testprogs::SECTION6_GOTO).unwrap();
        let mut rec = gadt_obs::Recorder::untimed();
        let t = transform_observed(&m, &mut rec).unwrap();
        let j = rec.finish();
        assert!(j.counter("transform.rounds") >= 1);
        assert_eq!(
            j.counter("transform.synthetic_stmts"),
            t.mapping.synthetic_stmts.len() as u64
        );
        let exits: Vec<_> = j
            .events_named("transform")
            .filter(|e| e.kind == gadt_obs::EventKind::Exit)
            .collect();
        assert_eq!(exits.len(), 1);
    }

    #[test]
    fn exit_param_values_match_goto_targets() {
        let m = compile(testprogs::SECTION6_GOTO).unwrap();
        let t = transform(&m).unwrap();
        let info = &t.mapping.exit_info["p/q"];
        assert_eq!(info.targets.len(), 1);
        let (&code, target) = info.targets.iter().next().unwrap();
        assert_eq!(target, &("p".to_string(), "9".to_string()));
        assert_eq!(t.mapping.exit_target("p/q", code).unwrap().1, "9");
    }
}
