//! Phase A: conversion of global (non-local) variables to parameters.
//!
//! §6: "Conversion of global variables to parameters" — every procedure
//! with variable side effects gets explicit parameters for the non-locals
//! it touches: `in` for read-only, `out` for write-only, `var` for
//! read-write. Call sites pass the variable (or the caller's own
//! synthesized parameter for it) explicitly. The paper's target form:
//!
//! ```pascal
//! procedure p (var y: …);        procedure p (var y: …; in x: …; out z: …);
//! begin                    ⟹    begin
//!   y := x + 1;                    y := x + 1;
//!   z := y - x                     z := y - x
//! end;                           end;
//! ```
//!
//! Aliasing caveat: if a call passes a variable by reference *and* the
//! callee receives the same variable as a synthesized read-only parameter,
//! an `in` (copy) parameter would break the alias. Such parameters are
//! escalated to `var` (reference) mode; see `escalations` below. Deeper
//! alias chains (the paper defers to full alias analysis) are documented
//! in DESIGN.md as out of scope.

use crate::mapping::{AddedParam, Mapping, ParamOrigin};
use gadt_pascal::ast::*;
use gadt_pascal::cfg::{lower, CallArg, InstrKind};
use gadt_pascal::error::{Diagnostic, Result, Stage};
use gadt_pascal::sema::{Module, NameRes, ProcId, VarId, MAIN_PROC};
use gadt_pascal::span::Span;
use gadt_pascal::types::Type;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Converts non-local variable accesses into explicit parameters.
///
/// Returns the rewritten program (re-analyze it with
/// [`gadt_pascal::sema::analyze`]) and the construct mapping.
///
/// # Errors
/// Returns an error if a non-local variable's type cannot be expressed as
/// a parameter type (never happens for the supported type system).
pub fn convert_globals(module: &Module) -> Result<(Program, Mapping)> {
    let cfg = lower(module);
    let (_cg, fx) = gadt_analysis::effects::analyze(module, &cfg);

    // Additions per procedure: sorted (var, mode) pairs.
    let mut additions: BTreeMap<ProcId, Vec<(VarId, ParamMode)>> = BTreeMap::new();
    for info in &module.procs {
        if info.id == MAIN_PROC {
            continue;
        }
        let e = fx.of(info.id);
        let mut vars: BTreeSet<VarId> = e.refs.union(&e.mods).copied().collect();
        // Temps never need conversion (they are procedure-local).
        vars.retain(|v| !matches!(module.var(*v).kind, gadt_pascal::sema::VarKind::Temp));
        if vars.is_empty() {
            continue;
        }
        let list: Vec<(VarId, ParamMode)> = vars
            .into_iter()
            .map(|v| {
                let mode = match (e.refs.contains(&v), e.mods.contains(&v)) {
                    (true, true) => ParamMode::Var,
                    (true, false) => ParamMode::In,
                    (false, true) => ParamMode::Out,
                    (false, false) => unreachable!("v came from refs ∪ mods"),
                };
                (v, mode)
            })
            .collect();
        additions.insert(info.id, list);
    }
    if additions.is_empty() {
        return Ok((module.program.clone(), Mapping::default()));
    }

    // Alias escalation: an `in` (copy) addition that is also passed by
    // reference in the same call would break aliasing → make it `var`.
    let mut escalate: BTreeSet<(ProcId, VarId)> = BTreeSet::new();
    for pcfg in &cfg.procs {
        for (_, b) in pcfg.iter() {
            for ins in &b.instrs {
                if let InstrKind::Call { callee, args } = &ins.kind {
                    if let Some(adds) = additions.get(callee) {
                        for a in args {
                            if let CallArg::Ref(place) = a {
                                for (v, mode) in adds {
                                    if *v == place.var && *mode == ParamMode::In {
                                        escalate.insert((*callee, *v));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    for (p, v) in &escalate {
        if let Some(adds) = additions.get_mut(p) {
            for (av, mode) in adds.iter_mut() {
                if av == v {
                    *mode = ParamMode::Var;
                }
            }
        }
    }

    // Choose parameter names per (proc, var), mangling on collision with
    // names already declared in that procedure.
    let mut param_name: HashMap<(ProcId, VarId), String> = HashMap::new();
    for (&p, adds) in &additions {
        let decl = module.proc_decl(p).ok_or_else(|| {
            Diagnostic::new(Stage::Sema, "main cannot take additions", Span::dummy())
        })?;
        let mut taken: BTreeSet<String> = BTreeSet::new();
        for g in &decl.params {
            for n in &g.names {
                taken.insert(n.key());
            }
        }
        for g in &decl.block.vars {
            for n in &g.names {
                taken.insert(n.key());
            }
        }
        for c in &decl.block.consts {
            taken.insert(c.name.key());
        }
        for t in &decl.block.types {
            taken.insert(t.name.key());
        }
        for q in &decl.block.procs {
            taken.insert(q.name.key());
        }
        for (v, _) in adds {
            let base = module.var(*v).name.clone();
            let name = if taken.contains(&base.to_ascii_lowercase()) {
                format!("{base}_g{}", v.0)
            } else {
                base
            };
            taken.insert(name.to_ascii_lowercase());
            param_name.insert((p, *v), name);
        }
    }

    // The name by which `v` is reachable inside procedure `p` (for call
    // arguments): its own name at the owner, otherwise p's added param.
    let arg_name = |p: ProcId, v: VarId| -> String {
        if module.var(v).owner == p {
            module.var(v).name.clone()
        } else {
            param_name
                .get(&(p, v))
                .cloned()
                .unwrap_or_else(|| module.var(v).name.clone())
        }
    };

    // Rewrite the AST.
    let mut program = module.program.clone();
    let mut ids = IdGen {
        next_expr: program.next_expr_id,
    };
    let mut mapping = Mapping::default();

    // Record mapping entries.
    let paths = proc_paths(module);
    for (&p, adds) in &additions {
        for (v, _mode) in adds {
            mapping.add_param(
                &paths[&p],
                AddedParam {
                    name: param_name[&(p, v.to_owned())].clone(),
                    origin: ParamOrigin::Global(module.var(*v).name.clone()),
                },
            );
        }
    }

    // Walk the program: extend parameter lists and call argument lists.
    {
        let cx = RewriteCx {
            module,
            additions: &additions,
            param_name: &param_name,
            arg_name: &arg_name,
        };
        let mut block = std::mem::take(&mut program.block);
        rewrite_block(&cx, &mut block, MAIN_PROC, &mut ids);
        program.block = block;
    }
    program.next_expr_id = ids.next_expr;

    Ok((program, mapping))
}

/// Lowercase `/`-joined path for every procedure (`""` for main).
pub fn proc_paths(module: &Module) -> HashMap<ProcId, String> {
    let mut out = HashMap::new();
    for info in &module.procs {
        let mut parts = Vec::new();
        let mut cur = Some(info.id);
        while let Some(p) = cur {
            let pi = module.proc(p);
            if p != MAIN_PROC {
                parts.push(pi.name.to_ascii_lowercase());
            }
            cur = pi.parent;
        }
        parts.reverse();
        out.insert(info.id, parts.join("/"));
    }
    out
}

struct IdGen {
    next_expr: u32,
}

impl IdGen {
    fn expr(&mut self) -> ExprId {
        let id = ExprId(self.next_expr);
        self.next_expr += 1;
        id
    }
}

struct RewriteCx<'a> {
    module: &'a Module,
    additions: &'a BTreeMap<ProcId, Vec<(VarId, ParamMode)>>,
    param_name: &'a HashMap<(ProcId, VarId), String>,
    arg_name: &'a dyn Fn(ProcId, VarId) -> String,
}

fn type_to_expr(ty: &Type) -> TypeExpr {
    match ty {
        Type::Integer => TypeExpr::Named(Ident::synthetic("integer")),
        Type::Real => TypeExpr::Named(Ident::synthetic("real")),
        Type::Boolean => TypeExpr::Named(Ident::synthetic("boolean")),
        Type::Char => TypeExpr::Named(Ident::synthetic("char")),
        Type::String => TypeExpr::Named(Ident::synthetic("char")),
        Type::Array { lo, hi, elem } => TypeExpr::Array {
            lo: ArrayBound::Lit(*lo),
            hi: ArrayBound::Lit(*hi),
            elem: Box::new(type_to_expr(elem)),
            span: Span::dummy(),
        },
    }
}

fn rewrite_block(cx: &RewriteCx<'_>, block: &mut Block, owner: ProcId, ids: &mut IdGen) {
    // Nested procedure declarations first.
    for decl in &mut block.procs {
        let pid = cx
            .module
            .proc_by_path(owner, &decl.name.key())
            .expect("declared proc resolvable");
        if let Some(adds) = cx.additions.get(&pid) {
            for (v, mode) in adds {
                let name = cx.param_name[&(pid, *v)].clone();
                decl.params.push(ParamGroup {
                    mode: *mode,
                    names: vec![Ident::synthetic(name)],
                    ty: type_to_expr(&cx.module.var(*v).ty),
                    span: Span::dummy(),
                });
            }
        }
        let mut inner = std::mem::take(&mut decl.block);
        rewrite_block(cx, &mut inner, pid, ids);
        decl.block = inner;
    }
    // Body statements.
    for s in &mut block.body {
        rewrite_stmt(cx, s, owner, ids);
    }
}

fn rewrite_stmt(cx: &RewriteCx<'_>, s: &mut Stmt, owner: ProcId, ids: &mut IdGen) {
    match &mut s.kind {
        StmtKind::Call { args, .. } => {
            for a in args.iter_mut() {
                rewrite_expr(cx, a, owner, ids);
            }
            if let Some(callee) = cx.module.call_res.get(&s.id) {
                extend_args(cx, *callee, args, owner, ids);
            }
        }
        StmtKind::Assign { lhs, rhs } => {
            if let Some(ix) = &mut lhs.index {
                rewrite_expr(cx, ix, owner, ids);
            }
            rewrite_expr(cx, rhs, owner, ids);
        }
        StmtKind::Compound(stmts) => {
            for st in stmts {
                rewrite_stmt(cx, st, owner, ids);
            }
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            rewrite_expr(cx, cond, owner, ids);
            rewrite_stmt(cx, then_branch, owner, ids);
            if let Some(e) = else_branch {
                rewrite_stmt(cx, e, owner, ids);
            }
        }
        StmtKind::Case {
            scrutinee,
            arms,
            else_arm,
        } => {
            rewrite_expr(cx, scrutinee, owner, ids);
            for a in arms {
                rewrite_stmt(cx, &mut a.stmt, owner, ids);
            }
            if let Some(e) = else_arm {
                rewrite_stmt(cx, e, owner, ids);
            }
        }
        StmtKind::While { cond, body } => {
            rewrite_expr(cx, cond, owner, ids);
            rewrite_stmt(cx, body, owner, ids);
        }
        StmtKind::Repeat { body, cond } => {
            for st in body {
                rewrite_stmt(cx, st, owner, ids);
            }
            rewrite_expr(cx, cond, owner, ids);
        }
        StmtKind::For { from, to, body, .. } => {
            rewrite_expr(cx, from, owner, ids);
            rewrite_expr(cx, to, owner, ids);
            rewrite_stmt(cx, body, owner, ids);
        }
        StmtKind::Labeled { stmt, .. } => rewrite_stmt(cx, stmt, owner, ids),
        StmtKind::Read { args, .. } => {
            for lv in args {
                if let Some(ix) = &mut lv.index {
                    rewrite_expr(cx, ix, owner, ids);
                }
            }
        }
        StmtKind::Write { args, .. } => {
            for a in args {
                rewrite_expr(cx, a, owner, ids);
            }
        }
        StmtKind::Empty | StmtKind::Goto(_) => {}
    }
}

fn rewrite_expr(cx: &RewriteCx<'_>, e: &mut Expr, owner: ProcId, ids: &mut IdGen) {
    match &mut e.kind {
        ExprKind::Call { args, .. } => {
            for a in args.iter_mut() {
                rewrite_expr(cx, a, owner, ids);
            }
            if let Some(NameRes::Proc(callee)) = cx.module.res.get(&e.id) {
                extend_args(cx, *callee, args, owner, ids);
            }
        }
        ExprKind::Name(_) => {
            // A zero-argument function call gets its additions too, which
            // requires rewriting Name → Call.
            if let Some(NameRes::Proc(callee)) = cx.module.res.get(&e.id) {
                if cx.additions.contains_key(callee) {
                    let name = match &e.kind {
                        ExprKind::Name(n) => n.clone(),
                        _ => unreachable!(),
                    };
                    let mut args = Vec::new();
                    extend_args(cx, *callee, &mut args, owner, ids);
                    e.kind = ExprKind::Call { name, args };
                }
            }
        }
        ExprKind::Index { index, .. } => rewrite_expr(cx, index, owner, ids),
        ExprKind::Unary { operand, .. } => rewrite_expr(cx, operand, owner, ids),
        ExprKind::Binary { lhs, rhs, .. } => {
            rewrite_expr(cx, lhs, owner, ids);
            rewrite_expr(cx, rhs, owner, ids);
        }
        _ => {}
    }
}

fn extend_args(
    cx: &RewriteCx<'_>,
    callee: ProcId,
    args: &mut Vec<Expr>,
    owner: ProcId,
    ids: &mut IdGen,
) {
    let Some(adds) = cx.additions.get(&callee) else {
        return;
    };
    for (v, _mode) in adds {
        let name = (cx.arg_name)(owner, *v);
        args.push(Expr {
            id: ids.expr(),
            kind: ExprKind::Name(Ident::synthetic(name)),
            span: Span::dummy(),
        });
    }
}

/// Extension used by the rewriter: resolve a directly-declared child
/// procedure of `owner` by name.
trait ProcByPath {
    fn proc_by_path(&self, owner: ProcId, child_key: &str) -> Option<ProcId>;
}

impl ProcByPath for Module {
    fn proc_by_path(&self, owner: ProcId, child_key: &str) -> Option<ProcId> {
        self.procs
            .iter()
            .find(|p| p.parent == Some(owner) && p.name.to_ascii_lowercase() == child_key)
            .map(|p| p.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadt_pascal::interp::Interpreter;
    use gadt_pascal::pretty::print_program;
    use gadt_pascal::sema::{analyze, compile};
    use gadt_pascal::testprogs;
    use gadt_pascal::value::Value;

    fn transform(src: &str) -> (Module, Module, Mapping) {
        let m = compile(src).expect("compile original");
        let (program, mapping) = convert_globals(&m).expect("transform");
        let printed = print_program(&program);
        let tm = analyze(program)
            .unwrap_or_else(|e| panic!("transformed program fails sema: {e}\n{printed}"));
        (m, tm, mapping)
    }

    fn behaves_identically(src: &str, inputs: Vec<Vec<i64>>) {
        let m = compile(src).expect("compile");
        let (program, _) = convert_globals(&m).expect("transform");
        let printed = print_program(&program);
        let tm = analyze(program).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        for input in inputs {
            let mut i1 = Interpreter::new(&m);
            i1.set_input(input.iter().map(|&n| Value::Int(n)));
            let o1 = i1.run().expect("original runs");
            let mut i2 = Interpreter::new(&tm);
            i2.set_input(input.iter().map(|&n| Value::Int(n)));
            let o2 = i2.run().unwrap_or_else(|e| panic!("{e}\n{printed}"));
            assert_eq!(o1.output_text(), o2.output_text(), "output for {input:?}");
            assert_eq!(o1.globals, o2.globals, "globals for {input:?}");
        }
    }

    #[test]
    fn section6_example_matches_paper_target_form() {
        let (_, tm, mapping) = transform(testprogs::SECTION6_GLOBALS);
        let printed = print_program(&tm.program);
        // procedure p(var y: integer; in x: integer; out z: integer)
        assert!(
            printed.contains("procedure p(var y: integer; in x: integer; out z: integer);"),
            "{printed}"
        );
        // Call site passes the globals.
        assert!(printed.contains("p(w, x, z)"), "{printed}");
        let p_added = &mapping.added_params["p"];
        assert_eq!(p_added.len(), 2);
        assert_eq!(p_added[0].origin, ParamOrigin::Global("x".to_string()));
        assert_eq!(p_added[1].origin, ParamOrigin::Global("z".to_string()));
    }

    #[test]
    fn transformed_program_is_side_effect_free() {
        for src in [
            testprogs::SECTION6_GLOBALS,
            "program t; var g: integer;
             procedure inner; begin g := g + 1 end;
             procedure outer; begin inner; inner end;
             begin g := 0; outer; writeln(g) end.",
        ] {
            let (_, tm, _) = transform(src);
            let cfg = lower(&tm);
            let (_cg, fx) = gadt_analysis::effects::analyze(&tm, &cfg);
            for p in &tm.procs {
                if p.id == MAIN_PROC {
                    continue;
                }
                assert!(
                    !fx.has_global_side_effects(p.id),
                    "{} still has side effects after transformation",
                    p.name
                );
            }
        }
    }

    #[test]
    fn semantics_preserved_on_section6() {
        behaves_identically(testprogs::SECTION6_GLOBALS, vec![vec![]]);
    }

    #[test]
    fn semantics_preserved_through_nesting() {
        behaves_identically(
            "program t; var g, h: integer;
             procedure outer;
             var x: integer;
               procedure inner;
               begin x := x + g; h := h + 1 end;
             begin x := 0; inner; inner; g := x end;
             begin g := 3; h := 0; outer; writeln(g, ' ', h) end.",
            vec![vec![]],
        );
    }

    #[test]
    fn semantics_preserved_with_functions() {
        behaves_identically(
            "program t; var base: integer;
             function scaled(k: integer): integer;
             begin scaled := base * k end;
             begin base := 7; writeln(scaled(6)) end.",
            vec![vec![]],
        );
    }

    #[test]
    fn zero_arg_function_with_globals_becomes_call_with_args() {
        let (_, tm, _) = transform(
            "program t; var seed: integer; r: integer;
             function next: integer;
             begin seed := seed * 16807 mod 2147483647; next := seed end;
             begin seed := 42; r := next; writeln(r) end.",
        );
        let printed = print_program(&tm.program);
        assert!(printed.contains("next(seed)"), "{printed}");
        behaves_identically(
            "program t; var seed: integer; r: integer;
             function next: integer;
             begin seed := seed * 16807 mod 2147483647; next := seed end;
             begin seed := 42; r := next; writeln(r) end.",
            vec![vec![]],
        );
    }

    #[test]
    fn recursion_with_globals() {
        behaves_identically(
            "program t; var depth: integer;
             procedure p(n: integer);
             begin
               depth := depth + 1;
               if n > 0 then p(n - 1)
             end;
             begin depth := 0; p(5); writeln(depth) end.",
            vec![vec![]],
        );
    }

    #[test]
    fn name_collision_gets_mangled() {
        let (_, tm, _) = transform(
            "program t; var g: integer;
             procedure p;
             var g: integer;
               procedure q; begin end;
             begin g := 1; q end;
             procedure r; begin g := g * 2 end;
             begin g := 5; p; r; writeln(g) end.",
        );
        // r references the global g → gets a param named g (no collision
        // in r). p's local g shadows; p itself has no global access.
        let printed = print_program(&tm.program);
        assert!(
            printed.contains("procedure r(var g: integer);"),
            "{printed}"
        );
    }

    #[test]
    fn collision_inside_proc_with_same_named_local() {
        // inner references global g; outer has a *local* named g that
        // shadows it for outer's own body, but inner is declared before…
        // Actually inner sees outer's local g. The global g is only
        // touched by top, whose name collides with its own local.
        let src = "program t; var g: integer;
             procedure top(k: integer);
             var v: integer;
               procedure deep; begin g := g + k end;
             begin v := k; deep end;
             begin g := 1; top(4); writeln(g) end.";
        behaves_identically(src, vec![vec![]]);
        let (_, tm, _) = transform(src);
        let printed = print_program(&tm.program);
        // deep gets (var g, in k-equivalent)… k is top's param referenced
        // non-locally by deep → deep takes it as in-param.
        assert!(
            printed.contains("procedure deep(var g: integer; in k: integer);"),
            "{printed}"
        );
        assert!(printed.contains("deep(g, k)"), "{printed}");
    }

    #[test]
    fn aliasing_escalates_in_to_var() {
        let src = "program t; var g: integer;
             procedure p(var y: integer);
             begin y := y + 1; y := y + g end;
             begin g := 10; p(g); writeln(g) end.";
        behaves_identically(src, vec![vec![]]);
        let (_, tm, _) = transform(src);
        let printed = print_program(&tm.program);
        // g is read-only inside p, but p(g) aliases it with y → var mode.
        assert!(
            printed.contains("procedure p(var y: integer; var g: integer);"),
            "{printed}"
        );
    }

    #[test]
    fn programs_without_side_effects_are_untouched() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let (program, mapping) = convert_globals(&m).unwrap();
        assert_eq!(program, m.program);
        assert!(mapping.added_params.is_empty());
    }

    #[test]
    fn growth_factor_is_small() {
        // §9: "Small procedures usually grow less than a factor of two
        // after transformations."
        let m = compile(testprogs::SECTION6_GLOBALS).unwrap();
        let before = m.program.stmt_count();
        let (program, _) = convert_globals(&m).unwrap();
        let after = program.stmt_count();
        assert!(after <= before * 2, "{before} → {after}");
    }
}
