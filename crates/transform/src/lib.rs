//! # gadt-transform
//!
//! The transformation phase of the GADT reproduction (*Generalized
//! Algorithmic Debugging and Testing*, PLDI 1991, §5.1 and §6).
//!
//! Algorithmic debugging assumes side-effect-free procedure semantics:
//! every effect of a call must be visible in its In/Out values. The paper
//! therefore transforms the subject program into an equivalent one with
//! no *global* side effects (the transformation is restricted to
//! offending constructs rather than full functionalization — the paper's
//! "second approach"):
//!
//! * [`globals::convert_globals`] — non-local variable accesses become
//!   explicit `in`/`out`/`var` parameters;
//! * [`gotos::break_loop_gotos`] — gotos out of `while`/`repeat` loops
//!   become `leave`-flag tests, keeping loops well-structured units;
//! * [`gotos::break_global_gotos`] — non-local gotos become
//!   exit-condition `out` parameters plus local dispatch gotos at the
//!   call sites, cascading outward until every goto is local;
//! * [`pipeline::transform`] — the full pipeline, with the
//!   original↔transformed [`mapping::Mapping`] used for the paper's
//!   transparent debugging (§6.1);
//! * [`pipeline::instrumented_source`] — the trace-action listing of §6
//!   (`create_exectree_rec`, `save_incoming_values`,
//!   `save_outgoing_values`); in this implementation actual tracing is
//!   performed by interpreter monitors, so these calls are display-only.
//!
//! Every transformation is semantics-preserving; the test suite checks
//! this differentially (original vs transformed on the same inputs).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod globals;
pub mod gotos;
pub mod mapping;
pub mod pipeline;

pub use mapping::{AddedParam, ExitInfo, Mapping, ParamOrigin};
pub use pipeline::{
    growth_factor, instrumented_source, transform, transform_observed, Transformed,
};
