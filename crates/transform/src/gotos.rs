//! Phases B and C: goto restructuring.
//!
//! **Phase B** (§6, "Handling gotos inside a loop addressed outside the
//! loop"): a `while`/`repeat` body containing a goto that exits the loop
//! is rewritten with a `leave` flag — the loop condition tests the flag,
//! the goto becomes `leave := k; goto whilelab` (with `whilelab` at the
//! end of the body), and an `if leave = k then goto L` dispatch follows
//! the loop. This keeps loops well-structured debugging units.
//!
//! **Phase C** (§6, "Breaking global gotos into several structured local
//! gotos"): a procedure performing a non-local goto gets an `out
//! exitcond: integer` parameter; the goto becomes `exitcond := k; goto
//! exitlab` with `exitlab` at the end of the body, and every call site is
//! followed by `if exitcond = k then goto L`. If the label is owned
//! further out, the caller's new goto is itself non-local and a later
//! round transforms the caller — exactly the paper's cascading scheme.

use crate::mapping::{AddedParam, ExitInfo, Mapping, ParamOrigin};
use gadt_pascal::ast::*;
use gadt_pascal::error::{Diagnostic, Result, Stage};
use gadt_pascal::sema::{Module, ProcId, MAIN_PROC};
use gadt_pascal::span::Span;
use std::collections::{BTreeMap, BTreeSet, HashMap};

struct IdGen {
    next_stmt: u32,
    next_expr: u32,
}

impl IdGen {
    fn stmt(&mut self) -> StmtId {
        let id = StmtId(self.next_stmt);
        self.next_stmt += 1;
        id
    }
    fn expr(&mut self) -> ExprId {
        let id = ExprId(self.next_expr);
        self.next_expr += 1;
        id
    }
    fn name(&mut self, n: &str) -> Expr {
        Expr {
            id: self.expr(),
            kind: ExprKind::Name(Ident::synthetic(n)),
            span: Span::dummy(),
        }
    }
    fn int(&mut self, v: i64) -> Expr {
        Expr {
            id: self.expr(),
            kind: ExprKind::IntLit(v),
            span: Span::dummy(),
        }
    }
    fn assign(&mut self, name: &str, v: i64) -> Stmt {
        let rhs = self.int(v);
        let lv_id = self.expr();
        Stmt {
            id: self.stmt(),
            kind: StmtKind::Assign {
                lhs: LValue {
                    id: lv_id,
                    base: Ident::synthetic(name),
                    index: None,
                    span: Span::dummy(),
                },
                rhs,
            },
            span: Span::dummy(),
        }
    }
    fn eq_test(&mut self, name: &str, v: i64) -> Expr {
        let lhs = self.name(name);
        let rhs = self.int(v);
        Expr {
            id: self.expr(),
            kind: ExprKind::Binary {
                op: BinOp::Eq,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span: Span::dummy(),
        }
    }
    fn goto(&mut self, label: &str) -> Stmt {
        Stmt {
            id: self.stmt(),
            kind: StmtKind::Goto(Ident::synthetic(label)),
            span: Span::dummy(),
        }
    }
}

// ----------------------------------------------------------------------
// Phase B: gotos out of loops
// ----------------------------------------------------------------------

/// Rewrites `while`/`repeat` loops containing gotos that exit the loop.
/// Returns the new program, mapping additions, and whether anything
/// changed.
pub fn break_loop_gotos(module: &Module) -> Result<(Program, Mapping, bool)> {
    let mut program = module.program.clone();
    let mut ids = IdGen {
        next_stmt: program.next_stmt_id,
        next_expr: program.next_expr_id,
    };
    let mut mapping = Mapping::default();
    let mut changed = false;

    // B/C rounds alternate to a fixpoint, and phase C's call-site
    // dispatch gotos can turn previously-clean loops into candidates for
    // a later B round. The synthetic-name counter must resume past the
    // names minted by earlier rounds, or a second round would declare
    // `whilelab_1` (and `leave_1`) twice in the same procedure.
    fn seed_counter(block: &Block, counter: &mut usize) {
        for l in &block.labels {
            if let Some(n) = l
                .key()
                .strip_prefix("whilelab_")
                .and_then(|s| s.parse::<usize>().ok())
            {
                *counter = (*counter).max(n);
            }
        }
        for v in &block.vars {
            for name in &v.names {
                if let Some(n) = name
                    .key()
                    .strip_prefix("leave_")
                    .and_then(|s| s.parse::<usize>().ok())
                {
                    *counter = (*counter).max(n);
                }
            }
        }
        for p in &block.procs {
            seed_counter(&p.block, counter);
        }
    }
    let mut counter = 0usize;
    seed_counter(&program.block, &mut counter);

    // Per-procedure rewriting, collecting new declarations.
    fn do_block(
        block: &mut Block,
        ids: &mut IdGen,
        mapping: &mut Mapping,
        changed: &mut bool,
        counter: &mut usize,
    ) {
        for p in &mut block.procs {
            do_block(&mut p.block, ids, mapping, changed, counter);
        }
        let mut new_vars: Vec<String> = Vec::new();
        let mut new_labels: Vec<String> = Vec::new();
        let body = std::mem::take(&mut block.body);
        block.body = rewrite_seq(
            body,
            ids,
            mapping,
            changed,
            counter,
            &mut new_vars,
            &mut new_labels,
        );
        for v in new_vars {
            block.vars.push(VarDecl {
                names: vec![Ident::synthetic(v)],
                ty: TypeExpr::Named(Ident::synthetic("integer")),
                span: Span::dummy(),
            });
        }
        for l in new_labels {
            block.labels.push(Ident::synthetic(l));
        }
    }

    do_block(
        &mut program.block,
        &mut ids,
        &mut mapping,
        &mut changed,
        &mut counter,
    );
    program.next_stmt_id = ids.next_stmt;
    program.next_expr_id = ids.next_expr;
    Ok((program, mapping, changed))
}

/// Labels defined (as labeled statements) inside a statement.
fn labels_defined_in(s: &Stmt, out: &mut BTreeSet<String>) {
    s.walk(&mut |st| {
        if let StmtKind::Labeled { label, .. } = &st.kind {
            out.insert(label.key());
        }
    });
}

/// Gotos inside `s` targeting labels outside `defined`.
fn exiting_gotos(s: &Stmt, defined: &BTreeSet<String>, out: &mut Vec<String>) {
    s.walk(&mut |st| {
        if let StmtKind::Goto(l) = &st.kind {
            if !defined.contains(&l.key()) && !out.contains(&l.key()) {
                out.push(l.key());
            }
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn rewrite_seq(
    stmts: Vec<Stmt>,
    ids: &mut IdGen,
    mapping: &mut Mapping,
    changed: &mut bool,
    counter: &mut usize,
    new_vars: &mut Vec<String>,
    new_labels: &mut Vec<String>,
) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in stmts {
        rewrite_one(
            s, ids, mapping, changed, counter, new_vars, new_labels, &mut out,
        );
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn rewrite_one(
    mut s: Stmt,
    ids: &mut IdGen,
    mapping: &mut Mapping,
    changed: &mut bool,
    counter: &mut usize,
    new_vars: &mut Vec<String>,
    new_labels: &mut Vec<String>,
    out: &mut Vec<Stmt>,
) {
    // First rewrite nested statements.
    match &mut s.kind {
        StmtKind::Compound(inner) => {
            let taken = std::mem::take(inner);
            *inner = rewrite_seq(taken, ids, mapping, changed, counter, new_vars, new_labels);
        }
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            **then_branch = nest_one(
                std::mem::replace(then_branch.as_mut(), empty_stmt(ids)),
                ids,
                mapping,
                changed,
                counter,
                new_vars,
                new_labels,
            );
            if let Some(e) = else_branch {
                **e = nest_one(
                    std::mem::replace(e.as_mut(), empty_stmt(ids)),
                    ids,
                    mapping,
                    changed,
                    counter,
                    new_vars,
                    new_labels,
                );
            }
        }
        StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
            **body = nest_one(
                std::mem::replace(body.as_mut(), empty_stmt(ids)),
                ids,
                mapping,
                changed,
                counter,
                new_vars,
                new_labels,
            );
        }
        StmtKind::Repeat { body, .. } => {
            let taken = std::mem::take(body);
            *body = rewrite_seq(taken, ids, mapping, changed, counter, new_vars, new_labels);
        }
        StmtKind::Labeled { stmt, .. } => {
            **stmt = nest_one(
                std::mem::replace(stmt.as_mut(), empty_stmt(ids)),
                ids,
                mapping,
                changed,
                counter,
                new_vars,
                new_labels,
            );
        }
        StmtKind::Case { arms, else_arm, .. } => {
            for a in arms {
                let taken = std::mem::replace(&mut a.stmt, empty_stmt(ids));
                a.stmt = nest_one(taken, ids, mapping, changed, counter, new_vars, new_labels);
            }
            if let Some(e) = else_arm {
                **e = nest_one(
                    std::mem::replace(e.as_mut(), empty_stmt(ids)),
                    ids,
                    mapping,
                    changed,
                    counter,
                    new_vars,
                    new_labels,
                );
            }
        }
        _ => {}
    }

    // Then handle this loop if it contains exiting gotos.
    let is_candidate = matches!(s.kind, StmtKind::While { .. } | StmtKind::Repeat { .. });
    if is_candidate {
        let mut defined = BTreeSet::new();
        labels_defined_in(&s, &mut defined);
        let mut exits = Vec::new();
        match &s.kind {
            StmtKind::While { body, .. } => exiting_gotos(body, &defined, &mut exits),
            StmtKind::Repeat { body, .. } => {
                for st in body {
                    exiting_gotos(st, &defined, &mut exits);
                }
            }
            _ => {}
        }
        if !exits.is_empty() {
            *changed = true;
            *counter += 1;
            let n = *counter;
            let leave = format!("leave_{n}");
            let whilelab = format!("whilelab_{n}");
            new_vars.push(leave.clone());
            new_labels.push(whilelab.clone());

            // leave := 0 before the loop.
            let init = ids.assign(&leave, 0);
            mapping.add_synthetic(init.id, format!("leave flag init for loop {n}"));
            out.push(init);

            // Rewrite the loop itself.
            match &mut s.kind {
                StmtKind::While { cond, body } => {
                    let old_cond = std::mem::replace(cond, ids.int(0));
                    let test = ids.eq_test(&leave, 0);
                    let cid = ids.expr();
                    *cond = Expr {
                        id: cid,
                        kind: ExprKind::Binary {
                            op: BinOp::And,
                            lhs: Box::new(old_cond),
                            rhs: Box::new(test),
                        },
                        span: Span::dummy(),
                    };
                    let old_body = std::mem::replace(body.as_mut(), empty_stmt(ids));
                    let rewritten =
                        replace_exit_gotos(old_body, &exits, &leave, &whilelab, ids, mapping);
                    let lab_stmt = labeled_empty(&whilelab, ids);
                    let cmp_id = ids.stmt();
                    mapping.add_synthetic(cmp_id, format!("loop {n} body wrapper"));
                    **body = Stmt {
                        id: cmp_id,
                        kind: StmtKind::Compound(vec![rewritten, lab_stmt]),
                        span: Span::dummy(),
                    };
                }
                StmtKind::Repeat { cond, body } => {
                    let old_cond = std::mem::replace(cond, ids.int(0));
                    // repeat … until cond or (leave <> 0)
                    let lhs_leave = ids.name(&leave);
                    let zero = ids.int(0);
                    let ne_id = ids.expr();
                    let ne = Expr {
                        id: ne_id,
                        kind: ExprKind::Binary {
                            op: BinOp::Ne,
                            lhs: Box::new(lhs_leave),
                            rhs: Box::new(zero),
                        },
                        span: Span::dummy(),
                    };
                    let cid = ids.expr();
                    *cond = Expr {
                        id: cid,
                        kind: ExprKind::Binary {
                            op: BinOp::Or,
                            lhs: Box::new(old_cond),
                            rhs: Box::new(ne),
                        },
                        span: Span::dummy(),
                    };
                    let taken = std::mem::take(body);
                    let mut rewritten: Vec<Stmt> = taken
                        .into_iter()
                        .map(|st| replace_exit_gotos(st, &exits, &leave, &whilelab, ids, mapping))
                        .collect();
                    rewritten.push(labeled_empty(&whilelab, ids));
                    *body = rewritten;
                }
                _ => unreachable!(),
            }
            out.push(s);

            // Dispatch after the loop.
            for (j, label) in exits.iter().enumerate() {
                let test = ids.eq_test(&leave, j as i64 + 1);
                let g = ids.goto(label);
                let if_id = ids.stmt();
                mapping.add_synthetic(if_id, format!("loop {n} exit dispatch to {label}"));
                out.push(Stmt {
                    id: if_id,
                    kind: StmtKind::If {
                        cond: test,
                        then_branch: Box::new(g),
                        else_branch: None,
                    },
                    span: Span::dummy(),
                });
            }
            return;
        }
    }
    out.push(s);
}

/// Rewrites a single nested statement position (possibly expanding into a
/// compound).
#[allow(clippy::too_many_arguments)]
fn nest_one(
    s: Stmt,
    ids: &mut IdGen,
    mapping: &mut Mapping,
    changed: &mut bool,
    counter: &mut usize,
    new_vars: &mut Vec<String>,
    new_labels: &mut Vec<String>,
) -> Stmt {
    let mut out = Vec::new();
    rewrite_one(
        s, ids, mapping, changed, counter, new_vars, new_labels, &mut out,
    );
    if out.len() == 1 {
        out.pop().expect("one statement")
    } else {
        let id = ids.stmt();
        Stmt {
            id,
            kind: StmtKind::Compound(out),
            span: Span::dummy(),
        }
    }
}

fn empty_stmt(ids: &mut IdGen) -> Stmt {
    Stmt {
        id: ids.stmt(),
        kind: StmtKind::Empty,
        span: Span::dummy(),
    }
}

fn labeled_empty(label: &str, ids: &mut IdGen) -> Stmt {
    let inner = empty_stmt(ids);
    Stmt {
        id: ids.stmt(),
        kind: StmtKind::Labeled {
            label: Ident::synthetic(label),
            stmt: Box::new(inner),
        },
        span: Span::dummy(),
    }
}

/// Replaces `goto L_j` (for exiting labels) with
/// `begin leave := j; goto whilelab end` throughout a statement.
fn replace_exit_gotos(
    mut s: Stmt,
    exits: &[String],
    leave: &str,
    whilelab: &str,
    ids: &mut IdGen,
    mapping: &mut Mapping,
) -> Stmt {
    fn rec(
        s: &mut Stmt,
        exits: &[String],
        leave: &str,
        whilelab: &str,
        ids: &mut IdGen,
        mapping: &mut Mapping,
    ) {
        let replacement = if let StmtKind::Goto(l) = &s.kind {
            exits.iter().position(|e| *e == l.key())
        } else {
            None
        };
        if let Some(j) = replacement {
            let set = ids.assign(leave, j as i64 + 1);
            mapping.add_synthetic(set.id, format!("leave := {} for goto", j + 1));
            let g = ids.goto(whilelab);
            let id = ids.stmt();
            mapping.add_synthetic(id, "goto-out-of-loop replacement".to_string());
            *s = Stmt {
                id,
                kind: StmtKind::Compound(vec![set, g]),
                span: s.span,
            };
            return;
        }
        match &mut s.kind {
            StmtKind::Compound(stmts) | StmtKind::Repeat { body: stmts, .. } => {
                for st in stmts {
                    rec(st, exits, leave, whilelab, ids, mapping);
                }
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                rec(then_branch, exits, leave, whilelab, ids, mapping);
                if let Some(e) = else_branch {
                    rec(e, exits, leave, whilelab, ids, mapping);
                }
            }
            // Inner while/for loops: their own exiting gotos were already
            // handled (innermost-first), so any remaining exiting goto
            // belongs to this loop level.
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                rec(body, exits, leave, whilelab, ids, mapping);
            }
            StmtKind::Labeled { stmt, .. } => rec(stmt, exits, leave, whilelab, ids, mapping),
            StmtKind::Case { arms, else_arm, .. } => {
                for a in arms {
                    rec(&mut a.stmt, exits, leave, whilelab, ids, mapping);
                }
                if let Some(e) = else_arm {
                    rec(e, exits, leave, whilelab, ids, mapping);
                }
            }
            _ => {}
        }
    }
    rec(&mut s, exits, leave, whilelab, ids, mapping);
    s
}

// ----------------------------------------------------------------------
// Phase C: global gotos → exit parameters
// ----------------------------------------------------------------------

/// Breaks non-local gotos into exit-condition parameters plus local gotos
/// at the call sites (one cascading round; iterate until unchanged).
///
/// # Errors
/// * a function performing a non-local goto is called inside an
///   expression (no statement position for the dispatch);
/// * a caller declares a label that captures the target's name.
pub fn break_global_gotos(module: &Module) -> Result<(Program, Mapping, bool)> {
    // Globally stable label codes: every user-visible label of the program
    // gets a fixed integer, so cascading rounds (recursion, mutual
    // recursion) assign the same exit-condition value to the same label
    // and already-generated plumbing can be reused verbatim.
    let paths = crate::globals::proc_paths(module);
    let mut all_labels: Vec<(String, ProcId, String)> = Vec::new();
    for (proc, labels) in &module.labels_of_proc {
        for l in labels {
            if l.starts_with("exitlab_") || l.starts_with("whilelab_") {
                continue;
            }
            all_labels.push((paths[proc].clone(), *proc, l.clone()));
        }
    }
    all_labels.sort();
    let label_code = |owner: ProcId, label: &str| -> i64 {
        all_labels
            .iter()
            .position(|(_, p, l)| *p == owner && l == label)
            .map(|i| i as i64 + 1)
            .unwrap_or(0)
    };

    // Procedures with *direct* non-local gotos this round; targets carry
    // their stable codes.
    let mut targets_of: BTreeMap<ProcId, Vec<(ProcId, String, i64)>> = BTreeMap::new();
    let mut goto_stmts: BTreeMap<StmtId, (ProcId, i64)> = BTreeMap::new();
    for (stmt, (owner, label)) in &module.goto_res {
        let q = module.proc_of_stmt[stmt];
        if *owner == q {
            continue;
        }
        let code = label_code(*owner, label);
        let list = targets_of.entry(q).or_default();
        if !list.iter().any(|(o, l, _)| o == owner && l == label) {
            list.push((*owner, label.clone(), code));
        }
        goto_stmts.insert(*stmt, (q, code));
    }
    if targets_of.is_empty() {
        return Ok((module.program.clone(), Mapping::default(), false));
    }

    // Reject functions with exits used inside expressions.
    for (eid, res) in &module.res {
        if let gadt_pascal::sema::NameRes::Proc(p) = res {
            if targets_of.contains_key(p) && module.proc(*p).is_function() {
                // Is this resolution a call in an expression? Every
                // ExprKind::Call/Name resolution to a proc is.
                let _ = eid;
                return Err(Diagnostic::new(
                    Stage::Sema,
                    format!(
                        "function `{}` performs a non-local goto and is called inside an expression; \
                         the exit-parameter transformation requires statement-position calls",
                        module.proc(*p).name
                    ),
                    Span::dummy(),
                ));
            }
        }
    }

    let mut mapping = Mapping::default();
    let mut program = module.program.clone();
    let mut ids = IdGen {
        next_stmt: program.next_stmt_id,
        next_expr: program.next_expr_id,
    };

    // Choose exit parameter / label names per transformed proc.
    let mut exit_param: HashMap<ProcId, String> = HashMap::new();
    let mut exit_label: HashMap<ProcId, String> = HashMap::new();
    for &q in targets_of.keys() {
        let qn = module.proc(q).name.to_ascii_lowercase();
        exit_param.insert(q, format!("exitcond_{qn}"));
        exit_label.insert(q, format!("exitlab_{qn}"));
        mapping.add_param(
            &paths[&q],
            AddedParam {
                name: format!("exitcond_{qn}"),
                origin: ParamOrigin::ExitCondition,
            },
        );
        mapping.exit_info.insert(
            paths[&q].clone(),
            ExitInfo {
                param_name: format!("exitcond_{qn}"),
                targets: targets_of[&q]
                    .iter()
                    .map(|(o, l, code)| (*code, (paths[o].clone(), l.clone())))
                    .collect(),
            },
        );
    }

    // Callers needing a receiving variable, per (caller, callee).
    let mut caller_vars: BTreeMap<(ProcId, ProcId), String> = BTreeMap::new();
    for (stmt, callee) in &module.call_res {
        if targets_of.contains_key(callee) {
            let caller = module.proc_of_stmt[stmt];
            let cn = module.proc(*callee).name.to_ascii_lowercase();
            caller_vars
                .entry((caller, *callee))
                .or_insert_with(|| format!("ec_{cn}"));
            // Label capture check: the dispatch `goto L` in the caller
            // must resolve to the original owner.
            for (owner, label, _) in &targets_of[callee] {
                let mut cur = Some(caller);
                while let Some(p) = cur {
                    if p == *owner {
                        break;
                    }
                    if module
                        .labels_of_proc
                        .get(&p)
                        .is_some_and(|ls| ls.contains(label))
                    {
                        return Err(Diagnostic::new(
                            Stage::Sema,
                            format!(
                                "label `{label}` of `{}` is captured by an inner declaration in `{}`",
                                module.proc(*owner).name,
                                module.proc(p).name
                            ),
                            Span::dummy(),
                        ));
                    }
                    cur = module.proc(p).parent;
                }
            }
        }
    }

    // Rewrite.
    struct Cx<'a> {
        module: &'a Module,
        targets_of: &'a BTreeMap<ProcId, Vec<(ProcId, String, i64)>>,
        goto_stmts: &'a BTreeMap<StmtId, (ProcId, i64)>,
        exit_param: &'a HashMap<ProcId, String>,
        exit_label: &'a HashMap<ProcId, String>,
        caller_vars: &'a BTreeMap<(ProcId, ProcId), String>,
    }

    fn do_block(
        cx: &Cx<'_>,
        block: &mut Block,
        owner: ProcId,
        ids: &mut IdGen,
        mapping: &mut Mapping,
    ) {
        for decl in &mut block.procs {
            let pid = cx
                .module
                .procs
                .iter()
                .find(|p| p.parent == Some(owner) && p.name.to_ascii_lowercase() == decl.name.key())
                .map(|p| p.id)
                .expect("declared proc resolvable");
            do_block(cx, &mut decl.block, pid, ids, mapping);
            if let Some(param) = cx.exit_param.get(&pid) {
                // Reuse plumbing installed by an earlier cascading round
                // (recursive/mutually-recursive procedures).
                let already = decl.params.iter().any(|g| {
                    g.names
                        .iter()
                        .any(|n| n.key() == param.to_ascii_lowercase())
                });
                if !already {
                    decl.params.push(ParamGroup {
                        mode: ParamMode::Out,
                        names: vec![Ident::synthetic(param.clone())],
                        ty: TypeExpr::Named(Ident::synthetic("integer")),
                        span: Span::dummy(),
                    });
                    let lab = &cx.exit_label[&pid];
                    decl.block.labels.push(Ident::synthetic(lab.clone()));
                    let init = ids.assign(param, 0);
                    mapping.add_synthetic(init.id, format!("{param} := 0 at entry"));
                    decl.block.body.insert(0, init);
                    let lab_stmt = labeled_empty(lab, ids);
                    mapping.add_synthetic(lab_stmt.id, format!("exit label of {}", decl.name));
                    decl.block.body.push(lab_stmt);
                }
            }
        }
        // Receiving variables for calls made from this procedure (reused
        // when an earlier round already declared them).
        for ((caller, _), name) in cx.caller_vars.iter() {
            if *caller == owner {
                let exists = block
                    .vars
                    .iter()
                    .any(|g| g.names.iter().any(|n| n.key() == name.to_ascii_lowercase()));
                if !exists {
                    block.vars.push(VarDecl {
                        names: vec![Ident::synthetic(name.clone())],
                        ty: TypeExpr::Named(Ident::synthetic("integer")),
                        span: Span::dummy(),
                    });
                }
            }
        }
        let body = std::mem::take(&mut block.body);
        block.body = body
            .into_iter()
            .map(|s| rewrite(cx, s, owner, ids, mapping))
            .collect();
    }

    fn rewrite(
        cx: &Cx<'_>,
        mut s: Stmt,
        owner: ProcId,
        ids: &mut IdGen,
        mapping: &mut Mapping,
    ) -> Stmt {
        // A non-local goto inside a transformed procedure.
        if let Some((q, code)) = cx.goto_stmts.get(&s.id) {
            let param = &cx.exit_param[q];
            let set = ids.assign(param, *code);
            mapping.add_synthetic(set.id, format!("{param} := {code}"));
            let g = ids.goto(&cx.exit_label[q]);
            mapping.add_synthetic(g.id, "local goto to exit label".to_string());
            let id = ids.stmt();
            mapping.add_synthetic(id, "global-goto replacement".to_string());
            return Stmt {
                id,
                kind: StmtKind::Compound(vec![set, g]),
                span: s.span,
            };
        }
        // A call to a transformed procedure.
        if let StmtKind::Call { args, .. } = &mut s.kind {
            if let Some(callee) = cx.module.call_res.get(&s.id) {
                if let Some(targets) = cx.targets_of.get(callee) {
                    let ec = cx.caller_vars[&(owner, *callee)].clone();
                    // Already wrapped by an earlier round? Then the exit
                    // argument is present and the dispatch chain follows
                    // the call — leave it untouched.
                    let already = matches!(
                        args.last().map(|a| &a.kind),
                        Some(ExprKind::Name(n)) if n.key() == ec.to_ascii_lowercase()
                    );
                    if already {
                        return s;
                    }
                    args.push(Expr {
                        id: ids.expr(),
                        kind: ExprKind::Name(Ident::synthetic(ec.clone())),
                        span: Span::dummy(),
                    });
                    let mut seq = vec![s];
                    for (towner, label, code) in targets.iter() {
                        // Local dispatch: the label name resolves lexically
                        // to `towner`'s declaration (capture was rejected).
                        let _ = towner;
                        let test = ids.eq_test(&ec, *code);
                        let g = ids.goto(label);
                        let if_id = ids.stmt();
                        mapping.add_synthetic(if_id, format!("exit dispatch to {label}"));
                        seq.push(Stmt {
                            id: if_id,
                            kind: StmtKind::If {
                                cond: test,
                                then_branch: Box::new(g),
                                else_branch: None,
                            },
                            span: Span::dummy(),
                        });
                    }
                    let id = ids.stmt();
                    mapping.add_synthetic(id, "call + exit dispatch".to_string());
                    return Stmt {
                        id,
                        kind: StmtKind::Compound(seq),
                        span: Span::dummy(),
                    };
                }
            }
            return s;
        }
        // Recurse structurally.
        match &mut s.kind {
            StmtKind::Compound(stmts) | StmtKind::Repeat { body: stmts, .. } => {
                let taken = std::mem::take(stmts);
                *stmts = taken
                    .into_iter()
                    .map(|st| rewrite(cx, st, owner, ids, mapping))
                    .collect();
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                let t = std::mem::replace(then_branch.as_mut(), empty_stmt(ids));
                **then_branch = rewrite(cx, t, owner, ids, mapping);
                if let Some(e) = else_branch {
                    let t = std::mem::replace(e.as_mut(), empty_stmt(ids));
                    **e = rewrite(cx, t, owner, ids, mapping);
                }
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                let t = std::mem::replace(body.as_mut(), empty_stmt(ids));
                **body = rewrite(cx, t, owner, ids, mapping);
            }
            StmtKind::Labeled { stmt, .. } => {
                let t = std::mem::replace(stmt.as_mut(), empty_stmt(ids));
                **stmt = rewrite(cx, t, owner, ids, mapping);
            }
            StmtKind::Case { arms, else_arm, .. } => {
                for a in arms {
                    let t = std::mem::replace(&mut a.stmt, empty_stmt(ids));
                    a.stmt = rewrite(cx, t, owner, ids, mapping);
                }
                if let Some(e) = else_arm {
                    let t = std::mem::replace(e.as_mut(), empty_stmt(ids));
                    **e = rewrite(cx, t, owner, ids, mapping);
                }
            }
            _ => {}
        }
        s
    }

    let cx = Cx {
        module,
        targets_of: &targets_of,
        goto_stmts: &goto_stmts,
        exit_param: &exit_param,
        exit_label: &exit_label,
        caller_vars: &caller_vars,
    };
    let mut block = std::mem::take(&mut program.block);
    do_block(&cx, &mut block, MAIN_PROC, &mut ids, &mut mapping);
    program.block = block;
    program.next_stmt_id = ids.next_stmt;
    program.next_expr_id = ids.next_expr;
    Ok((program, mapping, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadt_pascal::interp::Interpreter;
    use gadt_pascal::pretty::print_program;
    use gadt_pascal::sema::{analyze, compile};
    use gadt_pascal::testprogs;

    fn run_output(m: &Module) -> String {
        Interpreter::new(m)
            .run()
            .expect("runs")
            .output_text()
            .to_string()
    }

    #[test]
    fn loop_goto_rewrite_matches_paper_scheme() {
        let m = compile(testprogs::SECTION6_LOOP_GOTO).unwrap();
        let (prog, mapping, changed) = break_loop_gotos(&m).unwrap();
        assert!(changed);
        let printed = print_program(&prog);
        assert!(printed.contains("leave_1"), "{printed}");
        assert!(printed.contains("whilelab_1"), "{printed}");
        assert!(
            printed.contains("while (i < 10) and (leave_1 = 0) do"),
            "{printed}"
        );
        assert!(printed.contains("if leave_1 = 1 then"), "{printed}");
        assert!(!mapping.synthetic_stmts.is_empty());
        // Semantics preserved.
        let tm = analyze(prog).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(run_output(&m), run_output(&tm));
    }

    #[test]
    fn loop_without_exit_gotos_untouched() {
        let m = compile(
            "program t; var i, s: integer;
             begin i := 0; while i < 3 do begin s := s + i; i := i + 1 end end.",
        )
        .unwrap();
        let (prog, _, changed) = break_loop_gotos(&m).unwrap();
        assert!(!changed);
        // Structure identical (id counters may advance during rewriting).
        assert_eq!(prog.block, m.program.block);
    }

    #[test]
    fn internal_goto_in_loop_untouched() {
        let m = compile(
            "program t; label 5; var i: integer;
             begin
               i := 0;
               while i < 3 do begin
                 i := i + 1;
                 if odd(i) then goto 5;
                 i := i + 10;
                 5: i := i + 0
               end
             end.",
        )
        .unwrap();
        let (_, _, changed) = break_loop_gotos(&m).unwrap();
        assert!(
            !changed,
            "goto targeting a label inside the loop is internal"
        );
    }

    #[test]
    fn repeat_with_exit_goto() {
        let src = "program t; label 9; var i, s: integer;
             begin
               i := 0; s := 0;
               repeat
                 i := i + 1; s := s + i;
                 if s > 4 then goto 9
               until i = 10;
               s := -1;
               9: writeln(s)
             end.";
        let m = compile(src).unwrap();
        let (prog, _, changed) = break_loop_gotos(&m).unwrap();
        assert!(changed);
        let printed = print_program(&prog);
        let tm = analyze(prog).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(run_output(&m), run_output(&tm));
    }

    #[test]
    fn global_goto_gets_exit_parameter() {
        let m = compile(testprogs::SECTION6_GOTO).unwrap();
        let (prog, mapping, changed) = break_global_gotos(&m).unwrap();
        assert!(changed);
        let printed = print_program(&prog);
        assert!(printed.contains("out exitcond_q: integer"), "{printed}");
        assert!(printed.contains("exitcond_q := 0"), "{printed}");
        assert!(printed.contains("exitcond_q := 1"), "{printed}");
        assert!(printed.contains("goto exitlab_q"), "{printed}");
        assert!(printed.contains("q(n, ec_q)"), "{printed}");
        assert!(printed.contains("if ec_q = 1 then"), "{printed}");
        assert!(
            mapping.exit_info.contains_key("p/q"),
            "{:?}",
            mapping.exit_info
        );
        let tm = analyze(prog).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(run_output(&m), run_output(&tm));
    }

    #[test]
    fn no_global_gotos_means_no_change() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let (prog, _, changed) = break_global_gotos(&m).unwrap();
        assert!(!changed);
        assert_eq!(prog, m.program);
    }

    #[test]
    fn recursive_proc_with_nonlocal_goto() {
        // A recursive procedure whose non-local goto cascades through its
        // own call sites: the second round must *reuse* the exit plumbing
        // (same exit parameter, same stable exit code) instead of adding
        // duplicates.
        let src = "program t; var trace: integer;
             procedure p;
             label 9;
               procedure q(n: integer);
               begin
                 trace := trace + 1;
                 if trace > 3 then goto 9;
                 if n > 0 then q(n - 1);
                 trace := trace + 10;
               end;
             begin q(5); trace := trace + 100; 9: trace := trace + 1000; end;
             begin trace := 0; p; writeln(trace) end.";
        let m = compile(src).unwrap();
        let t = crate::pipeline::transform(&m).unwrap();
        assert_eq!(run_output(&m), run_output(&t.module));
        // Exactly one exit parameter on q.
        let q = t.module.proc_by_name("q").unwrap();
        let exit_params = t
            .module
            .proc(q)
            .params
            .iter()
            .filter(|p| t.module.var(**p).name.starts_with("exitcond"))
            .count();
        assert_eq!(exit_params, 1);
    }

    #[test]
    fn mutually_recursive_procs_with_nonlocal_gotos() {
        // The language has no `forward` declarations, so mutual recursion
        // goes through the scope rules: a nested procedure calls its
        // enclosing procedure, and both sit inside the goto's target.
        let src = "program t; var trace: integer;
             procedure p;
             label 9;
               procedure outerq(n: integer);
                 procedure innerq(k: integer);
                 begin
                   trace := trace + 1;
                   if trace > 4 then goto 9;
                   if k > 0 then outerq(k - 1);
                 end;
               begin
                 innerq(n);
                 trace := trace + 10;
               end;
             begin outerq(3); 9: trace := trace + 1000; end;
             begin trace := 0; p; writeln(trace) end.";
        let m = compile(src).unwrap();
        let t = crate::pipeline::transform(&m).unwrap();
        assert_eq!(run_output(&m), run_output(&t.module));
    }

    #[test]
    fn two_level_global_goto_cascades() {
        // r (inside q inside p) jumps to p's label: after one round q's
        // caller dispatch contains a goto that is *still* non-local in q,
        // so a second round transforms q as well.
        let src = "program t; var trace: integer;
             procedure p;
             label 9;
               procedure q;
                 procedure r;
                 begin
                   trace := trace + 1;
                   goto 9;
                 end;
               begin
                 r;
                 trace := trace + 10;
               end;
             begin
               q;
               trace := trace + 100;
               9: trace := trace + 1000;
             end;
             begin trace := 0; p; writeln(trace) end.";
        let m = compile(src).unwrap();
        let mut cur = m.program.clone();
        let mut rounds = 0;
        loop {
            let module = analyze(cur.clone()).unwrap();
            let (next, _, changed) = break_global_gotos(&module).unwrap();
            if !changed {
                break;
            }
            cur = next;
            rounds += 1;
            assert!(rounds < 6, "cascade must terminate");
        }
        assert_eq!(rounds, 2, "two cascading rounds expected");
        let printed = print_program(&cur);
        let tm = analyze(cur).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(run_output(&m), run_output(&tm));
    }
}
