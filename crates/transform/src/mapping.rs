//! The original↔transformed construct mapping.
//!
//! "The debugging system maintains a mapping between the original and the
//! transformed program constructs" (§5.1) so the user never sees the
//! intermediate form (§6.1). This module holds that mapping: which
//! parameters were synthesized (and from which global), which statements
//! are synthetic, and which parameters encode exit conditions.

use gadt_pascal::ast::StmtId;
use std::collections::BTreeMap;

/// Why a parameter exists in the transformed program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamOrigin {
    /// Converted from a non-local variable with this (original) name.
    Global(String),
    /// Encodes exit side-effects: value `0` means a normal return, value
    /// `k ≥ 1` means "perform the k-th non-local goto" listed in
    /// [`ExitInfo::targets`].
    ExitCondition,
}

/// One synthesized parameter of a transformed procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddedParam {
    /// The parameter's name in the transformed program.
    pub name: String,
    /// Where it came from.
    pub origin: ParamOrigin,
}

/// Exit-parameter details for one transformed procedure.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExitInfo {
    /// The exit-condition parameter's name.
    pub param_name: String,
    /// Target labels keyed by the exit-condition value. Values are
    /// *globally stable* label codes (derived from the program's label
    /// inventory), so cascading transformation rounds assign the same
    /// code to the same label.
    pub targets: BTreeMap<i64, (String, String)>,
}

/// The complete mapping for one transformation run.
///
/// Procedures are keyed by their lowercase path, e.g. `"p/q"` for `q`
/// nested inside `p` (stable across re-analyses of the rewritten AST).
#[derive(Debug, Clone, Default)]
pub struct Mapping {
    /// Parameters added per procedure path.
    pub added_params: BTreeMap<String, Vec<AddedParam>>,
    /// Exit-condition details per procedure path.
    pub exit_info: BTreeMap<String, ExitInfo>,
    /// Statements synthesized by the transformation, with a description
    /// (e.g. `"exit dispatch for call of q"`).
    pub synthetic_stmts: BTreeMap<StmtId, String>,
}

impl Mapping {
    /// Whether a statement was synthesized by the transformation.
    pub fn is_synthetic(&self, s: StmtId) -> bool {
        self.synthetic_stmts.contains_key(&s)
    }

    /// Description of a synthetic statement, if any.
    pub fn describe(&self, s: StmtId) -> Option<&str> {
        self.synthetic_stmts.get(&s).map(String::as_str)
    }

    /// The exit-goto rendering for a procedure's exit-condition value:
    /// `None` for 0 (normal return), otherwise the `(owner, label)` pair.
    pub fn exit_target(&self, proc_path: &str, value: i64) -> Option<&(String, String)> {
        if value <= 0 {
            return None;
        }
        self.exit_info
            .get(proc_path)
            .and_then(|e| e.targets.get(&value))
    }

    /// Records an added parameter.
    pub fn add_param(&mut self, proc_path: &str, param: AddedParam) {
        self.added_params
            .entry(proc_path.to_string())
            .or_default()
            .push(param);
    }

    /// Records a synthetic statement.
    pub fn add_synthetic(&mut self, s: StmtId, what: impl Into<String>) {
        self.synthetic_stmts.insert(s, what.into());
    }

    /// Merges another mapping produced by a later phase.
    pub fn merge(&mut self, other: Mapping) {
        for (k, v) in other.added_params {
            self.added_params.entry(k).or_default().extend(v);
        }
        for (k, v) in other.exit_info {
            let e = self.exit_info.entry(k).or_default();
            if e.param_name.is_empty() {
                e.param_name = v.param_name;
            }
            e.targets.extend(v.targets);
        }
        self.synthetic_stmts.extend(other.synthetic_stmts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_target_lookup() {
        let mut m = Mapping::default();
        m.exit_info.insert(
            "p/q".to_string(),
            ExitInfo {
                param_name: "exitcond".to_string(),
                targets: BTreeMap::from([(1, ("p".to_string(), "9".to_string()))]),
            },
        );
        assert_eq!(m.exit_target("p/q", 0), None);
        assert_eq!(
            m.exit_target("p/q", 1),
            Some(&("p".to_string(), "9".to_string()))
        );
        assert_eq!(m.exit_target("p/q", 2), None);
        assert_eq!(m.exit_target("unknown", 1), None);
    }

    #[test]
    fn merge_combines_phases() {
        let mut a = Mapping::default();
        a.add_param(
            "p",
            AddedParam {
                name: "x".to_string(),
                origin: ParamOrigin::Global("x".to_string()),
            },
        );
        let mut b = Mapping::default();
        b.add_param(
            "p",
            AddedParam {
                name: "exitcond".to_string(),
                origin: ParamOrigin::ExitCondition,
            },
        );
        b.add_synthetic(StmtId(99), "exit dispatch");
        a.merge(b);
        assert_eq!(a.added_params["p"].len(), 2);
        assert!(a.is_synthetic(StmtId(99)));
    }
}
