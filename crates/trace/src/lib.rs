//! # gadt-trace
//!
//! Execution trees for the GADT reproduction (*Generalized Algorithmic
//! Debugging and Testing*, PLDI 1991).
//!
//! The tracing phase (paper §5.2) "builds an execution tree of the
//! transformed program … containing trace information about each unit of
//! the original program, such as parameter values and value of variables
//! which cause global side-effects within the unit". This crate turns a
//! recorded [`gadt_analysis::dyntrace::DynTrace`] into that tree:
//!
//! * one node per procedure/function invocation with named In/Out values
//!   (parameters, function results, and non-local reads/writes);
//! * one node per dynamic *loop* instance — the paper treats loops as
//!   debuggable units (§5.1) — with per-iteration variable snapshots;
//! * rendering in the paper's query format, e.g.
//!   `computs(In y: 3, Out r1: 12, Out r2: 9)` (Figure 7);
//! * pruning against a dynamic slice, producing the "corresponding
//!   execution tree" of §7 (Figures 8 and 9).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod tree;

pub use tree::{build_tree, ExecNode, ExecTree, NodeId, NodeKind};
