//! Execution-tree construction, rendering, and pruning.

use gadt_analysis::dyntrace::DynTrace;
use gadt_analysis::slice_dynamic::DynSlice;
use gadt_pascal::sema::{Module, ProcId, VarId, VarKind};
use gadt_pascal::value::Value;
use std::fmt::Write as _;

/// Index of a node within an [`ExecTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// What kind of unit a node represents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// A procedure or function invocation.
    Call {
        /// The dynamic call id in the underlying trace.
        call: u64,
        /// The invoked procedure.
        proc: ProcId,
        /// Whether the unit is a function (renders as `f(…) = v`).
        is_function: bool,
    },
    /// A dynamic loop instance (loops are units, §5.1).
    Loop {
        /// The loop instance id in the underlying trace.
        instance: u64,
        /// Total header arrivals.
        iterations: u64,
    },
}

/// One execution-tree node.
#[derive(Debug, Clone)]
pub struct ExecNode {
    /// This node's id.
    pub id: NodeId,
    /// Call or loop unit.
    pub kind: NodeKind,
    /// Display name (`computs`, `loop in arrsum`, …).
    pub name: String,
    /// Named input values: parameters (with their incoming values) and
    /// non-local variables read before written.
    pub ins: Vec<(String, Value)>,
    /// Named output values: reference parameters' final values, the
    /// function result (named after the function), and written non-locals.
    pub outs: Vec<(String, Value)>,
    /// Per-iteration snapshots for loop nodes: `(iteration, values)`.
    pub iterations: Vec<(u64, Vec<(String, Value)>)>,
    /// Children, in execution order.
    pub children: Vec<NodeId>,
    /// First trace-event index covered by this unit.
    pub enter_idx: usize,
    /// One past the last trace-event index covered.
    pub exit_idx: usize,
    /// Depth in the tree (root = 0).
    pub depth: usize,
}

/// The execution tree of one program run.
#[derive(Debug, Clone)]
pub struct ExecTree {
    /// All nodes; `nodes[0]` is the root.
    pub nodes: Vec<ExecNode>,
    /// The root node (the main program).
    pub root: NodeId,
}

impl ExecTree {
    /// The node with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &ExecNode {
        &self.nodes[id.0 as usize]
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records this tree's size on `rec` as the counter `tree.nodes`
    /// and a `tree.built` tick.
    pub fn observe(&self, rec: &mut gadt_obs::Recorder) {
        rec.incr("tree.built");
        rec.add("tree.nodes", self.nodes.len() as u64);
    }

    /// Nodes in pre-order (the paper's top-down traversal).
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            out.push(n);
            for c in self.node(n).children.iter().rev() {
                stack.push(*c);
            }
        }
        out
    }

    /// Nodes of the subtree rooted at `root`, in pre-order.
    pub fn preorder_from(&self, root: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            out.push(n);
            for c in self.node(n).children.iter().rev() {
                stack.push(*c);
            }
        }
        out
    }

    /// Finds the first (pre-order) call node for a procedure name.
    pub fn find_call(&self, module: &Module, name: &str) -> Option<NodeId> {
        let key = name.to_ascii_lowercase();
        self.preorder().into_iter().find(|&n| {
            matches!(
                &self.node(n).kind,
                NodeKind::Call { proc, .. }
                    if module.proc(*proc).name.to_ascii_lowercase() == key
            )
        })
    }

    /// Renders one node in the paper's query format:
    /// `sqrtest(In ary: [1,2], In n: 2, Out isok: false)` or
    /// `decrement(In y: 3) = 4` for functions.
    pub fn render_node(&self, id: NodeId) -> String {
        let n = self.node(id);
        let mut s = String::new();
        match &n.kind {
            NodeKind::Call { is_function, .. } => {
                let _ = write!(s, "{}(", n.name);
                let mut first = true;
                for (name, v) in &n.ins {
                    if !first {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "In {name}: {v}");
                    first = false;
                }
                let mut result: Option<&Value> = None;
                for (name, v) in &n.outs {
                    if *is_function && name == &n.name {
                        result = Some(v);
                        continue;
                    }
                    if !first {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "Out {name}: {v}");
                    first = false;
                }
                s.push(')');
                if let Some(v) = result {
                    let _ = write!(s, " = {v}");
                }
            }
            NodeKind::Loop { iterations, .. } => {
                let _ = write!(s, "{} [{} iteration(s)]", n.name, iterations);
                if let Some((_, vars)) = n.iterations.last() {
                    s.push_str(" (");
                    for (i, (name, v)) in vars.iter().enumerate() {
                        if i > 0 {
                            s.push_str(", ");
                        }
                        let _ = write!(s, "Out {name}: {v}");
                    }
                    s.push(')');
                }
            }
        }
        s
    }

    /// Renders a loop node's per-iteration variable values — the paper's
    /// §6.1 loop query ("are these iteration variables correct for
    /// iteration 1, iteration 2 etc."). Returns one line per recorded
    /// iteration boundary; empty for call nodes.
    pub fn render_loop_iterations(&self, id: NodeId) -> String {
        let n = self.node(id);
        if !matches!(n.kind, NodeKind::Loop { .. }) {
            return String::new();
        }
        let mut out = String::new();
        for (iter, vars) in &n.iterations {
            let vals: Vec<String> = vars
                .iter()
                .map(|(name, v)| format!("{name} = {v}"))
                .collect();
            out.push_str(&format!(
                "after iteration {}: {}\n",
                iter.saturating_sub(1),
                vals.join(", ")
            ));
        }
        out
    }

    /// Renders the whole tree (or a subtree) as an indented listing, one
    /// node per line — the textual analogue of the paper's Figure 7.
    pub fn render(&self, root: NodeId) -> String {
        let mut out = String::new();
        self.render_rec(root, 0, &mut out);
        out
    }

    fn render_rec(&self, id: NodeId, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.render_node(id));
        out.push('\n');
        for c in &self.node(id).children {
            self.render_rec(*c, depth + 1, out);
        }
    }

    /// Prunes the tree against a dynamic slice: keeps call nodes whose
    /// dynamic call the slice retains, and loop nodes covering at least
    /// one relevant event. Children of dropped nodes are dropped with
    /// them (a dropped call's subtree is irrelevant by construction).
    /// Returns a new tree rooted at the same unit as `root`.
    pub fn prune(&self, root: NodeId, slice: &DynSlice) -> ExecTree {
        let mut nodes = Vec::new();
        let new_root = self.prune_rec(root, slice, 0, &mut nodes);
        match new_root {
            Some(r) => ExecTree { nodes, root: r },
            None => ExecTree {
                nodes: Vec::new(),
                root: NodeId(0),
            },
        }
    }

    fn prune_rec(
        &self,
        id: NodeId,
        slice: &DynSlice,
        depth: usize,
        out: &mut Vec<ExecNode>,
    ) -> Option<NodeId> {
        let n = self.node(id);
        let keep = match &n.kind {
            NodeKind::Call { call, .. } => slice.keeps_call(*call),
            NodeKind::Loop { .. } => slice.events.range(n.enter_idx..n.exit_idx).next().is_some(),
        };
        if !keep {
            return None;
        }
        let new_id = NodeId(out.len() as u32);
        out.push(ExecNode {
            id: new_id,
            kind: n.kind.clone(),
            name: n.name.clone(),
            ins: n.ins.clone(),
            outs: n.outs.clone(),
            iterations: n.iterations.clone(),
            children: Vec::new(),
            enter_idx: n.enter_idx,
            exit_idx: n.exit_idx,
            depth,
        });
        let mut children = Vec::new();
        for c in &n.children {
            if let Some(nc) = self.prune_rec(*c, slice, depth + 1, out) {
                children.push(nc);
            }
        }
        out[new_id.0 as usize].children = children;
        Some(new_id)
    }
}

impl ExecTree {
    /// Prunes against a *static* slice: a call node survives when its
    /// procedure contributes at least one statement to the slice (or its
    /// call statement is in the slice); loop nodes survive when their
    /// loop statement is in the slice. Coarser than [`ExecTree::prune`]
    /// — a static slice cannot distinguish dynamic instances — but
    /// needs no recorded trace; included for the static-vs-dynamic
    /// pruning ablation.
    pub fn prune_static(
        &self,
        root: NodeId,
        module: &Module,
        slice: &gadt_analysis::slice_static::StaticSlice,
        trace: &DynTrace,
    ) -> ExecTree {
        let keep = |n: &ExecNode| -> bool {
            match &n.kind {
                NodeKind::Call { proc, call, .. } => {
                    let body_hit = {
                        let mut any = false;
                        for st in module.proc_body(*proc) {
                            st.walk(&mut |x| any |= slice.contains(x.id));
                        }
                        any
                    };
                    let site_hit = trace
                        .call(*call)
                        .site_stmt
                        .is_some_and(|s| slice.contains(s));
                    body_hit || site_hit
                }
                NodeKind::Loop { .. } => {
                    // A loop instance survives when any statement executed
                    // inside it belongs to the slice.
                    trace.events[n.enter_idx..n.exit_idx.min(trace.events.len())]
                        .iter()
                        .any(|e| slice.contains(e.stmt))
                }
            }
        };
        let mut nodes = Vec::new();
        fn rec(
            tree: &ExecTree,
            id: NodeId,
            depth: usize,
            keep: &dyn Fn(&ExecNode) -> bool,
            out: &mut Vec<ExecNode>,
            force: bool,
        ) -> Option<NodeId> {
            let n = tree.node(id);
            if !force && !keep(n) {
                return None;
            }
            let new_id = NodeId(out.len() as u32);
            out.push(ExecNode {
                id: new_id,
                kind: n.kind.clone(),
                name: n.name.clone(),
                ins: n.ins.clone(),
                outs: n.outs.clone(),
                iterations: n.iterations.clone(),
                children: Vec::new(),
                enter_idx: n.enter_idx,
                exit_idx: n.exit_idx,
                depth,
            });
            let mut children = Vec::new();
            for c in &n.children {
                if let Some(nc) = rec(tree, *c, depth + 1, keep, out, false) {
                    children.push(nc);
                }
            }
            out[new_id.0 as usize].children = children;
            Some(new_id)
        }
        let new_root = rec(self, root, 0, &keep, &mut nodes, true);
        ExecTree {
            nodes,
            root: new_root.unwrap_or(NodeId(0)),
        }
    }
}

/// Builds the execution tree from a recorded trace.
///
/// Loop instances become nodes nested inside their call's children;
/// calls made from inside a loop body nest under the loop node.
///
/// # Examples
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gadt_pascal::{sema::compile, cfg::lower, testprogs};
/// use gadt_analysis::dyntrace::record_trace;
/// use gadt_trace::build_tree;
/// let m = compile(testprogs::SQRTEST)?;
/// let cfg = lower(&m);
/// let trace = record_trace(&m, &cfg, [])?;
/// let tree = build_tree(&m, &trace);
/// let sqrtest = tree.find_call(&m, "sqrtest").unwrap();
/// assert!(tree.render_node(sqrtest).starts_with("sqrtest(In"));
/// # Ok(())
/// # }
/// ```
pub fn build_tree(module: &Module, trace: &DynTrace) -> ExecTree {
    let mut nodes: Vec<ExecNode> = Vec::new();
    let root = build_call(module, trace, 0, 0, &mut nodes);
    ExecTree { nodes, root }
}

fn var_display_name(module: &Module, var: VarId) -> String {
    module.var(var).name.clone()
}

fn build_call(
    module: &Module,
    trace: &DynTrace,
    call: u64,
    depth: usize,
    nodes: &mut Vec<ExecNode>,
) -> NodeId {
    let rec = trace.call(call);
    let info = module.proc(rec.proc);
    let id = NodeId(nodes.len() as u32);

    let mut ins: Vec<(String, Value)> = rec
        .args
        .iter()
        .filter(|(p, _)| {
            // Value/`in` parameters always carry inputs; `var` parameters
            // only when the callee actually read the incoming value;
            // `out` parameters never do.
            match module.var(*p).param_mode() {
                Some(gadt_pascal::ast::ParamMode::Value)
                | Some(gadt_pascal::ast::ParamMode::In)
                | None => true,
                Some(gadt_pascal::ast::ParamMode::Var) => rec.ref_params_read.contains(p),
                Some(gadt_pascal::ast::ParamMode::Out) => false,
            }
        })
        .map(|(p, v)| (var_display_name(module, *p), v.clone()))
        .collect();
    for (v, val) in &rec.nonlocal_reads {
        ins.push((var_display_name(module, *v), val.clone()));
    }
    let mut outs: Vec<(String, Value)> = rec
        .outs
        .iter()
        .map(|(p, v)| {
            let name = if module.var(*p).kind == VarKind::Result {
                info.name.clone()
            } else {
                var_display_name(module, *p)
            };
            (name, v.clone())
        })
        .collect();
    for (v, val) in &rec.nonlocal_writes {
        outs.push((var_display_name(module, *v), val.clone()));
    }

    nodes.push(ExecNode {
        id,
        kind: NodeKind::Call {
            call,
            proc: rec.proc,
            is_function: info.is_function(),
        },
        name: if rec.proc == gadt_pascal::sema::MAIN_PROC {
            module.program.name.name.clone()
        } else {
            info.name.clone()
        },
        ins,
        outs,
        iterations: Vec::new(),
        children: Vec::new(),
        enter_idx: rec.enter_idx,
        exit_idx: rec.exit_idx,
        depth,
    });

    // Items directly inside this call: child calls and loop instances of
    // this call, ordered by entry; loops may contain calls (and inner
    // loops) by interval containment.
    enum Item {
        Call(u64),
        Loop(usize),
    }
    let mut items: Vec<(usize, usize, Item)> = Vec::new();
    for &c in &rec.children {
        let cr = trace.call(c);
        items.push((cr.enter_idx, cr.exit_idx, Item::Call(c)));
    }
    for (li, l) in trace.loops.iter().enumerate() {
        if l.call == call {
            items.push((l.enter_idx, l.exit_idx, Item::Loop(li)));
        }
    }
    // Sort by entry; on ties, wider intervals first (loop encloses call).
    items.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));

    // Nest via a stack of open loop nodes.
    let mut open: Vec<(usize, NodeId)> = Vec::new(); // (exit_idx, node)
    for (enter, exit, item) in items {
        while let Some(&(open_exit, _)) = open.last() {
            if enter >= open_exit {
                open.pop();
            } else {
                break;
            }
        }
        let parent = open.last().map(|&(_, n)| n).unwrap_or(id);
        let parent_depth = nodes[parent.0 as usize].depth;
        match item {
            Item::Call(c) => {
                let child = build_call(module, trace, c, parent_depth + 1, nodes);
                nodes[parent.0 as usize].children.push(child);
            }
            Item::Loop(li) => {
                let l = &trace.loops[li];
                let lid = NodeId(nodes.len() as u32);
                let iterations: Vec<(u64, Vec<(String, Value)>)> = l
                    .snapshots
                    .iter()
                    .map(|(i, vars)| {
                        (
                            *i,
                            vars.iter()
                                .map(|(v, val)| (var_display_name(module, *v), val.clone()))
                                .collect(),
                        )
                    })
                    .collect();
                nodes.push(ExecNode {
                    id: lid,
                    kind: NodeKind::Loop {
                        instance: l.instance,
                        iterations: l.iterations,
                    },
                    name: format!("loop in {}", module.proc(rec.proc).name),
                    ins: Vec::new(),
                    outs: iterations
                        .last()
                        .map(|(_, vars)| vars.clone())
                        .unwrap_or_default(),
                    iterations,
                    children: Vec::new(),
                    enter_idx: enter,
                    exit_idx: exit,
                    depth: parent_depth + 1,
                });
                nodes[parent.0 as usize].children.push(lid);
                open.push((exit, lid));
            }
        }
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadt_analysis::dyntrace::record_trace;
    use gadt_analysis::slice_dynamic::dynamic_slice_output;
    use gadt_pascal::cfg::lower;
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;

    fn tree_of(src: &str) -> (Module, DynTrace, ExecTree) {
        let m = compile(src).expect("compile");
        let cfg = lower(&m);
        let t = record_trace(&m, &cfg, []).expect("run");
        let tree = build_tree(&m, &t);
        (m, t, tree)
    }

    #[test]
    fn figure7_tree_shape() {
        let (m, _, tree) = tree_of(testprogs::SQRTEST);
        // Main + 13 invocations + 1 loop (in arrsum) = 15 nodes.
        assert_eq!(tree.len(), 15);
        let sqrtest = tree.find_call(&m, "sqrtest").unwrap();
        let names: Vec<&str> = tree
            .node(sqrtest)
            .children
            .iter()
            .map(|&c| tree.node(c).name.as_str())
            .collect();
        assert_eq!(names, vec!["arrsum", "computs", "test"]);
        // The loop nests under arrsum.
        let arrsum = tree.find_call(&m, "arrsum").unwrap();
        assert_eq!(tree.node(arrsum).children.len(), 1);
        assert!(tree
            .node(tree.node(arrsum).children[0])
            .name
            .starts_with("loop"));
    }

    #[test]
    fn figure7_node_renderings() {
        let (m, _, tree) = tree_of(testprogs::SQRTEST);
        let render = |name: &str| {
            let n = tree.find_call(&m, name).unwrap();
            tree.render_node(n)
        };
        assert_eq!(
            render("sqrtest"),
            "sqrtest(In ary: [1,2], In n: 2, Out isok: false)"
        );
        assert_eq!(render("arrsum"), "arrsum(In a: [1,2], In n: 2, Out b: 3)");
        assert_eq!(render("computs"), "computs(In y: 3, Out r1: 12, Out r2: 9)");
        assert_eq!(render("test"), "test(In r1: 12, In r2: 9, Out isok: false)");
        assert_eq!(render("decrement"), "decrement(In y: 3) = 4");
        assert_eq!(render("increment"), "increment(In y: 3) = 4");
        assert_eq!(
            render("partialsums"),
            "partialsums(In y: 3, Out s1: 6, Out s2: 6)"
        );
        assert_eq!(render("add"), "add(In s1: 6, In s2: 6, Out r1: 12)");
        assert_eq!(render("square"), "square(In y: 3, Out r2: 9)");
    }

    #[test]
    fn preorder_matches_execution_order_of_figure7() {
        let (_, _, tree) = tree_of(testprogs::SQRTEST);
        let names: Vec<String> = tree
            .preorder()
            .into_iter()
            .map(|n| tree.node(n).name.clone())
            .collect();
        // Pre-order: Main, sqrtest, arrsum, loop, computs, comput1,
        // partialsums, sum1, increment, sum2, decrement, add, comput2,
        // square, test.
        assert_eq!(
            names,
            vec![
                "Main",
                "sqrtest",
                "arrsum",
                "loop in arrsum",
                "computs",
                "comput1",
                "partialsums",
                "sum1",
                "increment",
                "sum2",
                "decrement",
                "add",
                "comput2",
                "square",
                "test"
            ]
        );
    }

    #[test]
    fn figure8_pruned_tree() {
        // §8 step 2: slice on computs output 1 → Figure 8.
        let (m, t, tree) = tree_of(testprogs::SQRTEST);
        let computs_call = t
            .calls
            .iter()
            .find(|c| m.proc(c.proc).name == "computs")
            .unwrap()
            .id;
        let slice = dynamic_slice_output(&m, &t, computs_call, 0);
        let computs_node = tree.find_call(&m, "computs").unwrap();
        let pruned = tree.prune(computs_node, &slice);
        let names: Vec<String> = pruned
            .preorder()
            .into_iter()
            .map(|n| pruned.node(n).name.clone())
            .collect();
        assert_eq!(
            names,
            vec![
                "computs",
                "comput1",
                "partialsums",
                "sum1",
                "increment",
                "sum2",
                "decrement",
                "add"
            ]
        );
    }

    #[test]
    fn figure9_pruned_tree() {
        // §8 step 4: slice on partialsums output 2 → Figure 9.
        let (m, t, tree) = tree_of(testprogs::SQRTEST);
        let ps_call = t
            .calls
            .iter()
            .find(|c| m.proc(c.proc).name == "partialsums")
            .unwrap()
            .id;
        let slice = dynamic_slice_output(&m, &t, ps_call, 1);
        let ps_node = tree.find_call(&m, "partialsums").unwrap();
        let pruned = tree.prune(ps_node, &slice);
        let names: Vec<String> = pruned
            .preorder()
            .into_iter()
            .map(|n| pruned.node(n).name.clone())
            .collect();
        assert_eq!(names, vec!["partialsums", "sum2", "decrement"]);
    }

    #[test]
    fn pqr_tree_shows_nested_procedures() {
        let (m, _, tree) = tree_of(testprogs::PQR);
        let p = tree.find_call(&m, "p").unwrap();
        let names: Vec<&str> = tree
            .node(p)
            .children
            .iter()
            .map(|&c| tree.node(c).name.as_str())
            .collect();
        assert_eq!(names, vec!["q", "r"]);
        assert_eq!(
            tree.render_node(p),
            "p(In a: 5, In c: 7, Out b: 10, Out d: 10)"
        );
    }

    #[test]
    fn loop_node_snapshots_iterations() {
        let (m, _, tree) = tree_of(
            "program t; var i, s: integer;
             begin s := 0; for i := 1 to 3 do s := s + i end.",
        );
        let root = tree.root;
        let main = tree.node(root);
        assert_eq!(main.children.len(), 1);
        let l = tree.node(main.children[0]);
        assert!(matches!(l.kind, NodeKind::Loop { iterations: 4, .. }));
        // The final snapshot shows s = 6.
        let (_, last) = l.iterations.last().unwrap();
        assert!(last.iter().any(|(n, v)| n == "s" && *v == Value::Int(6)));
        let _ = m;
    }

    #[test]
    fn calls_inside_loops_nest_under_loop_node() {
        let (m, _, tree) = tree_of(
            "program t; var i, s: integer;
             procedure bump(var x: integer); begin x := x + 1 end;
             begin for i := 1 to 2 do bump(s) end.",
        );
        let root = tree.node(tree.root);
        assert_eq!(root.children.len(), 1);
        let l = tree.node(root.children[0]);
        assert!(matches!(l.kind, NodeKind::Loop { .. }));
        assert_eq!(l.children.len(), 2, "two bump calls inside the loop");
        assert!(l.children.iter().all(|&c| tree.node(c).name == "bump"));
        let _ = m;
    }

    #[test]
    fn global_side_effects_appear_as_in_out() {
        let (m, _, tree) = tree_of(testprogs::SECTION6_GLOBALS);
        let p = tree.find_call(&m, "p").unwrap();
        let rendered = tree.render_node(p);
        // p reads global x (In) and writes global z (Out); var param y is
        // written before read, so it appears only as Out.
        assert_eq!(rendered, "p(In x: 10, Out y: 11, Out z: 1)");
    }

    #[test]
    fn nonlocal_goto_marks_aborted_calls() {
        let (m, t, tree) = tree_of(testprogs::SECTION6_GOTO);
        let q = t.calls.iter().find(|c| m.proc(c.proc).name == "q").unwrap();
        assert!(q.via_goto);
        // Tree still contains the q node.
        assert!(tree.find_call(&m, "q").is_some());
    }

    #[test]
    fn render_tree_is_indented() {
        let (_, _, tree) = tree_of(testprogs::PQR);
        let s = tree.render(tree.root);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("pqr("));
        assert!(lines[1].starts_with("  p("));
        assert!(lines[2].starts_with("    q("));
    }

    #[test]
    fn prune_with_empty_slice_keeps_nothing_but_spine() {
        let (m, t, tree) = tree_of(testprogs::PQR);
        let r_call = t
            .calls
            .iter()
            .find(|c| m.proc(c.proc).name == "r")
            .unwrap()
            .id;
        let slice = dynamic_slice_output(&m, &t, r_call, 0);
        let root = tree.find_call(&m, "p").unwrap();
        let pruned = tree.prune(root, &slice);
        let names: Vec<String> = pruned
            .preorder()
            .into_iter()
            .map(|n| pruned.node(n).name.clone())
            .collect();
        // q is irrelevant to r's output d.
        assert_eq!(names, vec!["p", "r"]);
    }

    #[test]
    fn prune_against_default_slice_yields_empty_tree() {
        // A slice retaining no calls and no events prunes everything,
        // including the requested root.
        let (_, _, tree) = tree_of(testprogs::PQR);
        let pruned = tree.prune(tree.root, &DynSlice::default());
        assert!(pruned.is_empty());
        assert_eq!(pruned.len(), 0);
    }

    #[test]
    fn prune_keeping_only_root_drops_all_children() {
        let (m, t, tree) = tree_of(testprogs::PQR);
        let p_node = tree.find_call(&m, "p").unwrap();
        let NodeKind::Call { call, .. } = tree.node(p_node).kind else {
            panic!("p is a call node");
        };
        let mut slice = DynSlice::default();
        slice.calls.insert(call);
        let pruned = tree.prune(p_node, &slice);
        assert_eq!(pruned.len(), 1);
        let root = pruned.node(pruned.root);
        assert_eq!(root.name, "p");
        assert!(root.children.is_empty());
        assert_eq!(root.depth, 0, "pruned root is re-rooted at depth 0");
        let _ = t;
    }

    #[test]
    fn prune_at_sliced_out_subtree_root_yields_empty_tree() {
        // Slice on r's output keeps p and r but not q; asking to prune
        // the q subtree therefore yields the empty tree even though q's
        // ancestors are retained by the slice.
        let (m, t, tree) = tree_of(testprogs::PQR);
        let r_call = t
            .calls
            .iter()
            .find(|c| m.proc(c.proc).name == "r")
            .unwrap()
            .id;
        let slice = dynamic_slice_output(&m, &t, r_call, 0);
        let q_node = tree.find_call(&m, "q").unwrap();
        let NodeKind::Call { call: q_call, .. } = tree.node(q_node).kind else {
            panic!("q is a call node");
        };
        assert!(!slice.keeps_call(q_call), "q must be sliced out");
        let pruned = tree.prune(q_node, &slice);
        assert!(pruned.is_empty());
    }

    #[test]
    fn prune_static_against_empty_slice_keeps_only_forced_root() {
        // prune_static forces the requested root so the debugger always
        // has a tree to walk; with an empty static slice nothing else
        // survives.
        let (m, t, tree) = tree_of(testprogs::PQR);
        let empty = gadt_analysis::slice_static::StaticSlice {
            stmts: Default::default(),
            entry_relevant: Default::default(),
        };
        let pruned = tree.prune_static(tree.root, &m, &empty, &t);
        assert_eq!(pruned.len(), 1);
        assert!(pruned.node(pruned.root).children.is_empty());
    }
}

#[cfg(test)]
mod loop_render_tests {
    use super::*;
    use gadt_analysis::dyntrace::record_trace;
    use gadt_pascal::cfg::lower;
    use gadt_pascal::sema::compile;

    #[test]
    fn loop_iterations_render_per_iteration_values() {
        let m = compile(
            "program t; var i, s: integer;
             begin s := 0; for i := 1 to 3 do s := s + i end.",
        )
        .unwrap();
        let cfg = lower(&m);
        let trace = record_trace(&m, &cfg, []).unwrap();
        let tree = build_tree(&m, &trace);
        let root = tree.node(tree.root);
        let loop_node = root.children[0];
        let rendered = tree.render_loop_iterations(loop_node);
        assert!(rendered.contains("after iteration 1: "), "{rendered}");
        assert!(rendered.contains("s = 1"), "{rendered}");
        assert!(rendered.contains("s = 3"), "{rendered}");
        assert!(rendered.contains("s = 6"), "{rendered}");
        // Call nodes render nothing.
        assert_eq!(tree.render_loop_iterations(tree.root), "");
    }
}

#[cfg(test)]
mod static_prune_tests {
    use super::*;
    use gadt_analysis::dyntrace::record_trace;
    use gadt_analysis::slice_static::{static_slice, SliceContext, SliceCriterion};
    use gadt_pascal::cfg::lower;
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;

    #[test]
    fn static_pruning_is_coarser_than_dynamic() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let cfg = lower(&m);
        let trace = record_trace(&m, &cfg, []).unwrap();
        let tree = build_tree(&m, &trace);

        // Static slice on sqrtest's r1 at its exit.
        let cx = SliceContext::new(&m, &cfg);
        let sqrtest = m.proc_by_name("sqrtest").unwrap();
        let r1 = m.var_in_scope(sqrtest, "r1").unwrap();
        let st = static_slice(&cx, &SliceCriterion::at_proc_exit(sqrtest, [r1]));
        let root = tree.find_call(&m, "sqrtest").unwrap();
        let pruned_static = tree.prune_static(root, &m, &st, &trace);

        // Dynamic slice on the same criterion.
        let call = trace
            .calls
            .iter()
            .find(|c| m.proc(c.proc).name == "sqrtest")
            .unwrap()
            .id;
        let dy = gadt_analysis::slice_dynamic::dynamic_slice_output(&m, &trace, call, 1);
        // outs of sqrtest: [isok]; r1 is a local — use computs instead for
        // the dynamic side.
        let _ = dy;
        let computs_call = trace
            .calls
            .iter()
            .find(|c| m.proc(c.proc).name == "computs")
            .unwrap()
            .id;
        let dyn_slice =
            gadt_analysis::slice_dynamic::dynamic_slice_output(&m, &trace, computs_call, 0);
        let computs_node = tree.find_call(&m, "computs").unwrap();
        let pruned_dynamic = tree.prune(computs_node, &dyn_slice);

        // Static pruning keeps the r1-relevant procedures and drops the
        // r2 chain (comput2/square are not in the static slice on r1).
        let names: Vec<String> = pruned_static
            .preorder()
            .into_iter()
            .map(|n| pruned_static.node(n).name.clone())
            .collect();
        assert!(names.contains(&"comput1".to_string()), "{names:?}");
        assert!(!names.contains(&"square".to_string()), "{names:?}");
        // Both prune, dynamic at least as aggressively within computs.
        assert!(pruned_dynamic.len() <= pruned_static.len());
    }
}
