//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message — request, response, or streamed journal event — is one
//! *frame*: a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. The payload must be a single JSON value that
//! passes the strict `gadt-obs` validator and parses with the
//! `gadt-store` parser; no other encoder or decoder is involved, so the
//! server speaks exactly the dialect the knowledge store already
//! persists.
//!
//! Framing rules (enforced by [`read_frame`]):
//!
//! * a length of zero is a protocol error (every message is an object);
//! * a length above the negotiated cap ([`MAX_FRAME`] by default) is
//!   refused *before* any payload is read, so a garbage prefix cannot
//!   make the server allocate gigabytes;
//! * a clean EOF *between* frames reads as `Ok(None)` (the peer hung
//!   up); EOF *inside* a frame — truncated prefix or truncated payload —
//!   is an [`io::ErrorKind::UnexpectedEof`] error;
//! * payloads that are not valid UTF-8, fail JSON validation, or do not
//!   parse are [`io::ErrorKind::InvalidData`] errors.

use gadt_store::{parse, Json};
use std::io::{self, Read, Write};

/// Default maximum frame payload size: 8 MiB. Large enough for a full
/// source program or a journal dump, small enough that a hostile length
/// prefix cannot exhaust memory.
pub const MAX_FRAME: u32 = 8 * 1024 * 1024;

/// Reads one frame, returning `Ok(None)` on a clean EOF before the
/// first prefix byte.
///
/// # Errors
/// `UnexpectedEof` on truncation mid-frame, `InvalidData` on an
/// oversized/zero length prefix or an unparseable payload, plus any
/// transport error (including read timeouts, surfaced as
/// `WouldBlock`/`TimedOut`).
pub fn read_frame<R: Read>(r: &mut R, max_frame: u32) -> io::Result<Option<Json>> {
    let mut prefix = [0u8; 4];
    // Hand-rolled first read so a clean EOF between frames is Ok(None)
    // while a mid-prefix EOF stays an error.
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame length prefix",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if got == 0 => return Err(e),
            Err(e)
                if got > 0
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                // Mid-prefix timeout: keep waiting for the rest — the
                // peer committed to a frame by sending the first byte.
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(prefix);
    if len == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "zero-length frame",
        ));
    }
    if len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_frame}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    read_fully(r, &mut payload)?;
    decode(&payload).map(Some)
}

/// `read_exact` that rides out read timeouts: a frame in flight is
/// always drained to completion (or a real error).
fn read_fully<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<()> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame payload",
                ))
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::Interrupted
                        | io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn decode(payload: &[u8]) -> io::Result<Json> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame payload is not UTF-8"))?;
    gadt_obs::json::validate(text).map_err(|(at, what)| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame payload fails JSON validation at byte {at}: {what}"),
        )
    })?;
    parse(text).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "frame payload did not parse as JSON",
        )
    })
}

/// Writes one frame (prefix + canonical serialization) and flushes.
///
/// # Errors
/// `InvalidData` when the encoded payload exceeds `max_frame`;
/// otherwise transport errors.
pub fn write_frame<W: Write>(w: &mut W, msg: &Json, max_frame: u32) -> io::Result<()> {
    let payload = msg.to_string();
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    if len > max_frame || payload.len() > u32::MAX as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "outgoing frame of {} bytes exceeds the {max_frame}-byte cap",
                payload.len()
            ),
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// A string field of a JSON object (`None` when absent or non-string).
pub fn str_field<'a>(msg: &'a Json, key: &str) -> Option<&'a str> {
    msg.get(key).and_then(Json::as_str)
}

/// An integer field of a JSON object.
pub fn int_field(msg: &Json, key: &str) -> Option<i64> {
    msg.get(key).and_then(Json::as_int)
}

/// A boolean field of a JSON object.
pub fn bool_field(msg: &Json, key: &str) -> Option<bool> {
    msg.get(key).and_then(Json::as_bool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadt_store::obj;
    use std::io::Cursor;

    fn frame_bytes(msg: &Json) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, msg, MAX_FRAME).unwrap();
        out
    }

    #[test]
    fn frames_round_trip() {
        let msg = obj(vec![("op", Json::Str("ping".into())), ("n", Json::Int(42))]);
        let bytes = frame_bytes(&msg);
        let mut cur = Cursor::new(bytes);
        let back = read_frame(&mut cur, MAX_FRAME).unwrap().unwrap();
        assert_eq!(back.get("op").and_then(Json::as_str), Some("ping"));
        assert_eq!(back.get("n").and_then(Json::as_int), Some(42));
        // Clean EOF after the frame.
        assert!(read_frame(&mut cur, MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn truncated_prefix_and_payload_are_errors() {
        let bytes = frame_bytes(&obj(vec![("op", Json::Str("ping".into()))]));
        for cut in 1..bytes.len() {
            let mut cur = Cursor::new(bytes[..cut].to_vec());
            let err = read_frame(&mut cur, MAX_FRAME).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn oversized_and_zero_prefixes_are_refused_without_reading() {
        let mut huge = u32::MAX.to_be_bytes().to_vec();
        huge.extend_from_slice(b"{}");
        let err = read_frame(&mut Cursor::new(huge), MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let zero = 0u32.to_be_bytes().to_vec();
        let err = read_frame(&mut Cursor::new(zero), MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn garbage_payloads_are_invalid_data() {
        for payload in [&b"not json"[..], b"{\"open\":", b"\xff\xfe\x00"] {
            let mut bytes = (payload.len() as u32).to_be_bytes().to_vec();
            bytes.extend_from_slice(payload);
            let err = read_frame(&mut Cursor::new(bytes), MAX_FRAME).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{payload:?}");
        }
    }

    #[test]
    fn outgoing_frames_respect_the_cap() {
        let big = Json::Str("x".repeat(64));
        let mut out = Vec::new();
        let err = write_frame(&mut out, &big, 16).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(out.is_empty(), "nothing may be written before the check");
    }
}
