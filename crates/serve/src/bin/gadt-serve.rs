//! The `gadt-serve` binary: a long-lived multi-session debugging
//! service over the pooled knowledge store.
//!
//! ```text
//! gadt-serve --listen tcp:127.0.0.1:7333 [--store DIR] [--shards N] [--threads N]
//! gadt-serve --listen unix:/tmp/gadt.sock ...
//! gadt-serve --selftest tcp:127.0.0.1:7333 [--shutdown]
//! ```
//!
//! Server mode runs until a client sends the `shutdown` op, then
//! compacts every shard and prints a report line. Selftest mode
//! connects as a client and drives the paper's §8 session end to end —
//! compile, trace, debug, answer — judging each question against a
//! locally computed golden transcript; with `--shutdown` it stops the
//! server afterwards (the CI serve tier's last step).

use gadt::debugger::DebugConfig;
use gadt::oracle::{ChainOracle, ReferenceOracle};
use gadt::session::{debug, prepare, run_traced};
use gadt_pascal::testprogs;
use gadt_serve::{AskReply, Client, Listen, Server, ServerConfig, SessionOptions};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: gadt-serve --listen tcp:HOST:PORT|unix:PATH [--store DIR] [--shards N] \
         [--threads N] [--compact-threshold N]\n       gadt-serve --selftest ADDR [--shutdown]\
         \n       gadt-serve --bench ADDR [--clients N] [--sessions N] [--shutdown]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = None;
    let mut selftest = None;
    let mut bench = None;
    let mut store_dir = std::path::PathBuf::from("gadt-store");
    let mut shards = 4usize;
    let mut threads = 4usize;
    let mut compact_threshold = 64usize;
    let mut shutdown_after = false;
    let mut clients = 8usize;
    let mut sessions = 32usize;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => listen = it.next().cloned(),
            "--selftest" => selftest = it.next().cloned(),
            "--bench" => bench = it.next().cloned(),
            "--clients" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => clients = n,
                None => return usage(),
            },
            "--sessions" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => sessions = n,
                None => return usage(),
            },
            "--store" => match it.next() {
                Some(d) => store_dir = d.into(),
                None => return usage(),
            },
            "--shards" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => shards = n,
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => threads = n,
                None => return usage(),
            },
            "--compact-threshold" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => compact_threshold = n,
                None => return usage(),
            },
            "--shutdown" => shutdown_after = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    if let Some(addr) = selftest {
        return match run_selftest(&addr, shutdown_after) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("gadt-serve selftest failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(addr) = bench {
        return match run_bench(&addr, clients, sessions, shutdown_after) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("gadt-serve bench failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let Some(spec) = listen else { return usage() };
    let listen = match Listen::parse(&spec) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("gadt-serve: {e}");
            return ExitCode::from(2);
        }
    };
    let mut cfg = ServerConfig::new(listen, store_dir);
    cfg.shards = shards;
    cfg.threads = threads;
    cfg.compact_threshold = compact_threshold;
    match Server::start(cfg) {
        Ok(handle) => {
            println!("gadt-serve listening on {}", handle.addr());
            match handle.wait() {
                Ok(report) => {
                    println!("gadt-serve clean shutdown: {report}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("gadt-serve shutdown error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("gadt-serve failed to start: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the §8 sqrtest session against a live server, answering each
/// question from a locally computed golden transcript (reference oracle
/// against the fixed program). Exercises compile → trace → ask/answer →
/// slice → journal → compact, and verifies the bug lands in
/// `decrement`.
fn run_selftest(addr: &str, shutdown_after: bool) -> Result<(), String> {
    let golden = golden_transcript()?;
    let mut client = Client::connect_to(addr).map_err(|e| e.to_string())?;
    if !client.ping().map_err(|e| e.to_string())? {
        return Err("ping did not pong".into());
    }
    let opts = SessionOptions {
        pool: Some(true),
        ..SessionOptions::default()
    };
    let sid = client
        .create_session(testprogs::SQRTEST, &opts)
        .map_err(|e| e.to_string())?;
    let outputs = client.trace(sid, &[vec![]]).map_err(|e| e.to_string())?;
    println!("selftest: session {sid}, traced output {:?}", outputs);

    let mut reply = client.ask(sid, 0).map_err(|e| e.to_string())?;
    let mut answered = 0usize;
    loop {
        match reply {
            AskReply::Done {
                localized,
                questions,
                slices,
                ..
            } => {
                println!(
                    "selftest: done after {questions} questions ({answered} answered here, \
                     {slices} slices): bug in {localized:?}"
                );
                if localized.as_deref() != Some("decrement") {
                    return Err(format!("expected bug in `decrement`, got {localized:?}"));
                }
                break;
            }
            AskReply::Question { ref query, .. } => {
                let verdict = golden
                    .get(query)
                    .cloned()
                    .ok_or_else(|| format!("server asked an unexpected question: {query}"))?;
                answered += 1;
                reply = client.answer(sid, &verdict).map_err(|e| e.to_string())?;
            }
        }
    }

    let (events, stmts, calls) = client
        .slice(sid, 0, "decrement", 0)
        .map_err(|e| e.to_string())?;
    println!(
        "selftest: slice of decrement output 0: {events} events, {stmts} stmts, {calls} calls"
    );
    let fp = client.journal_fingerprint(sid).map_err(|e| e.to_string())?;
    if fp.is_empty() {
        return Err("journal fingerprint is empty".into());
    }
    let compacted = client.compact().map_err(|e| e.to_string())?;
    println!("selftest: compacted {compacted} shards");
    if compacted == 0 {
        return Err("expected at least one shard compaction".into());
    }
    if shutdown_after {
        client.shutdown_server().map_err(|e| e.to_string())?;
        println!("selftest: server shutdown requested");
    }
    println!("selftest: OK");
    Ok(())
}

/// The callback driver's §8 transcript, keyed by the rendered query.
/// The server must render queries identically (transparency mapping),
/// so lookups are exact.
fn golden_transcript() -> Result<BTreeMap<String, gadt::Verdict>, String> {
    let module = gadt_pascal::sema::compile(testprogs::SQRTEST).map_err(|e| e.to_string())?;
    let fixed = gadt_pascal::sema::compile(testprogs::SQRTEST_FIXED).map_err(|e| e.to_string())?;
    let prepared = prepare(&module).map_err(|e| e.to_string())?;
    let run = run_traced(&prepared, []).map_err(|e| e.to_string())?;
    let mut oracle = ChainOracle::new();
    oracle.push(ReferenceOracle::new(&fixed, []).map_err(|e| e.to_string())?);
    let outcome = debug(&prepared, &run, &mut oracle, DebugConfig::default());
    Ok(outcome
        .transcript
        .iter()
        .map(|t| (t.query.clone(), t.answer.clone()))
        .collect())
}

/// One full pooled §8 session: create, trace, pump to `done`. Any
/// question the pool cannot answer is judged from `golden`.
fn pump_session(
    client: &mut Client,
    golden: &BTreeMap<String, gadt::Verdict>,
) -> Result<(), String> {
    let opts = SessionOptions {
        pool: Some(true),
        ..SessionOptions::default()
    };
    let sid = client
        .create_session(testprogs::SQRTEST, &opts)
        .map_err(|e| e.to_string())?;
    client.trace(sid, &[vec![]]).map_err(|e| e.to_string())?;
    let mut reply = client.ask(sid, 0).map_err(|e| e.to_string())?;
    loop {
        match reply {
            AskReply::Done { localized, .. } => {
                if localized.as_deref() != Some("decrement") {
                    return Err(format!("expected bug in `decrement`, got {localized:?}"));
                }
                return Ok(());
            }
            AskReply::Question { ref query, .. } => {
                let verdict = golden
                    .get(query)
                    .cloned()
                    .ok_or_else(|| format!("server asked an unexpected question: {query}"))?;
                reply = client.answer(sid, &verdict).map_err(|e| e.to_string())?;
            }
        }
    }
}

/// Hammers a live server and prints the throughput figures quoted in
/// EXPERIMENTS.md: ping round-trips per second on one connection
/// (framing + dispatch overhead), the latency of one user-answered
/// seeding session, then full pooled §8 debugging sessions per second
/// across `clients` concurrent connections — every post-seed session
/// compiles, traces, and is answered entirely by the knowledge store.
fn run_bench(
    addr: &str,
    clients: usize,
    sessions: usize,
    shutdown_after: bool,
) -> Result<(), String> {
    use std::time::Instant;

    let mut client = Client::connect_to(addr).map_err(|e| e.to_string())?;
    let pings = 5000usize;
    let t0 = Instant::now();
    for _ in 0..pings {
        if !client.ping().map_err(|e| e.to_string())? {
            return Err("ping did not pong".into());
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "bench: {pings} ping round-trips in {dt:.3}s = {:.0} req/s",
        pings as f64 / dt
    );

    let golden = golden_transcript()?;
    let t0 = Instant::now();
    pump_session(&mut client, &golden)?;
    println!(
        "bench: seeding session (user-answered) took {:.1}ms",
        t0.elapsed().as_secs_f64() * 1e3
    );

    let total = clients * sessions;
    let t0 = Instant::now();
    std::thread::scope(|s| -> Result<(), String> {
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                s.spawn(|| -> Result<(), String> {
                    let mut c = Client::connect_to(addr).map_err(|e| e.to_string())?;
                    for _ in 0..sessions {
                        pump_session(&mut c, &golden)?;
                    }
                    Ok(())
                })
            })
            .collect();
        for w in workers {
            w.join()
                .map_err(|_| "bench client panicked".to_string())??;
        }
        Ok(())
    })?;
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "bench: {total} pooled sessions ({clients} clients x {sessions}) in {dt:.3}s \
         = {:.1} sessions/s",
        total as f64 / dt
    );

    if shutdown_after {
        client.shutdown_server().map_err(|e| e.to_string())?;
        println!("bench: server shutdown requested");
    }
    Ok(())
}
