//! The long-lived debugging service: accept loop, worker pool, session
//! table, pooled knowledge, journal streaming, background compaction.
//!
//! One server multiplexes many concurrent debugging/testing sessions
//! against a single [`ShardedStore`]. The connection fabric is the
//! workspace's own [`BatchExecutor`]: the accept loop, the background
//! compactor, and every worker are items of one long-running batch, so
//! the server inherits the executor's 16 MiB stacks (deep subject
//! programs) without a second thread abstraction.
//!
//! Durability contract: an `answer` request is acknowledged only after
//! [`ShardedStore::record_answers`] has fsynced the append on its shard
//! — killing the server (`ServerHandle::kill`, or the process) loses no
//! acknowledged answer. Clean shutdown additionally compacts every
//! shard.
//!
//! Determinism contract: each session journals into its own untimed
//! [`Recorder`], so per-session journal fingerprints are invariant
//! under the server's thread count and under interleaving with other
//! sessions; store bytes are invariant for workloads whose per-unit
//! append sequences are fixed (appends are idempotent and canonical).

use crate::proto::{bool_field, int_field, read_frame, str_field, write_frame, MAX_FRAME};
use gadt::debugger::{DebugConfig, DebugResult, Strategy};
use gadt::handle::{DebugHandle, Verdict};
use gadt::session::{
    prepare_observed, run_traced_batch_observed, run_traced_limited, Engine, PreparedProgram,
    TracedRun,
};
use gadt::stored::{answer_from_stored, answer_to_stored, STORED_SOURCE};
use gadt_analysis::slice_dynamic::{dynamic_slice_output, SliceStats};
use gadt_exec::BatchExecutor;
use gadt_obs::Recorder;
use gadt_pascal::interp::Limits;
use gadt_pascal::value::Value;
use gadt_store::{obj, value_from_json, value_to_json, Json, ShardedStore, StoredAnswer};
use gadt_trace::NodeKind;
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Where the server listens.
#[derive(Debug, Clone)]
pub enum Listen {
    /// A TCP address, e.g. `127.0.0.1:0` (0 = ephemeral port).
    Tcp(String),
    /// A unix-domain socket path (a stale socket file is replaced).
    Unix(PathBuf),
}

impl Listen {
    /// Parses `tcp:HOST:PORT` or `unix:PATH`.
    ///
    /// # Errors
    /// A description of the expected syntax.
    pub fn parse(spec: &str) -> Result<Listen, String> {
        if let Some(addr) = spec.strip_prefix("tcp:") {
            Ok(Listen::Tcp(addr.to_string()))
        } else if let Some(path) = spec.strip_prefix("unix:") {
            Ok(Listen::Unix(PathBuf::from(path)))
        } else {
            Err(format!(
                "listen spec `{spec}` must be tcp:HOST:PORT or unix:PATH"
            ))
        }
    }
}

/// Where a started server actually listens (TCP port resolved).
#[derive(Debug, Clone)]
pub enum ServerAddr {
    /// The bound TCP address.
    Tcp(std::net::SocketAddr),
    /// The unix socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for ServerAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerAddr::Tcp(a) => write!(f, "tcp:{a}"),
            ServerAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// Server configuration; [`ServerConfig::new`] fills the defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address.
    pub listen: Listen,
    /// Root directory of the sharded knowledge store.
    pub store_dir: PathBuf,
    /// Shard count for a fresh store (existing layouts win — see
    /// [`ShardedStore::open`]).
    pub shards: usize,
    /// Connection worker count (0 = 4).
    pub threads: usize,
    /// Background compaction threshold: shards whose WAL exceeds this
    /// many records are compacted on the next tick.
    pub compact_threshold: usize,
    /// Background compaction tick interval.
    pub compact_interval: Duration,
    /// Maximum frame payload size.
    pub max_frame: u32,
    /// Threads for per-request trace batches (0 = all cores). Kept at 1
    /// by default: the connection pool is the parallelism axis.
    pub batch_threads: usize,
}

impl ServerConfig {
    /// A configuration with defaults: 4 shards, 4 workers, compaction
    /// over 64 WAL records every 25 ms.
    pub fn new(listen: Listen, store_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            listen,
            store_dir: store_dir.into(),
            shards: 4,
            threads: 4,
            compact_threshold: 64,
            compact_interval: Duration::from_millis(25),
            max_frame: MAX_FRAME,
            batch_threads: 1,
        }
    }
}

/// One live connection (either transport), readable and writable.
pub(crate) enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(d),
            Stream::Unix(s) => s.set_read_timeout(d),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

enum Acceptor {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Acceptor {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            Acceptor::Tcp(l) => l.accept().map(|(s, _)| {
                // A length-prefixed request/response protocol writes two
                // small buffers per frame; without TCP_NODELAY every
                // round-trip stalls on Nagle vs. delayed ACK.
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
            Acceptor::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

/// One parked debugging/testing session.
struct ServeSession {
    prepared: PreparedProgram,
    limits: Limits,
    custom_limits: bool,
    pool: bool,
    config: DebugConfig,
    runs: Vec<TracedRun>,
    rec: Recorder,
    handle: Option<DebugHandle>,
}

struct Subscriber {
    session: u64,
    stream: Stream,
    seen: usize,
}

struct ConnQueue {
    q: Mutex<VecDeque<Stream>>,
    cv: Condvar,
}

impl ConnQueue {
    fn push(&self, s: Stream) {
        self.q.lock().expect("queue poisoned").push_back(s);
        self.cv.notify_one();
    }
    fn pop(&self, timeout: Duration) -> Option<Stream> {
        let guard = self.q.lock().expect("queue poisoned");
        let (mut guard, _) = self
            .cv
            .wait_timeout_while(guard, timeout, |q| q.is_empty())
            .expect("queue poisoned");
        guard.pop_front()
    }
}

struct ServerState {
    store: ShardedStore,
    sessions: Mutex<BTreeMap<u64, Arc<Mutex<ServeSession>>>>,
    subscribers: Mutex<Vec<Subscriber>>,
    queue: ConnQueue,
    next_session: AtomicU64,
    requests: AtomicU64,
    sessions_created: AtomicU64,
    compactions: AtomicU64,
    stop: AtomicBool,
    cfg: ServerConfig,
}

/// What a finished server reports.
#[derive(Debug, Clone, Copy)]
pub struct ServerReport {
    /// Requests served (all ops, all connections).
    pub requests: u64,
    /// Sessions created.
    pub sessions: u64,
    /// Shard compactions performed (background ticks + final sweep).
    pub compactions: u64,
    /// Stored oracle answers at exit.
    pub answers: usize,
    /// WAL records left at exit (0 after a clean shutdown).
    pub wal_records: usize,
}

impl std::fmt::Display for ServerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests, {} sessions, {} compactions, {} answers, {} wal records",
            self.requests, self.sessions, self.compactions, self.answers, self.wal_records
        )
    }
}

/// A running server; dropping it stops the server (without the final
/// compaction — use [`ServerHandle::shutdown`] for the clean path).
pub struct ServerHandle {
    state: Arc<ServerState>,
    thread: Option<JoinHandle<()>>,
    addr: ServerAddr,
}

/// The server entry point.
pub struct Server;

impl Server {
    /// Binds the listener, opens (or recovers) the sharded store, and
    /// starts the accept/worker/compactor fabric on a background
    /// thread.
    ///
    /// # Errors
    /// Bind and store-recovery failures.
    pub fn start(cfg: ServerConfig) -> io::Result<ServerHandle> {
        let store = ShardedStore::open(&cfg.store_dir, cfg.shards)?;
        let (acceptor, addr) = match &cfg.listen {
            Listen::Tcp(spec) => {
                let l = TcpListener::bind(spec.as_str())?;
                let addr = ServerAddr::Tcp(l.local_addr()?);
                l.set_nonblocking(true)?;
                (Acceptor::Tcp(l), addr)
            }
            Listen::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                (Acceptor::Unix(l), ServerAddr::Unix(path.clone()))
            }
        };
        let workers = if cfg.threads == 0 { 4 } else { cfg.threads };
        let state = Arc::new(ServerState {
            store,
            sessions: Mutex::new(BTreeMap::new()),
            subscribers: Mutex::new(Vec::new()),
            queue: ConnQueue {
                q: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            },
            next_session: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            sessions_created: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            cfg,
        });
        let fabric = Arc::clone(&state);
        let thread = std::thread::Builder::new()
            .name("gadt-serve".into())
            .spawn(move || {
                // Items: 0 = accept loop, 1 = compactor, 2.. = workers.
                // Every item is a long-running loop, so the pool must
                // have exactly one thread per item.
                let pool = BatchExecutor::new(workers + 2);
                let items: Vec<usize> = (0..workers + 2).collect();
                pool.run(items, |_, item| match item {
                    0 => accept_loop(&fabric, &acceptor),
                    1 => compactor_loop(&fabric),
                    _ => worker_loop(&fabric),
                });
                // Close anything still parked: queued connections and
                // subscriber streams.
                fabric.queue.q.lock().expect("queue poisoned").clear();
                fabric
                    .subscribers
                    .lock()
                    .expect("subscribers poisoned")
                    .clear();
            })?;
        Ok(ServerHandle {
            state,
            thread: Some(thread),
            addr,
        })
    }
}

impl ServerHandle {
    /// Where the server listens (TCP port resolved).
    pub fn addr(&self) -> &ServerAddr {
        &self.addr
    }

    fn report(&self) -> ServerReport {
        ServerReport {
            requests: self.state.requests.load(Ordering::Relaxed),
            sessions: self.state.sessions_created.load(Ordering::Relaxed),
            compactions: self.state.compactions.load(Ordering::Relaxed),
            answers: self.state.store.answers_len(),
            wal_records: self.state.store.total_wal_records(),
        }
    }

    fn join(&mut self) {
        self.state.stop.store(true, Ordering::Relaxed);
        self.state.queue.cv.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Blocks until a client's `shutdown` request stops the server,
    /// then compacts every shard and reports. The CLI's main loop.
    ///
    /// # Errors
    /// Compaction I/O errors.
    pub fn wait(mut self) -> io::Result<ServerReport> {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.finish_clean()
    }

    /// Stops the server, compacts every shard, removes a unix socket
    /// file, and reports — the clean shutdown path.
    ///
    /// # Errors
    /// Compaction I/O errors.
    pub fn shutdown(mut self) -> io::Result<ServerReport> {
        self.join();
        self.finish_clean()
    }

    fn finish_clean(&mut self) -> io::Result<ServerReport> {
        let n = self.state.store.compact_all()?;
        self.state
            .compactions
            .fetch_add(n as u64, Ordering::Relaxed);
        if let ServerAddr::Unix(p) = &self.addr {
            let _ = std::fs::remove_file(p);
        }
        Ok(self.report())
    }

    /// Stops the server abruptly: no final compaction, the unix socket
    /// file (if any) is left behind — the crash-simulation path. Every
    /// *acknowledged* `answer` is already on disk.
    pub fn kill(mut self) -> ServerReport {
        self.join();
        self.report()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.join();
    }
}

fn accept_loop(state: &ServerState, acceptor: &Acceptor) {
    while !state.stop.load(Ordering::Relaxed) {
        match acceptor.accept() {
            Ok(stream) => state.queue.push(stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    state.queue.cv.notify_all();
}

fn compactor_loop(state: &ServerState) {
    while !state.stop.load(Ordering::Relaxed) {
        std::thread::sleep(state.cfg.compact_interval);
        if let Ok(n) = state.store.compact_if_needed(state.cfg.compact_threshold) {
            if n > 0 {
                state.compactions.fetch_add(n as u64, Ordering::Relaxed);
            }
        }
    }
}

fn worker_loop(state: &ServerState) {
    loop {
        if state.stop.load(Ordering::Relaxed) {
            return;
        }
        if let Some(stream) = state.queue.pop(Duration::from_millis(25)) {
            serve_connection(state, stream);
        }
    }
}

/// What the connection loop does after answering a request.
enum After {
    KeepOpen,
    /// The connection becomes a push-only journal subscriber.
    Subscribe(u64),
    Close,
}

fn serve_connection(state: &ServerState, mut stream: Stream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    loop {
        if state.stop.load(Ordering::Relaxed) {
            return;
        }
        let msg = match read_frame(&mut stream, state.cfg.max_frame) {
            Ok(None) => return,
            Ok(Some(msg)) => msg,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Malformed framing: tell the peer why, then hang up —
                // the stream offset is unrecoverable.
                let _ = write_frame(&mut stream, &err_resp(e.to_string()), state.cfg.max_frame);
                return;
            }
            Err(_) => return,
        };
        state.requests.fetch_add(1, Ordering::Relaxed);
        let (resp, after) = dispatch(state, &msg);
        if write_frame(&mut stream, &resp, state.cfg.max_frame).is_err() {
            return;
        }
        match after {
            After::KeepOpen => {}
            After::Close => return,
            After::Subscribe(sid) => {
                attach_subscriber(state, sid, stream);
                return;
            }
        }
    }
}

/// Registers `stream` as a journal subscriber of session `sid`: the
/// entire backlog is pushed first (under the session lock, so no event
/// can slip between backlog and registration), then the connection is
/// handed off to the session's writers — it no longer occupies a
/// worker.
fn attach_subscriber(state: &ServerState, sid: u64, mut stream: Stream) {
    let Some(sess) = session_of(state, sid) else {
        return;
    };
    let guard = sess.lock().expect("session poisoned");
    let snap = guard.rec.snapshot();
    let lines = snap.event_lines_from(0);
    for line in &lines {
        if write_frame(&mut stream, &event_frame(sid, line), state.cfg.max_frame).is_err() {
            return;
        }
    }
    state
        .subscribers
        .lock()
        .expect("subscribers poisoned")
        .push(Subscriber {
            session: sid,
            stream,
            seen: lines.len(),
        });
}

fn event_frame(sid: u64, line: &str) -> Json {
    obj(vec![
        ("session", Json::Int(sid as i64)),
        ("event", Json::Str(line.to_string())),
    ])
}

/// Pushes journal events accumulated since each subscriber's high-water
/// mark. Called with the session lock held by the mutating worker, so
/// subscribers observe every request's events exactly once, in order.
fn push_updates(state: &ServerState, sid: u64, sess: &ServeSession) {
    let snap = sess.rec.snapshot();
    let total = snap.len();
    let mut subs = state.subscribers.lock().expect("subscribers poisoned");
    subs.retain_mut(|s| {
        if s.session != sid {
            return true;
        }
        for line in snap.event_lines_from(s.seen) {
            if write_frame(&mut s.stream, &event_frame(sid, &line), state.cfg.max_frame).is_err() {
                return false;
            }
        }
        s.seen = total;
        true
    });
}

fn ok_resp(mut fields: Vec<(&str, Json)>) -> Json {
    fields.insert(0, ("ok", Json::Bool(true)));
    obj(fields)
}

fn err_resp(message: impl std::fmt::Display) -> Json {
    obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.to_string())),
    ])
}

fn session_of(state: &ServerState, sid: u64) -> Option<Arc<Mutex<ServeSession>>> {
    state
        .sessions
        .lock()
        .expect("sessions poisoned")
        .get(&sid)
        .cloned()
}

fn session_field(state: &ServerState, msg: &Json) -> Result<Arc<Mutex<ServeSession>>, Json> {
    let sid = int_field(msg, "session").ok_or_else(|| err_resp("missing `session` field"))?;
    session_of(state, sid as u64).ok_or_else(|| err_resp(format!("no session {sid}")))
}

fn dispatch(state: &ServerState, msg: &Json) -> (Json, After) {
    let Some(op) = str_field(msg, "op") else {
        return (err_resp("missing `op` field"), After::KeepOpen);
    };
    match op {
        "ping" => (ok_resp(vec![("pong", Json::Bool(true))]), After::KeepOpen),
        "create" => (op_create(state, msg), After::KeepOpen),
        "trace" => (with_session(state, msg, op_trace), After::KeepOpen),
        "ask" => (with_session(state, msg, op_ask), After::KeepOpen),
        "answer" => (with_session(state, msg, op_answer), After::KeepOpen),
        "slice" => (with_session(state, msg, op_slice), After::KeepOpen),
        "journal" => (with_session(state, msg, op_journal), After::KeepOpen),
        "knowledge" => (op_knowledge(state, msg), After::KeepOpen),
        "stats" => (op_stats(state), After::KeepOpen),
        "compact" => (op_compact(state), After::KeepOpen),
        "subscribe" => match session_field(state, msg) {
            Err(e) => (e, After::KeepOpen),
            Ok(sess) => {
                let sid = int_field(msg, "session").unwrap_or(0) as u64;
                let backlog = sess.lock().expect("session poisoned").rec.snapshot().len();
                (
                    ok_resp(vec![
                        ("subscribed", Json::Bool(true)),
                        ("backlog", Json::Int(backlog as i64)),
                    ]),
                    After::Subscribe(sid),
                )
            }
        },
        "shutdown" => {
            state.stop.store(true, Ordering::Relaxed);
            state.queue.cv.notify_all();
            (ok_resp(vec![("stopping", Json::Bool(true))]), After::Close)
        }
        other => (err_resp(format!("unknown op `{other}`")), After::KeepOpen),
    }
}

fn with_session(
    state: &ServerState,
    msg: &Json,
    f: impl FnOnce(&ServerState, &mut ServeSession, u64, &Json) -> Json,
) -> Json {
    match session_field(state, msg) {
        Err(e) => e,
        Ok(sess) => {
            let sid = int_field(msg, "session").unwrap_or(0) as u64;
            let mut guard = sess.lock().expect("session poisoned");
            let resp = f(state, &mut guard, sid, msg);
            push_updates(state, sid, &guard);
            resp
        }
    }
}

fn parse_engine(name: &str) -> Result<Engine, String> {
    match name {
        "vm" => Ok(Engine::Vm),
        "tree" | "tree_walker" => Ok(Engine::TreeWalker),
        other => Err(format!("unknown engine `{other}` (vm | tree)")),
    }
}

fn op_create(state: &ServerState, msg: &Json) -> Json {
    let Some(source) = str_field(msg, "source") else {
        return err_resp("missing `source` field");
    };
    let module = match gadt_pascal::sema::compile(source) {
        Ok(m) => m,
        Err(e) => return err_resp(format!("compile: {e}")),
    };
    let mut rec = Recorder::untimed();
    let mut prepared = match prepare_observed(&module, &mut rec) {
        Ok(p) => p,
        Err(e) => return err_resp(format!("transform: {e}")),
    };
    if let Some(name) = str_field(msg, "engine") {
        match parse_engine(name) {
            Ok(e) => prepared = prepared.with_engine(e),
            Err(e) => return err_resp(e),
        }
    }
    let mut config = DebugConfig::default();
    if let Some(s) = str_field(msg, "strategy") {
        config.strategy = match Strategy::parse(s) {
            Some(st) => st,
            None => {
                return err_resp(format!(
                    "unknown strategy `{s}` (top_down | divide_and_query | dq_opt | knowledge_weighted)"
                ))
            }
        };
    }
    if let Some(b) = bool_field(msg, "slicing") {
        config.slicing = b;
    }
    let pool = bool_field(msg, "pool").unwrap_or(true);
    let mut limits = Limits::default();
    let mut custom_limits = false;
    if let Some(n) = int_field(msg, "max_steps") {
        limits.max_steps = n.max(0) as u64;
        custom_limits = true;
    }
    if let Some(n) = int_field(msg, "max_depth") {
        limits.max_depth = n.max(0) as usize;
        custom_limits = true;
    }
    let engine = prepared.engine();
    let sid = state.next_session.fetch_add(1, Ordering::Relaxed) + 1;
    state.sessions_created.fetch_add(1, Ordering::Relaxed);
    state.sessions.lock().expect("sessions poisoned").insert(
        sid,
        Arc::new(Mutex::new(ServeSession {
            prepared,
            limits,
            custom_limits,
            pool,
            config,
            runs: Vec::new(),
            rec,
            handle: None,
        })),
    );
    ok_resp(vec![
        ("session", Json::Int(sid as i64)),
        ("engine", Json::Str(engine.name().to_string())),
        ("limits", limits_json(limits)),
    ])
}

fn limits_json(l: Limits) -> Json {
    obj(vec![
        ("max_steps", Json::Int(l.max_steps as i64)),
        ("max_depth", Json::Int(l.max_depth as i64)),
    ])
}

fn parse_inputs(msg: &Json) -> Result<Vec<Vec<Value>>, Json> {
    let Some(rows) = msg.get("inputs").and_then(Json::as_array) else {
        return Err(err_resp("missing `inputs` array"));
    };
    let mut inputs = Vec::with_capacity(rows.len());
    for row in rows {
        let Some(vals) = row.as_array() else {
            return Err(err_resp("each input must be an array of values"));
        };
        let mut parsed = Vec::with_capacity(vals.len());
        for v in vals {
            match value_from_json(v) {
                Some(val) => parsed.push(val),
                None => return Err(err_resp(format!("unsupported input value {v}"))),
            }
        }
        inputs.push(parsed);
    }
    Ok(inputs)
}

fn op_trace(state: &ServerState, sess: &mut ServeSession, _sid: u64, msg: &Json) -> Json {
    let inputs = match parse_inputs(msg) {
        Ok(i) => i,
        Err(e) => return e,
    };
    let first = sess.runs.len();
    if sess.custom_limits {
        // The batch path runs under default limits; bounded sessions
        // trace sequentially with the same per-run observation.
        let span = gadt_obs::span!(&mut sess.rec, "trace", inputs = inputs.len());
        for input in inputs {
            match run_traced_limited(&sess.prepared, input, sess.limits) {
                Ok(run) => {
                    run.trace.observe(&mut sess.rec);
                    run.tree.observe(&mut sess.rec);
                    sess.runs.push(run);
                }
                Err(e) => {
                    sess.rec.exit(span);
                    return err_resp(format!("trace: {e}"));
                }
            }
        }
        sess.rec.exit(span);
    } else {
        match run_traced_batch_observed(
            &sess.prepared,
            inputs,
            state.cfg.batch_threads,
            &mut sess.rec,
        ) {
            Ok(runs) => sess.runs.extend(runs),
            Err(e) => return err_resp(format!("trace: {e}")),
        }
    }
    let outputs: Vec<Json> = sess.runs[first..]
        .iter()
        .map(|r| Json::Str(r.output.clone()))
        .collect();
    let engine = sess
        .runs
        .last()
        .map_or(sess.prepared.engine(), |r| r.engine);
    let limits = sess.runs.last().map_or(sess.limits, |r| r.limits);
    ok_resp(vec![
        ("runs", Json::Int(sess.runs.len() as i64)),
        ("outputs", Json::Array(outputs)),
        ("engine", Json::Str(engine.name().to_string())),
        ("limits", limits_json(limits)),
    ])
}

fn journal_question(
    rec: &mut Recorder,
    unit: &str,
    source: &str,
    answer: &Verdict,
    strategy: Strategy,
) {
    rec.incr("debug.questions");
    rec.incr(&format!(
        "debug.questions.by_source.{}",
        gadt_obs::slug(source)
    ));
    rec.incr(&format!("debug.questions.by_strategy.{}", strategy.slug()));
    gadt_obs::event!(
        rec,
        "question",
        unit = unit,
        source = source,
        answer = answer.to_string(),
    );
}

/// The pooled store as a traversal-strategy probe: knowledge-weighted
/// sessions weigh store-answerable nodes as free. Probing reads via
/// `ShardedStore::peek_answer`, so it never moves a shard's hit/miss
/// counters — only `drain_pooled` (which actually serves answers) does.
struct PooledProbe {
    store: ShardedStore,
}

impl gadt::strategy::AnswerProbe for PooledProbe {
    fn is_answered(&self, tree: &gadt_trace::ExecTree, node: gadt_trace::NodeId) -> bool {
        let n = tree.node(node);
        let ins: Vec<Value> = n.ins.iter().map(|(_, v)| v.clone()).collect();
        self.store.peek_answer(&n.name, &ins).is_some()
    }
}

fn journal_slice(rec: &mut Recorder, stats: SliceStats) {
    rec.incr("debug.slices");
    gadt_obs::event!(
        rec,
        "slice",
        events = stats.events,
        stmts = stats.stmts,
        calls = stats.calls,
    );
}

/// Answers every pending question the pooled store already knows,
/// journaling each exactly as the synchronous driver would.
fn drain_pooled(state: &ServerState, sess: &mut ServeSession) {
    if !sess.pool {
        return;
    }
    let Some(handle) = sess.handle.as_mut() else {
        return;
    };
    loop {
        let Some((unit, ins)) = handle.next_question().map(|q| {
            (
                q.unit.clone(),
                q.ins.iter().map(|(_, v)| v.clone()).collect::<Vec<_>>(),
            )
        }) else {
            return;
        };
        let Some(stored) = state.store.lookup_answer(&unit, &ins) else {
            return;
        };
        let answer = answer_from_stored(stored);
        sess.rec.incr("store.hits");
        let strategy = sess.config.strategy;
        journal_question(&mut sess.rec, &unit, STORED_SOURCE, &answer, strategy);
        let before = handle.slices_taken();
        handle.answer_from(answer, STORED_SOURCE);
        if handle.slices_taken() > before {
            journal_slice(&mut sess.rec, handle.slice_stats()[before]);
        }
    }
}

fn values_json(pairs: &[(String, Value)]) -> Json {
    Json::Array(
        pairs
            .iter()
            .map(|(name, v)| {
                obj(vec![
                    ("name", Json::Str(name.clone())),
                    ("value", value_to_json(v)),
                ])
            })
            .collect(),
    )
}

/// The shared reply of `ask` and `answer`: the next pending question,
/// or the finished verdict.
fn session_reply(sess: &ServeSession) -> Json {
    let Some(handle) = sess.handle.as_ref() else {
        return err_resp("session has no debug handle (call `ask` first)");
    };
    if let Some(q) = handle.next_question() {
        ok_resp(vec![
            ("done", Json::Bool(false)),
            ("asked", Json::Int(handle.transcript().len() as i64)),
            (
                "question",
                obj(vec![
                    ("unit", Json::Str(q.unit.clone())),
                    ("query", Json::Str(q.query.clone())),
                    ("ins", values_json(&q.ins)),
                    ("outs", values_json(&q.outs)),
                ]),
            ),
        ])
    } else {
        let (localized, rendering) = match handle.result() {
            Some(DebugResult::BugLocalized { unit, rendering }) => {
                (Json::Str(unit.clone()), Json::Str(rendering.clone()))
            }
            _ => (Json::Null, Json::Null),
        };
        ok_resp(vec![
            ("done", Json::Bool(true)),
            ("questions", Json::Int(handle.transcript().len() as i64)),
            ("slices", Json::Int(handle.slices_taken() as i64)),
            ("localized", localized),
            ("rendering", rendering),
        ])
    }
}

fn op_ask(state: &ServerState, sess: &mut ServeSession, _sid: u64, msg: &Json) -> Json {
    if sess.handle.is_none() {
        let run_idx = int_field(msg, "run").unwrap_or(0).max(0) as usize;
        let Some(run) = sess.runs.get(run_idx) else {
            return err_resp(format!(
                "no traced run at index {run_idx} ({} available)",
                sess.runs.len()
            ));
        };
        let mut handle = DebugHandle::new(
            Arc::new(sess.prepared.transformed.module.clone()),
            Arc::new(run.trace.clone()),
            Some(sess.prepared.transformed.mapping.clone()),
            run.tree.clone(),
            sess.config,
        );
        if sess.pool && sess.config.strategy == Strategy::KnowledgeWeighted {
            handle = handle.with_probe(Box::new(PooledProbe {
                store: state.store.clone(),
            }));
        }
        sess.handle = Some(handle);
    }
    drain_pooled(state, sess);
    session_reply(sess)
}

fn parse_verdict(msg: &Json) -> Result<Verdict, Json> {
    match str_field(msg, "verdict") {
        Some("yes") => Ok(Verdict::Correct),
        Some("no") => Ok(Verdict::Incorrect {
            wrong_output: int_field(msg, "wrong_output").map(|k| k.max(0) as usize),
        }),
        Some("dont_know") => Ok(Verdict::DontKnow),
        _ => Err(err_resp(
            "verdict must be \"yes\", \"no\" (with optional 0-based `wrong_output`), or \"dont_know\"",
        )),
    }
}

fn op_answer(state: &ServerState, sess: &mut ServeSession, _sid: u64, msg: &Json) -> Json {
    let verdict = match parse_verdict(msg) {
        Ok(v) => v,
        Err(e) => return e,
    };
    let Some(handle) = sess.handle.as_mut() else {
        return err_resp("session has no debug handle (call `ask` first)");
    };
    let Some((unit, ins)) = handle.next_question().map(|q| {
        (
            q.unit.clone(),
            q.ins.iter().map(|(_, v)| v.clone()).collect::<Vec<_>>(),
        )
    }) else {
        return err_resp("session has no pending question");
    };
    journal_question(&mut sess.rec, &unit, "user", &verdict, sess.config.strategy);
    let before = handle.slices_taken();
    handle.answer_from(verdict.clone(), "user");
    if handle.slices_taken() > before {
        journal_slice(&mut sess.rec, handle.slice_stats()[before]);
    }
    // Durability before acknowledgement: the answer is on disk (fsynced
    // on its shard) before the client sees this response.
    if let Some(stored) = answer_to_stored(&verdict) {
        if let Err(e) = state
            .store
            .record_answers(&[(unit, ins, stored, "user".to_string())])
        {
            return err_resp(format!("store append failed: {e}"));
        }
        sess.rec.incr("store.appends");
    }
    drain_pooled(state, sess);
    session_reply(sess)
}

fn op_slice(_state: &ServerState, sess: &mut ServeSession, _sid: u64, msg: &Json) -> Json {
    let run_idx = int_field(msg, "run").unwrap_or(0).max(0) as usize;
    let Some(run) = sess.runs.get(run_idx) else {
        return err_resp(format!(
            "no traced run at index {run_idx} ({} available)",
            sess.runs.len()
        ));
    };
    let Some(unit) = str_field(msg, "unit") else {
        return err_resp("missing `unit` field");
    };
    let out_idx = int_field(msg, "output").unwrap_or(0).max(0) as usize;
    let module = &sess.prepared.transformed.module;
    let Some(node) = run.tree.find_call(module, unit) else {
        return err_resp(format!("no call of `{unit}` in run {run_idx}"));
    };
    let NodeKind::Call { call, .. } = run.tree.node(node).kind else {
        return err_resp(format!("`{unit}` is not a call node"));
    };
    let stats = dynamic_slice_output(module, &run.trace, call, out_idx).stats();
    sess.rec.incr("serve.slices");
    gadt_obs::event!(
        &mut sess.rec,
        "slice",
        events = stats.events,
        stmts = stats.stmts,
        calls = stats.calls,
    );
    ok_resp(vec![
        ("events", Json::Int(stats.events as i64)),
        ("stmts", Json::Int(stats.stmts as i64)),
        ("calls", Json::Int(stats.calls as i64)),
    ])
}

fn op_journal(_state: &ServerState, sess: &mut ServeSession, _sid: u64, _msg: &Json) -> Json {
    let snap = sess.rec.snapshot();
    let counters: Vec<(String, u64)> = snap.counters.iter().map(|(k, v)| (k.clone(), *v)).collect();
    let counters_json = Json::Object(
        counters
            .into_iter()
            .map(|(k, v)| (k, Json::Int(v as i64)))
            .collect(),
    );
    ok_resp(vec![
        ("events", Json::Int(snap.len() as i64)),
        ("fingerprint", Json::Str(snap.fingerprint())),
        ("counters", counters_json),
    ])
}

fn op_knowledge(state: &ServerState, msg: &Json) -> Json {
    let Some(unit) = str_field(msg, "unit") else {
        return err_resp("missing `unit` field");
    };
    let Some(raw) = msg.get("ins").and_then(Json::as_array) else {
        return err_resp("missing `ins` array");
    };
    let mut ins = Vec::with_capacity(raw.len());
    for v in raw {
        match value_from_json(v) {
            Some(val) => ins.push(val),
            None => return err_resp(format!("unsupported input value {v}")),
        }
    }
    match state.store.lookup_answer(unit, &ins) {
        None => ok_resp(vec![("found", Json::Bool(false))]),
        Some(StoredAnswer::Correct) => ok_resp(vec![
            ("found", Json::Bool(true)),
            ("verdict", Json::Str("yes".into())),
        ]),
        Some(StoredAnswer::Incorrect { wrong_output }) => {
            let mut fields = vec![
                ("found", Json::Bool(true)),
                ("verdict", Json::Str("no".into())),
            ];
            if let Some(k) = wrong_output {
                fields.push(("wrong_output", Json::Int(k as i64)));
            }
            ok_resp(fields)
        }
    }
}

fn op_stats(state: &ServerState) -> Json {
    ok_resp(vec![
        (
            "sessions",
            Json::Int(state.sessions.lock().expect("sessions poisoned").len() as i64),
        ),
        (
            "requests",
            Json::Int(state.requests.load(Ordering::Relaxed) as i64),
        ),
        ("shards", Json::Int(state.store.shard_count() as i64)),
        ("answers", Json::Int(state.store.answers_len() as i64)),
        (
            "wal_records",
            Json::Int(state.store.total_wal_records() as i64),
        ),
        (
            "compactions",
            Json::Int(state.compactions.load(Ordering::Relaxed) as i64),
        ),
    ])
}

fn op_compact(state: &ServerState) -> Json {
    match state.store.compact_all() {
        Ok(n) => {
            state.compactions.fetch_add(n as u64, Ordering::Relaxed);
            ok_resp(vec![("compacted", Json::Int(n as i64))])
        }
        Err(e) => err_resp(format!("compaction failed: {e}")),
    }
}
