//! A typed in-process client for the serve protocol.
//!
//! One [`Client`] wraps one connection (TCP or unix) and issues one
//! request frame per call, blocking on the single response frame. The
//! integration suite drives whole debugging campaigns through this
//! type, and `gadt-serve --selftest` uses it as the CI smoke client.

use crate::proto::{bool_field, int_field, read_frame, str_field, write_frame, MAX_FRAME};
use crate::server::ServerAddr;
use gadt::handle::Verdict;
use gadt_pascal::value::Value;
use gadt_store::{obj, value_to_json, Json};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

enum Transport {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            Transport::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            Transport::Unix(s) => s.flush(),
        }
    }
}

/// Options for [`Client::create_session`]; `Default` matches the
/// server's defaults (VM engine, top-down, slicing on, pooling on,
/// default limits).
#[derive(Debug, Clone, Default)]
pub struct SessionOptions {
    /// `"vm"` or `"tree"` (server default: vm).
    pub engine: Option<String>,
    /// `"top_down"`, `"divide_and_query"`, `"dq_opt"`, or
    /// `"knowledge_weighted"` (weighs pool-answerable nodes as free).
    pub strategy: Option<String>,
    /// Slicing on error indications.
    pub slicing: Option<bool>,
    /// Answer questions from the pooled knowledge store.
    pub pool: Option<bool>,
    /// Interpreter step budget.
    pub max_steps: Option<i64>,
    /// Interpreter depth budget.
    pub max_depth: Option<i64>,
}

/// The reply of `ask`/`answer`: either the next question or the
/// session's verdict.
#[derive(Debug, Clone)]
pub enum AskReply {
    /// A question awaits a verdict.
    Question {
        /// The unit asked about.
        unit: String,
        /// The rendered query (original-program coordinates).
        query: String,
        /// The unit's input values — the store key half, so clients can
        /// later verify persisted knowledge via `knowledge`.
        ins: Vec<Value>,
        /// Questions answered so far.
        asked: u64,
    },
    /// The session finished.
    Done {
        /// The buggy unit, when one was localized.
        localized: Option<String>,
        /// The rendered node the bug was localized at.
        rendering: Option<String>,
        /// Total questions answered.
        questions: u64,
        /// Slices taken.
        slices: u64,
    },
}

/// One protocol connection.
pub struct Client {
    stream: Transport,
    max_frame: u32,
}

fn proto_err(msg: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Disables Nagle on a fresh connection: the protocol writes a 4-byte
/// prefix and a small payload per request, and coalescing them against
/// the peer's delayed ACK costs ~40ms per round-trip.
fn tcp_connect(s: TcpStream) -> TcpStream {
    let _ = s.set_nodelay(true);
    s
}

impl Client {
    /// Connects to a started server.
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(addr: &ServerAddr) -> io::Result<Client> {
        let stream = match addr {
            ServerAddr::Tcp(a) => Transport::Tcp(tcp_connect(TcpStream::connect(a)?)),
            ServerAddr::Unix(p) => Transport::Unix(UnixStream::connect(p)?),
        };
        Ok(Client {
            stream,
            max_frame: MAX_FRAME,
        })
    }

    /// Connects to `tcp:HOST:PORT` or `unix:PATH`.
    ///
    /// # Errors
    /// Malformed specs and connection failures.
    pub fn connect_to(spec: &str) -> io::Result<Client> {
        let stream = if let Some(addr) = spec.strip_prefix("tcp:") {
            Transport::Tcp(tcp_connect(TcpStream::connect(addr)?))
        } else if let Some(path) = spec.strip_prefix("unix:") {
            Transport::Unix(UnixStream::connect(path)?)
        } else {
            return Err(proto_err(format!(
                "address `{spec}` must be tcp:HOST:PORT or unix:PATH"
            )));
        };
        Ok(Client {
            stream,
            max_frame: MAX_FRAME,
        })
    }

    /// Sends one request object and reads its response frame. Responses
    /// with `"ok": false` become `InvalidData` errors carrying the
    /// server's message.
    ///
    /// # Errors
    /// Transport errors, early EOF, and server-side errors.
    pub fn request(&mut self, msg: &Json) -> io::Result<Json> {
        write_frame(&mut self.stream, msg, self.max_frame)?;
        let resp = read_frame(&mut self.stream, self.max_frame)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server hung up"))?;
        if bool_field(&resp, "ok") == Some(true) {
            Ok(resp)
        } else {
            Err(proto_err(
                str_field(&resp, "error").unwrap_or("unspecified server error"),
            ))
        }
    }

    /// Round-trips a `ping`.
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn ping(&mut self) -> io::Result<bool> {
        let resp = self.request(&obj(vec![("op", Json::Str("ping".into()))]))?;
        Ok(bool_field(&resp, "pong") == Some(true))
    }

    /// Compiles `source` into a fresh server-side session; returns its
    /// id.
    ///
    /// # Errors
    /// Compile/transform failures are surfaced as server errors.
    pub fn create_session(&mut self, source: &str, opts: &SessionOptions) -> io::Result<u64> {
        let mut fields = vec![
            ("op", Json::Str("create".into())),
            ("source", Json::Str(source.to_string())),
        ];
        if let Some(e) = &opts.engine {
            fields.push(("engine", Json::Str(e.clone())));
        }
        if let Some(s) = &opts.strategy {
            fields.push(("strategy", Json::Str(s.clone())));
        }
        if let Some(b) = opts.slicing {
            fields.push(("slicing", Json::Bool(b)));
        }
        if let Some(b) = opts.pool {
            fields.push(("pool", Json::Bool(b)));
        }
        if let Some(n) = opts.max_steps {
            fields.push(("max_steps", Json::Int(n)));
        }
        if let Some(n) = opts.max_depth {
            fields.push(("max_depth", Json::Int(n)));
        }
        let resp = self.request(&obj(fields))?;
        int_field(&resp, "session")
            .map(|n| n as u64)
            .ok_or_else(|| proto_err("create response missing `session`"))
    }

    /// Traces the session's program on each input row; returns the
    /// captured outputs, in input order.
    ///
    /// # Errors
    /// Runtime errors of the subject program are surfaced as server
    /// errors.
    pub fn trace(&mut self, session: u64, inputs: &[Vec<Value>]) -> io::Result<Vec<String>> {
        let rows = Json::Array(
            inputs
                .iter()
                .map(|row| Json::Array(row.iter().map(value_to_json).collect()))
                .collect(),
        );
        let resp = self.request(&obj(vec![
            ("op", Json::Str("trace".into())),
            ("session", Json::Int(session as i64)),
            ("inputs", rows),
        ]))?;
        let outputs = resp
            .get("outputs")
            .and_then(Json::as_array)
            .ok_or_else(|| proto_err("trace response missing `outputs`"))?;
        Ok(outputs
            .iter()
            .filter_map(|o| o.as_str().map(str::to_string))
            .collect())
    }

    fn ask_reply(resp: &Json) -> io::Result<AskReply> {
        if bool_field(resp, "done") == Some(true) {
            return Ok(AskReply::Done {
                localized: str_field(resp, "localized").map(str::to_string),
                rendering: str_field(resp, "rendering").map(str::to_string),
                questions: int_field(resp, "questions").unwrap_or(0) as u64,
                slices: int_field(resp, "slices").unwrap_or(0) as u64,
            });
        }
        let q = resp
            .get("question")
            .ok_or_else(|| proto_err("reply missing `question`"))?;
        let ins = q
            .get("ins")
            .and_then(Json::as_array)
            .map(|pairs| {
                pairs
                    .iter()
                    .filter_map(|p| p.get("value").and_then(gadt_store::value_from_json))
                    .collect()
            })
            .unwrap_or_default();
        Ok(AskReply::Question {
            unit: str_field(q, "unit").unwrap_or_default().to_string(),
            query: str_field(q, "query").unwrap_or_default().to_string(),
            ins,
            asked: int_field(resp, "asked").unwrap_or(0) as u64,
        })
    }

    /// Starts (or resumes) the debug traversal on `run`; pooled
    /// knowledge is consumed server-side before the first question
    /// comes back.
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn ask(&mut self, session: u64, run: usize) -> io::Result<AskReply> {
        let resp = self.request(&obj(vec![
            ("op", Json::Str("ask".into())),
            ("session", Json::Int(session as i64)),
            ("run", Json::Int(run as i64)),
        ]))?;
        Self::ask_reply(&resp)
    }

    /// Answers the pending question. The server fsyncs definite answers
    /// into the pooled store *before* this returns — an acknowledged
    /// answer survives a server kill.
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn answer(&mut self, session: u64, verdict: &Verdict) -> io::Result<AskReply> {
        let mut fields = vec![
            ("op", Json::Str("answer".into())),
            ("session", Json::Int(session as i64)),
        ];
        match verdict {
            Verdict::Correct => fields.push(("verdict", Json::Str("yes".into()))),
            Verdict::Incorrect { wrong_output } => {
                fields.push(("verdict", Json::Str("no".into())));
                if let Some(k) = wrong_output {
                    fields.push(("wrong_output", Json::Int(*k as i64)));
                }
            }
            Verdict::DontKnow => fields.push(("verdict", Json::Str("dont_know".into()))),
        }
        let resp = self.request(&obj(fields))?;
        Self::ask_reply(&resp)
    }

    /// Requests a dynamic slice for output `output` of `unit`'s first
    /// call in `run`; returns `(events, stmts, calls)`.
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn slice(
        &mut self,
        session: u64,
        run: usize,
        unit: &str,
        output: usize,
    ) -> io::Result<(u64, u64, u64)> {
        let resp = self.request(&obj(vec![
            ("op", Json::Str("slice".into())),
            ("session", Json::Int(session as i64)),
            ("run", Json::Int(run as i64)),
            ("unit", Json::Str(unit.to_string())),
            ("output", Json::Int(output as i64)),
        ]))?;
        Ok((
            int_field(&resp, "events").unwrap_or(0) as u64,
            int_field(&resp, "stmts").unwrap_or(0) as u64,
            int_field(&resp, "calls").unwrap_or(0) as u64,
        ))
    }

    /// The session's journal fingerprint (timestamp-free, thread-count
    /// invariant).
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn journal_fingerprint(&mut self, session: u64) -> io::Result<String> {
        let resp = self.request(&obj(vec![
            ("op", Json::Str("journal".into())),
            ("session", Json::Int(session as i64)),
        ]))?;
        str_field(&resp, "fingerprint")
            .map(str::to_string)
            .ok_or_else(|| proto_err("journal response missing `fingerprint`"))
    }

    /// Looks a `(unit, In-values)` judgement up in the pooled store.
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn knowledge(&mut self, unit: &str, ins: &[Value]) -> io::Result<Option<Verdict>> {
        let resp = self.request(&obj(vec![
            ("op", Json::Str("knowledge".into())),
            ("unit", Json::Str(unit.to_string())),
            ("ins", Json::Array(ins.iter().map(value_to_json).collect())),
        ]))?;
        if bool_field(&resp, "found") != Some(true) {
            return Ok(None);
        }
        Ok(match str_field(&resp, "verdict") {
            Some("yes") => Some(Verdict::Correct),
            Some("no") => Some(Verdict::Incorrect {
                wrong_output: int_field(&resp, "wrong_output").map(|k| k as usize),
            }),
            _ => None,
        })
    }

    /// Server-wide statistics, as the raw response object.
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn stats(&mut self) -> io::Result<Json> {
        self.request(&obj(vec![("op", Json::Str("stats".into()))]))
    }

    /// Compacts every shard now; returns how many were compacted.
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn compact(&mut self) -> io::Result<u64> {
        let resp = self.request(&obj(vec![("op", Json::Str("compact".into()))]))?;
        Ok(int_field(&resp, "compacted").unwrap_or(0) as u64)
    }

    /// Asks the server to stop accepting and shut down.
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        self.request(&obj(vec![("op", Json::Str("shutdown".into()))]))?;
        Ok(())
    }

    /// Turns this connection into a journal subscription for `session`:
    /// the server pushes every existing journal event line, then one
    /// frame per new event as other connections drive the session.
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn subscribe(mut self, session: u64) -> io::Result<EventStream> {
        self.request(&obj(vec![
            ("op", Json::Str("subscribe".into())),
            ("session", Json::Int(session as i64)),
        ]))?;
        Ok(EventStream {
            stream: self.stream,
            max_frame: self.max_frame,
        })
    }
}

/// The read side of a journal subscription.
pub struct EventStream {
    stream: Transport,
    max_frame: u32,
}

impl EventStream {
    /// Blocks for the next journal event line; `Ok(None)` when the
    /// server closes the subscription (shutdown).
    ///
    /// # Errors
    /// Transport errors.
    pub fn next_event(&mut self) -> io::Result<Option<String>> {
        match read_frame(&mut self.stream, self.max_frame)? {
            None => Ok(None),
            Some(frame) => Ok(Some(
                str_field(&frame, "event").unwrap_or_default().to_string(),
            )),
        }
    }
}
