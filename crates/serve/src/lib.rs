//! # gadt-serve — the multi-session debugging service
//!
//! The paper's knowledge economy (§2, §5.3.1) pools every expensive
//! oracle judgement so no question is asked twice. A batch process pools
//! within one run; this crate pools across *users and processes*: a
//! long-lived server multiplexes many concurrent debugging/testing
//! sessions over one sharded, crash-safe knowledge store.
//!
//! Layers (std only, no dependencies beyond the workspace):
//!
//! * [`proto`] — length-prefixed JSON frames over TCP or unix sockets,
//!   encoded/decoded with the workspace's own store JSON parser and
//!   obs validator;
//! * [`server`] — the accept loop, worker pool (layered on
//!   [`gadt_exec::BatchExecutor`]), session table of resumable
//!   [`gadt::DebugHandle`]s, pooled-knowledge answering, journal
//!   streaming to subscribers, batched fsynced store appends, and
//!   background WAL compaction;
//! * [`client`] — a typed client used by the integration suite and the
//!   `gadt-serve --selftest` CI smoke.
//!
//! Protocol sketch (see `DESIGN.md` §12 for the grammar): every frame is
//! a 4-byte big-endian length plus one JSON object. Requests carry an
//! `"op"` — `ping`, `create`, `trace`, `ask`, `answer`, `slice`,
//! `journal`, `knowledge`, `subscribe`, `stats`, `compact`, `shutdown` —
//! and responses carry `"ok"` plus op-specific fields. A session is
//! created from source text, traced on inputs, then debugged by pumping
//! `ask`/`answer`: the server drains every question the pooled store
//! can already answer and only forwards the rest to the client, exactly
//! mirroring the synchronous [`gadt::Debugger`] driver's journal.
//!
//! Durability: an `answer` acknowledgement means the verdict is fsynced
//! on its shard — kill the server at any point and no acknowledged
//! answer is lost. Determinism: per-session journals are recorded into
//! untimed per-session recorders, so fingerprints are invariant under
//! server thread count and client interleaving.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{AskReply, Client, EventStream, SessionOptions};
pub use proto::{read_frame, write_frame, MAX_FRAME};
pub use server::{Listen, Server, ServerAddr, ServerConfig, ServerHandle, ServerReport};
