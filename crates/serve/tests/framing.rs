//! Framing robustness: garbage, truncated, oversized, and trickled
//! frames must never take the server down — a later well-formed client
//! always gets service.

use gadt_serve::{proto, Client, Listen, Server, ServerAddr, ServerConfig, ServerHandle};
use gadt_store::{obj, Json, TempDir};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn start_server(dir: &TempDir, threads: usize) -> ServerHandle {
    let mut cfg = ServerConfig::new(Listen::Tcp("127.0.0.1:0".into()), dir.path().join("store"));
    cfg.threads = threads;
    cfg.shards = 2;
    Server::start(cfg).expect("server starts")
}

fn raw_connect(handle: &ServerHandle) -> TcpStream {
    let ServerAddr::Tcp(addr) = handle.addr() else {
        panic!("expected tcp server");
    };
    TcpStream::connect(addr).expect("raw connect")
}

#[test]
fn garbage_length_prefixes_are_refused_and_survived() {
    let dir = TempDir::new("serve-framing-garbage");
    let handle = start_server(&dir, 2);

    // Oversized prefix: refused with an error frame before any payload
    // is read, then the connection closes.
    let mut s = raw_connect(&handle);
    s.write_all(&u32::MAX.to_be_bytes()).unwrap();
    s.flush().unwrap();
    let resp = proto::read_frame(&mut s, proto::MAX_FRAME)
        .expect("error frame arrives")
        .expect("not eof");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    let err = resp.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(err.contains("cap"), "{err}");
    assert!(
        proto::read_frame(&mut s, proto::MAX_FRAME)
            .unwrap()
            .is_none(),
        "connection closes after a framing error"
    );

    // Zero-length prefix: same treatment.
    let mut s = raw_connect(&handle);
    s.write_all(&0u32.to_be_bytes()).unwrap();
    let resp = proto::read_frame(&mut s, proto::MAX_FRAME)
        .unwrap()
        .unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));

    // Non-JSON payload under a correct prefix.
    let mut s = raw_connect(&handle);
    let junk = b"certainly not json";
    s.write_all(&(junk.len() as u32).to_be_bytes()).unwrap();
    s.write_all(junk).unwrap();
    let resp = proto::read_frame(&mut s, proto::MAX_FRAME)
        .unwrap()
        .unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));

    // The server is still healthy for well-formed clients.
    let mut client = Client::connect(handle.addr()).unwrap();
    assert!(client.ping().unwrap());
    drop(client);
    handle.shutdown().unwrap();
}

#[test]
fn truncated_frames_do_not_wedge_workers() {
    let dir = TempDir::new("serve-framing-trunc");
    let handle = start_server(&dir, 2);

    // Claim 64 bytes, send 10, hang up: the worker drains the timeout,
    // sees EOF mid-payload, and drops the connection.
    for _ in 0..3 {
        let mut s = raw_connect(&handle);
        s.write_all(&64u32.to_be_bytes()).unwrap();
        s.write_all(b"0123456789").unwrap();
        s.flush().unwrap();
        drop(s);
    }
    // Partial prefix, then hang up.
    let mut s = raw_connect(&handle);
    s.write_all(&[0, 0]).unwrap();
    drop(s);

    let mut client = Client::connect(handle.addr()).unwrap();
    assert!(client.ping().unwrap());
    drop(client);
    handle.shutdown().unwrap();
}

#[test]
fn byte_by_byte_writes_still_parse() {
    let dir = TempDir::new("serve-framing-trickle");
    let handle = start_server(&dir, 2);

    let mut bytes = Vec::new();
    proto::write_frame(
        &mut bytes,
        &obj(vec![("op", Json::Str("ping".into()))]),
        proto::MAX_FRAME,
    )
    .unwrap();

    let mut s = raw_connect(&handle);
    for b in bytes {
        s.write_all(&[b]).unwrap();
        s.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let resp = proto::read_frame(&mut s, proto::MAX_FRAME)
        .expect("response")
        .expect("not eof");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(resp.get("pong").and_then(Json::as_bool), Some(true));
    drop(s);
    handle.shutdown().unwrap();
}

#[test]
fn interleaved_clients_share_one_server() {
    let dir = TempDir::new("serve-framing-interleave");
    let handle = start_server(&dir, 4);

    let mut a = Client::connect(handle.addr()).unwrap();
    let mut b = Client::connect(handle.addr()).unwrap();
    for round in 0..10 {
        assert!(a.ping().unwrap(), "round {round}");
        // A hostile third connection in every round.
        let mut bad = raw_connect(&handle);
        bad.write_all(&u32::MAX.to_be_bytes()).unwrap();
        drop(bad);
        assert!(b.ping().unwrap(), "round {round}");
        let stats = b.stats().unwrap();
        assert!(stats.get("requests").and_then(Json::as_int).unwrap_or(0) > 0);
    }
    drop(a);
    drop(b);
    let report = handle.shutdown().unwrap();
    assert!(report.requests >= 30);
}
