//! End-to-end service campaigns: concurrent §8 sessions, determinism
//! across server thread counts, pooled cross-user knowledge, and
//! kill/restart durability of acknowledged answers.

use gadt::debugger::DebugConfig;
use gadt::handle::Verdict;
use gadt::oracle::{ChainOracle, ReferenceOracle};
use gadt::session::{debug, prepare, run_traced};
use gadt_pascal::testprogs;
use gadt_pascal::value::Value;
use gadt_serve::{AskReply, Client, Listen, Server, ServerAddr, ServerConfig, SessionOptions};
use gadt_store::{ShardedStore, TempDir};
use std::collections::BTreeMap;

/// The §8 golden transcript, keyed by rendered query: what a simulated
/// user (reference oracle over the fixed program) answers. The server
/// renders queries in original-program coordinates exactly like the
/// local driver, so lookups are exact-match.
fn golden_answers() -> BTreeMap<String, Verdict> {
    let module = gadt_pascal::sema::compile(testprogs::SQRTEST).unwrap();
    let fixed = gadt_pascal::sema::compile(testprogs::SQRTEST_FIXED).unwrap();
    let prepared = prepare(&module).unwrap();
    let run = run_traced(&prepared, []).unwrap();
    let mut oracle = ChainOracle::new();
    oracle.push(ReferenceOracle::new(&fixed, []).unwrap());
    let outcome = debug(&prepared, &run, &mut oracle, DebugConfig::default());
    assert!(
        outcome.transcript.len() >= 7,
        "§8 asks at least 7 questions"
    );
    outcome
        .transcript
        .iter()
        .map(|t| (t.query.clone(), t.answer.clone()))
        .collect()
}

/// Drives one complete §8 session over the wire; returns the
/// per-session journal fingerprint.
fn run_full_session(addr: &ServerAddr, golden: &BTreeMap<String, Verdict>, pool: bool) -> String {
    let mut client = Client::connect(addr).expect("connect");
    let opts = SessionOptions {
        pool: Some(pool),
        ..SessionOptions::default()
    };
    let sid = client
        .create_session(testprogs::SQRTEST, &opts)
        .expect("create");
    let outputs = client.trace(sid, &[vec![]]).expect("trace");
    assert_eq!(outputs.len(), 1);
    let mut reply = client.ask(sid, 0).expect("ask");
    loop {
        match reply {
            AskReply::Done { ref localized, .. } => {
                assert_eq!(localized.as_deref(), Some("decrement"));
                break;
            }
            AskReply::Question { ref query, .. } => {
                let verdict = golden
                    .get(query)
                    .unwrap_or_else(|| panic!("unexpected question: {query}"))
                    .clone();
                reply = client.answer(sid, &verdict).expect("answer");
            }
        }
    }
    client.journal_fingerprint(sid).expect("journal")
}

#[test]
fn eight_concurrent_sessions_are_deterministic_across_thread_counts() {
    let golden = golden_answers();
    let mut journal_fps: Vec<String> = Vec::new();
    let mut store_fps: Vec<String> = Vec::new();

    for threads in [1usize, 2, 8] {
        let dir = TempDir::new(&format!("serve-det-{threads}"));
        let store_dir = dir.path().join("store");
        let mut cfg = ServerConfig::new(Listen::Tcp("127.0.0.1:0".into()), &store_dir);
        cfg.threads = threads;
        cfg.shards = 3;
        let handle = Server::start(cfg).expect("server starts");
        let addr = handle.addr().clone();

        let fps: Vec<String> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| run_full_session(&addr, &golden, false)))
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });
        // Every session replays the same campaign: all 8 journal
        // fingerprints are byte-identical within a run.
        for fp in &fps[1..] {
            assert_eq!(fp, &fps[0], "at {threads} server threads");
        }
        journal_fps.push(fps[0].clone());

        let report = handle.shutdown().expect("clean shutdown");
        assert_eq!(report.sessions, 8);
        assert_eq!(report.wal_records, 0, "clean shutdown compacts WALs");
        assert!(report.compactions >= 3);

        let store = ShardedStore::open(&store_dir, 1).expect("reopen");
        assert_eq!(store.shard_count(), 3, "layout survives");
        store_fps.push(store.disk_fingerprint().unwrap());
    }

    // ... and across server thread counts: same journals, same bytes on
    // disk.
    assert_eq!(journal_fps[0], journal_fps[1]);
    assert_eq!(journal_fps[0], journal_fps[2]);
    assert_eq!(store_fps[0], store_fps[1]);
    assert_eq!(store_fps[0], store_fps[2]);
}

#[test]
fn pooled_knowledge_answers_the_second_client() {
    let golden = golden_answers();
    let dir = TempDir::new("serve-pool");
    let mut cfg = ServerConfig::new(Listen::Tcp("127.0.0.1:0".into()), dir.path().join("store"));
    cfg.threads = 2;
    cfg.shards = 2;
    let handle = Server::start(cfg).expect("server starts");
    let addr = handle.addr().clone();

    // First user pays the full question cost.
    run_full_session(&addr, &golden, true);

    // Second user: every §8 question is already pooled knowledge — the
    // first `ask` comes back finished, no question ever reaches them.
    let mut client = Client::connect(&addr).unwrap();
    let opts = SessionOptions {
        pool: Some(true),
        ..SessionOptions::default()
    };
    let sid = client.create_session(testprogs::SQRTEST, &opts).unwrap();
    client.trace(sid, &[vec![]]).unwrap();
    match client.ask(sid, 0).unwrap() {
        AskReply::Done {
            localized,
            questions,
            ..
        } => {
            assert_eq!(localized.as_deref(), Some("decrement"));
            assert!(questions >= 7);
        }
        AskReply::Question { query, .. } => {
            panic!("second client should ride the pool, got asked: {query}")
        }
    }
    drop(client);
    handle.shutdown().unwrap();
}

#[test]
fn kill_midway_restart_recovers_every_acknowledged_answer() {
    let golden = golden_answers();
    let dir = TempDir::new("serve-kill");
    let store_dir = dir.path().join("store");
    let sock = dir.path().join("gadt.sock");
    let mut cfg = ServerConfig::new(Listen::Unix(sock.clone()), &store_dir);
    cfg.threads = 4;
    cfg.shards = 4;
    let handle = Server::start(cfg.clone()).expect("server starts");
    let addr = handle.addr().clone();

    // 8 concurrent clients each answer exactly 3 questions; every
    // acknowledged answer is fsynced before the client sees the reply.
    type Acked = Vec<(String, Vec<Value>, Verdict)>;
    let acked: Vec<Acked> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = Client::connect(&addr).unwrap();
                    let opts = SessionOptions {
                        pool: Some(false),
                        ..SessionOptions::default()
                    };
                    let sid = client.create_session(testprogs::SQRTEST, &opts).unwrap();
                    client.trace(sid, &[vec![]]).unwrap();
                    let mut reply = client.ask(sid, 0).unwrap();
                    let mut mine: Acked = Vec::new();
                    for _ in 0..3 {
                        let AskReply::Question {
                            ref unit,
                            ref query,
                            ref ins,
                            ..
                        } = reply
                        else {
                            break;
                        };
                        let verdict = golden.get(query).unwrap().clone();
                        let (unit, ins) = (unit.clone(), ins.clone());
                        reply = client.answer(sid, &verdict).unwrap();
                        // The reply arrived: this answer is acknowledged.
                        mine.push((unit, ins, verdict));
                    }
                    mine
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    assert!(acked.iter().all(|a| a.len() == 3));

    // Kill mid-campaign: no final compaction, sessions lost, socket
    // file left behind — only the store's durability contract remains.
    handle.kill();

    // Restart over the same store directory and socket path.
    let handle = Server::start(cfg).expect("server restarts over the store");
    let mut client = Client::connect(handle.addr()).unwrap();

    // Zero lost acknowledged appends: every answer any client was shown
    // an acknowledgement for is served back from the recovered store.
    for (unit, ins, verdict) in acked.iter().flatten() {
        let found = client.knowledge(unit, ins).unwrap();
        assert_eq!(found.as_ref(), Some(verdict), "lost ack for {unit}");
    }

    // A pooled session resumes the campaign: the recovered knowledge
    // answers the first three questions before the client sees one.
    let opts = SessionOptions {
        pool: Some(true),
        ..SessionOptions::default()
    };
    let sid = client.create_session(testprogs::SQRTEST, &opts).unwrap();
    client.trace(sid, &[vec![]]).unwrap();
    let mut reply = client.ask(sid, 0).unwrap();
    if let AskReply::Question { asked, .. } = reply {
        assert_eq!(asked, 3, "the three acknowledged answers ride the pool");
    } else {
        panic!("expected a fourth question after the pooled prefix");
    }
    loop {
        match reply {
            AskReply::Done { ref localized, .. } => {
                assert_eq!(localized.as_deref(), Some("decrement"));
                break;
            }
            AskReply::Question { ref query, .. } => {
                let verdict = golden.get(query).unwrap().clone();
                reply = client.answer(sid, &verdict).unwrap();
            }
        }
    }
    drop(client);
    let report = handle.shutdown().unwrap();
    assert!(
        report.compactions >= 4,
        "clean shutdown compacts all shards"
    );
    assert!(!sock.exists(), "clean shutdown removes the socket file");
}

#[test]
fn subscribers_stream_journal_events_live() {
    let golden = golden_answers();
    let dir = TempDir::new("serve-subscribe");
    let mut cfg = ServerConfig::new(Listen::Tcp("127.0.0.1:0".into()), dir.path().join("store"));
    cfg.threads = 2;
    let handle = Server::start(cfg).expect("server starts");
    let addr = handle.addr().clone();

    let mut driver = Client::connect(&addr).unwrap();
    let opts = SessionOptions {
        pool: Some(false),
        ..SessionOptions::default()
    };
    let sid = driver.create_session(testprogs::SQRTEST, &opts).unwrap();
    driver.trace(sid, &[vec![]]).unwrap();

    // Subscribe from a second connection, then drive one answer from
    // the first: the subscriber must see the transform/trace backlog
    // AND the live question event.
    let subscriber = Client::connect(&addr).unwrap();
    let mut events = subscriber.subscribe(sid).unwrap();

    let reply = driver.ask(sid, 0).unwrap();
    let AskReply::Question { ref query, .. } = reply else {
        panic!("expected the first §8 question");
    };
    driver
        .answer(sid, &golden.get(query).unwrap().clone())
        .unwrap();

    let mut saw_trace = false;
    let mut saw_question = false;
    for _ in 0..500 {
        let Some(line) = events.next_event().unwrap() else {
            break;
        };
        gadt_obs::json::validate(&line).expect("streamed lines are valid JSON");
        if line.contains("\"name\":\"trace\"") {
            saw_trace = true;
        }
        if line.contains("\"name\":\"question\"") && line.contains("\"unit\":\"sqrtest\"") {
            saw_question = true;
            break;
        }
    }
    assert!(saw_trace, "backlog replays the trace span");
    assert!(saw_question, "live question event reaches the subscriber");

    drop(driver);
    handle.shutdown().unwrap();
}

#[test]
fn server_errors_are_reported_not_fatal() {
    let dir = TempDir::new("serve-errors");
    let mut cfg = ServerConfig::new(Listen::Tcp("127.0.0.1:0".into()), dir.path().join("store"));
    cfg.threads = 1;
    let handle = Server::start(cfg).expect("server starts");
    let mut client = Client::connect(handle.addr()).unwrap();

    // Unknown session.
    let err = client.trace(99, &[vec![]]).unwrap_err();
    assert!(err.to_string().contains("no session"), "{err}");

    // Compile error.
    let err = client
        .create_session("program; begin end.", &SessionOptions::default())
        .unwrap_err();
    assert!(err.to_string().contains("compile"), "{err}");

    // Answer with no debug handle.
    let opts = SessionOptions::default();
    let sid = client.create_session(testprogs::SQRTEST, &opts).unwrap();
    let err = client.answer(sid, &Verdict::Correct).unwrap_err();
    assert!(err.to_string().contains("ask"), "{err}");

    // Ask before any trace.
    let err = client.ask(sid, 0).unwrap_err();
    assert!(err.to_string().contains("no traced run"), "{err}");

    // The connection and server are still healthy.
    assert!(client.ping().unwrap());
    drop(client);
    handle.shutdown().unwrap();
}
