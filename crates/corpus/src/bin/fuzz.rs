//! Differential fuzzing driver: `fuzz [start_seed] [count]`.
//!
//! Generates `count` programs starting at `start_seed`, runs the full
//! differential check (original vs transformed vs bytecode VM,
//! slice-soundness replay) on each, shrinks any divergence, and prints
//! the report. Exit status 1 when any divergence was found — `ci.sh`
//! runs this as its bounded fuzz smoke tier.
//!
//! Flags: `--threads N` (0 = all cores), `--no-slices` (skip the
//! slice replay), `--no-vm` (skip the VM leg), `--max-steps N`.

use gadt_corpus::{run_sweep, DiffConfig, GenConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut start_seed: u64 = 0;
    let mut count: usize = 200;
    let mut threads: usize = 0;
    let mut diff = DiffConfig::default();
    let mut positional = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
            }
            "--max-steps" => {
                diff.max_steps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-steps needs a number");
            }
            "--no-slices" => diff.check_slices = false,
            "--no-vm" => diff.check_vm = false,
            _ => {
                let v: u64 = a.parse().unwrap_or_else(|_| {
                    eprintln!("unexpected argument `{a}`");
                    std::process::exit(2);
                });
                match positional {
                    0 => start_seed = v,
                    1 => count = v as usize,
                    _ => {
                        eprintln!("too many positional arguments");
                        std::process::exit(2);
                    }
                }
                positional += 1;
            }
        }
    }

    let report = run_sweep(start_seed, count, &GenConfig::default(), &diff, threads);
    println!("{}", report.render());
    for v in &report.divergent {
        if let Some(min) = &v.minimized {
            println!("\n--- minimized reproducer (seed {}) ---\n{min}", v.seed);
        }
    }
    if report.divergent.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
