//! Seeded, grammar-directed Pascal program generator.
//!
//! Every program is a pure function of `(seed, GenConfig)` — the only
//! randomness is the std-only [`Lcg`] — and is **well-typed and
//! terminating by construction**:
//!
//! * all variables are `integer`; conditions are fully parenthesized
//!   relational/logical forms, so no type or precedence surprises;
//! * every `while`/`repeat` loop is governed by a dedicated *fuel*
//!   variable that the loop scaffolding (and nothing else) decrements,
//!   and every `for` loop has a span-bounded header, so iteration counts
//!   are bounded;
//! * every call passes a strictly decreasing depth argument `d` and is
//!   guarded by `if d > 0`, so call chains (including recursion and
//!   mutual recursion through nesting) bottom out;
//! * every arithmetic result is range-limited by a `mod` wrapper and
//!   divisors are nonzero literals, so no overflow or division by zero;
//! * `read` statements appear only in the main body's straight-line
//!   prefix, and the generator supplies exactly that many input values;
//! * `goto`s are forward-only: loop-exit gotos target a landing label at
//!   the end of the owning body, and non-local gotos target landing
//!   labels of enclosing procedures (each label number globally unique,
//!   so no label capture).
//!
//! The constructs deliberately exercised are exactly what the §4/§6
//! transformations must preserve: global side effects in (possibly
//! deeply nested) procedures, gotos out of loops, non-local gotos out of
//! nested procedures, nested loops, procedure nesting, and recursion.
//!
//! Aliasing discipline: globals are split into a *shared* half that
//! procedures may read and write by name (this is what phase A rewrites
//! into `in`/`out` parameters) and a *channel* half that only the main
//! body touches and passes by `var` — so a `var` argument can never
//! alias a global the callee also accesses non-locally, which would have
//! ill-defined semantics under the paper's transformation.

use crate::lcg::Lcg;
use gadt_exec::BatchExecutor;
use gadt_pascal::value::Value;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Size/shape knobs of the generator. All bounds are inclusive maxima;
/// the generator draws actual sizes per program.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of global variables (≥ 2; split into shared + channel).
    pub globals: usize,
    /// Maximum top-level procedure/function declarations.
    pub top_procs: usize,
    /// Maximum nested procedure declarations per top-level procedure.
    pub nested_per_proc: usize,
    /// Maximum statements drawn per body.
    pub max_stmts: usize,
    /// Maximum statement nesting depth (if/loop bodies).
    pub max_stmt_depth: usize,
    /// Maximum expression tree depth.
    pub max_expr_depth: usize,
    /// Maximum fuel (iteration budget) of `while`/`repeat` loops.
    pub max_fuel: i64,
    /// Maximum call-depth budget the main body hands to callees.
    pub max_call_depth: i64,
    /// Maximum `read` statements in the main body prefix.
    pub reads: usize,
    /// Whether to generate gotos (loop-exit and non-local).
    pub gotos: bool,
    /// Whether procedures/functions may call themselves.
    pub recursion: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            globals: 4,
            top_procs: 3,
            nested_per_proc: 2,
            max_stmts: 6,
            max_stmt_depth: 2,
            max_expr_depth: 3,
            max_fuel: 4,
            max_call_depth: 3,
            reads: 2,
            gotos: true,
            recursion: true,
        }
    }
}

/// One generated program: source text plus the exact input stream its
/// `read` statements consume.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedProgram {
    /// The generating seed.
    pub seed: u64,
    /// Program name (`gen<seed>`).
    pub name: String,
    /// Pascal source text.
    pub source: String,
    /// Input values, one per generated `read`.
    pub input: Vec<Value>,
}

/// Callable signature visible to the statement generator.
#[derive(Debug, Clone)]
struct ProcSig {
    name: String,
    value_params: usize,
    var_params: usize,
    is_function: bool,
    /// Shared globals this callable (transitively) reads or writes.
    touches: BTreeSet<String>,
}

impl ProcSig {
    fn header(&self) -> String {
        let mut h = String::new();
        let kw = if self.is_function {
            "function"
        } else {
            "procedure"
        };
        let _ = write!(h, "{kw} {}(d: integer", self.name);
        for i in 0..self.value_params {
            let _ = write!(h, "; a{i}: integer");
        }
        for i in 0..self.var_params {
            let _ = write!(h, "; var v{i}: integer");
        }
        h.push(')');
        if self.is_function {
            h.push_str(": integer");
        }
        h.push(';');
        h
    }
}

/// Per-body generation scope.
struct Scope {
    /// Names usable in expressions.
    readable: Vec<String>,
    /// Names assignable by generated statements (never fuel/loop vars).
    writable: Vec<String>,
    /// Candidates for `var` arguments at call sites.
    var_arg_pool: Vec<String>,
    /// Procedures callable as statements.
    callables: Vec<ProcSig>,
    /// Functions callable inside expressions.
    functions: Vec<ProcSig>,
    /// This body's landing label (goto target), if any.
    exit_label: Option<u32>,
    /// Landing labels of enclosing procedures (non-local goto targets).
    outer_labels: Vec<u32>,
    /// Function bodies stay pure: no IO, no gotos, no procedure calls.
    in_function: bool,
    /// Whether a depth parameter `d` is in scope (false in main).
    has_depth: bool,
    /// Locals to declare (accumulated while generating).
    locals: Vec<String>,
    /// Shared globals read or written so far.
    touches: BTreeSet<String>,
    /// Loop-nesting depth at the current generation point. Calls inside
    /// loops multiply by the iteration count, so call emission is cost-
    /// bounded: halved depth inside one loop, no calls under two.
    loop_depth: u32,
    fuel_n: u32,
    loop_n: u32,
    local_n: u32,
}

impl Scope {
    fn fresh_local(&mut self, prefix: &str) -> String {
        let n = match prefix {
            "f" => {
                self.fuel_n += 1;
                self.fuel_n - 1
            }
            "i" => {
                self.loop_n += 1;
                self.loop_n - 1
            }
            _ => {
                self.local_n += 1;
                self.local_n - 1
            }
        };
        let name = format!("{prefix}{n}");
        self.locals.push(name.clone());
        name
    }
}

/// Generator state shared across the whole program.
struct Gen {
    rng: Lcg,
    config: GenConfig,
    /// Globals procedures may name directly.
    shared_globals: Vec<String>,
    /// Globals only the main body touches (var-argument pool).
    channel_globals: Vec<String>,
    next_label: u32,
    next_proc: u32,
    next_fn: u32,
    input: Vec<Value>,
}

impl Gen {
    fn fresh_label(&mut self) -> u32 {
        self.next_label += 1;
        self.next_label
    }

    /// Marks a name as touched if it is a shared global.
    fn touch(&self, sc: &mut Scope, name: &str) {
        if self.shared_globals.iter().any(|g| g == name) {
            sc.touches.insert(name.to_string());
        }
    }
}

const MODULI: [i64; 6] = [97, 101, 811, 1009, 4999, 9973];
const DIVISORS: [i64; 6] = [2, 3, 5, 7, 11, 19];

/// Generates one program from a seed.
pub fn generate(seed: u64, config: &GenConfig) -> GeneratedProgram {
    let mut config = config.clone();
    config.globals = config.globals.max(2);
    let n = config.globals;
    let shared: Vec<String> = (0..n.div_ceil(2)).map(|i| format!("g{i}")).collect();
    let channel: Vec<String> = (n.div_ceil(2)..n).map(|i| format!("g{i}")).collect();
    let mut g = Gen {
        rng: Lcg::new(seed),
        config,
        shared_globals: shared,
        channel_globals: channel,
        next_label: 0,
        next_proc: 0,
        next_fn: 0,
        input: Vec::new(),
    };

    let main_label = if g.config.gotos && g.rng.chance(1, 2) {
        Some(g.fresh_label())
    } else {
        None
    };

    // Top-level declarations, in declaration order (callables accumulate
    // so later bodies can call earlier ones).
    let mut decls: Vec<String> = Vec::new();
    let mut callables: Vec<ProcSig> = Vec::new();
    let mut functions: Vec<ProcSig> = Vec::new();
    let top = 1 + g.rng.below(g.config.top_procs.max(1) as u64) as usize;
    for _ in 0..top {
        let as_function = g.rng.chance(3, 10);
        let outer: Vec<u32> = main_label.into_iter().collect();
        let (text, sig) = gen_proc(&mut g, 1, &callables, &functions, &outer, as_function);
        decls.push(text);
        if sig.is_function {
            functions.push(sig);
        } else {
            callables.push(sig);
        }
    }

    // Main body scope: all globals readable/writable; channel globals
    // are the var-argument pool.
    let globals: Vec<String> = g
        .shared_globals
        .iter()
        .chain(g.channel_globals.iter())
        .cloned()
        .collect();
    let mut sc = Scope {
        readable: globals.clone(),
        writable: globals.clone(),
        var_arg_pool: g.channel_globals.clone(),
        callables,
        functions,
        exit_label: main_label,
        outer_labels: Vec::new(),
        in_function: false,
        has_depth: false,
        locals: Vec::new(),
        touches: BTreeSet::new(),
        loop_depth: 0,
        fuel_n: 0,
        loop_n: 0,
        local_n: 0,
    };

    let mut body: Vec<String> = Vec::new();
    // Straight-line prefix: reads and seeding assignments.
    let reads = g.rng.below(g.config.reads as u64 + 1) as usize;
    for _ in 0..reads {
        let target = g.rng.pick(&globals).clone();
        body.push(format!("read({target});"));
        let v = g.rng.range(-9, 99);
        g.input.push(Value::Int(v));
    }
    for gv in &globals {
        if g.rng.chance(3, 5) {
            let v = g.rng.range(-9, 99);
            body.push(format!("{gv} := {v};"));
        }
    }

    let n_stmts = 2 + g.rng.below(g.config.max_stmts.max(2) as u64 - 1) as usize;
    let depth = g.config.max_stmt_depth;
    for _ in 0..n_stmts {
        body.extend(gen_stmt(&mut g, &mut sc, depth, false));
    }

    // Landing label (non-local gotos from procedures arrive here), then
    // the final dump that makes any state divergence observable.
    if let Some(l) = main_label {
        body.push(format!("{l}: g0 := g0;"));
    }
    for gv in &globals {
        body.push(format!("writeln({gv});"));
    }

    // main generated no locals of its own: fuel and loop variables in
    // the main body live in the globals section.
    let mut source = String::new();
    let name = format!("gen{seed}");
    let _ = writeln!(source, "program {name};");
    if let Some(l) = main_label {
        let _ = writeln!(source, "label {l};");
    }
    let mut all_globals = globals.clone();
    all_globals.extend(sc.locals.iter().cloned());
    let _ = writeln!(source, "var {}: integer;", all_globals.join(", "));
    for d in &decls {
        source.push('\n');
        source.push_str(d);
    }
    source.push_str("\nbegin\n");
    for line in &body {
        let _ = writeln!(source, "  {line}");
    }
    source.push_str("end.\n");

    GeneratedProgram {
        seed,
        name,
        source,
        input: g.input,
    }
}

/// Generates `count` programs starting at `start_seed`, fanned out over
/// the deterministic batch executor (`threads` = 0 means all cores).
/// Each program depends only on its own seed, so the result is
/// byte-identical at any thread count.
pub fn generate_batch(
    start_seed: u64,
    count: usize,
    config: &GenConfig,
    threads: usize,
) -> Vec<GeneratedProgram> {
    let seeds: Vec<u64> = (0..count as u64).map(|i| start_seed + i).collect();
    let pool = BatchExecutor::new(threads);
    pool.run(seeds, |_, seed| generate(seed, config))
}

/// FNV-1a fingerprint of a corpus: hashes every program's source and
/// input stream. Pinned by the determinism tests.
pub fn corpus_fingerprint(programs: &[GeneratedProgram]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    };
    for p in programs {
        eat(p.source.as_bytes());
        for v in &p.input {
            eat(v.to_string().as_bytes());
            eat(&[0]);
        }
    }
    format!("{hash:016x}")
}

/// One procedure or function declaration (recursively generating nested
/// procedures), returning its text and signature.
fn gen_proc(
    g: &mut Gen,
    level: usize,
    callables: &[ProcSig],
    functions: &[ProcSig],
    outer_labels: &[u32],
    as_function: bool,
) -> (String, ProcSig) {
    let name = if as_function {
        g.next_fn += 1;
        format!("q{}", g.next_fn - 1)
    } else {
        g.next_proc += 1;
        format!("p{}", g.next_proc - 1)
    };
    let mut sig = ProcSig {
        name: name.clone(),
        value_params: g.rng.below(3) as usize,
        var_params: if as_function {
            0
        } else {
            g.rng.below(3) as usize
        },
        is_function: as_function,
        touches: BTreeSet::new(),
    };

    let exit_label = if !as_function && g.config.gotos && g.rng.chance(2, 3) {
        Some(g.fresh_label())
    } else {
        None
    };

    // Nested declarations (procedures only, one extra level).
    let mut nested_texts: Vec<String> = Vec::new();
    let mut nested_callables: Vec<ProcSig> = callables.to_vec();
    let mut nested_functions: Vec<ProcSig> = functions.to_vec();
    if g.config.recursion {
        // Visible for self/mutual recursion: the incomplete own signature
        // is enough (params are fixed before bodies are generated); its
        // `touches` is unioned in at the end by the caller of the cycle,
        // which is safe because nested callees never receive globals by
        // `var` anyway.
        if as_function {
            nested_functions.push(sig.clone());
        } else {
            nested_callables.push(sig.clone());
        }
    }
    let mut inner_labels: Vec<u32> = outer_labels.to_vec();
    if let Some(l) = exit_label {
        inner_labels.push(l);
    }
    if !as_function && level == 1 {
        let n = g.rng.below(g.config.nested_per_proc as u64 + 1) as usize;
        for _ in 0..n {
            let nested_fn = g.rng.chance(1, 4);
            let (text, nsig) = gen_proc(
                g,
                level + 1,
                &nested_callables,
                &nested_functions,
                &inner_labels,
                nested_fn,
            );
            sig.touches.extend(nsig.touches.iter().cloned());
            if nsig.is_function {
                nested_functions.push(nsig);
            } else {
                nested_callables.push(nsig);
            }
            nested_texts.push(text);
        }
    }

    // Scope for the body.
    let mut readable: Vec<String> = vec!["d".into()];
    let mut writable: Vec<String> = Vec::new();
    let mut var_arg_pool: Vec<String> = Vec::new();
    for i in 0..sig.value_params {
        readable.push(format!("a{i}"));
    }
    for i in 0..sig.var_params {
        readable.push(format!("v{i}"));
        writable.push(format!("v{i}"));
        var_arg_pool.push(format!("v{i}"));
    }
    if !as_function {
        for gv in &g.shared_globals.clone() {
            readable.push(gv.clone());
            writable.push(gv.clone());
        }
    } else {
        // Functions may read shared globals (phase A turns these into
        // `in` parameters) but never write them.
        for gv in &g.shared_globals.clone() {
            if g.rng.chance(1, 2) {
                readable.push(gv.clone());
            }
        }
    }
    let mut sc = Scope {
        readable,
        writable,
        var_arg_pool,
        callables: if as_function {
            Vec::new()
        } else {
            nested_callables
        },
        functions: nested_functions,
        exit_label,
        outer_labels: outer_labels.to_vec(),
        in_function: as_function,
        has_depth: true,
        locals: Vec::new(),
        touches: BTreeSet::new(),
        loop_depth: 0,
        fuel_n: 0,
        loop_n: 0,
        local_n: 0,
    };
    // Guarantee at least one plain local.
    let l0 = sc.fresh_local("l");
    sc.readable.push(l0.clone());
    sc.writable.push(l0);

    let n_stmts = 1 + g.rng.below(g.config.max_stmts.max(1) as u64) as usize;
    let depth = g.config.max_stmt_depth;
    let mut body: Vec<String> = Vec::new();
    for _ in 0..n_stmts {
        body.extend(gen_stmt(g, &mut sc, depth, false));
    }
    if as_function {
        // The result is always assigned on every path: an unconditional,
        // call-free final assignment.
        let e = gen_expr(g, &mut sc, g.config.max_expr_depth.min(2), false);
        let m = *g.rng.pick(&MODULI);
        body.push(format!("{name} := ({e}) mod {m};"));
    }
    if let Some(l) = exit_label {
        body.push(format!("{l}: l0 := l0;"));
    }

    sig.touches.extend(sc.touches.iter().cloned());

    let indent = "  ".repeat(level);
    let mut text = String::new();
    let _ = writeln!(text, "{indent}{}", sig.header());
    if let Some(l) = exit_label {
        let _ = writeln!(text, "{indent}label {l};");
    }
    if !sc.locals.is_empty() {
        let _ = writeln!(text, "{indent}var {}: integer;", sc.locals.join(", "));
    }
    for nt in &nested_texts {
        text.push_str(nt);
    }
    let _ = writeln!(text, "{indent}begin");
    for line in &body {
        let _ = writeln!(text, "{indent}  {line}");
    }
    let _ = writeln!(text, "{indent}end;");
    (text, sig)
}

/// One statement (possibly multi-line). `depth` is the remaining nesting
/// budget; `in_loop` enables loop-exit gotos.
fn gen_stmt(g: &mut Gen, sc: &mut Scope, depth: usize, in_loop: bool) -> Vec<String> {
    let roll = g.rng.below(100);
    match roll {
        // Plain assignment (possibly call-bearing).
        0..=29 => vec![gen_assign(g, sc)],
        // Conditional.
        30..=44 if depth > 0 => {
            let cond = gen_cond(g, sc, 1, false);
            let mut lines = vec![format!("if {cond} then begin")];
            let n = 1 + g.rng.below(2) as usize;
            for _ in 0..n {
                for l in gen_stmt(g, sc, depth - 1, in_loop) {
                    lines.push(format!("  {l}"));
                }
            }
            if g.rng.chance(1, 2) {
                lines.push("end else begin".into());
                for l in gen_stmt(g, sc, depth - 1, in_loop) {
                    lines.push(format!("  {l}"));
                }
            }
            lines.push("end;".into());
            lines
        }
        // Fuel-bounded while loop.
        45..=54 if depth > 0 => {
            let fuel = sc.fresh_local("f");
            let budget = g.rng.range(2, g.config.max_fuel.max(2));
            let cond = gen_cond(g, sc, 1, false);
            let mut lines = vec![
                format!("{fuel} := {budget};"),
                format!("while ({fuel} > 0) and ({cond}) do begin"),
                format!("  {fuel} := {fuel} - 1;"),
            ];
            let n = 1 + g.rng.below(2) as usize;
            sc.loop_depth += 1;
            for _ in 0..n {
                for l in gen_stmt(g, sc, depth - 1, true) {
                    lines.push(format!("  {l}"));
                }
            }
            sc.loop_depth -= 1;
            lines.push("end;".into());
            lines
        }
        // Fuel-bounded repeat loop.
        55..=62 if depth > 0 => {
            let fuel = sc.fresh_local("f");
            let budget = g.rng.range(2, g.config.max_fuel.max(2));
            let cond = gen_cond(g, sc, 1, false);
            let mut lines = vec![
                format!("{fuel} := {budget};"),
                "repeat".to_string(),
                format!("  {fuel} := {fuel} - 1;"),
            ];
            let n = 1 + g.rng.below(2) as usize;
            sc.loop_depth += 1;
            for _ in 0..n {
                for l in gen_stmt(g, sc, depth - 1, true) {
                    lines.push(format!("  {l}"));
                }
            }
            sc.loop_depth -= 1;
            lines.push(format!("until ({fuel} <= 0) or ({cond});"));
            lines
        }
        // Span-bounded for loop.
        63..=72 if depth > 0 => {
            let var = sc.fresh_local("i");
            let base = gen_leaf(g, sc);
            let span = g.rng.range(1, 4);
            let header = if g.rng.chance(1, 3) {
                format!("for {var} := ({base}) + {span} downto {base} do begin")
            } else {
                format!("for {var} := {base} to ({base}) + {span} do begin")
            };
            sc.readable.push(var.clone());
            let mut lines = vec![header];
            let n = 1 + g.rng.below(2) as usize;
            sc.loop_depth += 1;
            for _ in 0..n {
                for l in gen_stmt(g, sc, depth - 1, in_loop) {
                    lines.push(format!("  {l}"));
                }
            }
            sc.loop_depth -= 1;
            lines.push("end;".into());
            sc.readable.pop();
            lines
        }
        // Procedure call (depth-guarded outside main; suppressed under
        // doubly nested loops, where the iteration product would multiply
        // the call fan-out past any reasonable step budget).
        73..=84 if !sc.in_function && !sc.callables.is_empty() && sc.loop_depth < 2 => {
            match gen_call(g, sc) {
                Some(call) => {
                    if sc.has_depth {
                        vec![format!("if d > 0 then {call}")]
                    } else {
                        vec![call]
                    }
                }
                None => vec![gen_assign(g, sc)],
            }
        }
        // Output.
        85..=90 if !sc.in_function => {
            let e = gen_expr(g, sc, 1, false);
            if g.rng.chance(1, 4) {
                let tag = (b'a' + g.rng.below(26) as u8) as char;
                vec![format!("writeln('{tag}', {e});")]
            } else {
                vec![format!("writeln({e});")]
            }
        }
        // Loop-exit goto: forward jump to the owning body's landing label.
        91..=94 if in_loop && sc.exit_label.is_some() && !sc.in_function => {
            let l = sc.exit_label.unwrap();
            let cond = gen_cond(g, sc, 0, false);
            vec![format!("if {cond} then goto {l};")]
        }
        // Non-local goto out of the current procedure.
        95..=97 if !sc.outer_labels.is_empty() && !sc.in_function && sc.has_depth => {
            let l = *g.rng.pick(&sc.outer_labels);
            let cond = gen_cond(g, sc, 0, false);
            vec![format!("if {cond} then goto {l};")]
        }
        _ => vec![gen_assign(g, sc)],
    }
}

/// `w := (expr) mod m;`, occasionally call-bearing (then depth-guarded).
fn gen_assign(g: &mut Gen, sc: &mut Scope) -> String {
    if sc.writable.is_empty() {
        return "g0 := g0;".into();
    }
    let w = g.rng.pick(&sc.writable).clone();
    g.touch(sc, &w);
    let with_calls = !sc.functions.is_empty() && sc.loop_depth < 2 && g.rng.chance(1, 4);
    let depth = 1 + g.rng.below(g.config.max_expr_depth.max(1) as u64) as usize;
    let e = gen_expr(g, sc, depth, with_calls);
    let m = *g.rng.pick(&MODULI);
    let assign = format!("{w} := ({e}) mod {m};");
    if with_calls && sc.has_depth {
        format!("if d > 0 then {assign}")
    } else {
        assign
    }
}

/// A procedure call statement with a decreasing depth argument, value
/// arguments, and distinct non-aliasing var arguments. `None` when the
/// var-argument pool is too small for the chosen callee.
fn gen_call(g: &mut Gen, sc: &mut Scope) -> Option<String> {
    let sig = g.rng.pick(&sc.callables).clone();
    if sig.var_params > sc.var_arg_pool.len() {
        return None;
    }
    let mut args: Vec<String> = Vec::new();
    args.push(if sc.has_depth {
        // Inside a loop the call repeats per iteration, so halve the
        // depth budget to keep total invocations polynomial.
        if sc.loop_depth > 0 || g.rng.chance(1, 4) {
            "d div 2".into()
        } else {
            "d - 1".into()
        }
    } else if sc.loop_depth > 0 {
        g.rng
            .range(1, g.config.max_call_depth.max(2) - 1)
            .to_string()
    } else {
        g.rng.range(1, g.config.max_call_depth.max(1)).to_string()
    });
    for _ in 0..sig.value_params {
        args.push(gen_expr(g, sc, 1, false));
    }
    let picked = g.rng.pick_distinct(sc.var_arg_pool.len(), sig.var_params);
    for idx in picked {
        args.push(sc.var_arg_pool[idx].clone());
    }
    sc.touches.extend(sig.touches.iter().cloned());
    Some(format!("{}({});", sig.name, args.join(", ")))
}

/// An expression leaf: a literal or a readable variable.
fn gen_leaf(g: &mut Gen, sc: &mut Scope) -> String {
    if !sc.readable.is_empty() && g.rng.chance(3, 5) {
        let v = g.rng.pick(&sc.readable).clone();
        g.touch(sc, &v);
        v
    } else if g.rng.chance(1, 8) {
        format!("(-{})", g.rng.range(1, 99))
    } else {
        g.rng.range(0, 99).to_string()
    }
}

/// An integer expression of bounded depth. Multiplications are wrapped
/// in `mod` so intermediate values stay far from overflow; `div`/`mod`
/// only use nonzero literal divisors.
fn gen_expr(g: &mut Gen, sc: &mut Scope, depth: usize, calls: bool) -> String {
    if depth == 0 || g.rng.chance(3, 10) {
        return gen_leaf(g, sc);
    }
    match g.rng.below(100) {
        0..=24 => {
            let a = gen_expr(g, sc, depth - 1, calls);
            let b = gen_expr(g, sc, depth - 1, calls);
            format!("({a} + {b})")
        }
        25..=44 => {
            let a = gen_expr(g, sc, depth - 1, calls);
            let b = gen_expr(g, sc, depth - 1, calls);
            format!("({a} - {b})")
        }
        45..=59 => {
            let a = gen_expr(g, sc, depth - 1, calls);
            let b = gen_expr(g, sc, depth - 1, calls);
            let m = *g.rng.pick(&MODULI);
            format!("((({a}) * ({b})) mod {m})")
        }
        60..=69 => {
            let a = gen_expr(g, sc, depth - 1, calls);
            let k = *g.rng.pick(&DIVISORS);
            format!("({a} div {k})")
        }
        70..=79 => {
            let a = gen_expr(g, sc, depth - 1, calls);
            let k = *g.rng.pick(&DIVISORS);
            format!("({a} mod {k})")
        }
        80..=89 if calls && !sc.functions.is_empty() => {
            let sig = g.rng.pick(&sc.functions).clone();
            let mut args: Vec<String> = Vec::new();
            args.push(if sc.has_depth {
                if sc.loop_depth > 0 {
                    "(d div 2)".into()
                } else {
                    "(d - 1)".into()
                }
            } else if sc.loop_depth > 0 {
                g.rng
                    .range(1, g.config.max_call_depth.max(2) - 1)
                    .to_string()
            } else {
                g.rng.range(1, g.config.max_call_depth.max(1)).to_string()
            });
            for _ in 0..sig.value_params {
                args.push(gen_expr(g, sc, depth.saturating_sub(1), false));
            }
            sc.touches.extend(sig.touches.iter().cloned());
            format!("{}({})", sig.name, args.join(", "))
        }
        _ => {
            let a = gen_expr(g, sc, depth - 1, calls);
            format!("(-({a}))")
        }
    }
}

/// A boolean condition of bounded depth, fully parenthesized.
fn gen_cond(g: &mut Gen, sc: &mut Scope, depth: usize, calls: bool) -> String {
    if depth == 0 || g.rng.chance(1, 2) {
        let a = gen_expr(g, sc, 1, calls);
        let b = gen_expr(g, sc, 1, calls);
        let op = *g.rng.pick(&["=", "<>", "<", "<=", ">", ">="]);
        return format!("({a}) {op} ({b})");
    }
    match g.rng.below(3) {
        0 => {
            let a = gen_cond(g, sc, depth - 1, calls);
            let b = gen_cond(g, sc, depth - 1, calls);
            format!("({a}) and ({b})")
        }
        1 => {
            let a = gen_cond(g, sc, depth - 1, calls);
            let b = gen_cond(g, sc, depth - 1, calls);
            format!("({a}) or ({b})")
        }
        _ => {
            let a = gen_cond(g, sc, depth - 1, calls);
            format!("not ({a})")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let c = GenConfig::default();
        let a = generate(42, &c);
        let b = generate(42, &c);
        assert_eq!(a, b);
        let other = generate(43, &c);
        assert_ne!(a.source, other.source);
    }

    #[test]
    fn batch_matches_individual_generation_at_any_thread_count() {
        let c = GenConfig::default();
        let seq: Vec<GeneratedProgram> = (0..16).map(|s| generate(s, &c)).collect();
        for threads in [1, 2, 8] {
            let batch = generate_batch(0, 16, &c, threads);
            assert_eq!(batch, seq, "threads={threads}");
        }
    }

    #[test]
    fn generated_programs_compile_and_terminate() {
        let c = GenConfig::default();
        for seed in 0..40 {
            let p = generate(seed, &c);
            let m = gadt_pascal::sema::compile(&p.source)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", p.source));
            let mut interp = gadt_pascal::interp::Interpreter::new(&m);
            interp.set_limits(gadt_pascal::interp::Limits {
                max_steps: 2_000_000,
                ..Default::default()
            });
            interp.set_input(p.input.iter().cloned());
            interp
                .run()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", p.source));
        }
    }

    #[test]
    fn corpus_exercises_the_target_constructs() {
        let c = GenConfig::default();
        let programs = generate_batch(0, 60, &c, 0);
        let all: String = programs.iter().map(|p| p.source.as_str()).collect();
        assert!(all.contains("goto"), "no gotos in 60 programs");
        assert!(all.contains("while"), "no while loops");
        assert!(all.contains("repeat"), "no repeat loops");
        assert!(all.contains("for"), "no for loops");
        assert!(all.contains("procedure"), "no procedures");
        assert!(all.contains("function"), "no functions");
        assert!(all.contains("read("), "no reads");
        // At least one nested procedure declaration (indented header).
        assert!(
            all.contains("\n    procedure") || all.contains("\n    function"),
            "no procedure nesting"
        );
    }

    #[test]
    fn fingerprint_is_order_and_content_sensitive() {
        let c = GenConfig::default();
        let a = generate_batch(0, 5, &c, 1);
        let b = generate_batch(1, 5, &c, 1);
        assert_ne!(corpus_fingerprint(&a), corpus_fingerprint(&b));
        assert_eq!(corpus_fingerprint(&a), corpus_fingerprint(&a));
    }
}
