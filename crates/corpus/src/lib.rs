//! # gadt-corpus — seeded Pascal corpus generator + differential fuzzing
//!
//! This crate closes the gap between the three hand-written demo
//! programs and the scale the paper's claims need: a deterministic,
//! grammar-directed generator ([`gen`]) emits well-typed, terminating
//! Pascal programs that deliberately exercise the constructs the §4/§6
//! transformations must preserve (globals, gotos, nested loops,
//! procedure nesting, recursion), and a differential harness ([`diff`])
//! runs every program through the full pipeline both ways — original
//! and transformed — checking output agreement and dynamic-slice
//! soundness (the slice must replay to the same value, after Ricciotti
//! et al.). Any divergence is shrunk ([`shrink`]) to a minimal
//! reproducer addressed by `(seed, config)` alone.
//!
//! [`campaign`] scales the `gadt-mutate` localization-conformance
//! harness from hand-picked programs to thousands of mutants over the
//! generated corpus, persisting accuracy distributions via
//! `gadt-store`.

pub mod campaign;
pub mod diff;
pub mod gen;
pub mod lcg;
pub mod shrink;

pub use campaign::{
    corpus_campaign, corpus_campaign_with_store, corpus_subjects, distribution_key,
    CorpusCampaignConfig,
};
pub use diff::{
    check_program, run_sweep, run_sweep_observed, DiffConfig, Divergence, DivergenceKind,
    ProgramVerdict, SweepReport,
};
pub use gen::{corpus_fingerprint, generate, generate_batch, GenConfig, GeneratedProgram};
pub use lcg::Lcg;
pub use shrink::shrink_source;
