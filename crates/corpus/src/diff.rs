//! Differential checking of generated programs.
//!
//! Every corpus program goes through the full pipeline twice — original
//! and §6-transformed — and the harness asserts the properties the
//! paper's transformation claims:
//!
//! 1. **No front-end crash**: lexing, parsing, sema, transformation and
//!    both interpreter runs must return `Ok`/`Err`, never panic.
//! 2. **Semantic preservation**: the transformed program, on the same
//!    input, produces byte-identical output (each generated program ends
//!    by dumping every global, so state divergence is observable).
//! 3. **Slice soundness** (after Ricciotti et al., "slices that explain
//!    their work"): for every global, the backward dynamic slice from
//!    its final value, printed and re-run on the same input, must
//!    reproduce that value.
//!
//! A violation of any of these is a [`Divergence`], addressed by the
//! generating `(seed, config)` pair; [`run_sweep`] additionally shrinks
//! each divergent program to a minimal reproducer.
//!
//! 4. **Engine agreement** (the third differential leg): the transformed
//!    program re-runs on the bytecode VM (`gadt-vm`), and its output,
//!    step count, final globals and full monitor-event digest must match
//!    the tree-walking interpreter's bit for bit.

use crate::gen::{generate, GenConfig, GeneratedProgram};
use crate::shrink::shrink_source;
use gadt::session;
use gadt_exec::BatchExecutor;
use gadt_obs::Recorder;
use gadt_pascal::ast::{Program, Stmt, StmtId, StmtKind};
use gadt_pascal::cfg::lower;
use gadt_pascal::interp::{Interpreter, Limits, Monitor, Outcome};
use gadt_pascal::pretty::print_slice;
use gadt_pascal::sema::{compile, Module};
use gadt_vm::conformance::EventHasher;
use gadt_vm::{CallSemantics, Engine, PreparedEngine};
use std::collections::BTreeSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Differential harness knobs.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Interpreter step budget per run (corpus programs terminate well
    /// under this; exceeding it is a divergence, not a hang).
    pub max_steps: u64,
    /// Whether to run the slice-soundness replay check.
    pub check_slices: bool,
    /// Whether to re-run the transformed program on the bytecode VM and
    /// compare output, steps, globals and the event-stream digest.
    pub check_vm: bool,
    /// Whether [`run_sweep`] shrinks divergent programs.
    pub shrink: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            max_steps: 2_000_000,
            check_slices: true,
            check_vm: true,
            shrink: true,
        }
    }
}

/// Where in the pipeline a divergence was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DivergenceKind {
    /// A panic escaped some pipeline stage.
    Panic,
    /// The generated program failed to compile (lexer/parser/sema
    /// rejected it) — a generator or front-end bug either way.
    CompileError,
    /// The *original* program hit a runtime error; the generator
    /// guarantees clean termination, so this is a finding.
    OriginalRunError,
    /// The transformation returned an error on a program it should
    /// handle.
    TransformError,
    /// The transformed program hit a runtime error the original did not.
    TransformedRunError,
    /// Original and transformed outputs differ.
    OutputMismatch,
    /// The bytecode VM disagreed with the tree-walking interpreter on
    /// the same transformed program (output, steps, globals or event
    /// stream).
    VmDivergence,
    /// A dynamic slice failed the soundness replay check.
    SliceUnsound,
}

impl fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DivergenceKind::Panic => "panic",
            DivergenceKind::CompileError => "compile-error",
            DivergenceKind::OriginalRunError => "original-run-error",
            DivergenceKind::TransformError => "transform-error",
            DivergenceKind::TransformedRunError => "transformed-run-error",
            DivergenceKind::OutputMismatch => "output-mismatch",
            DivergenceKind::VmDivergence => "vm-divergence",
            DivergenceKind::SliceUnsound => "slice-unsound",
        };
        f.write_str(s)
    }
}

/// One detected divergence.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// What went wrong.
    pub kind: DivergenceKind,
    /// Pipeline stage (`compile`, `transform`, `run`, `slice:<var>`, …).
    pub stage: String,
    /// Human-readable detail (error/panic message or output diff).
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}: {}", self.kind, self.stage, self.detail)
    }
}

/// The verdict for one program.
#[derive(Debug, Clone)]
pub struct ProgramVerdict {
    /// The generating seed.
    pub seed: u64,
    /// `None` when the program passed every check.
    pub divergence: Option<Divergence>,
    /// Minimized source (filled by [`run_sweep`] when shrinking is on).
    pub minimized: Option<String>,
}

impl ProgramVerdict {
    /// Whether every check passed.
    pub fn is_clean(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Aggregate result of a sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// First seed checked.
    pub start_seed: u64,
    /// Programs checked.
    pub checked: usize,
    /// Programs with no divergence.
    pub clean: usize,
    /// Verdicts of divergent programs, in seed order.
    pub divergent: Vec<ProgramVerdict>,
}

impl SweepReport {
    /// One-line human summary.
    pub fn render(&self) -> String {
        let mut s = format!(
            "sweep: seeds {}..{}: {} checked, {} clean, {} divergent",
            self.start_seed,
            self.start_seed + self.checked as u64,
            self.checked,
            self.clean,
            self.divergent.len()
        );
        for v in &self.divergent {
            if let Some(d) = &v.divergence {
                s.push_str(&format!("\n  seed {}: {d}", v.seed));
            }
        }
        s
    }
}

/// Runs `f`, converting an escaped panic into a [`Divergence`].
fn guard<T>(stage: &str, f: impl FnOnce() -> Result<T, Divergence>) -> Result<T, Divergence> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(Divergence {
                kind: DivergenceKind::Panic,
                stage: stage.to_string(),
                detail: msg,
            })
        }
    }
}

/// One-shot, monitor-free run on the default engine's fast path. The
/// original-run and slice-replay legs need only the outcome, and running
/// them on a different engine than the traced transformed run adds
/// engine diversity to the differential for free (errors are
/// byte-identical across engines, so verdicts are unchanged).
fn run_module(module: &Module, p: &GeneratedProgram, max_steps: u64) -> Result<Outcome, String> {
    let cfg = lower(module);
    let engine = PreparedEngine::new(module, &cfg, Engine::default());
    let limits = Limits {
        max_steps,
        ..Limits::default()
    };
    engine
        .run_fast(p.input.clone(), limits)
        .map_err(|e| e.to_string())
}

fn run_module_observed(
    module: &Module,
    p: &GeneratedProgram,
    max_steps: u64,
    monitor: &mut dyn Monitor,
) -> Result<Outcome, String> {
    let mut interp = Interpreter::new(module);
    interp.set_limits(Limits {
        max_steps,
        ..Limits::default()
    });
    interp.set_input(p.input.iter().cloned());
    interp.run_with(monitor).map_err(|e| e.to_string())
}

/// Statement ids of every `read` in the program — kept in printed
/// slices so the replay consumes the input stream at the same offsets.
fn read_stmts(program: &Program) -> BTreeSet<StmtId> {
    fn visit(stmt: &Stmt, acc: &mut BTreeSet<StmtId>) {
        if matches!(stmt.kind, StmtKind::Read { .. }) {
            acc.insert(stmt.id);
        }
        match &stmt.kind {
            StmtKind::Compound(body) | StmtKind::Repeat { body, .. } => {
                for s in body {
                    visit(s, acc);
                }
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                visit(then_branch, acc);
                if let Some(e) = else_branch {
                    visit(e, acc);
                }
            }
            StmtKind::Case { arms, else_arm, .. } => {
                for a in arms {
                    visit(&a.stmt, acc);
                }
                if let Some(e) = else_arm {
                    visit(e, acc);
                }
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => visit(body, acc),
            StmtKind::Labeled { stmt, .. } => visit(stmt, acc),
            _ => {}
        }
    }
    let mut acc = BTreeSet::new();
    for s in &program.block.body {
        visit(s, &mut acc);
    }
    acc
}

/// Runs every check on one program. Never panics: pipeline panics are
/// reported as [`DivergenceKind::Panic`].
pub fn check_program(p: &GeneratedProgram, config: &DiffConfig) -> ProgramVerdict {
    let divergence = check_inner(p, config).err();
    ProgramVerdict {
        seed: p.seed,
        divergence,
        minimized: None,
    }
}

fn check_inner(p: &GeneratedProgram, config: &DiffConfig) -> Result<(), Divergence> {
    // 1. Front end.
    let module = guard("compile", || {
        compile(&p.source).map_err(|e| Divergence {
            kind: DivergenceKind::CompileError,
            stage: "compile".into(),
            detail: e.to_string(),
        })
    })?;

    // 2. Original run.
    let original = guard("run-original", || {
        run_module(&module, p, config.max_steps).map_err(|detail| Divergence {
            kind: DivergenceKind::OriginalRunError,
            stage: "run-original".into(),
            detail,
        })
    })?;

    // 3. Transformation.
    let prepared = guard("transform", || {
        session::prepare(&module).map_err(|e| Divergence {
            kind: DivergenceKind::TransformError,
            stage: "transform".into(),
            detail: e.to_string(),
        })
    })?;

    // 4. Transformed run (event-hashed so the VM leg can compare the
    //    full monitor stream without a second reference run).
    let mut tree_hash = EventHasher::new();
    let transformed = guard("run-transformed", || {
        run_module_observed(
            &prepared.transformed.module,
            p,
            config.max_steps,
            &mut tree_hash,
        )
        .map_err(|detail| Divergence {
            kind: DivergenceKind::TransformedRunError,
            stage: "run-transformed".into(),
            detail,
        })
    })?;

    // 5. Output agreement.
    if original.output_text() != transformed.output_text() {
        return Err(Divergence {
            kind: DivergenceKind::OutputMismatch,
            stage: "compare-output".into(),
            detail: format!(
                "original:\n{}\ntransformed:\n{}",
                original.output_text(),
                transformed.output_text()
            ),
        });
    }

    // 5b. Third differential leg: the same transformed module on the
    //     bytecode VM must match the tree-walker bit for bit.
    if config.check_vm {
        check_vm(
            p,
            &prepared.transformed.module,
            &transformed,
            &tree_hash,
            config,
        )?;
    }

    // 6. Slice soundness over every global's final value.
    if config.check_slices {
        check_slices(p, &prepared, &transformed, config)?;
    }
    Ok(())
}

/// Runs the transformed module on the bytecode VM and compares every
/// observable — output, step count, final globals, and the FNV digest of
/// the full `Debug`-rendered event stream — against the tree-walker run.
fn check_vm(
    p: &GeneratedProgram,
    tmodule: &Module,
    tree_out: &Outcome,
    tree_hash: &EventHasher,
    config: &DiffConfig,
) -> Result<(), Divergence> {
    guard("run-vm", || {
        let diverged = |detail: String| Divergence {
            kind: DivergenceKind::VmDivergence,
            stage: "run-vm".into(),
            detail,
        };
        let cfg = lower(tmodule);
        let engine = PreparedEngine::new(tmodule, &cfg, Engine::Vm);
        let limits = Limits {
            max_steps: config.max_steps,
            ..Limits::default()
        };
        let mut vm_hash = EventHasher::new();
        let vm_out = engine
            .run_with(p.input.clone(), limits, &mut vm_hash)
            .map_err(|e| diverged(format!("vm failed where the tree-walker succeeded: {e}")))?;
        if vm_out.output_text() != tree_out.output_text() {
            return Err(diverged(format!(
                "output differs:\ntree:\n{}\nvm:\n{}",
                tree_out.output_text(),
                vm_out.output_text()
            )));
        }
        if vm_out.steps != tree_out.steps {
            return Err(diverged(format!(
                "step count differs: tree {} vs vm {}",
                tree_out.steps, vm_out.steps
            )));
        }
        if vm_out.globals != tree_out.globals {
            return Err(diverged(format!(
                "final globals differ:\ntree: {:?}\nvm:   {:?}",
                tree_out.globals, vm_out.globals
            )));
        }
        if vm_hash.digest() != tree_hash.digest() {
            return Err(diverged(format!(
                "event streams differ: tree digest {:016x} over {} events, \
                 vm digest {:016x} over {} events",
                tree_hash.digest(),
                tree_hash.count(),
                vm_hash.digest(),
                vm_hash.count()
            )));
        }
        Ok(())
    })
}

fn check_slices(
    p: &GeneratedProgram,
    prepared: &session::PreparedProgram,
    transformed_outcome: &Outcome,
    config: &DiffConfig,
) -> Result<(), Divergence> {
    let limits = Limits {
        max_steps: config.max_steps,
        ..Limits::default()
    };
    let traced = guard("trace", || {
        session::run_traced_limited(prepared, p.input.iter().cloned(), limits).map_err(|e| {
            Divergence {
                kind: DivergenceKind::TransformedRunError,
                stage: "trace".into(),
                detail: e.to_string(),
            }
        })
    })?;
    let tmodule = &prepared.transformed.module;
    let reads = read_stmts(&tmodule.program);
    let globals: Vec<String> = tmodule
        .vars_of(gadt_pascal::sema::MAIN_PROC)
        .filter(|v| v.kind == gadt_pascal::sema::VarKind::Global)
        .map(|v| v.name.clone())
        .collect();
    for name in globals {
        let stage = format!("slice:{name}");
        guard(&stage, || {
            let Some(mut slice) = gadt_analysis::dynamic_slice_final(tmodule, &traced.trace, &name)
            else {
                return Ok(()); // never written: final value is the zero init
            };
            // The localization slice is termination-insensitive by
            // design; replay additionally needs the closure that keeps
            // loop-exit drivers and all instances of kept statements.
            gadt_analysis::close_for_replay(tmodule, &traced.trace, &mut slice);
            let mut keep = slice.stmts.clone();
            keep.extend(reads.iter().copied());
            let sliced_src = print_slice(&tmodule.program, &keep);
            let unsound = |detail: String| Divergence {
                kind: DivergenceKind::SliceUnsound,
                stage: stage.clone(),
                detail,
            };
            let smodule = compile(&sliced_src)
                .map_err(|e| unsound(format!("slice does not recompile: {e}\n{sliced_src}")))?;
            let replay = run_module(&smodule, p, config.max_steps)
                .map_err(|e| unsound(format!("slice replay failed: {e}\n{sliced_src}")))?;
            let want = transformed_outcome.global(&name).cloned();
            let got = replay.global(&name).cloned();
            if want != got {
                return Err(unsound(format!(
                    "final value of {name}: full run {want:?}, slice replay {got:?}\n{sliced_src}"
                )));
            }
            Ok(())
        })?;
    }
    Ok(())
}

/// Generates and checks `count` programs starting at `start_seed`,
/// fanning the checks over the deterministic batch executor and
/// shrinking every divergent program (when `config.shrink`). The report
/// is identical at any thread count.
pub fn run_sweep(
    start_seed: u64,
    count: usize,
    gen_config: &GenConfig,
    config: &DiffConfig,
    threads: usize,
) -> SweepReport {
    run_sweep_observed(
        start_seed,
        count,
        gen_config,
        config,
        threads,
        &mut Recorder::disabled(),
    )
}

/// [`run_sweep`] with instrumentation: counters for programs checked,
/// clean programs, and per-kind divergence tallies land in `rec`'s
/// journal under a `diff_sweep` span.
pub fn run_sweep_observed(
    start_seed: u64,
    count: usize,
    gen_config: &GenConfig,
    config: &DiffConfig,
    threads: usize,
    rec: &mut Recorder,
) -> SweepReport {
    let token = rec.enter("diff_sweep");
    let seeds: Vec<u64> = (0..count as u64).map(|i| start_seed + i).collect();
    let pool = BatchExecutor::new(threads);
    let verdicts = pool.run(seeds, |_, seed| {
        let p = generate(seed, gen_config);
        let mut v = check_program(&p, config);
        if config.shrink {
            if let Some(d) = &v.divergence {
                v.minimized = Some(shrink_source(&p, d.kind, config));
            }
        }
        v
    });
    let checked = verdicts.len();
    let divergent: Vec<ProgramVerdict> = verdicts.into_iter().filter(|v| !v.is_clean()).collect();
    let clean = checked - divergent.len();
    rec.add("programs_checked", checked as u64);
    rec.add("programs_clean", clean as u64);
    rec.add("programs_divergent", divergent.len() as u64);
    for v in &divergent {
        if let Some(d) = &v.divergence {
            rec.incr(&format!("divergence_{}", d.kind));
        }
    }
    rec.exit(token);
    SweepReport {
        start_seed,
        checked,
        clean,
        divergent,
    }
}
