//! Corpus-backed mutation campaigns: scales the `gadt-mutate`
//! localization-conformance harness from three hand-written programs to
//! thousands of mutants over generated ones.
//!
//! The corpus is generated, differentially vetted (only programs whose
//! original and transformed runs agree become campaign subjects — the
//! campaign treats golden failures as harness errors), and handed to
//! [`gadt_mutate::run_campaign`]. The resulting localization-accuracy
//! distribution is persisted via `gadt-store` so repeated campaigns
//! reuse verdicts and dashboards can read the distribution back.

use crate::diff::{check_program, DiffConfig};
use crate::gen::{corpus_fingerprint, generate_batch, GenConfig};
use gadt::error::{Error, Phase};
use gadt_mutate::CampaignSummary;
use gadt_mutate::{run_campaign, run_campaign_with_store, CampaignConfig, CampaignProgram};
use gadt_obs::Recorder;

/// Parameters of a corpus-backed campaign.
#[derive(Debug, Clone)]
pub struct CorpusCampaignConfig {
    /// First generator seed.
    pub start_seed: u64,
    /// Programs to generate (the vetted subset becomes the subjects).
    pub programs: usize,
    /// Generator shape knobs.
    pub gen: GenConfig,
    /// Campaign knobs (subsampling, threads, step budget).
    pub campaign: CampaignConfig,
}

impl Default for CorpusCampaignConfig {
    fn default() -> Self {
        CorpusCampaignConfig {
            start_seed: 0,
            programs: 24,
            gen: GenConfig::default(),
            campaign: CampaignConfig::default(),
        }
    }
}

/// Generates the corpus and vets it into campaign subjects: every
/// generated program is differentially checked (output agreement,
/// bounded steps; slice checking is the sweep's job) and only clean
/// programs are kept. With a healthy pipeline that is *all* of them,
/// but the filter keeps a corpus regression from turning every future
/// campaign run into a golden-program error.
pub fn corpus_subjects(config: &CorpusCampaignConfig) -> Vec<CampaignProgram> {
    let vet = DiffConfig {
        check_slices: false,
        shrink: false,
        ..DiffConfig::default()
    };
    generate_batch(
        config.start_seed,
        config.programs,
        &config.gen,
        config.campaign.threads,
    )
    .into_iter()
    .filter(|p| check_program(p, &vet).is_clean())
    .map(|p| CampaignProgram {
        name: p.name.clone(),
        source: p.source.clone(),
        input: p.input.clone(),
    })
    .collect()
}

/// Runs a mutation campaign over the generated corpus.
///
/// # Errors
/// Propagates [`gadt_mutate::run_campaign`] harness errors.
pub fn corpus_campaign(config: &CorpusCampaignConfig) -> Result<CampaignSummary, Error> {
    let subjects = corpus_subjects(config);
    run_campaign(&subjects, &config.campaign)
}

/// The store key under which a corpus campaign's accuracy distribution
/// is persisted: addressed by the generation parameters and the corpus
/// content fingerprint, so distinct corpora never collide and re-runs
/// of the same corpus overwrite (idempotently) rather than accumulate.
pub fn distribution_key(config: &CorpusCampaignConfig) -> String {
    let corpus = generate_batch(config.start_seed, config.programs, &config.gen, 1);
    format!(
        "corpus/distribution/{}+{}/{}",
        config.start_seed,
        config.programs,
        corpus_fingerprint(&corpus)
    )
}

/// Like [`corpus_campaign`], but with persistent verdict reuse *and*
/// the campaign's localization-accuracy distribution recorded under
/// [`distribution_key`]. Counters for the subject count and the
/// distribution's headline numbers land in `rec`'s journal under a
/// `corpus_campaign` span.
///
/// # Errors
/// Propagates campaign harness errors; store I/O failures surface as
/// [`Phase::Campaign`] errors.
pub fn corpus_campaign_with_store(
    config: &CorpusCampaignConfig,
    store: &gadt_store::SharedStore,
    rec: &mut Recorder,
) -> Result<CampaignSummary, Error> {
    let token = rec.enter("corpus_campaign");
    let subjects = corpus_subjects(config);
    rec.add("corpus.subjects", subjects.len() as u64);
    let summary = run_campaign_with_store(&subjects, &config.campaign, store)?;
    rec.add("corpus.mutants", summary.total() as u64);
    rec.add("corpus.localized", summary.localized() as u64);
    rec.add("corpus.exact", summary.exact() as u64);
    let key = distribution_key(config);
    {
        let mut guard = store.lock().expect("store mutex poisoned");
        guard
            .record_verdict(&key, summary.distribution_json())
            .and_then(|_| guard.sync())
            .map_err(|e| {
                Error::new(
                    Phase::Campaign,
                    format!("persisting accuracy distribution failed: {e}"),
                )
            })?;
    }
    rec.exit(token);
    Ok(summary)
}
