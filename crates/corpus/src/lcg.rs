//! The corpus's only randomness source: a 64-bit linear congruential
//! generator, seeded explicitly everywhere (same discipline as the
//! `gadt-store` corruption tests and the `gadt-mutate` subsampler).
//!
//! Keeping the generator std-only and self-contained is what makes a
//! corpus program a pure function of `(seed, GenConfig)`: any divergence
//! the differential harness reports is reproducible from those two
//! values alone, on any machine, at any thread count.

/// Deterministic 64-bit LCG (Knuth's MMIX multiplier), with the output
/// taken from the high bits.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Creates a generator. Distinct seeds give independent-looking
    /// streams; the seed is scrambled so small seeds (0, 1, 2, …) do not
    /// produce correlated prefixes.
    pub fn new(seed: u64) -> Self {
        let mut lcg = Lcg {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        };
        // Warm up so consecutive seeds decorrelate immediately.
        lcg.next_u64();
        lcg.next_u64();
        lcg
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // The low bits of an LCG are weak; mix the high half down.
        let x = self.state;
        (x >> 33) ^ x.rotate_left(17)
    }

    /// Uniform value in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform value in `lo..=hi` (inclusive; `lo <= hi`).
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + (self.below((hi - lo + 1) as u64) as i64)
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniformly picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Picks `k` distinct indices out of `0..n` (k ≤ n), in a
    /// deterministic order.
    pub fn pick_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        debug_assert!(k <= n);
        let mut all: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below((n - i) as u64) as usize;
            all.swap(i, j);
        }
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Lcg::new(7);
        let mut b = Lcg::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn adjacent_seeds_diverge_immediately() {
        let mut a = Lcg::new(0);
        let mut b = Lcg::new(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut r = Lcg::new(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..500 {
            let v = r.range(-2, 2);
            assert!((-2..=2).contains(&v));
            saw_lo |= v == -2;
            saw_hi |= v == 2;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn pick_distinct_has_no_duplicates() {
        let mut r = Lcg::new(11);
        let picked = r.pick_distinct(10, 6);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
        assert_eq!(picked.len(), 6);
    }
}
