//! Greedy statement-deletion shrinking of divergent programs.
//!
//! A reported divergence is addressed by `(seed, config)`, but the
//! generated program can be large; the shrinker reduces it to a minimal
//! reproducer by repeatedly replacing statements with the empty
//! statement and keeping each deletion iff the *same kind* of
//! divergence persists. Because the candidate order is the parser's
//! deterministic pre-order (compounds and loops before their children,
//! so whole subtrees go first), the minimized program is itself a pure
//! function of `(seed, config)`.

use crate::diff::{check_program, DiffConfig, DivergenceKind};
use crate::gen::GeneratedProgram;
use gadt_pascal::ast::{Program, Stmt, StmtKind};
use gadt_pascal::ast_mut::{walk_procs_mut, walk_stmt_mut};
use gadt_pascal::parser::parse_program;
use gadt_pascal::pretty::print_program;

/// Replaces the `target`-th statement (pre-order over every body:
/// procedures depth-first in declaration order, then the main body)
/// with `Empty`, keeping labels in place so gotos stay resolvable.
/// Returns whether a replacement happened (i.e. `target` was in range
/// and the statement was not already empty).
fn delete_nth(program: &mut Program, target: usize) -> bool {
    let mut idx = 0usize;
    let mut hit = false;
    let mut visit = |s: &mut Stmt| {
        let me = idx;
        idx += 1;
        if me != target {
            return;
        }
        match &mut s.kind {
            StmtKind::Empty => {}
            StmtKind::Labeled { stmt, .. } => {
                if !matches!(stmt.kind, StmtKind::Empty) {
                    stmt.kind = StmtKind::Empty;
                    hit = true;
                }
            }
            _ => {
                s.kind = StmtKind::Empty;
                hit = true;
            }
        }
    };
    walk_procs_mut(program, &mut |p| {
        for s in &mut p.block.body {
            walk_stmt_mut(s, &mut visit);
        }
    });
    for s in &mut program.block.body {
        walk_stmt_mut(s, &mut visit);
    }
    let _ = idx;
    hit
}

fn stmt_count(program: &mut Program) -> usize {
    let mut idx = 0usize;
    let mut visit = |_: &mut Stmt| idx += 1;
    walk_procs_mut(program, &mut |p| {
        for s in &mut p.block.body {
            walk_stmt_mut(s, &mut visit);
        }
    });
    for s in &mut program.block.body {
        walk_stmt_mut(s, &mut visit);
    }
    idx
}

/// Shrinks a divergent program: greedy fixpoint of single-statement
/// deletions, each kept iff re-checking still reports a divergence of
/// `kind`. Returns the minimized source (the original source when
/// nothing could be deleted).
///
/// Deletions that break compilation are rejected automatically (the
/// re-check reports [`DivergenceKind::CompileError`], which only
/// matches when that *was* the divergence being minimized). Slice
/// checking is left on during shrinking only when minimizing a
/// slice-soundness divergence.
pub fn shrink_source(p: &GeneratedProgram, kind: DivergenceKind, config: &DiffConfig) -> String {
    // Never recurse into shrinking from the re-checks; slice checking
    // stays on only when a slice divergence is being minimized.
    let check_config = DiffConfig {
        shrink: false,
        check_slices: config.check_slices && kind == DivergenceKind::SliceUnsound,
        ..config.clone()
    };

    let Ok(mut program) = parse_program(&p.source) else {
        return p.source.clone();
    };
    let reproduces = |candidate: &Program| -> bool {
        let src = print_program(candidate);
        let probe = GeneratedProgram {
            seed: p.seed,
            name: p.name.clone(),
            source: src,
            input: p.input.clone(),
        };
        check_program(&probe, &check_config)
            .divergence
            .is_some_and(|d| d.kind == kind)
    };

    // The divergence must reproduce through a print → parse round-trip
    // at all for shrinking to be meaningful.
    if !reproduces(&program) {
        return p.source.clone();
    }

    loop {
        let mut deleted_any = false;
        let total = stmt_count(&mut program);
        for target in 0..total {
            let mut candidate = program.clone();
            if !delete_nth(&mut candidate, target) {
                continue;
            }
            if reproduces(&candidate) {
                program = candidate;
                deleted_any = true;
            }
        }
        if !deleted_any {
            break;
        }
    }
    print_program(&program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::DiffConfig;
    use gadt_pascal::value::Value;

    /// A hand-made "divergence": a program whose original run hits a
    /// division by zero, padded with irrelevant statements the shrinker
    /// must strip.
    #[test]
    fn shrinks_to_the_failing_statement() {
        let source = "\
program t;
var a, b, c: integer;
begin
  a := 1;
  b := a + 2;
  writeln(b);
  c := a div (a - 1);
  writeln(c)
end.
";
        let p = GeneratedProgram {
            seed: 0,
            name: "t".into(),
            source: source.into(),
            input: Vec::<Value>::new(),
        };
        let config = DiffConfig {
            check_slices: false,
            ..DiffConfig::default()
        };
        let verdict = check_program(&p, &config);
        let kind = verdict.divergence.expect("expected a divergence").kind;
        assert_eq!(kind, DivergenceKind::OriginalRunError);
        let minimized = shrink_source(&p, kind, &config);
        // Everything except the faulting division should be gone.
        assert!(
            minimized.contains("div"),
            "kept the faulting stmt:\n{minimized}"
        );
        assert!(
            !minimized.contains("writeln"),
            "dropped output stmts:\n{minimized}"
        );
        assert!(
            !minimized.contains("b := "),
            "dropped irrelevant stmts:\n{minimized}"
        );
    }
}
