//! Random program generation and mutation-based bug planting — the
//! workload for the quantitative experiments (E8–E10 in DESIGN.md).
//!
//! Generated programs have the shape the paper's method targets: a tree
//! of procedures, each computing two output values from two inputs
//! through arithmetic and calls to lower-level procedures, so that
//! (a) execution trees are deep enough for algorithmic debugging to need
//! many queries, and (b) each unit has *several* outputs with separate
//! computation chains, giving slicing something to prune (§5.3.3).
//!
//! Bug planting mutates a single arithmetic operation or constant in one
//! procedure (the classic mutation operators), yielding a buggy/reference
//! program pair for the simulated-user oracle.

use std::fmt::Write as _;

/// A small deterministic linear congruential generator.
///
/// The workload generators below need nothing more than reproducible
/// streams of small integers, and the offline build environment has no
/// registry access for an external `rand` crate — so this is the whole
/// RNG: one Knuth-constant LCG step per draw, with an xorshift-multiply
/// finalizer so low bits are usable.
#[derive(Debug, Clone)]
pub struct Lcg(u64);

impl Lcg {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        // Pre-mix so small consecutive seeds diverge immediately.
        Lcg(seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0x1531_7acf))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let mut x = self.0;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^ (x >> 33)
    }

    /// A uniform draw from the half-open range `lo..hi` (requires
    /// `lo < hi`).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// A uniform draw from the half-open range `lo..hi` (requires
    /// `lo < hi`).
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    /// A fair coin flip.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Parameters of a generated program.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of generated procedures (≥ 1).
    pub procs: usize,
    /// Maximum calls a procedure makes to lower-numbered procedures.
    pub max_calls: usize,
    /// RNG seed (generation is fully deterministic in the seed).
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            procs: 8,
            max_calls: 2,
            seed: 1,
        }
    }
}

/// A generated program plus the locations suitable for mutation.
#[derive(Debug, Clone)]
pub struct GeneratedProgram {
    /// The source text.
    pub source: String,
    /// Names of the generated procedures (`p1` … `pN`).
    pub proc_names: Vec<String>,
}

/// Generates a random program per `cfg`.
///
/// Every procedure has the signature
/// `procedure pK(a, b: integer; var o1, o2: integer)` and computes `o1`
/// and `o2` through two *independent* chains (so slicing on one output
/// can drop the other chain's calls). Procedure `pK` may call `pJ` with
/// `J < K`; `main` calls the top procedure and prints both outputs.
pub fn generate(cfg: &GenConfig) -> GeneratedProgram {
    let mut rng = Lcg::new(cfg.seed);
    let n = cfg.procs.max(1);
    let mut src = String::new();
    let _ = writeln!(src, "program gen{};", cfg.seed);
    let _ = writeln!(src, "var r1, r2: integer;");
    let mut proc_names = Vec::new();

    for k in 1..=n {
        let name = format!("p{k}");
        let _ = writeln!(src, "procedure {name}(a, b: integer; var o1, o2: integer);");
        // Locals for intermediate values.
        let _ = writeln!(src, "var t1, t2, u1, u2: integer;");
        let _ = writeln!(src, "begin");

        // Chain 1 computes o1 from a; chain 2 computes o2 from b.
        for (inp, tv, uv, out) in [("a", "t1", "u1", "o1"), ("b", "t2", "u2", "o2")] {
            // Seed the chain with a simple expression.
            let c1 = rng.range_i64(1, 5);
            let c2 = rng.range_i64(1, 4);
            let op = ["+", "-", "*"][rng.range_usize(0, 3)];
            let _ = writeln!(src, "  {tv} := ({inp} {op} {c1}) * {c2} + 1;");
            // Route through a callee most of the time (deep trees make
            // the debugging-method comparison meaningful). Callees are
            // biased toward the next-lower procedure so call chains are
            // long rather than flat.
            let makes_call = k > 1 && cfg.max_calls > 0 && rng.range_i64(0, 10) < 7;
            if makes_call {
                let back = 1 + rng.range_usize(0, 2.min(k - 1));
                let callee = k - back;
                let _ = writeln!(src, "  p{callee}({tv}, {tv} + {c2}, {uv}, {out});");
                let _ = writeln!(src, "  {out} := {out} + {uv} mod 7;");
            } else {
                // Leaf computation: vary the shape so slicing and control
                // dependence get exercised (plain, branchy, or case).
                let c3 = rng.range_i64(2, 6);
                match rng.range_i64(0, 3) {
                    0 => {
                        let _ = writeln!(src, "  {uv} := {tv} mod {c3} + {tv} div {c3};");
                        let _ = writeln!(src, "  {out} := {tv} + {uv};");
                    }
                    1 => {
                        let _ = writeln!(
                            src,
                            "  if {tv} > {c3} then {uv} := {tv} - {c3} else {uv} := {c3} - {tv};"
                        );
                        let _ = writeln!(src, "  {out} := {uv} * 2 + 1;");
                    }
                    _ => {
                        let _ = writeln!(src, "  case {tv} mod 3 of");
                        let _ = writeln!(src, "    0: {uv} := {tv} + {c3};");
                        let _ = writeln!(src, "    1: {uv} := {tv} * 2");
                        let _ = writeln!(src, "  else {uv} := {tv} - 1");
                        let _ = writeln!(src, "  end;");
                        let _ = writeln!(src, "  {out} := {uv} + {c3};");
                    }
                }
            }
        }
        let _ = writeln!(src, "end;");
        proc_names.push(name);
    }

    let a0 = rng.range_i64(1, 20);
    let b0 = rng.range_i64(1, 20);
    let _ = writeln!(src, "begin");
    let _ = writeln!(src, "  p{n}({a0}, {b0}, r1, r2);");
    let _ = writeln!(src, "  writeln(r1, ' ', r2);");
    let _ = writeln!(src, "end.");

    GeneratedProgram {
        source: src,
        proc_names,
    }
}

/// A planted mutation.
#[derive(Debug, Clone)]
pub struct Mutation {
    /// The mutated source.
    pub source: String,
    /// The procedure whose body was mutated.
    pub in_proc: String,
}

/// Plants one bug by mutating an arithmetic constant or operator inside
/// one generated procedure. Returns `None` if no mutable site exists.
pub fn mutate(prog: &GeneratedProgram, seed: u64) -> Option<Mutation> {
    let mut rng = Lcg::new(seed.wrapping_mul(0x9e37_79b9).wrapping_add(17));
    // Find the body line ranges of each procedure.
    let lines: Vec<&str> = prog.source.lines().collect();
    let mut sites: Vec<(usize, String)> = Vec::new(); // (line idx, proc)
    let mut current: Option<String> = None;
    for (i, l) in lines.iter().enumerate() {
        if let Some(rest) = l.strip_prefix("procedure ") {
            let name = rest.split('(').next().unwrap_or("").trim().to_string();
            current = Some(name);
        } else if l.starts_with("begin") && !l.starts_with("begin.") {
            // main body begins at a column-0 begin after all procs; keep
            // `current` as-is (assignments before it belong to the proc).
        } else if let Some(p) = &current {
            if l.contains(":=") && (l.contains('+') || l.contains('*') || l.contains('-')) {
                sites.push((i, p.clone()));
            }
            if *l == "end;" {
                current = None;
            }
        }
    }
    if sites.is_empty() {
        return None;
    }
    let (line_idx, in_proc) = sites[rng.range_usize(0, sites.len())].clone();
    let line = lines[line_idx];
    // Mutation: flip the first `+` to `-` (or `-`→`+`, `*`→`+`).
    let mutated = if let Some(pos) = line.rfind("+ 1;") {
        format!("{}+ 2;", &line[..pos])
    } else if let Some(pos) = line.find('+') {
        format!("{}-{}", &line[..pos], &line[pos + 1..])
    } else if let Some(pos) = line.find('*') {
        format!("{}+{}", &line[..pos], &line[pos + 1..])
    } else if let Some(pos) = line.rfind('-') {
        format!("{}+{}", &line[..pos], &line[pos + 1..])
    } else {
        return None;
    };
    let mut out_lines: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
    out_lines[line_idx] = mutated;
    Some(Mutation {
        source: out_lines.join("\n"),
        in_proc,
    })
}

/// Generates a random program exercising the *transformation* pipeline:
/// nested procedures touching enclosing-scope variables and globals, a
/// `while` loop with a goto out of it, and (optionally) a non-local goto
/// from a nested procedure — the §6 constructs, combined randomly.
pub fn generate_effectful(cfg: &GenConfig) -> GeneratedProgram {
    let mut rng = Lcg::new(cfg.seed.wrapping_add(0xeffec7));
    let mut src = String::new();
    let _ = writeln!(src, "program fx{};", cfg.seed);
    let _ = writeln!(src, "var g1, g2: integer;");

    let use_nonlocal_goto = rng.coin();
    let use_loop_goto = rng.coin();
    let c1 = rng.range_i64(1, 7);
    let c2 = rng.range_i64(1, 5);

    let _ = writeln!(src, "procedure outer(n: integer);");
    if use_nonlocal_goto {
        let _ = writeln!(src, "label 9;");
    }
    let _ = writeln!(src, "var x: integer;");

    // Nested procedure with mixed effects.
    let _ = writeln!(src, "  procedure inner(k: integer);");
    let _ = writeln!(src, "  begin");
    let _ = writeln!(src, "    g1 := g1 + k * {c1};");
    let _ = writeln!(src, "    x := x + g2;");
    if use_nonlocal_goto {
        let _ = writeln!(src, "    if g1 > 40 then goto 9;");
    }
    let _ = writeln!(src, "    g2 := g2 + 1;");
    let _ = writeln!(src, "  end;");

    let _ = writeln!(src, "begin");
    let _ = writeln!(src, "  x := {c2};");
    if use_loop_goto {
        let _ = writeln!(src, "  while x < 50 do begin");
        let _ = writeln!(src, "    inner(x);");
        let _ = writeln!(src, "    x := x + {c1};");
        let _ = writeln!(src, "  end;");
    } else {
        let _ = writeln!(src, "  inner(n);");
        let _ = writeln!(src, "  inner(n + 1);");
    }
    let _ = writeln!(src, "  g2 := g2 + x;");
    if use_nonlocal_goto {
        let _ = writeln!(src, "  9: g1 := g1 + 1000;");
    }
    let _ = writeln!(src, "end;");

    // A loop-exit goto in main when requested.
    let _ = writeln!(src, "begin");
    let _ = writeln!(src, "  g1 := 0; g2 := 1;");
    let _ = writeln!(src, "  outer({});", rng.range_i64(1, 6));
    let _ = writeln!(src, "  writeln(g1, ' ', g2);");
    let _ = writeln!(src, "end.");

    GeneratedProgram {
        source: src,
        proc_names: vec!["outer".to_string(), "inner".to_string()],
    }
}

#[cfg(test)]
mod effectful_tests {
    use super::*;
    use gadt_pascal::interp::Interpreter;
    use gadt_pascal::sema::compile;

    #[test]
    fn effectful_programs_transform_and_preserve_semantics() {
        for seed in 0..30u64 {
            let g = generate_effectful(&GenConfig {
                procs: 2,
                max_calls: 1,
                seed,
            });
            let m = compile(&g.source).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", g.source));
            let t = gadt_transform::transform(&m)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", g.source));
            let o1 = Interpreter::new(&m)
                .run()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", g.source));
            let o2 = Interpreter::new(&t.module).run().unwrap_or_else(|e| {
                panic!(
                    "seed {seed}: transformed run failed: {e}\n{}",
                    gadt_pascal::pretty::print_program(&t.module.program)
                )
            });
            assert_eq!(
                o1.output_text(),
                o2.output_text(),
                "seed {seed}\noriginal:\n{}\ntransformed:\n{}",
                g.source,
                gadt_pascal::pretty::print_program(&t.module.program)
            );
            // Postcondition: side-effect free at the procedure level.
            let cfgl = gadt_pascal::cfg::lower(&t.module);
            let (_cg, fx) = gadt_analysis::effects::analyze(&t.module, &cfgl);
            for p in &t.module.procs {
                if p.id != gadt_pascal::sema::MAIN_PROC {
                    assert!(
                        !fx.has_global_side_effects(p.id),
                        "seed {seed}: {} dirty",
                        p.name
                    );
                }
            }
        }
    }
}
