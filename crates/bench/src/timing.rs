//! A minimal std-only benchmark harness.
//!
//! The offline build environment cannot fetch Criterion, so the
//! `benches/` targets (all `harness = false`) use this instead: each
//! benchmark auto-calibrates an iteration count to a target measuring
//! time, takes several samples, and reports the median ns/iteration.
//! The output is one aligned line per benchmark — grep-friendly for the
//! perf trajectory in EXPERIMENTS.md.

use std::time::{Duration, Instant};

/// A benchmark runner with a fixed per-sample time budget.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Wall-clock budget per sample.
    pub sample_time: Duration,
    /// Number of samples (the median is reported).
    pub samples: usize,
}

impl Default for Harness {
    fn default() -> Self {
        Harness {
            sample_time: Duration::from_millis(120),
            samples: 7,
        }
    }
}

/// One benchmark result.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Benchmark name.
    pub name: String,
    /// Median time per iteration.
    pub per_iter: Duration,
    /// Iterations per sample used after calibration.
    pub iters: u64,
}

impl Timing {
    /// Iterations per second implied by the median.
    pub fn per_sec(&self) -> f64 {
        if self.per_iter.as_nanos() == 0 {
            return f64::INFINITY;
        }
        1e9 / self.per_iter.as_nanos() as f64
    }
}

impl Harness {
    /// Creates a harness with the default budget.
    pub fn new() -> Self {
        Harness::default()
    }

    /// Grows the iteration count until one batch fills the sample budget.
    fn calibrate<R>(&self, f: &mut impl FnMut() -> R) -> u64 {
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= self.sample_time || iters >= 1 << 30 {
                return iters;
            }
            iters = if elapsed.is_zero() {
                iters * 100
            } else {
                let scale = self.sample_time.as_secs_f64() / elapsed.as_secs_f64();
                (iters as f64 * scale.clamp(1.5, 100.0)).ceil() as u64
            };
        }
    }

    /// One sample: `iters` runs of `f`, averaged to time-per-iteration.
    fn sample<R>(iters: u64, f: &mut impl FnMut() -> R) -> Duration {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        t.elapsed() / iters as u32
    }

    fn report(&self, name: &str, iters: u64, median: Duration) -> Timing {
        let timing = Timing {
            name: name.to_string(),
            per_iter: median,
            iters,
        };
        println!(
            "{:<44} {:>12}/iter  ({:.1} iters/s, n={})",
            timing.name,
            format_duration(median),
            timing.per_sec(),
            iters
        );
        timing
    }

    /// Times `f`, prints one result line, and returns the measurement.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> Timing {
        let iters = self.calibrate(&mut f);
        let mut per_iter: Vec<Duration> = (0..self.samples.max(1))
            .map(|_| Self::sample(iters, &mut f))
            .collect();
        per_iter.sort();
        let median = per_iter[per_iter.len() / 2];
        self.report(name, iters, median)
    }

    /// Times two competing implementations with *interleaved* samples —
    /// `a` then `b`, back to back, repeated `samples` times — and returns
    /// the sample pair whose `a/b` time ratio is the median.
    ///
    /// For A-vs-B comparisons on a noisy machine this is far more stable
    /// than two independent [`Harness::bench`] calls: load drift that
    /// spans several samples hits both sides of each pair about equally,
    /// so the reported *ratio* stays representative even when absolute
    /// timings wander.
    pub fn bench_pair<A, B>(
        &self,
        name_a: &str,
        name_b: &str,
        mut a: impl FnMut() -> A,
        mut b: impl FnMut() -> B,
    ) -> (Timing, Timing) {
        let iters_a = self.calibrate(&mut a);
        let iters_b = self.calibrate(&mut b);
        let mut pairs: Vec<(Duration, Duration)> = (0..self.samples.max(1))
            .map(|_| (Self::sample(iters_a, &mut a), Self::sample(iters_b, &mut b)))
            .collect();
        pairs.sort_by(|x, y| {
            let rx = x.0.as_secs_f64() / x.1.as_secs_f64().max(f64::MIN_POSITIVE);
            let ry = y.0.as_secs_f64() / y.1.as_secs_f64().max(f64::MIN_POSITIVE);
            rx.total_cmp(&ry)
        });
        let (da, db) = pairs[pairs.len() / 2];
        (
            self.report(name_a, iters_a, da),
            self.report(name_b, iters_b, db),
        )
    }
}

/// Renders a duration with an adaptive unit (`ns`, `µs`, `ms`, `s`).
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_numbers() {
        let h = Harness {
            sample_time: Duration::from_millis(2),
            samples: 3,
        };
        let t = h.bench("noop_add", || std::hint::black_box(1u64) + 1);
        assert!(t.iters >= 1);
        assert!(t.per_iter < Duration::from_millis(1));
        assert!(t.per_sec() > 1000.0);
    }

    #[test]
    fn bench_pair_reports_both_sides() {
        let h = Harness {
            sample_time: Duration::from_millis(2),
            samples: 3,
        };
        let (a, b) = h.bench_pair(
            "pair_a",
            "pair_b",
            || std::hint::black_box(1u64) + 1,
            || std::hint::black_box([0u64; 64]).iter().sum::<u64>(),
        );
        assert!(a.iters >= 1 && b.iters >= 1);
        assert!(a.per_iter <= Duration::from_millis(1));
        assert!(b.per_iter <= Duration::from_millis(1));
    }

    #[test]
    fn duration_formatting_units() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
    }
}
