//! Regenerates every figure and quantitative claim of the paper.
//!
//! ```sh
//! cargo run -p gadt-bench --bin repro            # all experiments
//! cargo run -p gadt-bench --bin repro -- e7      # one experiment
//! ```
//!
//! Experiment ids follow DESIGN.md's index (E1–E12).

use gadt::debugger::{DebugConfig, DebugResult};
use gadt::oracle::{ChainOracle, CountingOracle, ReferenceOracle};
use gadt::session::{debug, prepare, run_traced};
use gadt::testlookup::TestLookup;
use gadt_analysis::dyntrace::record_trace;
use gadt_analysis::slice_dynamic::dynamic_slice_output;
use gadt_analysis::slice_static::{static_slice, SliceContext, SliceCriterion};
use gadt_bench::genprog::{generate, GenConfig};
use gadt_bench::measure::{interaction_sweep, methods};
use gadt_pascal::cfg::lower;
use gadt_pascal::interp::Interpreter;
use gadt_pascal::pretty::{print_program, print_slice};
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;
use gadt_pascal::value::Value;
use gadt_tgen::{cases, frames, spec};
use gadt_transform::{growth_factor, transform};

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    if which.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: repro [e1 … e14 | all]");
        println!("Regenerates the paper's figures and quantitative claims.");
        println!("With no arguments, runs every experiment.");
        return;
    }
    let all = which.is_empty() || which.iter().any(|a| a == "all");
    let want = |id: &str| all || which.iter().any(|a| a == id);

    let experiments: Vec<(&str, &str, fn())> = vec![
        ("e1", "Figure 1: T-GEN frames and scripts for arrsum", e1),
        ("e2", "Figure 2: static slice of program p on mul", e2),
        ("e3", "§3: pure algorithmic debugging on P/Q/R", e3),
        ("e4", "Figures 4+7: sqrtest and its execution tree", e4),
        ("e5", "Figure 8: tree sliced on computs' first output", e5),
        (
            "e6",
            "Figure 9: tree sliced on partialsums' second output",
            e6,
        ),
        ("e7", "§8: the full GADT session on sqrtest", e7),
        ("e8", "Interaction sweep: pure AD vs AD+slicing vs GADT", e8),
        ("e9", "§9 claim: transformation growth < 2×", e9),
        ("e10", "§9/§4 claims: tree scaling and slice sizes", e10),
        ("e11", "§6: the transformation examples", e11),
        ("e12", "§5.3.3: the misnamed-variable scenario", e12),
        ("e13", "Ablations: traversal strategy and assertions", e13),
        (
            "e14",
            "Figures 5–6: irrelevant calls removed by slicing (§7)",
            e14,
        ),
    ];

    for (id, title, f) in experiments {
        if want(id) {
            println!("\n================================================================");
            println!("{} — {}", id.to_uppercase(), title);
            println!("================================================================\n");
            f();
        }
    }
}

fn e1() {
    let s = spec::parse_spec(spec::ARRSUM_SPEC).expect("spec");
    let g = frames::generate_frames(&s, Default::default());
    println!("frames ({}):", g.frames.len());
    for f in &g.frames {
        println!("  {f}");
    }
    for name in g.scripts.keys() {
        let members: Vec<String> = g.script(name).iter().map(|f| f.to_string()).collect();
        println!("{name}: {}", members.join(" "));
    }
    let s1: Vec<String> = g.script("script_1").iter().map(|f| f.to_string()).collect();
    println!(
        "\npaper: script_1 contains (more, mixed, large) and (more, mixed, average)\nmeasured: script_1 = {}  →  {}",
        s1.join(" "),
        if s1 == vec!["(more, mixed, large)", "(more, mixed, average)"] {
            "MATCH"
        } else {
            "MISMATCH"
        }
    );
}

fn e2() {
    let m = compile(testprogs::FIGURE2).expect("compile");
    let cfg = lower(&m);
    let cx = SliceContext::new(&m, &cfg);
    let criterion = SliceCriterion::at_program_end(&m, "mul").expect("mul");
    let slice = static_slice(&cx, &criterion);
    println!(
        "--- original (Figure 2a) ---\n{}",
        print_program(&m.program)
    );
    println!(
        "--- slice on mul (Figure 2b) ---\n{}",
        print_slice(&m.program, &slice.stmts)
    );
    let text = print_slice(&m.program, &slice.stmts);
    let keeps = ["read(x, y)", "mul := 0", "if x <= 1", "mul := x * y"];
    let drops = ["sum", "read(z)"];
    let ok = keeps.iter().all(|k| text.contains(k)) && drops.iter().all(|d| !text.contains(d));
    println!(
        "paper shape (keeps read/mul/if, drops sum/read(z)): {}",
        if ok { "MATCH" } else { "MISMATCH" }
    );
}

fn e3() {
    let buggy = compile(testprogs::PQR).expect("compile");
    let fixed = compile(testprogs::PQR_FIXED).expect("compile");
    let prepared = prepare(&buggy).expect("prepare");
    let run = run_traced(&prepared, []).expect("trace");
    let mut chain = ChainOracle::new();
    chain.push(CountingOracle::new(
        ReferenceOracle::new(&fixed, []).unwrap(),
    ));
    let out = debug(
        &prepared,
        &run,
        &mut chain,
        DebugConfig {
            slicing: false,
            ..Default::default()
        },
    );
    println!("{}", out.render_transcript());
    let ok = matches!(&out.result, DebugResult::BugLocalized { unit, .. } if unit == "r");
    println!(
        "paper: error localized inside procedure R → {}",
        if ok { "MATCH" } else { "MISMATCH" }
    );
}

fn sqrtest_run() -> (gadt::session::PreparedProgram, gadt::session::TracedRun) {
    let buggy = compile(testprogs::SQRTEST).expect("compile");
    let prepared = prepare(&buggy).expect("prepare");
    let run = run_traced(&prepared, []).expect("trace");
    (prepared, run)
}

fn e4() {
    let (prepared, run) = sqrtest_run();
    println!("{}", run.tree.render(run.tree.root));
    let m = &prepared.transformed.module;
    let expect = [
        (
            "sqrtest",
            "sqrtest(In ary: [1,2], In n: 2, Out isok: false)",
        ),
        ("arrsum", "arrsum(In a: [1,2], In n: 2, Out b: 3)"),
        ("computs", "computs(In y: 3, Out r1: 12, Out r2: 9)"),
        ("test", "test(In r1: 12, In r2: 9, Out isok: false)"),
        ("partialsums", "partialsums(In y: 3, Out s1: 6, Out s2: 6)"),
        ("add", "add(In s1: 6, In s2: 6, Out r1: 12)"),
        ("square", "square(In y: 3, Out r2: 9)"),
        ("increment", "increment(In y: 3) = 4"),
        ("decrement", "decrement(In y: 3) = 4"),
    ];
    let mut ok = true;
    for (name, want) in expect {
        let node = run.tree.find_call(m, name).expect(name);
        let got = run.tree.render_node(node);
        if got != want {
            ok = false;
            println!("MISMATCH {name}: got {got}, want {want}");
        }
    }
    println!(
        "13 procedure invocations (paper Figure 7): measured {} calls → {}",
        run.tree
            .preorder()
            .iter()
            .filter(|&&n| matches!(run.tree.node(n).kind, gadt_trace::NodeKind::Call { .. }))
            .count()
            - 1, // minus Main
        if ok { "MATCH" } else { "MISMATCH" }
    );
}

fn e5() {
    let (prepared, run) = sqrtest_run();
    let m = &prepared.transformed.module;
    let computs = run
        .trace
        .calls
        .iter()
        .find(|c| m.proc(c.proc).name == "computs")
        .unwrap();
    let slice = dynamic_slice_output(m, &run.trace, computs.id, 0);
    let node = run.tree.find_call(m, "computs").unwrap();
    let pruned = run.tree.prune(node, &slice);
    println!("{}", pruned.render(pruned.root));
    let names: Vec<String> = pruned
        .preorder()
        .into_iter()
        .map(|n| pruned.node(n).name.clone())
        .collect();
    let want = [
        "computs",
        "comput1",
        "partialsums",
        "sum1",
        "increment",
        "sum2",
        "decrement",
        "add",
    ];
    println!(
        "paper Figure 8 (left subtree only, comput2/square dropped): {}",
        if names == want { "MATCH" } else { "MISMATCH" }
    );
}

fn e6() {
    let (prepared, run) = sqrtest_run();
    let m = &prepared.transformed.module;
    let ps = run
        .trace
        .calls
        .iter()
        .find(|c| m.proc(c.proc).name == "partialsums")
        .unwrap();
    let slice = dynamic_slice_output(m, &run.trace, ps.id, 1);
    let node = run.tree.find_call(m, "partialsums").unwrap();
    let pruned = run.tree.prune(node, &slice);
    println!("{}", pruned.render(pruned.root));
    let names: Vec<String> = pruned
        .preorder()
        .into_iter()
        .map(|n| pruned.node(n).name.clone())
        .collect();
    println!(
        "paper Figure 9 (partialsums → sum2 → decrement): {}",
        if names == ["partialsums", "sum2", "decrement"] {
            "MATCH"
        } else {
            "MISMATCH"
        }
    );
}

fn e7() {
    let buggy = compile(testprogs::SQRTEST).expect("compile");
    let fixed = compile(testprogs::SQRTEST_FIXED).expect("compile");
    let prepared = prepare(&buggy).expect("prepare");
    let run = run_traced(&prepared, []).expect("trace");

    let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
    let g = frames::generate_frames(&s, Default::default());
    let tc = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
    let db = cases::run_cases(&buggy, "arrsum", &tc, &|ins, r| {
        cases::arrsum_oracle(ins, r)
    })
    .unwrap();
    let mut lookup = TestLookup::new();
    lookup.register("arrsum", db, Box::new(cases::arrsum_frame_selector));

    let mut chain = ChainOracle::new();
    chain.push(lookup);
    chain.push(CountingOracle::new(
        ReferenceOracle::new(&fixed, []).unwrap(),
    ));
    let out = debug(&prepared, &run, &mut chain, DebugConfig::default());
    println!("{}", out.render_transcript());
    println!("slices taken: {} (paper: 2)", out.slices_taken);
    println!(
        "user queries: {} of {} total; arrsum answered by test database: {}",
        out.queries_from("reference"),
        out.total_queries(),
        out.queries_from("test database")
    );

    // Comparison: pure AD on the same tree.
    let mut pure = ChainOracle::new();
    pure.push(CountingOracle::new(
        ReferenceOracle::new(&fixed, []).unwrap(),
    ));
    let out_pure = debug(
        &prepared,
        &run,
        &mut pure,
        DebugConfig {
            slicing: false,
            ..Default::default()
        },
    );
    println!(
        "\npure AD needs {} user queries; GADT needs {} → reduction {}",
        out_pure.queries_from("reference"),
        out.queries_from("reference"),
        if out.queries_from("reference") < out_pure.queries_from("reference") {
            "MATCH (paper: 'greatly reduced number of interactions')"
        } else {
            "MISMATCH"
        }
    );
    let ok = matches!(&out.result, DebugResult::BugLocalized { unit, .. } if unit == "decrement");
    println!(
        "bug localized in decrement: {}",
        if ok { "MATCH" } else { "MISMATCH" }
    );
}

fn e8() {
    println!("workload: generated programs, one mutation each; user-interaction counts\n");
    for procs in [5, 8, 12] {
        let rows = interaction_sweep(8, procs);
        if rows.is_empty() {
            continue;
        }
        println!(
            "--- programs with {procs} procedures ({} mutants) ---",
            rows.len()
        );
        print!("{:<10} {:>10}", "seed", "tree size");
        for (name, _) in methods() {
            print!(" {name:>16}");
        }
        println!();
        for r in &rows {
            print!("{:<10} {:>10}", r.seed, r.tree_size);
            for (_, q, ok) in &r.counts {
                print!(" {:>14}{}", q, if *ok { "  " } else { " !" });
            }
            println!();
        }
        let avg =
            |i: usize| rows.iter().map(|r| r.counts[i].1 as f64).sum::<f64>() / rows.len() as f64;
        println!(
            "{:<10} {:>10} {:>16.1} {:>16.1} {:>16.1} {:>16.1}",
            "mean",
            "",
            avg(0),
            avg(1),
            avg(2),
            avg(3)
        );
        println!();
    }
    println!("shape check: mean(GADT) ≤ mean(AD+slicing) ≤ mean(pure AD) per block above");
}

fn e9() {
    println!(
        "{:<22} {:>8} {:>8} {:>8}",
        "program", "before", "after", "growth"
    );
    let mut worst: f64 = 0.0;
    for (name, src) in testprogs::ALL {
        let m = compile(src).unwrap();
        let t = transform(&m).unwrap();
        let g = growth_factor(&m, &t);
        worst = worst.max(g);
        println!(
            "{:<22} {:>8} {:>8} {:>7.2}×",
            name,
            m.program.stmt_count(),
            t.module.program.stmt_count(),
            g
        );
    }
    for seed in 0..5u64 {
        let gp = generate(&GenConfig {
            procs: 8,
            max_calls: 2,
            seed,
        });
        let m = compile(&gp.source).unwrap();
        let t = transform(&m).unwrap();
        let g = growth_factor(&m, &t);
        worst = worst.max(g);
        println!(
            "{:<22} {:>8} {:>8} {:>7.2}×",
            format!("generated(seed={seed})"),
            m.program.stmt_count(),
            t.module.program.stmt_count(),
            g
        );
    }
    println!(
        "\npaper §9: 'small procedures usually grow less than a factor of two'\nmeasured worst growth: {worst:.2}× → {}",
        if worst < 2.0 { "MATCH" } else { "MISMATCH" }
    );
}

fn e10() {
    // Tree size vs input size (§9: "strongly application dependent").
    const SCALED: &str = "
program scaled;
var n, i, s: integer;
procedure step(x: integer; var acc: integer);
begin acc := acc + x * x end;
begin
  read(n);
  s := 0;
  for i := 1 to n do step(i, s);
  writeln(s);
end.";
    let m = compile(SCALED).unwrap();
    let cfg = lower(&m);
    println!("tree size vs input size (program `scaled`):");
    println!("{:>6} {:>10} {:>10}", "n", "nodes", "events");
    for n in [1i64, 5, 10, 50, 200] {
        let trace = record_trace(&m, &cfg, [Value::Int(n)]).unwrap();
        let tree = gadt_trace::build_tree(&m, &trace);
        println!("{:>6} {:>10} {:>10}", n, tree.len(), trace.events.len());
    }
    println!("\npaper §9: execution-tree size is strongly application (input) dependent → linear growth above\n");

    // Slice sizes (§4: "a slice is often much smaller than the original
    // program").
    println!("slice sizes on generated programs (statements):");
    println!(
        "{:>6} {:>9} {:>14} {:>15}",
        "seed", "program", "static slice", "dynamic slice"
    );
    let mut ratios = Vec::new();
    for seed in 0..6u64 {
        let gp = generate(&GenConfig {
            procs: 10,
            max_calls: 2,
            seed,
        });
        let m = compile(&gp.source).unwrap();
        let cfg = lower(&m);
        let total = m.program.stmt_count();
        let cx = SliceContext::new(&m, &cfg);
        let crit = SliceCriterion::at_program_end(&m, "r1").unwrap();
        let st = static_slice(&cx, &crit);
        let trace = record_trace(&m, &cfg, []).unwrap();
        // Dynamic slice on the top procedure's first output.
        let top = trace.calls[1].id;
        let dy = dynamic_slice_output(&m, &trace, top, 0);
        println!(
            "{:>6} {:>9} {:>14} {:>15}",
            seed,
            total,
            st.len(),
            dy.stmts.len()
        );
        ratios.push((
            st.len() as f64 / total as f64,
            dy.stmts.len() as f64 / total as f64,
        ));
    }
    let avg_s = ratios.iter().map(|(s, _)| s).sum::<f64>() / ratios.len() as f64;
    let avg_d = ratios.iter().map(|(_, d)| d).sum::<f64>() / ratios.len() as f64;
    println!(
        "\nmean static-slice ratio {:.0}%, mean dynamic-slice ratio {:.0}% → {}",
        avg_s * 100.0,
        avg_d * 100.0,
        if avg_s < 1.0 && avg_d <= avg_s + 1e-9 {
            "MATCH (slices smaller than program; dynamic ≤ static)"
        } else {
            "MISMATCH"
        }
    );
}

fn e11() {
    for (title, src) in [
        ("global variables → parameters", testprogs::SECTION6_GLOBALS),
        ("global goto → exit parameter", testprogs::SECTION6_GOTO),
        (
            "goto out of a loop → leave flag",
            testprogs::SECTION6_LOOP_GOTO,
        ),
    ] {
        let m = compile(src).unwrap();
        let t = transform(&m).unwrap();
        println!("--- {title} ---");
        println!("{}", print_program(&t.module.program));
        let o1 = Interpreter::new(&m).run().unwrap();
        let o2 = Interpreter::new(&t.module).run().unwrap();
        println!(
            "semantics preserved ({} = {}): {}\n",
            o1.output_text().trim(),
            o2.output_text().trim(),
            if o1.output_text() == o2.output_text() {
                "MATCH"
            } else {
                "MISMATCH"
            }
        );
    }
}

fn e14() {
    let m = compile(testprogs::FIGURE5).expect("compile");
    let cfg = lower(&m);
    let trace = record_trace(&m, &cfg, []).expect("trace");
    let tree = gadt_trace::build_tree(&m, &trace);
    println!("--- Figure 6: the execution tree of the Figure 5 program ---\n");
    println!("{}", tree.render(tree.root));
    let pn = trace
        .calls
        .iter()
        .find(|c| m.proc(c.proc).name == "pn")
        .expect("pn call");
    let slice = dynamic_slice_output(&m, &trace, pn.id, 0);
    let pruned = tree.prune(tree.root, &slice);
    println!("--- after slicing on pn's output y ---\n");
    println!("{}", pruned.render(pruned.root));
    let names: Vec<String> = pruned
        .preorder()
        .into_iter()
        .map(|n| pruned.node(n).name.clone())
        .collect();
    let ok = names.contains(&"pn".to_string())
        && !names.iter().any(|n| n == "p1" || n == "p2" || n == "p3");
    println!(
        "paper §7: p1..p(n-1) execute before pn but are irrelevant to y → {}",
        if ok {
            "MATCH (all removed)"
        } else {
            "MISMATCH"
        }
    );
}

fn e13() {
    use gadt::oracle::AssertionOracle;
    use gadt::Strategy;
    use gadt_bench::measure::strategy_ablation;

    // (a) Traversal strategy ablation, no slicing.
    println!("(a) traversal strategy (user queries, no slicing):\n");
    print!("{:>6} {:>10}", "seed", "tree size");
    for s in Strategy::ALL {
        print!(" {:>18}", s.slug());
    }
    println!();
    let rows = strategy_ablation(8, 10);
    let mut sums = vec![0.0f64; Strategy::ALL.len()];
    for r in &rows {
        print!("{:>6} {:>10}", r.seed, r.tree_size);
        for (i, q) in r.queries.iter().enumerate() {
            print!(" {:>18}", q);
            sums[i] += *q as f64;
        }
        println!();
    }
    if !rows.is_empty() {
        print!("{:>6} {:>10}", "mean", "");
        for s in &sums {
            print!(" {:>18.1}", s / rows.len() as f64);
        }
        println!();
    }
    println!("(every strategy localizes every planted bug; §7: the traversal choice does not affect correctness)\n");

    // (b) Assertions: partial specifications answer queries (§3, after
    // Drabent et al.): the §8 session with assertions for the arithmetic
    // helpers needs fewer user answers.
    let buggy = compile(testprogs::SQRTEST).unwrap();
    let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
    let prepared = prepare(&buggy).unwrap();
    let run = run_traced(&prepared, []).unwrap();

    let mut assertions = AssertionOracle::new();
    assertions.assert_unit("add", "r1 = s1 + s2");
    assertions.assert_unit("test", "isok = (r1 = r2)");
    assertions.assert_unit("arrsum", "b = a[1] + a[2]");
    assertions.assert_unit("square", "r2 = y * y");
    assertions.assert_unit("increment", "increment = y + 1");

    let mut chain = ChainOracle::new();
    chain.push(assertions);
    chain.push(CountingOracle::new(
        ReferenceOracle::new(&fixed, []).unwrap(),
    ));
    let out = debug(&prepared, &run, &mut chain, DebugConfig::default());
    println!("(b) the §8 session with assertions installed:\n");
    println!("{}", out.render_transcript());
    println!(
        "user queries with assertions: {} (vs 6 with the test DB, 8 with pure AD); answered by assertions: {}",
        out.queries_from("reference"),
        out.queries_from("assertions")
    );
    let ok = matches!(&out.result, DebugResult::BugLocalized { unit, .. } if unit == "decrement");
    println!(
        "bug still localized in decrement: {}",
        if ok { "MATCH" } else { "MISMATCH" }
    );
}

fn e12() {
    let src = "program t; var r: integer;
         procedure f(x: integer; var y: integer); begin y := x * 2 end;
         procedure caller(var r: integer);
         var a, b: integer;
         begin a := 1; b := 99; f(b, r) end; (* should be f(a, r) *)
         begin caller(r); writeln(r) end.";
    let fixed_src = src.replace("f(b, r) end; (* should be f(a, r) *)", "f(a, r) end;");
    let buggy = compile(src).unwrap();
    let fixed = compile(&fixed_src).unwrap();
    let prepared = prepare(&buggy).unwrap();
    let run = run_traced(&prepared, []).unwrap();
    let mut chain = ChainOracle::new();
    chain.push(CountingOracle::new(
        ReferenceOracle::new(&fixed, []).unwrap(),
    ));
    let out = debug(&prepared, &run, &mut chain, DebugConfig::default());
    println!("{}", out.render_transcript());
    let ok = matches!(&out.result, DebugResult::BugLocalized { unit, .. } if unit == "caller");
    println!(
        "paper §5.3.3: the misnamed-variable bug is correctly localized to the calling procedure → {}",
        if ok { "MATCH" } else { "MISMATCH" }
    );
}
