//! Traversal-strategy question-count lab:
//! `strategy_lab [out.json] [baseline.json] [--smoke]`.
//!
//! Measures the real quality metric of ROADMAP item 3 — oracle
//! questions per localized bug — for every [`Strategy`] over a large
//! seeded mutant corpus, plus the store-backed replay leg where the
//! knowledge-weighted strategy's probe actually has knowledge to
//! weigh. Writes the figures to `BENCH_strategies.json` (or the first
//! argument) and exits non-zero on any gate failure (`ci.sh`'s
//! `strategy` tier).
//!
//! Legs:
//! * `corpus` — the full campaign (paper fixtures + generated
//!   programs, every mutation site; ≥ 2000 mutants) under each
//!   strategy. Skipped under `--smoke`.
//! * `smoke` — the same campaign subsampled to 500 mutants: cheap
//!   enough for every CI run, deterministic, and recorded in the
//!   committed baseline so CI compares like against like.
//! * `replay` — seeded-store sessions: a top-down session persists its
//!   judgements, then optimal D&Q and the knowledge-weighted strategy
//!   replay the same symptom against the store; the figure is *live*
//!   (user) questions per session.
//!
//! Regression gates:
//! * optimal D&Q must ask strictly fewer questions per bug than
//!   top-down (mean, slicing off) on the corpus (or smoke) leg;
//! * the knowledge-weighted strategy must ask strictly fewer live
//!   questions than optimal D&Q on the replay leg;
//! * against a committed baseline, no strategy's smoke or replay mean
//!   may exceed its committed figure by more than 1% (campaigns are
//!   deterministic; the slack only absorbs float formatting).

use gadt::debugger::{DebugConfig, DebugResult, Strategy};
use gadt::oracle::{ChainOracle, CountingOracle, ReferenceOracle};
use gadt::session::{debug_observed_with_probe, prepare, run_traced};
use gadt::{AnswerProbe, StoreProbe, StoredKnowledgeOracle};
use gadt_bench::genprog::{generate, mutate, GenConfig};
use gadt_mutate::campaign::{run_campaign, CampaignConfig, CampaignProgram};
use gadt_mutate::report::MutantStatus;
use gadt_obs::Recorder;
use gadt_pascal::interp::Interpreter;
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;
use gadt_store::{KnowledgeStore, TempDir};
use std::process::ExitCode;

/// One strategy's aggregate over one campaign leg.
struct Row {
    strategy: Strategy,
    mutants: usize,
    localized: usize,
    exact: usize,
    mean_sliced: f64,
    mean_unsliced: f64,
}

/// One strategy's aggregate over the replay leg.
struct ReplayRow {
    strategy: Strategy,
    sessions: usize,
    live_questions: usize,
}

impl ReplayRow {
    fn mean_live(&self) -> f64 {
        self.live_questions as f64 / self.sessions as f64
    }
}

/// The corpus: the paper's known-good fixtures plus a seeded fan of
/// generated programs, large enough that every mutation site summed
/// over the set clears 2000 mutants.
fn corpus_programs() -> Vec<CampaignProgram> {
    let mut programs = vec![
        CampaignProgram::new("sqrtest", testprogs::SQRTEST_FIXED),
        CampaignProgram::new("pqr", testprogs::PQR_FIXED),
        CampaignProgram::new("multichain", testprogs::MULTICHAIN),
    ];
    for j in 0..60u64 {
        let procs = 3 + (j as usize % 6);
        let seed = j * 53 + 11;
        let gp = generate(&GenConfig {
            procs,
            max_calls: 2,
            seed,
        });
        programs.push(CampaignProgram::new(
            format!("gen_{procs}_{seed}"),
            gp.source,
        ));
    }
    programs
}

fn campaign_leg(programs: &[CampaignProgram], max_mutants: usize) -> Vec<Row> {
    Strategy::ALL
        .into_iter()
        .map(|strategy| {
            let summary = run_campaign(
                programs,
                &CampaignConfig {
                    seed: 2026,
                    max_mutants,
                    threads: 0,
                    strategy,
                    ..CampaignConfig::default()
                },
            )
            .expect("corpus programs are good");
            let (mut sliced, mut unsliced, mut localized, mut exact) = (0usize, 0usize, 0, 0);
            for r in &summary.reports {
                if let MutantStatus::Localized {
                    questions_with_slicing,
                    questions_without_slicing,
                    exact: is_exact,
                    ..
                } = &r.status
                {
                    sliced += questions_with_slicing;
                    unsliced += questions_without_slicing;
                    localized += 1;
                    exact += usize::from(*is_exact);
                }
            }
            Row {
                strategy,
                mutants: summary.total(),
                localized,
                exact,
                mean_sliced: sliced as f64 / localized as f64,
                mean_unsliced: unsliced as f64 / localized as f64,
            }
        })
        .collect()
}

/// The replay leg: for each killed generated mutant, a top-down
/// session persists its judgements into a fresh store; then each
/// bisection strategy replays the identical symptom with the stored
/// answers in front of the simulated user. Live questions are the
/// ones the store could not answer.
fn replay_leg() -> Vec<ReplayRow> {
    let mut rows: Vec<ReplayRow> = [Strategy::DqOpt, Strategy::KnowledgeWeighted]
        .into_iter()
        .map(|strategy| ReplayRow {
            strategy,
            sessions: 0,
            live_questions: 0,
        })
        .collect();
    let mut sessions = 0usize;
    let mut j = 0u64;
    while sessions < 100 && j < 400 {
        j += 1;
        let procs = 3 + (j as usize % 6);
        let seed = j * 101 + 29;
        let gen = generate(&GenConfig {
            procs,
            max_calls: 2,
            seed,
        });
        let Some(mutation) = mutate(&gen, seed) else {
            continue;
        };
        let fixed = compile(&gen.source).unwrap();
        let Ok(buggy) = compile(&mutation.source) else {
            continue;
        };
        let (Ok(of), Ok(ob)) = (
            Interpreter::new(&fixed).run(),
            Interpreter::new(&buggy).run(),
        ) else {
            continue;
        };
        if of.output_text() == ob.output_text() {
            continue;
        }
        let Ok(prepared) = prepare(&buggy) else {
            continue;
        };
        let Ok(run) = run_traced(&prepared, []) else {
            continue;
        };
        sessions += 1;

        let dir = TempDir::new("strategy-lab-replay");
        let store = KnowledgeStore::open(dir.path()).unwrap().into_shared();
        {
            let mut chain = ChainOracle::new();
            chain.push(CountingOracle::new(
                ReferenceOracle::new(&fixed, []).unwrap(),
            ));
            chain.persist_answers_to(store.clone());
            let out = debug_observed_with_probe(
                &prepared,
                &run,
                &mut chain,
                DebugConfig::default(),
                None,
                &mut Recorder::disabled(),
            );
            assert!(matches!(out.result, DebugResult::BugLocalized { .. }));
        }
        for row in &mut rows {
            let mut chain = ChainOracle::new();
            chain.push(CountingOracle::new(
                ReferenceOracle::new(&fixed, []).unwrap(),
            ));
            chain.push_front(StoredKnowledgeOracle::new(store.clone()));
            let probe = (row.strategy == Strategy::KnowledgeWeighted)
                .then(|| Box::new(StoreProbe::new(store.clone())) as Box<dyn AnswerProbe>);
            let out = debug_observed_with_probe(
                &prepared,
                &run,
                &mut chain,
                DebugConfig {
                    strategy: row.strategy,
                    ..Default::default()
                },
                probe,
                &mut Recorder::disabled(),
            );
            row.sessions += 1;
            row.live_questions += out.queries_from("reference");
        }
    }
    rows
}

fn leg_json(rows: &[Row]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"mutants\": {}, \"localized\": {}, \
             \"exact\": {}, \"mean_questions_sliced\": {:.4}, \
             \"mean_questions_unsliced\": {:.4}}}{}\n",
            r.strategy.slug(),
            r.mutants,
            r.localized,
            r.exact,
            r.mean_sliced,
            r.mean_unsliced,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]");
    s
}

/// Reads one leg's per-strategy means from a committed baseline.
fn committed_leg(json: &gadt_store::Json, leg: &str) -> Option<Vec<(String, f64, f64)>> {
    let mut out = Vec::new();
    for r in json.get(leg)?.as_array()? {
        let real = |field: &str| -> Option<f64> {
            match r.get(field)? {
                gadt_store::Json::Real(x) => Some(*x),
                gadt_store::Json::Int(n) => Some(*n as f64),
                _ => None,
            }
        };
        out.push((
            r.get("strategy")?.as_str()?.to_string(),
            real("mean_questions_sliced")?,
            real("mean_questions_unsliced")?,
        ));
    }
    Some(out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut positional = args.iter().filter(|a| !a.starts_with("--"));
    let out = positional
        .next()
        .cloned()
        .unwrap_or_else(|| "BENCH_strategies.json".to_string());
    let baseline = positional.next().cloned();

    println!(
        "strategy_lab: questions-per-bug by traversal strategy{}\n",
        if smoke { " (smoke subsample)" } else { "" }
    );
    let programs = corpus_programs();

    let corpus = if smoke {
        Vec::new()
    } else {
        let rows = campaign_leg(&programs, 0);
        for r in &rows {
            println!(
                "  => corpus {}: {} mutants, {} localized ({} exact), \
                 mean q/bug {:.2} sliced / {:.2} unsliced",
                r.strategy.slug(),
                r.mutants,
                r.localized,
                r.exact,
                r.mean_sliced,
                r.mean_unsliced
            );
        }
        rows
    };
    let smoke_rows = campaign_leg(&programs, 500);
    for r in &smoke_rows {
        println!(
            "  => smoke {}: {} mutants, {} localized ({} exact), \
             mean q/bug {:.2} sliced / {:.2} unsliced",
            r.strategy.slug(),
            r.mutants,
            r.localized,
            r.exact,
            r.mean_sliced,
            r.mean_unsliced
        );
    }
    let replay = replay_leg();
    for r in &replay {
        println!(
            "  => replay {}: {} sessions, {} live questions ({:.2}/session)",
            r.strategy.slug(),
            r.sessions,
            r.live_questions,
            r.mean_live()
        );
    }

    let mut body = String::from("{\n  \"benchmark\": \"strategy_lab\",\n");
    if !corpus.is_empty() {
        body.push_str(&format!("  \"corpus\": {},\n", leg_json(&corpus)));
    }
    body.push_str(&format!("  \"smoke\": {},\n", leg_json(&smoke_rows)));
    body.push_str("  \"replay\": [\n");
    for (i, r) in replay.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"sessions\": {}, \"live_questions\": {}, \
             \"mean_live\": {:.4}}}{}\n",
            r.strategy.slug(),
            r.sessions,
            r.live_questions,
            r.mean_live(),
            if i + 1 < replay.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out, &body) {
        eprintln!("strategy_lab: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {out}");

    let mut failed = false;

    // Gate 1: optimal D&Q strictly beats top-down per bug (slicing
    // off — the isolated traversal comparison).
    let gate_rows = if corpus.is_empty() {
        &smoke_rows
    } else {
        &corpus
    };
    let mean_of = |s: Strategy| {
        gate_rows
            .iter()
            .find(|r| r.strategy == s)
            .map(|r| r.mean_unsliced)
            .unwrap()
    };
    if mean_of(Strategy::DqOpt) >= mean_of(Strategy::TopDown) {
        eprintln!(
            "strategy_lab: REGRESSION — dq_opt mean {:.2} q/bug does not beat \
             top_down's {:.2}",
            mean_of(Strategy::DqOpt),
            mean_of(Strategy::TopDown)
        );
        failed = true;
    }

    // Gate 2: with a seeded store, the knowledge-weighted strategy
    // asks strictly fewer live questions than optimal D&Q.
    let live_of = |s: Strategy| {
        replay
            .iter()
            .find(|r| r.strategy == s)
            .map(|r| r.live_questions)
            .unwrap()
    };
    if live_of(Strategy::KnowledgeWeighted) >= live_of(Strategy::DqOpt) {
        eprintln!(
            "strategy_lab: REGRESSION — knowledge_weighted replay asked {} live \
             questions, dq_opt {}",
            live_of(Strategy::KnowledgeWeighted),
            live_of(Strategy::DqOpt)
        );
        failed = true;
    }

    // Gate 3: committed-baseline comparison on the smoke and replay
    // legs (the legs every CI run measures).
    if let Some(path) = baseline {
        let parsed = std::fs::read_to_string(&path)
            .ok()
            .and_then(|t| gadt_store::parse(&t));
        match parsed.as_ref().and_then(|j| committed_leg(j, "smoke")) {
            Some(committed) => {
                for (slug, sliced, unsliced) in committed {
                    let Some(r) = smoke_rows.iter().find(|r| r.strategy.slug() == slug) else {
                        eprintln!("strategy_lab: committed strategy `{slug}` was not measured");
                        failed = true;
                        continue;
                    };
                    if r.mean_sliced > sliced * 1.01 || r.mean_unsliced > unsliced * 1.01 {
                        eprintln!(
                            "strategy_lab: REGRESSION — {slug} smoke means \
                             {:.2}/{:.2} exceed committed {sliced:.2}/{unsliced:.2}",
                            r.mean_sliced, r.mean_unsliced
                        );
                        failed = true;
                    }
                }
            }
            None => {
                eprintln!("strategy_lab: cannot read committed baseline {path}");
                failed = true;
            }
        }
        match parsed.as_ref().and_then(|j| j.get("replay")?.as_array()) {
            Some(committed) => {
                for r in committed {
                    let (Some(slug), Some(live)) = (
                        r.get("strategy").and_then(|s| s.as_str()),
                        r.get("live_questions").and_then(|n| n.as_int()),
                    ) else {
                        eprintln!("strategy_lab: malformed committed replay row");
                        failed = true;
                        continue;
                    };
                    let Some(row) = replay.iter().find(|x| x.strategy.slug() == slug) else {
                        eprintln!("strategy_lab: committed replay `{slug}` was not measured");
                        failed = true;
                        continue;
                    };
                    if (row.live_questions as i64) > live {
                        eprintln!(
                            "strategy_lab: REGRESSION — {slug} replay live questions \
                             {} exceed committed {live}",
                            row.live_questions
                        );
                        failed = true;
                    }
                }
            }
            None => {
                eprintln!("strategy_lab: committed baseline {path} has no replay leg");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
