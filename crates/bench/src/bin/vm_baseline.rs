//! Tree-walker vs bytecode-VM baselines: `vm_baseline [out.json] [baseline.json]`.
//!
//! Runs the five workloads the VM phase-1/phase-2 work targets — batch
//! tracing, T-GEN case batches, a mutation campaign, the campaign's
//! monitor-free crash screen, and a hashed monitored run — on both
//! execution engines, prints the per-workload speedups, and writes the
//! figures to `BENCH_vm.json` (or the path given as the first argument).
//!
//! Regression gates (any failure exits 1 — `ci.sh`'s bench tier):
//! * the VM must beat the tree-walker on `trace_batch` (≥ 1.0×);
//! * the VM must beat the tree-walker on `campaign` by ≥ 1.3×;
//! * when a committed-baseline path is given as the second argument,
//!   no workload's speedup may fall below `0.8 ×` its committed figure
//!   (the slack absorbs machine noise, not structural regressions).

use gadt::session::{prepare, run_fast_limited, run_traced_batch, Engine};
use gadt_bench::genprog::{generate, GenConfig};
use gadt_bench::timing::Harness;
use gadt_mutate::campaign::{run_campaign, CampaignConfig, CampaignProgram};
use gadt_pascal::cfg::lower;
use gadt_pascal::interp::Limits;
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;
use gadt_pascal::value::Value;
use gadt_tgen::{cases, frames, spec};
use gadt_vm::conformance::EventHasher;
use gadt_vm::{CallSemantics, PreparedEngine};
use std::process::ExitCode;

struct Workload {
    name: &'static str,
    units: usize,
    tree_ns: f64,
    vm_ns: f64,
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.tree_ns / self.vm_ns
    }
}

/// Batch tracing: the same prepared program, a fan of inputs, both
/// engines through `run_traced_batch`. Single-threaded so the figure is
/// an engine comparison, not a scheduler benchmark.
fn trace_workload(h: &Harness) -> Workload {
    let gp = generate(&GenConfig {
        procs: 10,
        max_calls: 3,
        seed: 11,
    });
    let m = compile(&gp.source).unwrap();
    let inputs: Vec<Vec<Value>> = (0..24).map(|_| Vec::new()).collect();
    let units = inputs.len();

    let tree = prepare(&m).unwrap().with_engine(Engine::TreeWalker);
    let vm = prepare(&m).unwrap().with_engine(Engine::Vm);
    let (t, v) = h.bench_pair(
        "trace_batch/tree",
        "trace_batch/vm",
        || run_traced_batch(&tree, inputs.clone(), 1).unwrap(),
        || run_traced_batch(&vm, inputs.clone(), 1).unwrap(),
    );
    Workload {
        name: "trace_batch",
        units,
        tree_ns: t.per_iter.as_nanos() as f64 / units as f64,
        vm_ns: v.per_iter.as_nanos() as f64 / units as f64,
    }
}

/// T-GEN case batches: the arrsum catalogue repeated into a batch big
/// enough to amortize, on one worker thread.
fn tgen_workload(h: &Harness) -> Workload {
    let m = compile(testprogs::SQRTEST).unwrap();
    let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
    let g = frames::generate_frames(&s, Default::default());
    let base = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
    let mut tc = Vec::new();
    for _ in 0..16 {
        tc.extend(base.iter().cloned());
    }
    let oracle = |ins: &[Value], r: &gadt_pascal::interp::ProcRun| cases::arrsum_oracle(ins, r);

    let (t, v) = h.bench_pair(
        "tgen_batch/tree",
        "tgen_batch/vm",
        || cases::run_cases_batch_on(Engine::TreeWalker, 1, &m, "arrsum", &tc, &oracle).unwrap(),
        || cases::run_cases_batch_on(Engine::Vm, 1, &m, "arrsum", &tc, &oracle).unwrap(),
    );
    Workload {
        name: "tgen_batch",
        units: tc.len(),
        tree_ns: t.per_iter.as_nanos() as f64 / tc.len() as f64,
        vm_ns: v.per_iter.as_nanos() as f64 / tc.len() as f64,
    }
}

/// The campaign subject: a compute-heavy program whose golden run takes
/// tens of thousands of steps, with loops whose mutations produce the
/// full verdict spectrum — immediate crashes, step-budget runaways, and
/// observably-killed mutants with long traced runs. The loop guards use
/// `<>` bounds deliberately: mutations to an increment (deletion,
/// `+`→`-`, duplication, off-by-one) overshoot or stall the counter and
/// run away instead of exiting a little early, which is the common kill
/// mode for loop faults and exactly the regime the monitor-free crash
/// screen targets. Campaigns over trivial subjects measure pipeline
/// overhead (sema, rendering, oracle bookkeeping — all
/// engine-independent); this subject measures what large campaigns
/// actually pay for: execution.
const CHURN: &str = r#"
program churn;
var i, n, a, b, g, acc: integer;

procedure gcd(x, y: integer; var out: integer);
var t: integer;
begin
  while y <> 0 do begin
    t := x mod y;
    x := y;
    y := t
  end;
  out := x
end;

procedure mix(v: integer; var out: integer);
var k, s: integer;
begin
  s := 0;
  k := 0;
  while k <> 32 do begin
    s := (s + v * (k + 1)) mod 9973;
    k := k + 1
  end;
  out := s
end;

begin
  acc := 0;
  i := 0;
  n := 96;
  while i <> n do begin
    a := i * 7 + 3;
    b := i + 91;
    gcd(a, b, g);
    mix(g + i, a);
    acc := (acc + a + g) mod 100003;
    i := i + 1
  end;
  writeln(acc)
end.
"#;

/// A bounded mutation campaign (golden runs + every mutant's crash
/// screen → transform → trace → double debug pipeline) on each engine.
/// The step budget gives runaway mutants ~16x the golden run's steps —
/// the regime where the monitor-free crash screen pays off.
fn campaign_workload(h: &Harness) -> Workload {
    let programs = vec![CampaignProgram::new("churn", CHURN)];
    let units = 24usize;
    let config = |engine| CampaignConfig {
        max_mutants: units,
        threads: 1,
        max_steps: 1_000_000,
        engine,
        ..CampaignConfig::default()
    };
    let tree_config = config(Engine::TreeWalker);
    let vm_config = config(Engine::Vm);
    let (t, v) = h.bench_pair(
        "campaign/tree",
        "campaign/vm",
        || run_campaign(&programs, &tree_config).unwrap(),
        || run_campaign(&programs, &vm_config).unwrap(),
    );
    Workload {
        name: "campaign",
        units,
        tree_ns: t.per_iter.as_nanos() as f64 / units as f64,
        vm_ns: v.per_iter.as_nanos() as f64 / units as f64,
    }
}

/// The campaign's monitor-free crash screen in isolation: repeated
/// `run_fast_limited` calls on one prepared program — no monitor, no
/// dependence recorder, no tree build. This is the inner loop every
/// mutant pays before (or instead of) tracing.
fn campaign_fast_workload(h: &Harness) -> Workload {
    let gp = generate(&GenConfig {
        procs: 10,
        max_calls: 3,
        seed: 17,
    });
    let m = compile(&gp.source).unwrap();
    let units = 24usize;
    let limits = Limits::default();

    let tree = prepare(&m).unwrap().with_engine(Engine::TreeWalker);
    let vm = prepare(&m).unwrap().with_engine(Engine::Vm);
    let (t, v) = h.bench_pair(
        "campaign_fast/tree",
        "campaign_fast/vm",
        || {
            for _ in 0..units {
                run_fast_limited(&tree, Vec::new(), limits).unwrap();
            }
        },
        || {
            for _ in 0..units {
                run_fast_limited(&vm, Vec::new(), limits).unwrap();
            }
        },
    );
    Workload {
        name: "campaign_fast",
        units,
        tree_ns: t.per_iter.as_nanos() as f64 / units as f64,
        vm_ns: v.per_iter.as_nanos() as f64 / units as f64,
    }
}

/// A monitored run folded into the structural event hasher — the corpus
/// fuzzer's differential leg: full event stream, constant-memory digest,
/// no `Debug` rendering.
fn trace_hash_workload(h: &Harness) -> Workload {
    let gp = generate(&GenConfig {
        procs: 10,
        max_calls: 3,
        seed: 11,
    });
    let m = compile(&gp.source).unwrap();
    let cfg = lower(&m);
    let units = 24usize;

    let tree = PreparedEngine::new(&m, &cfg, Engine::TreeWalker);
    let vm = PreparedEngine::new(&m, &cfg, Engine::Vm);
    let (t, v) = h.bench_pair(
        "trace_hash/tree",
        "trace_hash/vm",
        || {
            let mut hasher = EventHasher::new();
            for _ in 0..units {
                tree.run_with(Vec::new(), Limits::default(), &mut hasher)
                    .unwrap();
            }
            hasher.digest()
        },
        || {
            let mut hasher = EventHasher::new();
            for _ in 0..units {
                vm.run_with(Vec::new(), Limits::default(), &mut hasher)
                    .unwrap();
            }
            hasher.digest()
        },
    );
    Workload {
        name: "trace_hash",
        units,
        tree_ns: t.per_iter.as_nanos() as f64 / units as f64,
        vm_ns: v.per_iter.as_nanos() as f64 / units as f64,
    }
}

/// Committed per-workload speedups from a previous `BENCH_vm.json`.
fn committed_speedups(path: &str) -> Option<Vec<(String, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let json = gadt_store::parse(&text)?;
    let mut out = Vec::new();
    for w in json.get("workloads")?.as_array()? {
        let name = w.get("name")?.as_str()?.to_string();
        let speedup = match w.get("speedup")? {
            gadt_store::Json::Real(x) => *x,
            gadt_store::Json::Int(n) => *n as f64,
            _ => return None,
        };
        out.push((name, speedup));
    }
    Some(out)
}

fn main() -> ExitCode {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_vm.json".to_string());
    let baseline = std::env::args().nth(2);
    let h = Harness::new();
    println!("vm_baseline: tree-walker vs bytecode VM (single worker)\n");

    let workloads = [
        trace_workload(&h),
        tgen_workload(&h),
        campaign_workload(&h),
        campaign_fast_workload(&h),
        trace_hash_workload(&h),
    ];

    println!();
    let mut body = String::from("{\n  \"benchmark\": \"vm_baseline\",\n  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        println!(
            "  => {}: tree {:.0} ns/unit, vm {:.0} ns/unit, speedup {:.2}x",
            w.name,
            w.tree_ns,
            w.vm_ns,
            w.speedup()
        );
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"units\": {}, \"tree_ns_per_unit\": {:.0}, \
             \"vm_ns_per_unit\": {:.0}, \"speedup\": {:.2}}}{}\n",
            w.name,
            w.units,
            w.tree_ns,
            w.vm_ns,
            w.speedup(),
            if i + 1 < workloads.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out, &body) {
        eprintln!("vm_baseline: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {out}");

    let mut failed = false;
    let trace = &workloads[0];
    if trace.speedup() < 1.0 {
        eprintln!(
            "vm_baseline: REGRESSION — vm is slower than the tree-walker \
             on the batch-trace workload ({:.2}x)",
            trace.speedup()
        );
        failed = true;
    }
    let campaign = workloads.iter().find(|w| w.name == "campaign").unwrap();
    if campaign.speedup() < 1.3 {
        eprintln!(
            "vm_baseline: REGRESSION — campaign speedup {:.2}x is below \
             the 1.3x floor (monitor-free crash screen + compiled engine)",
            campaign.speedup()
        );
        failed = true;
    }
    if let Some(path) = baseline {
        match committed_speedups(&path) {
            Some(committed) => {
                for (name, want) in committed {
                    let Some(w) = workloads.iter().find(|w| w.name == name) else {
                        eprintln!("vm_baseline: committed workload `{name}` was not measured");
                        failed = true;
                        continue;
                    };
                    let floor = want * 0.8;
                    if w.speedup() < floor {
                        eprintln!(
                            "vm_baseline: REGRESSION — {name} speedup {:.2}x fell below \
                             0.8x the committed {want:.2}x baseline",
                            w.speedup()
                        );
                        failed = true;
                    }
                }
            }
            None => {
                eprintln!("vm_baseline: cannot read committed baseline {path}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
