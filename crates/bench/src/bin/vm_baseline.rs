//! Tree-walker vs bytecode-VM baselines: `vm_baseline [out.json]`.
//!
//! Runs the three workloads the VM was built for — batch tracing,
//! T-GEN case batches, and a mutation campaign — on both execution
//! engines, prints the per-workload speedups, and writes the figures
//! to `BENCH_vm.json` (or the path given as the first argument).
//!
//! Exit status 1 when the VM is slower than the tree-walker on the
//! batch-trace workload — that regression gate is `ci.sh`'s
//! bench-baseline tier.

use gadt::session::{prepare, run_traced_batch, Engine};
use gadt_bench::genprog::{generate, GenConfig};
use gadt_bench::timing::Harness;
use gadt_mutate::campaign::{run_campaign, CampaignConfig, CampaignProgram};
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;
use gadt_pascal::value::Value;
use gadt_tgen::{cases, frames, spec};
use std::process::ExitCode;

struct Workload {
    name: &'static str,
    units: usize,
    tree_ns: f64,
    vm_ns: f64,
}

impl Workload {
    fn speedup(&self) -> f64 {
        self.tree_ns / self.vm_ns
    }
}

/// Batch tracing: the same prepared program, a fan of inputs, both
/// engines through `run_traced_batch`. Single-threaded so the figure is
/// an engine comparison, not a scheduler benchmark.
fn trace_workload(h: &Harness) -> Workload {
    let gp = generate(&GenConfig {
        procs: 10,
        max_calls: 3,
        seed: 11,
    });
    let m = compile(&gp.source).unwrap();
    let inputs: Vec<Vec<Value>> = (0..24).map(|_| Vec::new()).collect();
    let units = inputs.len();

    let tree = prepare(&m).unwrap();
    let t = h.bench("trace_batch/tree", || {
        run_traced_batch(&tree, inputs.clone(), 1).unwrap()
    });
    let vm = prepare(&m).unwrap().with_engine(Engine::Vm);
    let v = h.bench("trace_batch/vm", || {
        run_traced_batch(&vm, inputs.clone(), 1).unwrap()
    });
    Workload {
        name: "trace_batch",
        units,
        tree_ns: t.per_iter.as_nanos() as f64 / units as f64,
        vm_ns: v.per_iter.as_nanos() as f64 / units as f64,
    }
}

/// T-GEN case batches: the arrsum catalogue repeated into a batch big
/// enough to amortize, on one worker thread.
fn tgen_workload(h: &Harness) -> Workload {
    let m = compile(testprogs::SQRTEST).unwrap();
    let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
    let g = frames::generate_frames(&s, Default::default());
    let base = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
    let mut tc = Vec::new();
    for _ in 0..16 {
        tc.extend(base.iter().cloned());
    }
    let oracle = |ins: &[Value], r: &gadt_pascal::interp::ProcRun| cases::arrsum_oracle(ins, r);

    let t = h.bench("tgen_batch/tree", || {
        cases::run_cases_batch_on(Engine::TreeWalker, 1, &m, "arrsum", &tc, &oracle).unwrap()
    });
    let v = h.bench("tgen_batch/vm", || {
        cases::run_cases_batch_on(Engine::Vm, 1, &m, "arrsum", &tc, &oracle).unwrap()
    });
    Workload {
        name: "tgen_batch",
        units: tc.len(),
        tree_ns: t.per_iter.as_nanos() as f64 / tc.len() as f64,
        vm_ns: v.per_iter.as_nanos() as f64 / tc.len() as f64,
    }
}

/// A bounded mutation campaign (golden runs + every mutant's transform
/// → trace → double debug pipeline) on each engine.
fn campaign_workload(h: &Harness) -> Workload {
    let programs = vec![CampaignProgram::new("pqr", testprogs::PQR_FIXED)];
    let units = 12usize;
    let config = |engine| CampaignConfig {
        max_mutants: units,
        threads: 1,
        engine,
        ..CampaignConfig::default()
    };
    let tree_config = config(Engine::TreeWalker);
    let t = h.bench("campaign/tree", || {
        run_campaign(&programs, &tree_config).unwrap()
    });
    let vm_config = config(Engine::Vm);
    let v = h.bench("campaign/vm", || {
        run_campaign(&programs, &vm_config).unwrap()
    });
    Workload {
        name: "campaign",
        units,
        tree_ns: t.per_iter.as_nanos() as f64 / units as f64,
        vm_ns: v.per_iter.as_nanos() as f64 / units as f64,
    }
}

fn main() -> ExitCode {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_vm.json".to_string());
    let h = Harness::new();
    println!("vm_baseline: tree-walker vs bytecode VM (single worker)\n");

    let workloads = [trace_workload(&h), tgen_workload(&h), campaign_workload(&h)];

    println!();
    let mut body = String::from("{\n  \"benchmark\": \"vm_baseline\",\n  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        println!(
            "  => {}: tree {:.0} ns/unit, vm {:.0} ns/unit, speedup {:.2}x",
            w.name,
            w.tree_ns,
            w.vm_ns,
            w.speedup()
        );
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"units\": {}, \"tree_ns_per_unit\": {:.0}, \
             \"vm_ns_per_unit\": {:.0}, \"speedup\": {:.2}}}{}\n",
            w.name,
            w.units,
            w.tree_ns,
            w.vm_ns,
            w.speedup(),
            if i + 1 < workloads.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out, &body) {
        eprintln!("vm_baseline: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {out}");

    let trace = &workloads[0];
    if trace.speedup() < 1.0 {
        eprintln!(
            "vm_baseline: REGRESSION — vm is slower than the tree-walker \
             on the batch-trace workload ({:.2}x)",
            trace.speedup()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
