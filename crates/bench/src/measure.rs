//! Interaction-count measurement: the quantitative backbone of the
//! paper's claim that slicing and testing "greatly reduce the number of
//! interactions" (E8 in DESIGN.md).

use crate::genprog::{generate, mutate, GenConfig};
use gadt::debugger::{DebugConfig, DebugResult, Strategy};
use gadt::oracle::{Answer, ChainOracle, CountingOracle, FnOracle, Oracle, ReferenceOracle};
use gadt::session::{debug, prepare, run_traced};
use gadt_pascal::sema::{compile, Module};
use gadt_trace::{ExecTree, NodeId, NodeKind};

/// Configuration of one debugging-method variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodConfig {
    /// Whether slicing is active (AD+slicing and GADT).
    pub slicing: bool,
    /// Test-database coverage: the probability that a (unit, inputs)
    /// query has a recorded passing test (GADT's test-lookup component).
    /// `0.0` disables the test database entirely.
    pub test_coverage: f64,
    /// Traversal strategy.
    pub strategy: Strategy,
}

/// Named method variants used in the experiment tables.
pub fn methods() -> Vec<(&'static str, MethodConfig)> {
    vec![
        (
            "pure AD",
            MethodConfig {
                slicing: false,
                test_coverage: 0.0,
                strategy: Strategy::TopDown,
            },
        ),
        (
            "AD+slicing",
            MethodConfig {
                slicing: true,
                test_coverage: 0.0,
                strategy: Strategy::TopDown,
            },
        ),
        (
            "GADT (cov 0.5)",
            MethodConfig {
                slicing: true,
                test_coverage: 0.5,
                strategy: Strategy::TopDown,
            },
        ),
        (
            "GADT (cov 0.9)",
            MethodConfig {
                slicing: true,
                test_coverage: 0.9,
                strategy: Strategy::TopDown,
            },
        ),
    ]
}

/// The outcome of one measured session.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Queries answered by the simulated user.
    pub user_queries: usize,
    /// Queries answered by the simulated test database.
    pub test_queries: usize,
    /// Times the slicer pruned the tree.
    pub slices: usize,
    /// Whether the localized unit is the mutated one (or a unit whose
    /// body contains the mutated call — for mutations in `main`, any
    /// report counts).
    pub localized_correctly: bool,
    /// The unit the debugger blamed.
    pub blamed: String,
}

/// A deterministic pseudo-random "is this query covered by a test?"
/// decision, stable in (seed, unit, rendered inputs).
fn covered(seed: u64, unit: &str, ins_render: &str, coverage: f64) -> bool {
    if coverage <= 0.0 {
        return false;
    }
    if coverage >= 1.0 {
        return true;
    }
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    seed.hash(&mut h);
    unit.hash(&mut h);
    ins_render.hash(&mut h);
    let x = (h.finish() % 10_000) as f64 / 10_000.0;
    x < coverage
}

/// Runs one debugging session of `buggy` against `fixed` under `method`
/// and measures interactions.
///
/// The simulated test database answers a query iff (a) the coverage coin
/// lands heads for that (unit, inputs) pair and (b) the reference deems
/// the call *correct* — mirroring §5.3.2, where only a good report lets
/// the debugger skip a unit (a failing report just sends debugging
/// inside, which the user-level answer provides anyway).
///
/// # Errors
/// Propagates compilation or runtime errors of either program.
pub fn measure_session(
    buggy: &Module,
    fixed: &Module,
    expected_unit: &str,
    method: MethodConfig,
    seed: u64,
) -> gadt_pascal::error::Result<Measured> {
    let prepared = prepare(buggy)?;
    let run = run_traced(&prepared, [])?;

    // Count test-db answers via a side channel.
    let test_hits = std::rc::Rc::new(std::cell::Cell::new(0usize));

    let mut chain = ChainOracle::new();
    if method.test_coverage > 0.0 {
        let mut db_reference = ReferenceOracle::new(fixed, [])?;
        let hits = test_hits.clone();
        let coverage = method.test_coverage;
        let fixed_ptr: &Module = fixed;
        chain.push(FnOracle::new(
            "test database",
            move |m: &Module, t: &ExecTree, n: NodeId| {
                let node = t.node(n);
                if !matches!(node.kind, NodeKind::Call { .. }) {
                    return Answer::DontKnow;
                }
                let ins_render: String =
                    node.ins.iter().map(|(k, v)| format!("{k}={v};")).collect();
                if !covered(seed, &node.name, &ins_render, coverage) {
                    return Answer::DontKnow;
                }
                let _ = fixed_ptr;
                match db_reference.judge(m, t, n) {
                    Answer::Correct => {
                        hits.set(hits.get() + 1);
                        Answer::Correct
                    }
                    // Only good reports answer queries (§5.3.2).
                    _ => Answer::DontKnow,
                }
            },
        ));
    }
    chain.push(CountingOracle::new(ReferenceOracle::new(fixed, [])?));

    let outcome = debug(
        &prepared,
        &run,
        &mut chain,
        DebugConfig {
            strategy: method.strategy,
            slicing: method.slicing,
        },
    );

    let (blamed, ok) = match &outcome.result {
        DebugResult::BugLocalized { unit, .. } => {
            let u = unit.clone();
            // A bug planted in pK may be blamed on pK itself or on the
            // loop unit inside it.
            let ok = u == expected_unit
                || u.ends_with(&format!("in {expected_unit}"))
                || expected_unit.is_empty();
            (u, ok)
        }
        DebugResult::NoBugFound => (String::new(), false),
    };

    Ok(Measured {
        user_queries: outcome.queries_from("reference"),
        test_queries: test_hits.get(),
        slices: outcome.slices_taken,
        localized_correctly: ok,
        blamed,
    })
}

/// One row of the interaction-sweep experiment: a generated program, a
/// planted mutation, and the per-method interaction counts.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Generation seed.
    pub seed: u64,
    /// Number of generated procedures.
    pub procs: usize,
    /// Execution-tree size of the buggy run.
    pub tree_size: usize,
    /// The mutated procedure.
    pub mutated: String,
    /// `(method name, user queries, localized correctly)` per method.
    pub counts: Vec<(&'static str, usize, bool)>,
}

/// Runs the interaction sweep over `n_programs` generated programs.
pub fn interaction_sweep(n_programs: usize, procs: usize) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for seed in 0..n_programs as u64 * 3 {
        if rows.len() >= n_programs {
            break;
        }
        let cfg = GenConfig {
            procs,
            max_calls: 2,
            seed,
        };
        let gen = generate(&cfg);
        let Some(mutation) = mutate(&gen, seed) else {
            continue;
        };
        let Ok(fixed) = compile(&gen.source) else {
            continue;
        };
        let Ok(buggy) = compile(&mutation.source) else {
            continue;
        };
        // The mutant must actually change observable behaviour.
        let out_fixed = gadt_pascal::interp::Interpreter::new(&fixed).run();
        let out_buggy = gadt_pascal::interp::Interpreter::new(&buggy).run();
        let (Ok(of), Ok(ob)) = (out_fixed, out_buggy) else {
            continue;
        };
        if of.output_text() == ob.output_text() {
            continue; // equivalent mutant
        }

        let prepared = match prepare(&buggy) {
            Ok(p) => p,
            Err(_) => continue,
        };
        let run = match run_traced(&prepared, []) {
            Ok(r) => r,
            Err(_) => continue,
        };
        let tree_size = run.tree.len();

        let mut counts = Vec::new();
        let mut all_ok = true;
        for (name, method) in methods() {
            match measure_session(&buggy, &fixed, &mutation.in_proc, method, seed) {
                Ok(m) => counts.push((name, m.user_queries, m.localized_correctly)),
                Err(_) => {
                    all_ok = false;
                    break;
                }
            }
        }
        if !all_ok {
            continue;
        }
        rows.push(SweepRow {
            seed,
            procs,
            tree_size,
            mutated: mutation.in_proc,
            counts,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genprog::{generate, mutate, GenConfig};

    #[test]
    fn generated_programs_compile_and_run() {
        for seed in 0..20 {
            let g = generate(&GenConfig {
                procs: 6,
                max_calls: 2,
                seed,
            });
            let m = compile(&g.source).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", g.source));
            gadt_pascal::interp::Interpreter::new(&m)
                .run()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", g.source));
        }
    }

    #[test]
    fn mutants_compile_and_name_a_real_proc() {
        for seed in 0..20 {
            let g = generate(&GenConfig {
                procs: 6,
                max_calls: 2,
                seed,
            });
            if let Some(m) = mutate(&g, seed) {
                compile(&m.source).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", m.source));
                assert!(g.proc_names.contains(&m.in_proc), "{}", m.in_proc);
            }
        }
    }

    #[test]
    fn sweep_shows_the_paper_shape() {
        // GADT ≤ AD+slicing ≤ pure AD on average user interactions, and
        // all methods localize the planted bug.
        let rows = interaction_sweep(5, 7);
        assert!(rows.len() >= 3, "need enough valid mutants");
        let avg = |idx: usize| -> f64 {
            rows.iter().map(|r| r.counts[idx].1 as f64).sum::<f64>() / rows.len() as f64
        };
        let pure = avg(0);
        let slicing = avg(1);
        let gadt90 = avg(3);
        assert!(
            slicing <= pure,
            "slicing must not increase interactions: {slicing} vs {pure}"
        );
        assert!(
            gadt90 <= slicing + 1e-9,
            "test coverage must not increase interactions: {gadt90} vs {slicing}"
        );
        for r in &rows {
            for (name, _, ok) in &r.counts {
                assert!(ok, "{name} mislocalized on seed {}: {:?}", r.seed, r);
            }
        }
    }

    #[test]
    fn coverage_decision_is_deterministic() {
        let a = covered(7, "p3", "a=1;b=2;", 0.5);
        let b = covered(7, "p3", "a=1;b=2;", 0.5);
        assert_eq!(a, b);
        assert!(covered(7, "p3", "x", 1.0));
        assert!(!covered(7, "p3", "x", 0.0));
    }
}

/// Strategy ablation row: per-strategy user-query counts on one mutant.
#[derive(Debug, Clone)]
pub struct StrategyRow {
    /// Generation seed.
    pub seed: u64,
    /// Execution-tree size.
    pub tree_size: usize,
    /// User queries per strategy, aligned with [`Strategy::ALL`]
    /// (top-down, divide-and-query, dq-opt, knowledge-weighted), all
    /// without slicing.
    pub queries: Vec<usize>,
    /// Whether every strategy localized the planted bug.
    pub both_correct: bool,
}

/// Compares every built-in traversal strategy on the mutation workload
/// (an ablation the paper's §7 motivates: "generally it doesn't matter
/// which traversal method is used" for correctness — but query counts
/// differ).
pub fn strategy_ablation(n_programs: usize, procs: usize) -> Vec<StrategyRow> {
    let mut rows = Vec::new();
    for seed in 0..n_programs as u64 * 3 {
        if rows.len() >= n_programs {
            break;
        }
        let gen = generate(&GenConfig {
            procs,
            max_calls: 2,
            seed,
        });
        let Some(mutation) = mutate(&gen, seed) else {
            continue;
        };
        let (Ok(fixed), Ok(buggy)) = (compile(&gen.source), compile(&mutation.source)) else {
            continue;
        };
        let (Ok(of), Ok(ob)) = (
            gadt_pascal::interp::Interpreter::new(&fixed).run(),
            gadt_pascal::interp::Interpreter::new(&buggy).run(),
        ) else {
            continue;
        };
        if of.output_text() == ob.output_text() {
            continue;
        }
        let mut q = Vec::with_capacity(Strategy::ALL.len());
        let mut ok = true;
        let mut tree_size = 0;
        for strategy in Strategy::ALL {
            let Ok(m) = measure_session(
                &buggy,
                &fixed,
                &mutation.in_proc,
                MethodConfig {
                    slicing: false,
                    test_coverage: 0.0,
                    strategy,
                },
                seed,
            ) else {
                ok = false;
                break;
            };
            q.push(m.user_queries);
            ok &= m.localized_correctly;
        }
        if !ok {
            continue;
        }
        if let Ok(p) = prepare(&buggy) {
            if let Ok(r) = run_traced(&p, []) {
                tree_size = r.tree.len();
            }
        }
        rows.push(StrategyRow {
            seed,
            tree_size,
            queries: q,
            both_correct: ok,
        });
    }
    rows
}

#[cfg(test)]
mod strategy_tests {
    use super::*;

    #[test]
    fn strategies_agree_on_localization() {
        let rows = strategy_ablation(4, 8);
        assert!(rows.len() >= 2);
        for r in &rows {
            assert!(r.both_correct, "seed {}: {:?}", r.seed, r);
        }
    }
}
