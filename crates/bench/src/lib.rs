//! # gadt-bench
//!
//! Benchmark and figure-regeneration harness for the GADT reproduction.
//!
//! * [`genprog`] — deterministic random-program generation and
//!   mutation-based bug planting (the workload for experiments E8–E10);
//! * [`measure`] — interaction-count measurement across method variants
//!   (pure algorithmic debugging, AD+slicing, full GADT with simulated
//!   test coverage);
//! * the `repro` binary (`cargo run -p gadt-bench --bin repro`)
//!   regenerates every figure and quantitative claim of the paper —
//!   see DESIGN.md's experiment index and EXPERIMENTS.md for results;
//! * Criterion benches under `benches/` time the subsystems.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod genprog;
pub mod measure;
