//! # gadt-bench
//!
//! Benchmark and figure-regeneration harness for the GADT reproduction.
//!
//! * [`genprog`] — deterministic random-program generation and
//!   mutation-based bug planting (the workload for experiments E8–E10);
//! * [`measure`] — interaction-count measurement across method variants
//!   (pure algorithmic debugging, AD+slicing, full GADT with simulated
//!   test coverage);
//! * [`timing`] — a std-only benchmark harness (the offline build
//!   environment cannot fetch Criterion);
//! * the `repro` binary (`cargo run -p gadt-bench --bin repro`)
//!   regenerates every figure and quantitative claim of the paper —
//!   see DESIGN.md's experiment index and EXPERIMENTS.md for results;
//! * benches under `benches/` (all `harness = false`) time the
//!   subsystems, including the sequential-vs-parallel
//!   `batch_throughput` comparison.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod genprog;
pub mod measure;
pub mod timing;
