//! Sequential-vs-parallel batch throughput (the `BatchExecutor`
//! speedup landing in the perf trajectory): T-GEN case runs through
//! `run_cases` vs `run_cases_batch`, multi-criterion dynamic slicing
//! through a per-criterion loop vs `dynamic_slice_batch`, and batch
//! tracing through per-input `run_traced` vs `run_traced_batch`.
//!
//! Reports cases/sec per variant and the parallel speedup. On a
//! single-core host the parallel figures approximate the sequential
//! ones (scheduler overhead aside); the ≥2× target needs 4+ cores.

use gadt::session::{prepare, run_traced, run_traced_batch};
use gadt_analysis::dyntrace::record_trace;
use gadt_analysis::slice_batch::dynamic_slice_batch;
use gadt_analysis::slice_dynamic::dynamic_slice_output;
use gadt_bench::genprog::{generate, GenConfig};
use gadt_bench::timing::Harness;
use gadt_pascal::cfg::lower;
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;
use gadt_pascal::value::Value;
use gadt_tgen::{cases, frames, spec};

fn speedup_line(what: &str, seq_per_iter: f64, par_per_iter: f64, units: f64) {
    let seq_rate = units / seq_per_iter;
    let par_rate = units / par_per_iter;
    println!(
        "  => {what}: {seq_rate:.0} units/s sequential, {par_rate:.0} units/s parallel, speedup {:.2}x",
        seq_per_iter / par_per_iter
    );
}

fn main() {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("batch_throughput on {threads} worker thread(s)\n");
    let h = Harness::new();

    // --- T-GEN case runs ------------------------------------------------
    let m = compile(testprogs::SQRTEST).unwrap();
    let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
    let g = frames::generate_frames(&s, Default::default());
    let base = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
    // Repeat the frame catalogue so each batch is big enough to share.
    let mut tc = Vec::new();
    for _ in 0..16 {
        tc.extend(base.iter().cloned());
    }
    let oracle = |ins: &[Value], r: &gadt_pascal::interp::ProcRun| cases::arrsum_oracle(ins, r);
    let seq = h.bench(&format!("tgen/run_cases/seq/{}", tc.len()), || {
        cases::run_cases(&m, "arrsum", &tc, &oracle).unwrap()
    });
    let par = h.bench(&format!("tgen/run_cases/par{threads}/{}", tc.len()), || {
        cases::run_cases_batch(threads, &m, "arrsum", &tc, &oracle).unwrap()
    });
    speedup_line(
        "T-GEN cases",
        seq.per_iter.as_secs_f64(),
        par.per_iter.as_secs_f64(),
        tc.len() as f64,
    );

    // --- Multi-criterion slicing ---------------------------------------
    let gp = generate(&GenConfig {
        procs: 12,
        max_calls: 2,
        seed: 1,
    });
    let gm = compile(&gp.source).unwrap();
    let cfg = lower(&gm);
    let trace = record_trace(&gm, &cfg, []).unwrap();
    let criteria: Vec<(u64, usize)> = trace
        .calls
        .iter()
        .flat_map(|c| (0..c.outs.len()).map(move |k| (c.id, k)))
        .collect();
    let seq = h.bench(
        &format!("slice/per_criterion/seq/{}", criteria.len()),
        || {
            criteria
                .iter()
                .map(|&(c, k)| dynamic_slice_output(&gm, &trace, c, k))
                .collect::<Vec<_>>()
        },
    );
    let par = h.bench(
        &format!("slice/batch/par{threads}/{}", criteria.len()),
        || dynamic_slice_batch(&gm, &trace, &criteria, threads),
    );
    speedup_line(
        "slice criteria",
        seq.per_iter.as_secs_f64(),
        par.per_iter.as_secs_f64(),
        criteria.len() as f64,
    );

    // --- Batch tracing --------------------------------------------------
    let src = "program t; var n, i, s: integer;
         procedure step(x: integer; var acc: integer);
         begin acc := acc + x * x end;
         begin read(n); s := 0; for i := 1 to n do step(i, s); writeln(s) end.";
    let tm = compile(src).unwrap();
    let prepared = prepare(&tm).unwrap();
    let inputs: Vec<Vec<Value>> = (1..=32).map(|n| vec![Value::Int(n * 8)]).collect();
    let seq = h.bench(&format!("session/run_traced/seq/{}", inputs.len()), || {
        inputs
            .iter()
            .map(|i| run_traced(&prepared, i.clone()).unwrap())
            .collect::<Vec<_>>()
    });
    let par = h.bench(
        &format!("session/run_traced_batch/par{threads}/{}", inputs.len()),
        || run_traced_batch(&prepared, inputs.clone(), threads).unwrap(),
    );
    speedup_line(
        "traced inputs",
        seq.per_iter.as_secs_f64(),
        par.per_iter.as_secs_f64(),
        inputs.len() as f64,
    );
}
