//! Benchmarks for static and dynamic slicing (experiments E2, E5, E6,
//! E10): how fast the slicers compute the paper's Figure 2/8/9 slices and
//! how slicing cost scales with program size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gadt_analysis::dyntrace::record_trace;
use gadt_analysis::slice_dynamic::dynamic_slice_output;
use gadt_analysis::slice_static::{static_slice, SliceContext, SliceCriterion};
use gadt_bench::genprog::{generate, GenConfig};
use gadt_pascal::cfg::lower;
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;

fn bench_static_figure2(c: &mut Criterion) {
    let m = compile(testprogs::FIGURE2).unwrap();
    let cfg = lower(&m);
    c.bench_function("static_slice/figure2_mul", |b| {
        b.iter(|| {
            let cx = SliceContext::new(&m, &cfg);
            let crit = SliceCriterion::at_program_end(&m, "mul").unwrap();
            std::hint::black_box(static_slice(&cx, &crit))
        })
    });
}

fn bench_static_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_slice/generated");
    for procs in [5usize, 10, 20, 40] {
        let gp = generate(&GenConfig {
            procs,
            max_calls: 2,
            seed: 1,
        });
        let m = compile(&gp.source).unwrap();
        let cfg = lower(&m);
        group.bench_with_input(BenchmarkId::from_parameter(procs), &procs, |b, _| {
            b.iter(|| {
                let cx = SliceContext::new(&m, &cfg);
                let crit = SliceCriterion::at_program_end(&m, "r1").unwrap();
                std::hint::black_box(static_slice(&cx, &crit))
            })
        });
    }
    group.finish();
}

fn bench_dynamic_sqrtest(c: &mut Criterion) {
    let m = compile(testprogs::SQRTEST).unwrap();
    let cfg = lower(&m);
    let trace = record_trace(&m, &cfg, []).unwrap();
    let computs = trace
        .calls
        .iter()
        .find(|cl| m.proc(cl.proc).name == "computs")
        .unwrap()
        .id;
    c.bench_function("dynamic_slice/figure8_computs_r1", |b| {
        b.iter(|| std::hint::black_box(dynamic_slice_output(&m, &trace, computs, 0)))
    });
    let ps = trace
        .calls
        .iter()
        .find(|cl| m.proc(cl.proc).name == "partialsums")
        .unwrap()
        .id;
    c.bench_function("dynamic_slice/figure9_partialsums_s2", |b| {
        b.iter(|| std::hint::black_box(dynamic_slice_output(&m, &trace, ps, 1)))
    });
}

fn bench_dynamic_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_slice/generated");
    for procs in [5usize, 10, 20] {
        let gp = generate(&GenConfig {
            procs,
            max_calls: 2,
            seed: 1,
        });
        let m = compile(&gp.source).unwrap();
        let cfg = lower(&m);
        let trace = record_trace(&m, &cfg, []).unwrap();
        let top = trace.calls[1].id;
        group.bench_with_input(BenchmarkId::from_parameter(procs), &procs, |b, _| {
            b.iter(|| std::hint::black_box(dynamic_slice_output(&m, &trace, top, 0)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_static_figure2,
    bench_static_scaling,
    bench_dynamic_sqrtest,
    bench_dynamic_scaling
);
criterion_main!(benches);
