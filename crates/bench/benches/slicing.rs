//! Benchmarks for static and dynamic slicing (experiments E2, E5, E6,
//! E10): how fast the slicers compute the paper's Figure 2/8/9 slices and
//! how slicing cost scales with program size.

use gadt_analysis::dyntrace::record_trace;
use gadt_analysis::slice_dynamic::dynamic_slice_output;
use gadt_analysis::slice_static::{static_slice, SliceContext, SliceCriterion};
use gadt_bench::genprog::{generate, GenConfig};
use gadt_bench::timing::Harness;
use gadt_pascal::cfg::lower;
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;

fn main() {
    let h = Harness::new();

    let m = compile(testprogs::FIGURE2).unwrap();
    let cfg = lower(&m);
    h.bench("static_slice/figure2_mul", || {
        let cx = SliceContext::new(&m, &cfg);
        let crit = SliceCriterion::at_program_end(&m, "mul").unwrap();
        static_slice(&cx, &crit)
    });

    for procs in [5usize, 10, 20, 40] {
        let gp = generate(&GenConfig {
            procs,
            max_calls: 2,
            seed: 1,
        });
        let m = compile(&gp.source).unwrap();
        let cfg = lower(&m);
        h.bench(&format!("static_slice/generated/{procs}"), || {
            let cx = SliceContext::new(&m, &cfg);
            let crit = SliceCriterion::at_program_end(&m, "r1").unwrap();
            static_slice(&cx, &crit)
        });
    }

    let m = compile(testprogs::SQRTEST).unwrap();
    let cfg = lower(&m);
    let trace = record_trace(&m, &cfg, []).unwrap();
    let computs = trace
        .calls
        .iter()
        .find(|cl| m.proc(cl.proc).name == "computs")
        .unwrap()
        .id;
    h.bench("dynamic_slice/figure8_computs_r1", || {
        dynamic_slice_output(&m, &trace, computs, 0)
    });
    let ps = trace
        .calls
        .iter()
        .find(|cl| m.proc(cl.proc).name == "partialsums")
        .unwrap()
        .id;
    h.bench("dynamic_slice/figure9_partialsums_s2", || {
        dynamic_slice_output(&m, &trace, ps, 1)
    });

    for procs in [5usize, 10, 20] {
        let gp = generate(&GenConfig {
            procs,
            max_calls: 2,
            seed: 1,
        });
        let m = compile(&gp.source).unwrap();
        let cfg = lower(&m);
        let trace = record_trace(&m, &cfg, []).unwrap();
        let top = trace.calls[1].id;
        h.bench(&format!("dynamic_slice/generated/{procs}"), || {
            dynamic_slice_output(&m, &trace, top, 0)
        });
    }
}
