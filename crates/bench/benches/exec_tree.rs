//! Benchmarks for the tracing phase (experiment E4/E10): building the
//! execution tree and the dynamic dependence trace, and how both scale
//! with the number of executed steps (§9: "the size of the execution tree
//! … is strongly application dependent").

use gadt_analysis::dyntrace::record_trace;
use gadt_bench::timing::Harness;
use gadt_pascal::cfg::lower;
use gadt_pascal::interp::Interpreter;
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;
use gadt_pascal::value::Value;
use gadt_trace::build_tree;

const SCALED: &str = "
program scaled;
var n, i, s: integer;
procedure step(x: integer; var acc: integer);
begin acc := acc + x * x end;
begin
  read(n);
  s := 0;
  for i := 1 to n do step(i, s);
  writeln(s);
end.";

fn main() {
    let h = Harness::new();
    let m = compile(SCALED).unwrap();
    let cfg = lower(&m);

    for n in [10i64, 100, 1000] {
        h.bench(&format!("interp/plain_run/{n}"), || {
            let mut i = Interpreter::new(&m);
            i.push_input(Value::Int(n));
            i.run().unwrap()
        });
    }

    for n in [10i64, 100, 1000] {
        h.bench(&format!("trace/record_trace/{n}"), || {
            record_trace(&m, &cfg, [Value::Int(n)]).unwrap()
        });
    }

    for n in [10i64, 100, 1000] {
        let trace = record_trace(&m, &cfg, [Value::Int(n)]).unwrap();
        h.bench(&format!("trace/build_tree/{n}"), || build_tree(&m, &trace));
    }

    let m = compile(testprogs::SQRTEST).unwrap();
    let cfg = lower(&m);
    h.bench("trace/figure7_tree", || {
        let trace = record_trace(&m, &cfg, []).unwrap();
        build_tree(&m, &trace)
    });
}
