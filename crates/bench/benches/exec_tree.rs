//! Benchmarks for the tracing phase (experiment E4/E10): building the
//! execution tree and the dynamic dependence trace, and how both scale
//! with the number of executed steps (§9: "the size of the execution tree
//! … is strongly application dependent").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gadt_analysis::dyntrace::record_trace;
use gadt_pascal::cfg::lower;
use gadt_pascal::interp::Interpreter;
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;
use gadt_pascal::value::Value;
use gadt_trace::build_tree;

const SCALED: &str = "
program scaled;
var n, i, s: integer;
procedure step(x: integer; var acc: integer);
begin acc := acc + x * x end;
begin
  read(n);
  s := 0;
  for i := 1 to n do step(i, s);
  writeln(s);
end.";

fn bench_plain_run(c: &mut Criterion) {
    let m = compile(SCALED).unwrap();
    let mut group = c.benchmark_group("interp/plain_run");
    for n in [10i64, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut i = Interpreter::new(&m);
                i.push_input(Value::Int(n));
                std::hint::black_box(i.run().unwrap())
            })
        });
    }
    group.finish();
}

fn bench_traced_run(c: &mut Criterion) {
    let m = compile(SCALED).unwrap();
    let cfg = lower(&m);
    let mut group = c.benchmark_group("trace/record_trace");
    for n in [10i64, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(record_trace(&m, &cfg, [Value::Int(n)]).unwrap()))
        });
    }
    group.finish();
}

fn bench_tree_build(c: &mut Criterion) {
    let m = compile(SCALED).unwrap();
    let cfg = lower(&m);
    let mut group = c.benchmark_group("trace/build_tree");
    for n in [10i64, 100, 1000] {
        let trace = record_trace(&m, &cfg, [Value::Int(n)]).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(build_tree(&m, &trace)))
        });
    }
    group.finish();
}

fn bench_sqrtest_tree(c: &mut Criterion) {
    let m = compile(testprogs::SQRTEST).unwrap();
    let cfg = lower(&m);
    c.bench_function("trace/figure7_tree", |b| {
        b.iter(|| {
            let trace = record_trace(&m, &cfg, []).unwrap();
            std::hint::black_box(build_tree(&m, &trace))
        })
    });
}

criterion_group!(
    benches,
    bench_plain_run,
    bench_traced_run,
    bench_tree_build,
    bench_sqrtest_tree
);
criterion_main!(benches);
