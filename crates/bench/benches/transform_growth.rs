//! Benchmarks for the transformation phase (experiments E9/E11): the
//! full §6 pipeline on the paper's examples and generated programs, plus
//! the side-effect analysis feeding it.

use gadt_analysis::callgraph::CallGraph;
use gadt_analysis::effects::Effects;
use gadt_bench::genprog::{generate, GenConfig};
use gadt_bench::timing::Harness;
use gadt_pascal::cfg::lower;
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;
use gadt_transform::transform;

fn main() {
    let h = Harness::new();

    let m = compile(testprogs::SQRTEST).unwrap();
    let cfg = lower(&m);
    h.bench("analysis/effects_sqrtest", || {
        let cg = CallGraph::build(&m, &cfg);
        Effects::compute(&m, &cfg, &cg)
    });

    for (name, src) in [
        ("globals", testprogs::SECTION6_GLOBALS),
        ("goto", testprogs::SECTION6_GOTO),
        ("loop_goto", testprogs::SECTION6_LOOP_GOTO),
        ("sqrtest", testprogs::SQRTEST),
    ] {
        let m = compile(src).unwrap();
        h.bench(&format!("transform/fixtures/{name}"), || {
            transform(&m).unwrap()
        });
    }

    for procs in [5usize, 10, 20] {
        let gp = generate(&GenConfig {
            procs,
            max_calls: 2,
            seed: 1,
        });
        let m = compile(&gp.source).unwrap();
        h.bench(&format!("transform/generated/{procs}"), || {
            transform(&m).unwrap()
        });
    }
}
