//! Benchmarks for the transformation phase (experiments E9/E11): the
//! full §6 pipeline on the paper's examples and generated programs, plus
//! the side-effect analysis feeding it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gadt_analysis::callgraph::CallGraph;
use gadt_analysis::effects::Effects;
use gadt_bench::genprog::{generate, GenConfig};
use gadt_pascal::cfg::lower;
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;
use gadt_transform::transform;

fn bench_effects(c: &mut Criterion) {
    let m = compile(testprogs::SQRTEST).unwrap();
    let cfg = lower(&m);
    c.bench_function("analysis/effects_sqrtest", |b| {
        b.iter(|| {
            let cg = CallGraph::build(&m, &cfg);
            std::hint::black_box(Effects::compute(&m, &cfg, &cg))
        })
    });
}

fn bench_transform_fixtures(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform/fixtures");
    for (name, src) in [
        ("globals", testprogs::SECTION6_GLOBALS),
        ("goto", testprogs::SECTION6_GOTO),
        ("loop_goto", testprogs::SECTION6_LOOP_GOTO),
        ("sqrtest", testprogs::SQRTEST),
    ] {
        let m = compile(src).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| std::hint::black_box(transform(&m).unwrap()))
        });
    }
    group.finish();
}

fn bench_transform_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform/generated");
    for procs in [5usize, 10, 20] {
        let gp = generate(&GenConfig {
            procs,
            max_calls: 2,
            seed: 1,
        });
        let m = compile(&gp.source).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(procs), &procs, |b, _| {
            b.iter(|| std::hint::black_box(transform(&m).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_effects,
    bench_transform_fixtures,
    bench_transform_scaling
);
criterion_main!(benches);
