//! Benchmarks for complete debugging sessions (experiments E3, E7, E8):
//! the paper's §8 session end-to-end and the per-method cost on generated
//! programs.

use gadt::debugger::DebugConfig;
use gadt::oracle::{ChainOracle, CountingOracle, ReferenceOracle};
use gadt::session::{debug, prepare, run_traced};
use gadt::testlookup::TestLookup;
use gadt_bench::genprog::{generate, mutate, GenConfig};
use gadt_bench::measure::{measure_session, MethodConfig};
use gadt_bench::timing::Harness;
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;
use gadt_tgen::{cases, frames, spec};

fn main() {
    let h = Harness::new();

    let buggy = compile(testprogs::SQRTEST).unwrap();
    let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
    h.bench("session/section8_full_gadt", || {
        let prepared = prepare(&buggy).unwrap();
        let run = run_traced(&prepared, []).unwrap();
        let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
        let g = frames::generate_frames(&s, Default::default());
        let tc = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
        let db = cases::run_cases(&buggy, "arrsum", &tc, &|ins, r| {
            cases::arrsum_oracle(ins, r)
        })
        .unwrap();
        let mut lookup = TestLookup::new();
        lookup.register("arrsum", db, Box::new(cases::arrsum_frame_selector));
        let mut chain = ChainOracle::new();
        chain.push(lookup);
        chain.push(CountingOracle::new(
            ReferenceOracle::new(&fixed, []).unwrap(),
        ));
        debug(&prepared, &run, &mut chain, DebugConfig::default())
    });

    // Pick the first seed with a viable (compiling, mutable) program.
    let (gp, mutation) = (0..50u64)
        .find_map(|seed| {
            let gp = generate(&GenConfig {
                procs: 10,
                max_calls: 2,
                seed,
            });
            let m = mutate(&gp, seed)?;
            (compile(&gp.source).is_ok() && compile(&m.source).is_ok()).then_some((gp, m))
        })
        .expect("a mutable generated program");
    let fixed = compile(&gp.source).unwrap();
    let buggy = compile(&mutation.source).unwrap();
    for (name, slicing, coverage) in [
        ("pure_ad", false, 0.0),
        ("ad_slicing", true, 0.0),
        ("gadt", true, 0.9),
    ] {
        h.bench(&format!("session/methods/{name}"), || {
            measure_session(
                &buggy,
                &fixed,
                &mutation.in_proc,
                MethodConfig {
                    slicing,
                    test_coverage: coverage,
                    strategy: Default::default(),
                },
                3,
            )
            .unwrap()
        });
    }
}
