//! Mutation-localization campaign benchmark: campaign throughput plus
//! the headline conformance metrics (exact-unit accuracy and mean
//! questions saved by slicing) reported as first-class numbers, so a
//! regression in localization quality is as visible as one in speed.

use gadt_bench::timing::Harness;
use gadt_mutate::campaign::{run_campaign, CampaignConfig, CampaignProgram};
use gadt_pascal::testprogs;

fn campaign_programs() -> Vec<CampaignProgram> {
    vec![
        CampaignProgram::new("sqrtest", testprogs::SQRTEST_FIXED),
        CampaignProgram::new("pqr", testprogs::PQR_FIXED),
        CampaignProgram::new("multichain", testprogs::MULTICHAIN),
    ]
}

fn main() {
    let h = Harness::new();
    let programs = campaign_programs();

    let smoke = CampaignConfig {
        seed: 2026,
        max_mutants: 25,
        threads: 1,
        ..CampaignConfig::default()
    };
    h.bench("localization/smoke_campaign_25", || {
        run_campaign(&programs, &smoke).unwrap()
    });

    let full = CampaignConfig {
        seed: 2026,
        max_mutants: 0,
        threads: 0,
        ..CampaignConfig::default()
    };
    h.bench("localization/full_campaign_parallel", || {
        run_campaign(&programs, &full).unwrap()
    });

    let summary = run_campaign(&programs, &full).unwrap();
    println!();
    println!(
        "campaign mutants                             {:>11}  ({} stillborn, {} crashed, {} equivalent, {} masked)",
        summary.total(),
        summary.stillborn(),
        summary.crashed(),
        summary.equivalent(),
        summary.masked()
    );
    if let Some(acc) = summary.accuracy() {
        println!(
            "exact-unit accuracy                          {:>11.1}%  ({}/{} localized)",
            acc * 100.0,
            summary.exact(),
            summary.localized()
        );
    }
    if let (Some(with), Some(without)) = (
        summary.mean_questions_with_slicing(),
        summary.mean_questions_without_slicing(),
    ) {
        println!(
            "mean questions with / without slicing        {with:>6.2} / {without:.2}  (saved {:.2})",
            without - with
        );
    }
    println!(
        "mutants with strictly fewer questions        {:>11}  (of {} localized)",
        summary.strictly_fewer(),
        summary.localized()
    );
}
