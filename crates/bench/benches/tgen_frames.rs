//! Benchmarks for T-GEN (experiment E1): spec parsing, frame generation
//! (Figure 1 and synthetic larger specs), and test-case execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;
use gadt_tgen::{cases, frames, spec};
use std::fmt::Write as _;

fn bench_parse_spec(c: &mut Criterion) {
    c.bench_function("tgen/parse_figure1", |b| {
        b.iter(|| std::hint::black_box(spec::parse_spec(spec::ARRSUM_SPEC).unwrap()))
    });
}

fn bench_generate_figure1(c: &mut Criterion) {
    let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
    c.bench_function("tgen/frames_figure1", |b| {
        b.iter(|| std::hint::black_box(frames::generate_frames(&s, Default::default())))
    });
}

/// Synthetic spec with `cats` categories × `chs` choices each.
fn synthetic_spec(cats: usize, chs: usize) -> String {
    let mut src = String::from("test synth;\n");
    for c in 0..cats {
        let _ = writeln!(src, "category c{c};");
        for ch in 0..chs {
            let _ = writeln!(src, "  ch{c}_{ch} : ;");
        }
    }
    src
}

fn bench_generate_synthetic(c: &mut Criterion) {
    let mut group = c.benchmark_group("tgen/frames_synthetic");
    for (cats, chs) in [(3usize, 3usize), (4, 4), (5, 4)] {
        let s = spec::parse_spec(&synthetic_spec(cats, chs)).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{cats}x{chs}")),
            &(cats, chs),
            |b, _| b.iter(|| std::hint::black_box(frames::generate_frames(&s, Default::default()))),
        );
    }
    group.finish();
}

fn bench_run_cases(c: &mut Criterion) {
    let m = compile(testprogs::SQRTEST).unwrap();
    let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
    let g = frames::generate_frames(&s, Default::default());
    let tc = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
    c.bench_function("tgen/run_cases_arrsum", |b| {
        b.iter(|| {
            std::hint::black_box(
                cases::run_cases(&m, "arrsum", &tc, &|ins, r| cases::arrsum_oracle(ins, r))
                    .unwrap(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_parse_spec,
    bench_generate_figure1,
    bench_generate_synthetic,
    bench_run_cases
);
criterion_main!(benches);
