//! Benchmarks for T-GEN (experiment E1): spec parsing, frame generation
//! (Figure 1 and synthetic larger specs), and test-case execution.

use gadt_bench::timing::Harness;
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;
use gadt_tgen::{cases, frames, spec};
use std::fmt::Write as _;

/// Synthetic spec with `cats` categories × `chs` choices each.
fn synthetic_spec(cats: usize, chs: usize) -> String {
    let mut src = String::from("test synth;\n");
    for c in 0..cats {
        let _ = writeln!(src, "category c{c};");
        for ch in 0..chs {
            let _ = writeln!(src, "  ch{c}_{ch} : ;");
        }
    }
    src
}

fn main() {
    let h = Harness::new();

    h.bench("tgen/parse_figure1", || {
        spec::parse_spec(spec::ARRSUM_SPEC).unwrap()
    });

    let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
    h.bench("tgen/frames_figure1", || {
        frames::generate_frames(&s, Default::default())
    });

    for (cats, chs) in [(3usize, 3usize), (4, 4), (5, 4)] {
        let s = spec::parse_spec(&synthetic_spec(cats, chs)).unwrap();
        h.bench(&format!("tgen/frames_synthetic/{cats}x{chs}"), || {
            frames::generate_frames(&s, Default::default())
        });
    }

    let m = compile(testprogs::SQRTEST).unwrap();
    let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
    let g = frames::generate_frames(&s, Default::default());
    let tc = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
    h.bench("tgen/run_cases_arrsum", || {
        cases::run_cases(&m, "arrsum", &tc, &|ins, r| cases::arrsum_oracle(ins, r)).unwrap()
    });
}
