//! The unified pipeline error type.
//!
//! Every front-end stage reports a [`gadt_pascal::error::Diagnostic`];
//! the mutation harness historically reported bare strings. [`Error`]
//! folds both into one type that records *which pipeline phase* failed
//! (the [`Error::phase`] accessor) and keeps the originating diagnostic
//! reachable through [`std::error::Error::source`], so callers can both
//! route on the phase and drill down to the span.

use gadt_pascal::error::{Diagnostic, Stage};
use std::fmt;

/// The pipeline phase an error belongs to (Figure 3's stages plus the
/// harness layers around them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Lexing, parsing, or semantic analysis of the subject program.
    Compile,
    /// The §5.1/§6 program transformation.
    Transform,
    /// Traced execution of the transformed program.
    Trace,
    /// Bug localization (Phase III).
    Debug,
    /// Test-case generation or execution (T-GEN).
    Testing,
    /// The mutation campaign harness.
    Campaign,
    /// The persistent knowledge store (`gadt-store`).
    Store,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Compile => "compile",
            Phase::Transform => "transform",
            Phase::Trace => "trace",
            Phase::Debug => "debug",
            Phase::Testing => "testing",
            Phase::Campaign => "campaign",
            Phase::Store => "store",
        };
        write!(f, "{s}")
    }
}

/// A pipeline error: a phase tag, a message, and (when the failure came
/// from the front end or interpreter) the source [`Diagnostic`].
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    phase: Phase,
    message: String,
    diagnostic: Option<Diagnostic>,
}

impl Error {
    /// Creates an error in a phase from a bare message.
    pub fn new(phase: Phase, message: impl Into<String>) -> Self {
        Error {
            phase,
            message: message.into(),
            diagnostic: None,
        }
    }

    /// Wraps a diagnostic, attributing it to `phase` (overriding the
    /// stage-derived default of [`Error::from`]).
    pub fn from_diagnostic(phase: Phase, diagnostic: Diagnostic) -> Self {
        Error {
            phase,
            message: diagnostic.to_string(),
            diagnostic: Some(diagnostic),
        }
    }

    /// Adds leading context to the message, keeping phase and source:
    /// `err.context("mutant add/3")` renders as
    /// `mutant add/3: <original message>`.
    #[must_use]
    pub fn context(mut self, what: impl fmt::Display) -> Self {
        self.message = format!("{what}: {}", self.message);
        self
    }

    /// The phase that failed.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The human-readable message (context prefixes included).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The originating front-end diagnostic, when there is one.
    pub fn diagnostic(&self) -> Option<&Diagnostic> {
        self.diagnostic.as_ref()
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.phase, self.message)
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.diagnostic
            .as_ref()
            .map(|d| d as &(dyn std::error::Error + 'static))
    }
}

impl From<Diagnostic> for Error {
    /// Maps the diagnostic's stage to a phase: front-end stages become
    /// [`Phase::Compile`], runtime errors [`Phase::Trace`].
    fn from(d: Diagnostic) -> Self {
        let phase = match d.stage {
            Stage::Lex | Stage::Parse | Stage::Sema => Phase::Compile,
            Stage::Runtime => Phase::Trace,
        };
        Error::from_diagnostic(phase, d)
    }
}

/// Result alias over the unified pipeline error.
pub type Result<T, E = Error> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;
    use gadt_pascal::span::Span;

    #[test]
    fn diagnostic_conversion_keeps_source_chain() {
        let d = Diagnostic::new(Stage::Parse, "unexpected token", Span::new(4, 5));
        let e: Error = d.clone().into();
        assert_eq!(e.phase(), Phase::Compile);
        assert_eq!(e.diagnostic(), Some(&d));
        let src = std::error::Error::source(&e).expect("source");
        assert_eq!(src.to_string(), d.to_string());
        assert!(e.to_string().starts_with("[compile]"), "{e}");
    }

    #[test]
    fn runtime_diagnostics_map_to_trace_phase() {
        let d = Diagnostic::new(Stage::Runtime, "division by zero", Span::dummy());
        let e: Error = d.into();
        assert_eq!(e.phase(), Phase::Trace);
    }

    #[test]
    fn context_prefixes_the_message() {
        let e = Error::new(Phase::Campaign, "golden run failed").context("mutant add/3");
        assert_eq!(e.message(), "mutant add/3: golden run failed");
        assert_eq!(e.phase(), Phase::Campaign);
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn phases_render_lowercase() {
        for (p, s) in [
            (Phase::Compile, "compile"),
            (Phase::Transform, "transform"),
            (Phase::Trace, "trace"),
            (Phase::Debug, "debug"),
            (Phase::Testing, "testing"),
            (Phase::Campaign, "campaign"),
            (Phase::Store, "store"),
        ] {
            assert_eq!(p.to_string(), s);
        }
    }
}
