//! An interactive (terminal) oracle — the actual human user of the
//! paper's system. Reads answers from any `BufRead` and writes prompts
//! to any `Write`, so examples use stdin/stdout and tests use strings.
//!
//! Accepted answers (case-insensitive):
//!
//! * `y` / `yes` — correct;
//! * `n` / `no` — incorrect;
//! * `no K` / `n K` — incorrect, error on output variable `K` (1-based),
//!   the §5.3.3 error indication that activates slicing;
//! * `d` / `dontknow` / `skip` — no judgement.

use crate::oracle::{Answer, Oracle};
use gadt_pascal::sema::Module;
use gadt_trace::{ExecTree, NodeId};
use std::io::{BufRead, Write};

/// Oracle that asks a human through an I/O pair.
pub struct InteractiveOracle<R, W> {
    input: R,
    output: W,
}

impl<R: BufRead, W: Write> InteractiveOracle<R, W> {
    /// Creates an interactive oracle over the given I/O pair.
    pub fn new(input: R, output: W) -> Self {
        InteractiveOracle { input, output }
    }

    fn parse(line: &str) -> Answer {
        let lower = line.trim().to_ascii_lowercase();
        let mut parts = lower.split_whitespace();
        match parts.next() {
            Some("y" | "yes") => Answer::Correct,
            Some("n" | "no") => {
                let k = parts.next().and_then(|t| t.parse::<usize>().ok());
                Answer::Incorrect {
                    wrong_output: k.and_then(|k| k.checked_sub(1)),
                }
            }
            Some("d" | "dontknow" | "skip") => Answer::DontKnow,
            _ => Answer::DontKnow,
        }
    }
}

impl<R: BufRead, W: Write> Oracle for InteractiveOracle<R, W> {
    fn judge(&mut self, _module: &Module, tree: &ExecTree, node: NodeId) -> Answer {
        let _ = writeln!(self.output, "{}?", tree.render_node(node));
        let _ = write!(self.output, "> ");
        let _ = self.output.flush();
        let mut line = String::new();
        if self.input.read_line(&mut line).is_err() || line.is_empty() {
            return Answer::DontKnow;
        }
        Self::parse(&line)
    }

    fn source_name(&self) -> &str {
        "user"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debugger::{DebugConfig, DebugResult, Debugger};
    use crate::oracle::ChainOracle;
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;
    use std::io::Cursor;

    #[test]
    fn parses_answers() {
        assert_eq!(
            InteractiveOracle::<Cursor<&[u8]>, Vec<u8>>::parse("yes"),
            Answer::Correct
        );
        assert_eq!(
            InteractiveOracle::<Cursor<&[u8]>, Vec<u8>>::parse(" No "),
            Answer::Incorrect { wrong_output: None }
        );
        assert_eq!(
            InteractiveOracle::<Cursor<&[u8]>, Vec<u8>>::parse("no 2"),
            Answer::Incorrect {
                wrong_output: Some(1)
            }
        );
        assert_eq!(
            InteractiveOracle::<Cursor<&[u8]>, Vec<u8>>::parse("??"),
            Answer::DontKnow
        );
    }

    #[test]
    fn scripted_session_reproduces_section8() {
        // The user's answers from §8, including the error indications.
        let m = compile(testprogs::SQRTEST).unwrap();
        let cfg = gadt_pascal::cfg::lower(&m);
        let trace = gadt_analysis::dyntrace::record_trace(&m, &cfg, []).unwrap();
        let tree = gadt_trace::build_tree(&m, &trace);
        let answers = "no\nyes\nno 1\nno\nno 2\nno\nno\n";
        // sqrtest? no | arrsum? yes | computs? no,err#1 | comput1? no |
        // partialsums? no,err#2 | sum2? no | decrement? no → bug.
        let out;
        let mut prompts: Vec<u8> = Vec::new();
        {
            let mut chain = ChainOracle::new();
            chain.push(InteractiveOracle::new(
                Cursor::new(answers.as_bytes()),
                &mut prompts,
            ));
            out = Debugger::new(&m, &trace, DebugConfig::default()).run_program(&tree, &mut chain);
        }
        assert_eq!(
            out.result,
            DebugResult::BugLocalized {
                unit: "decrement".to_string(),
                rendering: "decrement(In y: 3) = 4".to_string()
            }
        );
        assert_eq!(out.slices_taken, 2);
        let shown = String::from_utf8(prompts).unwrap();
        assert!(
            shown.contains("computs(In y: 3, Out r1: 12, Out r2: 9)?"),
            "{shown}"
        );
        assert!(shown.contains("decrement(In y: 3) = 4?"), "{shown}");
    }

    #[test]
    fn exhausted_input_becomes_dont_know() {
        let m = compile(testprogs::PQR).unwrap();
        let cfg = gadt_pascal::cfg::lower(&m);
        let trace = gadt_analysis::dyntrace::record_trace(&m, &cfg, []).unwrap();
        let tree = gadt_trace::build_tree(&m, &trace);
        let mut sink = Vec::new();
        let mut oracle = InteractiveOracle::new(Cursor::new(&b""[..]), &mut sink);
        let p = tree.find_call(&m, "p").unwrap();
        assert_eq!(oracle.judge(&m, &tree, p), Answer::DontKnow);
    }
}
