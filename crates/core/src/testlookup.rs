//! The test-case lookup component (§5.3.2).
//!
//! "The test specifications and test reports implemented for the
//! procedures of a program can be used during the algorithmic debugging.
//! … For many procedures a function can be defined which automatically
//! selects the suitable test frame. … Then, the generated test report
//! database is checked with the selected test frame. If the test frame is
//! not included in the database or this frame produced a false test
//! report, then the debugging must go on inside the procedure. In the
//! case of \[a\] good test report the debugger skips this procedure."

use crate::oracle::{Answer, Oracle};
use gadt_pascal::sema::Module;
use gadt_pascal::value::Value;
use gadt_tgen::TestDb;
use gadt_trace::{ExecTree, NodeId, NodeKind};
use std::collections::BTreeMap;

/// Maps concrete input values to a frame code — the §5.3.2 "automatic
/// test frame selector function". `FnMut` so a selector may also be the
/// *interactive menu* of §5.3.2 (see [`gadt_tgen::menu::select_frame`]),
/// which reads the user's choices from an input stream.
pub type FrameSelector = Box<dyn FnMut(&[Value]) -> Option<String>>;

struct UnitTests {
    db: TestDb,
    selector: FrameSelector,
}

/// The test-case lookup oracle: per registered unit, a test-report
/// database plus a frame selector.
#[derive(Default)]
pub struct TestLookup {
    units: BTreeMap<String, UnitTests>,
    /// Frame codes looked up so far (unit, code, verdict) — for
    /// transcripts and experiments.
    log: Vec<(String, String, Option<bool>)>,
}

impl TestLookup {
    /// Creates an empty lookup component.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a unit's test database and frame selector.
    pub fn register(&mut self, unit: &str, db: TestDb, selector: FrameSelector) {
        self.units
            .insert(unit.to_ascii_lowercase(), UnitTests { db, selector });
    }

    /// The lookup log: `(unit, frame code, verdict)` per consulted query.
    pub fn log(&self) -> &[(String, String, Option<bool>)] {
        &self.log
    }
}

impl Oracle for TestLookup {
    fn judge(&mut self, _module: &Module, tree: &ExecTree, node: NodeId) -> Answer {
        let n = tree.node(node);
        if !matches!(n.kind, NodeKind::Call { .. }) {
            return Answer::DontKnow;
        }
        let Some(unit) = self.units.get_mut(&n.name.to_ascii_lowercase()) else {
            return Answer::DontKnow;
        };
        // The frame selector receives the In values in parameter order.
        let ins: Vec<Value> = n.ins.iter().map(|(_, v)| v.clone()).collect();
        let Some(code) = (unit.selector)(&ins) else {
            return Answer::DontKnow;
        };
        let verdict = unit.db.frame_verdict(&code);
        self.log.push((n.name.clone(), code, verdict));
        match verdict {
            // A good report: the debugger skips this procedure.
            Some(true) => Answer::Correct,
            // A false report or an untested frame: debugging goes on
            // inside the procedure — which for the oracle chain means
            // "this source cannot clear it"; the user (or reference)
            // makes the incorrectness call.
            Some(false) => Answer::Incorrect { wrong_output: None },
            None => Answer::DontKnow,
        }
    }

    fn source_name(&self) -> &str {
        "test database"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;
    use gadt_tgen::{cases, frames, spec};

    fn arrsum_lookup(module: &Module) -> TestLookup {
        let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
        let g = frames::generate_frames(&s, Default::default());
        let tc = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
        let db = cases::run_cases(module, "arrsum", &tc, &|ins, run| {
            cases::arrsum_oracle(ins, run)
        })
        .unwrap();
        let mut lookup = TestLookup::new();
        lookup.register("arrsum", db, Box::new(cases::arrsum_frame_selector));
        lookup
    }

    fn tree_of(module: &Module) -> ExecTree {
        let cfg = gadt_pascal::cfg::lower(module);
        let trace = gadt_analysis::dyntrace::record_trace(module, &cfg, []).unwrap();
        gadt_trace::build_tree(module, &trace)
    }

    #[test]
    fn paper_arrsum_query_is_answered_without_the_user() {
        // §8 step 1: "GADT was able to check this procedure call without
        // any user interactions. Thus, the query arrsum(In a: [1, 2],
        // In n: 2, Out b: 3)? was never shown to the user."
        let m = compile(testprogs::SQRTEST).unwrap();
        let tree = tree_of(&m);
        let mut lookup = arrsum_lookup(&m);
        let arrsum = tree.find_call(&m, "arrsum").unwrap();
        assert_eq!(lookup.judge(&m, &tree, arrsum), Answer::Correct);
        assert_eq!(lookup.log().len(), 1);
        assert_eq!(lookup.log()[0].1, "two.positive.small");
        assert_eq!(lookup.log()[0].2, Some(true));
    }

    #[test]
    fn unregistered_units_are_not_judged() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let tree = tree_of(&m);
        let mut lookup = arrsum_lookup(&m);
        let computs = tree.find_call(&m, "computs").unwrap();
        assert_eq!(lookup.judge(&m, &tree, computs), Answer::DontKnow);
    }

    #[test]
    fn untested_frame_defers_to_user() {
        let m = compile(testprogs::SQRTEST).unwrap();
        // Build a lookup whose DB only has the `zero` frame.
        let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
        let g = frames::generate_frames(&s, Default::default());
        let tc: Vec<_> = cases::instantiate_cases(&g, |f| {
            if f.code().starts_with("zero") {
                cases::arrsum_instantiator(f, 2)
            } else {
                None
            }
        });
        let db = cases::run_cases(&m, "arrsum", &tc, &|ins, run| {
            cases::arrsum_oracle(ins, run)
        })
        .unwrap();
        let mut lookup = TestLookup::new();
        lookup.register("arrsum", db, Box::new(cases::arrsum_frame_selector));
        let tree = tree_of(&m);
        let arrsum = tree.find_call(&m, "arrsum").unwrap();
        // The run's frame (two.positive.small) is not in the database.
        assert_eq!(lookup.judge(&m, &tree, arrsum), Answer::DontKnow);
    }

    #[test]
    fn failing_frame_reports_incorrect() {
        // Plant the bug inside arrsum itself, so its own frame fails.
        let src = testprogs::SQRTEST.replace("b := 0;", "b := 1;");
        let m = compile(&src).unwrap();
        let lookup_db = {
            let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
            let g = frames::generate_frames(&s, Default::default());
            let tc = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
            cases::run_cases(&m, "arrsum", &tc, &|ins, run| {
                cases::arrsum_oracle(ins, run)
            })
            .unwrap()
        };
        let mut lookup = TestLookup::new();
        lookup.register("arrsum", lookup_db, Box::new(cases::arrsum_frame_selector));
        let tree = tree_of(&m);
        let arrsum = tree.find_call(&m, "arrsum").unwrap();
        assert_eq!(
            lookup.judge(&m, &tree, arrsum),
            Answer::Incorrect { wrong_output: None }
        );
    }
}

#[cfg(test)]
mod menu_lookup_tests {
    use super::*;
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;
    use gadt_tgen::{cases, frames, menu, spec};
    use std::io::Cursor;

    /// §5.3.2's second mode: no automatic selector exists, so the user
    /// picks the frame from a menu built out of the test specification.
    #[test]
    fn menu_based_frame_selection_answers_the_query() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
        let g = frames::generate_frames(&s, Default::default());
        let tc = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
        let db = cases::run_cases(&m, "arrsum", &tc, &|i, r| cases::arrsum_oracle(i, r)).unwrap();

        // The "user" answers the menu: size=two(3), type=positive(1),
        // deviation=small(1) — the frame the §8 query falls into.
        let spec_for_menu = s.clone();
        let mut answers = Cursor::new(b"3\n1\n1\n".to_vec());
        let selector: FrameSelector = Box::new(move |_ins| {
            let mut sink = Vec::new();
            menu::select_frame(&spec_for_menu, &mut answers, &mut sink, Default::default())
        });

        let mut lookup = TestLookup::new();
        lookup.register("arrsum", db, selector);

        let cfg = gadt_pascal::cfg::lower(&m);
        let trace = gadt_analysis::dyntrace::record_trace(&m, &cfg, []).unwrap();
        let tree = gadt_trace::build_tree(&m, &trace);
        let arrsum = tree.find_call(&m, "arrsum").unwrap();
        assert_eq!(lookup.judge(&m, &tree, arrsum), Answer::Correct);
        assert_eq!(lookup.log()[0].1, "two.positive.small");
    }
}
