//! # gadt — Generalized Algorithmic Debugging and Testing
//!
//! A faithful reproduction of Fritzson, Gyimóthy, Kamkar & Shahmehri,
//! *Generalized Algorithmic Debugging and Testing* (PLDI 1991): a
//! semi-automatic bug-localization system for imperative (Pascal)
//! programs combining three techniques —
//!
//! 1. **algorithmic debugging** generalized to programs with side effects
//!    (the transformation phase rewrites globals and global gotos into
//!    explicit parameters; see `gadt-transform`);
//! 2. **category-partition testing** (T-GEN, `gadt-tgen`): recorded test
//!    results answer debugger queries so the user is asked less;
//! 3. **program slicing** (`gadt-analysis`): when the user flags one
//!    wrong output value, the execution tree is pruned to the relevant
//!    subtree.
//!
//! ## The pipeline (paper Figure 3)
//!
//! ```text
//! program ──transform──▶ side-effect-free program ──trace──▶ execution tree
//!                                                                 │
//!                assertions ─┐                                    ▼
//!                test lookup ─┼──▶ oracle chain ──▶ algorithmic debugging
//!                user        ─┘        ▲                    │
//!                                      └──── slicing ◀──────┘  (prune on
//!                                                            error indication)
//! ```
//!
//! ## Quickstart: localize the paper's planted bug
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use gadt::session::{prepare, run_traced, debug};
//! use gadt::oracle::{ChainOracle, ReferenceOracle};
//! use gadt::debugger::{DebugConfig, DebugResult};
//! use gadt_pascal::{sema::compile, testprogs};
//!
//! let buggy = compile(testprogs::SQRTEST)?;
//! let fixed = compile(testprogs::SQRTEST_FIXED)?; // simulates the user
//!
//! let prepared = prepare(&buggy)?;
//! let run = run_traced(&prepared, [])?;
//! let mut oracle = ChainOracle::new();
//! oracle.push(ReferenceOracle::new(&fixed, [])?);
//! let outcome = debug(&prepared, &run, &mut oracle, DebugConfig::default());
//!
//! assert!(matches!(
//!     outcome.result,
//!     DebugResult::BugLocalized { ref unit, .. } if unit == "decrement"
//! ));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod debugger;
pub mod error;
pub mod handle;
pub mod interactive;
pub mod oracle;
pub mod retry;
pub mod session;
pub mod stored;
pub mod strategy;
pub mod testlookup;
pub mod transparency;

pub use debugger::{DebugConfig, DebugOutcome, DebugResult, Debugger, Strategy};
pub use error::{Error, Phase};
pub use handle::{DebugHandle, DebugState, Question, Step, Verdict};
pub use oracle::{
    Answer, AssertionOracle, ChainOracle, CountingOracle, GoldenOracle, Oracle, ReferenceOracle,
};
pub use retry::{debug_with_retry, RetryOutcome};
pub use session::{
    debug, debug_observed, debug_observed_with_probe, prepare, prepare_observed, quick_debug,
    run_traced, run_traced_limited, trace_batch, BatchTraced, PhaseTimings, PreparedProgram,
    TracedRun,
};
pub use stored::{StoreProbe, StoredKnowledgeOracle, STORED_SOURCE};
pub use strategy::{AnswerProbe, Knowledge, TraversalStrategy};
pub use testlookup::TestLookup;
pub use transparency::render_query_original;

/// The observability layer, re-exported so downstream crates can
/// journal through `gadt::obs::Recorder` without a direct `gadt-obs`
/// dependency.
pub use gadt_obs as obs;
