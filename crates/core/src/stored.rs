//! The stored-knowledge oracle: answers queries from a persistent
//! [`gadt_store::KnowledgeStore`].
//!
//! The paper's economy is that every user answer is expensive (§3, and
//! the whole premise of divide-and-query): once a `(unit, In-values)`
//! judgement exists, re-asking is waste. This oracle closes the loop
//! across *processes* — a [`ChainOracle`](crate::oracle::ChainOracle)
//! with a persist sink records every definite answer into the store,
//! and a later session puts a [`StoredKnowledgeOracle`] at the front of
//! its chain so those judgements come back from disk before any other
//! source (including the user) is consulted.

use crate::oracle::{Answer, Oracle};
use gadt_pascal::sema::Module;
use gadt_pascal::value::Value;
use gadt_store::{SharedStore, StoredAnswer};
use gadt_trace::{ExecTree, NodeId, NodeKind};

/// The transcript source name of answers served from the store.
pub const STORED_SOURCE: &str = "stored answer";

/// Converts a stored answer back to a live one.
pub fn answer_from_stored(a: StoredAnswer) -> Answer {
    match a {
        StoredAnswer::Correct => Answer::Correct,
        StoredAnswer::Incorrect { wrong_output } => Answer::Incorrect { wrong_output },
    }
}

/// Converts a definite live answer to its stored form; `None` for
/// [`Answer::DontKnow`], which is never knowledge.
pub fn answer_to_stored(a: &Answer) -> Option<StoredAnswer> {
    match a {
        Answer::Correct => Some(StoredAnswer::Correct),
        Answer::Incorrect { wrong_output } => Some(StoredAnswer::Incorrect {
            wrong_output: *wrong_output,
        }),
        Answer::DontKnow => None,
    }
}

/// An oracle that answers from a persistent knowledge store, keyed by
/// the `(unit, In-values)` fingerprint of the queried node. Hits and
/// misses are counted by the store itself (`store.hits` / `store.misses`
/// in the facade's journal).
pub struct StoredKnowledgeOracle {
    store: SharedStore,
}

impl StoredKnowledgeOracle {
    /// Wraps a shared store handle.
    pub fn new(store: SharedStore) -> Self {
        StoredKnowledgeOracle { store }
    }
}

impl Oracle for StoredKnowledgeOracle {
    fn judge(&mut self, _module: &Module, tree: &ExecTree, node: NodeId) -> Answer {
        let n = tree.node(node);
        if !matches!(n.kind, NodeKind::Call { .. } | NodeKind::Loop { .. }) {
            return Answer::DontKnow;
        }
        let ins: Vec<Value> = n.ins.iter().map(|(_, v)| v.clone()).collect();
        let mut store = self.store.lock().expect("store mutex poisoned");
        match store.lookup_answer(&n.name, &ins) {
            Some(a) => answer_from_stored(a),
            None => Answer::DontKnow,
        }
    }

    fn source_name(&self) -> &str {
        STORED_SOURCE
    }
}

/// The read-only half of [`StoredKnowledgeOracle`]: answers "could the
/// store judge this node?" for weight computation without consuming an
/// oracle turn — no hit/miss counters move and nothing is recorded
/// (`KnowledgeStore::peek_answer`), so probing during strategy
/// selection cannot skew the facade's `store.*` journal.
pub struct StoreProbe {
    store: SharedStore,
}

impl StoreProbe {
    /// Wraps a shared store handle.
    pub fn new(store: SharedStore) -> Self {
        StoreProbe { store }
    }
}

impl crate::strategy::AnswerProbe for StoreProbe {
    fn is_answered(&self, tree: &ExecTree, node: NodeId) -> bool {
        let n = tree.node(node);
        if !matches!(n.kind, NodeKind::Call { .. } | NodeKind::Loop { .. }) {
            return false;
        }
        let ins: Vec<Value> = n.ins.iter().map(|(_, v)| v.clone()).collect();
        let store = self.store.lock().expect("store mutex poisoned");
        store.peek_answer(&n.name, &ins).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{ChainOracle, FnOracle, ReferenceOracle};
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;

    fn tree_of(module: &Module) -> ExecTree {
        let cfg = gadt_pascal::cfg::lower(module);
        let trace = gadt_analysis::dyntrace::record_trace(module, &cfg, []).unwrap();
        gadt_trace::build_tree(module, &trace)
    }

    #[test]
    fn answers_convert_both_ways() {
        for a in [
            Answer::Correct,
            Answer::Incorrect { wrong_output: None },
            Answer::Incorrect {
                wrong_output: Some(2),
            },
        ] {
            let stored = answer_to_stored(&a).unwrap();
            assert_eq!(answer_from_stored(stored), a);
        }
        assert_eq!(answer_to_stored(&Answer::DontKnow), None);
    }

    #[test]
    fn stored_oracle_serves_recorded_judgements() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let tree = tree_of(&m);
        let dec = tree.find_call(&m, "decrement").unwrap();
        let ins: Vec<Value> = tree.node(dec).ins.iter().map(|(_, v)| v.clone()).collect();

        let dir = gadt_store::TempDir::new("stored-oracle");
        let store = gadt_store::KnowledgeStore::open(dir.path())
            .unwrap()
            .into_shared();
        store
            .lock()
            .unwrap()
            .record_answer(
                "decrement",
                &ins,
                StoredAnswer::Incorrect {
                    wrong_output: Some(0),
                },
                "user",
            )
            .unwrap();

        let mut oracle = StoredKnowledgeOracle::new(store);
        assert_eq!(
            oracle.judge(&m, &tree, dec),
            Answer::Incorrect {
                wrong_output: Some(0)
            }
        );
        // A unit with no stored judgement is not judged.
        let add = tree.find_call(&m, "add").unwrap();
        assert_eq!(oracle.judge(&m, &tree, add), Answer::DontKnow);
    }

    #[test]
    fn chain_persists_definite_answers_and_replays_them() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
        let tree = tree_of(&m);
        let dir = gadt_store::TempDir::new("chain-persist");

        // Session 1: the reference answers; the chain records to disk.
        {
            let store = gadt_store::KnowledgeStore::open(dir.path())
                .unwrap()
                .into_shared();
            let mut chain = ChainOracle::new();
            chain.push(ReferenceOracle::new(&fixed, []).unwrap());
            chain.persist_answers_to(store.clone());
            let dec = tree.find_call(&m, "decrement").unwrap();
            let first = chain.judge(&m, &tree, dec);
            assert_eq!(
                first,
                Answer::Incorrect {
                    wrong_output: Some(0)
                }
            );
            let mut guard = store.lock().unwrap();
            assert_eq!(guard.answers_len(), 1);
            guard.sync().unwrap();
        }

        // Session 2: the stored oracle answers; the user is never asked.
        let store = gadt_store::KnowledgeStore::open(dir.path())
            .unwrap()
            .into_shared();
        let mut chain = ChainOracle::new();
        chain.push(FnOracle::new("user", |_m: &Module, _t: &ExecTree, _n| {
            panic!("the user must not be consulted")
        }));
        chain.push_front(StoredKnowledgeOracle::new(store.clone()));
        let dec = tree.find_call(&m, "decrement").unwrap();
        assert_eq!(
            chain.judge(&m, &tree, dec),
            Answer::Incorrect {
                wrong_output: Some(0)
            }
        );
        assert_eq!(chain.last_source(), STORED_SOURCE);
        assert_eq!(store.lock().unwrap().answer_hits(), 1);
    }

    #[test]
    fn stored_answers_are_not_re_persisted() {
        // A replayed session must leave the store's bytes unchanged:
        // answers served *from* the store are not written back (their
        // source would differ and dirty the WAL).
        let m = compile(testprogs::SQRTEST).unwrap();
        let tree = tree_of(&m);
        let dec = tree.find_call(&m, "decrement").unwrap();
        let ins: Vec<Value> = tree.node(dec).ins.iter().map(|(_, v)| v.clone()).collect();

        let dir = gadt_store::TempDir::new("no-repersist");
        let store = gadt_store::KnowledgeStore::open(dir.path())
            .unwrap()
            .into_shared();
        store
            .lock()
            .unwrap()
            .record_answer("decrement", &ins, StoredAnswer::Correct, "test database")
            .unwrap();
        store.lock().unwrap().sync().unwrap();
        let before = store.lock().unwrap().disk_fingerprint().unwrap();

        let mut chain = ChainOracle::new();
        chain.push_front(StoredKnowledgeOracle::new(store.clone()));
        chain.persist_answers_to(store.clone());
        assert_eq!(chain.judge(&m, &tree, dec), Answer::Correct);

        let mut guard = store.lock().unwrap();
        guard.sync().unwrap();
        assert_eq!(guard.disk_fingerprint().unwrap(), before);
    }
}
