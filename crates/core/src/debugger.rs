//! The algorithmic debugging engine (§3, §5.3) with slicing integration
//! (§5.3.3, §7).
//!
//! The debugger traverses the execution tree asking an oracle about each
//! unit's behaviour. The search ends, localizing a bug in a unit `p`,
//! when `p` misbehaved but every unit called from `p` fulfilled the
//! oracle's expectations (§3). Traversal order is pluggable (see
//! [`crate::strategy`]); the [`Strategy`] enum names the built-in
//! implementations:
//!
//! * [`Strategy::TopDown`] — the paper's traversal (§7 notes the choice
//!   of traversal "doesn't matter" for correctness);
//! * [`Strategy::DivideAndQuery`] — Shapiro's query-minimizing heuristic;
//! * [`Strategy::DqOpt`] — Insa & Silva's Optimal Divide and Query;
//! * [`Strategy::KnowledgeWeighted`] — optimal split over store-aware
//!   weights: nodes answerable from pooled knowledge cost zero.
//!
//! When an oracle flags a *specific* wrong output of a node with several
//! outputs, the dynamic slicer prunes the subtree to the "corresponding
//! execution tree" (§5.3.3) and the search continues on the pruned tree —
//! exactly the §8 steps 2 and 4.

use crate::oracle::{Answer, ChainOracle, Oracle};
use gadt_analysis::dyntrace::DynTrace;
use gadt_analysis::slice_dynamic::SliceStats;
use gadt_pascal::sema::Module;
use gadt_trace::{ExecTree, NodeId};

/// Execution-tree traversal strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Ask top-down, descending into the first incorrect child.
    #[default]
    TopDown,
    /// Shapiro's divide-and-query: bisect the suspect subtree by weight.
    DivideAndQuery,
    /// Insa & Silva's Optimal Divide and Query: minimize the worst-case
    /// remaining suspect weight, committing to the deeper node on ties.
    DqOpt,
    /// Optimal split over knowledge-aware weights: suspects answerable
    /// from pooled knowledge (via an attached probe) cost zero and are
    /// drained first. Without a probe, identical to [`Strategy::DqOpt`].
    KnowledgeWeighted,
}

impl Strategy {
    /// Every built-in strategy, in ablation-report order.
    pub const ALL: [Strategy; 4] = [
        Strategy::TopDown,
        Strategy::DivideAndQuery,
        Strategy::DqOpt,
        Strategy::KnowledgeWeighted,
    ];

    /// The stable identifier used in journals, benchmarks, and the
    /// serve protocol (`top_down`, `divide_and_query`, `dq_opt`,
    /// `knowledge_weighted`).
    pub fn slug(self) -> &'static str {
        match self {
            Strategy::TopDown => "top_down",
            Strategy::DivideAndQuery => "divide_and_query",
            Strategy::DqOpt => "dq_opt",
            Strategy::KnowledgeWeighted => "knowledge_weighted",
        }
    }

    /// Parses a [`Strategy::slug`] back into a strategy.
    pub fn parse(s: &str) -> Option<Strategy> {
        Strategy::ALL.into_iter().find(|st| st.slug() == s)
    }

    /// The strategy's [`crate::strategy::TraversalStrategy`]
    /// implementation.
    pub fn implementation(self) -> Box<dyn crate::strategy::TraversalStrategy> {
        use crate::strategy::*;
        match self {
            Strategy::TopDown => Box::new(TopDownStrategy),
            Strategy::DivideAndQuery => Box::new(DivideAndQueryStrategy),
            Strategy::DqOpt => Box::new(DqOptStrategy),
            Strategy::KnowledgeWeighted => Box::new(KnowledgeWeightedStrategy),
        }
    }
}

/// Debugger configuration.
#[derive(Debug, Clone, Copy)]
pub struct DebugConfig {
    /// Traversal strategy.
    pub strategy: Strategy,
    /// Whether to activate program slicing on specific-output error
    /// indications.
    pub slicing: bool,
}

impl Default for DebugConfig {
    fn default() -> Self {
        DebugConfig {
            strategy: Strategy::TopDown,
            slicing: true,
        }
    }
}

/// One query/answer pair in the session transcript.
#[derive(Debug, Clone)]
pub struct TranscriptEntry {
    /// The rendered query, e.g.
    /// `computs(In y: 3, Out r1: 12, Out r2: 9)?`.
    pub query: String,
    /// The unit asked about.
    pub unit: String,
    /// The answer given.
    pub answer: Answer,
    /// Which knowledge source answered (`"user"`, `"test database"`, …).
    pub source: String,
}

/// The debugger's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DebugResult {
    /// A bug was localized inside one unit's body.
    BugLocalized {
        /// The unit's display name (procedure/function or loop).
        unit: String,
        /// The rendered node the bug was localized at.
        rendering: String,
    },
    /// Every queried unit behaved as intended.
    NoBugFound,
}

/// The outcome of a debugging session.
#[derive(Debug, Clone)]
pub struct DebugOutcome {
    /// The verdict.
    pub result: DebugResult,
    /// Every query asked, in order, with its answer and source.
    pub transcript: Vec<TranscriptEntry>,
    /// How many times slicing pruned the tree.
    pub slices_taken: usize,
    /// Size accounting for each slice taken, in order.
    pub slice_stats: Vec<SliceStats>,
}

impl DebugOutcome {
    /// The number of queries answered by a given source (e.g. `"user"`).
    pub fn queries_from(&self, source_substr: &str) -> usize {
        self.transcript
            .iter()
            .filter(|t| t.source.contains(source_substr))
            .count()
    }

    /// Total number of queries asked.
    pub fn total_queries(&self) -> usize {
        self.transcript.len()
    }

    /// Renders the transcript in the paper's interaction format.
    pub fn render_transcript(&self) -> String {
        let mut out = String::new();
        for t in &self.transcript {
            out.push_str(&format!("{}?\n> {}    [{}]\n", t.query, t.answer, t.source));
        }
        match &self.result {
            DebugResult::BugLocalized { unit, .. } => {
                out.push_str(&format!(
                    "An error is localized inside the body of {unit}.\n"
                ));
            }
            DebugResult::NoBugFound => out.push_str("No erroneous unit was found.\n"),
        }
        out
    }
}

/// Runs algorithmic debugging over an execution tree.
///
/// `start` is the node whose behaviour is *known* to be wrong (usually
/// the root: the main program showed an external symptom). The start node
/// itself is not queried.
pub struct Debugger<'a> {
    module: &'a Module,
    trace: &'a DynTrace,
    config: DebugConfig,
    /// When set, queries are rendered in terms of the *original* program
    /// via the transformation mapping (§6.1 transparency).
    mapping: Option<&'a gadt_transform::Mapping>,
    /// When set, every question and slice is journaled: a `question`
    /// point event plus `debug.questions` / `debug.questions.by_source.*`
    /// / `debug.questions.by_strategy.*` counters per query, a `slice`
    /// event plus `debug.slices` per prune.
    obs: Option<&'a mut gadt_obs::Recorder>,
    /// When set, knowledge-aware strategies may treat nodes this probe
    /// can answer as free (zero weight).
    probe: Option<Box<dyn crate::strategy::AnswerProbe>>,
}

impl<'a> Debugger<'a> {
    /// Creates a debugger over one traced execution.
    pub fn new(module: &'a Module, trace: &'a DynTrace, config: DebugConfig) -> Self {
        Debugger {
            module,
            trace,
            config,
            mapping: None,
            obs: None,
            probe: None,
        }
    }

    /// Attaches a pooled-knowledge probe consulted by knowledge-aware
    /// strategies (never consumes an oracle turn; see
    /// [`crate::strategy::AnswerProbe`]).
    pub fn with_probe(mut self, probe: Box<dyn crate::strategy::AnswerProbe>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Renders queries transparently relative to the original program
    /// (§6.1), using the transformation's construct mapping.
    pub fn with_mapping(mut self, mapping: &'a gadt_transform::Mapping) -> Self {
        self.mapping = Some(mapping);
        self
    }

    /// Journals per-question and per-slice events into `rec`.
    pub fn with_obs(mut self, rec: &'a mut gadt_obs::Recorder) -> Self {
        self.obs = Some(rec);
        self
    }

    /// Debugs starting from `start` (assumed incorrect, not queried).
    ///
    /// A thin driver loop over [`crate::handle::DebugState`]: pull the
    /// pending question, judge it through the oracle chain, journal it,
    /// feed the verdict back. Servers that cannot block on an oracle
    /// callback hold a [`crate::DebugHandle`] instead and pump it one
    /// request at a time — both paths share the state machine and
    /// produce byte-identical transcripts.
    pub fn run(
        mut self,
        tree: &ExecTree,
        start: NodeId,
        oracle: &mut ChainOracle<'_>,
    ) -> DebugOutcome {
        let mut state = crate::handle::DebugState::with_strategy(
            self.module,
            self.mapping,
            tree.clone(),
            start,
            self.config,
            self.config.strategy.implementation(),
            self.probe.take(),
        );
        while let Some(q) = state.next_question() {
            let (node, unit) = (q.node, q.unit.clone());
            let answer = oracle.judge(self.module, state.tree(), node);
            let source = oracle.last_source().to_string();
            if let Some(rec) = self.obs.as_deref_mut() {
                rec.incr("debug.questions");
                rec.incr(&format!(
                    "debug.questions.by_source.{}",
                    gadt_obs::slug(&source)
                ));
                rec.incr(&format!(
                    "debug.questions.by_strategy.{}",
                    self.config.strategy.slug()
                ));
                gadt_obs::event!(
                    rec,
                    "question",
                    unit = unit.as_str(),
                    source = source.as_str(),
                    answer = answer.to_string(),
                );
            }
            let before = state.slices_taken();
            state.answer(self.module, self.trace, self.mapping, answer, &source);
            if state.slices_taken() > before {
                let stats = state.slice_stats()[before];
                self.observe_slice(&stats);
            }
        }
        state.into_outcome()
    }

    /// Debugs a whole program run: the root (main) is the symptom.
    pub fn run_program(self, tree: &ExecTree, oracle: &mut ChainOracle<'_>) -> DebugOutcome {
        let root = tree.root;
        self.run(tree, root, oracle)
    }

    /// Journals one accepted slice (counter + point event).
    fn observe_slice(&mut self, stats: &SliceStats) {
        if let Some(rec) = self.obs.as_deref_mut() {
            rec.incr("debug.slices");
            gadt_obs::event!(
                rec,
                "slice",
                events = stats.events,
                stmts = stats.stmts,
                calls = stats.calls,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{CountingOracle, ReferenceOracle};
    use gadt_pascal::sema::{compile, Module};
    use gadt_pascal::testprogs;

    fn setup(src: &str) -> (Module, DynTrace, ExecTree) {
        let m = compile(src).unwrap();
        let cfg = gadt_pascal::cfg::lower(&m);
        let trace = gadt_analysis::dyntrace::record_trace(&m, &cfg, []).unwrap();
        let tree = gadt_trace::build_tree(&m, &trace);
        (m, trace, tree)
    }

    fn reference_chain<'m>(fixed: &'m Module) -> ChainOracle<'m> {
        let mut chain = ChainOracle::new();
        chain.push(CountingOracle::new(
            ReferenceOracle::new(fixed, []).unwrap(),
        ));
        chain
    }

    #[test]
    fn pqr_bug_localized_in_r() {
        // §3's example runs *pure* algorithmic debugging (no slicing):
        // the bug must land inside procedure r after asking p, q, r.
        let (m, trace, tree) = setup(testprogs::PQR);
        let fixed = compile(testprogs::PQR_FIXED).unwrap();
        let mut chain = reference_chain(&fixed);
        let dbg = Debugger::new(
            &m,
            &trace,
            DebugConfig {
                slicing: false,
                ..Default::default()
            },
        );
        let out = dbg.run_program(&tree, &mut chain);
        assert_eq!(
            out.result,
            DebugResult::BugLocalized {
                unit: "r".to_string(),
                rendering: "r(In c: 7, Out d: 10)".to_string()
            }
        );
        // Transcript: p? no → q? yes → r? no → bug in r.
        let units: Vec<&str> = out.transcript.iter().map(|t| t.unit.as_str()).collect();
        assert_eq!(units, vec!["p", "q", "r"]);
    }

    #[test]
    fn pqr_with_slicing_skips_the_irrelevant_q() {
        // With slicing enabled, p's error indication ("error on output d")
        // prunes q — one fewer question than pure algorithmic debugging.
        let (m, trace, tree) = setup(testprogs::PQR);
        let fixed = compile(testprogs::PQR_FIXED).unwrap();
        let mut chain = reference_chain(&fixed);
        let out = Debugger::new(&m, &trace, DebugConfig::default()).run_program(&tree, &mut chain);
        assert_eq!(
            out.result,
            DebugResult::BugLocalized {
                unit: "r".to_string(),
                rendering: "r(In c: 7, Out d: 10)".to_string()
            }
        );
        let units: Vec<&str> = out.transcript.iter().map(|t| t.unit.as_str()).collect();
        assert_eq!(units, vec!["p", "r"]);
        assert_eq!(out.slices_taken, 1);
    }

    #[test]
    fn sqrtest_bug_localized_in_decrement_with_slicing() {
        let (m, trace, tree) = setup(testprogs::SQRTEST);
        let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
        let mut chain = reference_chain(&fixed);
        let dbg = Debugger::new(&m, &trace, DebugConfig::default());
        let out = dbg.run_program(&tree, &mut chain);
        let DebugResult::BugLocalized { unit, .. } = &out.result else {
            panic!("no bug found: {}", out.render_transcript());
        };
        assert_eq!(unit, "decrement", "{}", out.render_transcript());
        // §8: two slices (on computs' first output, then on partialsums'
        // second output).
        assert_eq!(out.slices_taken, 2, "{}", out.render_transcript());
        // §8 query order: sqrtest, arrsum, computs | comput1,
        // partialsums | sum2, decrement.
        let units: Vec<&str> = out.transcript.iter().map(|t| t.unit.as_str()).collect();
        assert_eq!(
            units,
            vec![
                "sqrtest",
                "arrsum",
                "computs",
                "comput1",
                "partialsums",
                "sum2",
                "decrement"
            ],
            "{}",
            out.render_transcript()
        );
    }

    #[test]
    fn sqrtest_without_slicing_asks_more_questions() {
        let (m, trace, tree) = setup(testprogs::SQRTEST);
        let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();

        let mut with = reference_chain(&fixed);
        let out_with =
            Debugger::new(&m, &trace, DebugConfig::default()).run_program(&tree, &mut with);

        let mut without = reference_chain(&fixed);
        let out_without = Debugger::new(
            &m,
            &trace,
            DebugConfig {
                slicing: false,
                ..Default::default()
            },
        )
        .run_program(&tree, &mut without);

        // Both localize the same bug.
        assert_eq!(out_with.result, out_without.result);
        assert!(
            out_with.total_queries() < out_without.total_queries(),
            "slicing must reduce interactions: {} vs {}",
            out_with.total_queries(),
            out_without.total_queries()
        );
    }

    #[test]
    fn correct_program_reports_no_bug() {
        let (m, trace, tree) = setup(testprogs::SQRTEST_FIXED);
        let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
        let mut chain = reference_chain(&fixed);
        let dbg = Debugger::new(&m, &trace, DebugConfig::default());
        // Start from sqrtest and ask about it too: everything is correct,
        // so the "bug" would be in main — by convention, run_program on a
        // correct program blames nothing below main and returns main as
        // the unit. Use the child as start instead.
        let sqrtest = tree.find_call(&m, "sqrtest").unwrap();
        let out = dbg.run(&tree, tree.root, &mut chain);
        // All children of main are correct → bug "in main" means: the
        // symptom is outside any procedure — report it as such.
        let _ = sqrtest;
        match out.result {
            DebugResult::BugLocalized { unit, .. } => assert_eq!(unit, "Main"),
            DebugResult::NoBugFound => {}
        }
    }

    #[test]
    fn figure5_slicing_skips_irrelevant_calls() {
        let (m, trace, tree) = setup(testprogs::FIGURE5);
        // The oracle: pn should compute x*x.
        let mut chain = ChainOracle::new();
        chain.push(crate::oracle::FnOracle::new(
            "spec",
            |_m: &Module, t: &ExecTree, n| {
                let node = t.node(n);
                match node.name.as_str() {
                    "pn" => Answer::Incorrect {
                        wrong_output: Some(0),
                    },
                    _ => Answer::Correct,
                }
            },
        ));
        let dbg = Debugger::new(&m, &trace, DebugConfig::default());
        let out = dbg.run_program(&tree, &mut chain);
        let DebugResult::BugLocalized { unit, .. } = &out.result else {
            panic!()
        };
        assert_eq!(unit, "pn");
    }

    #[test]
    fn divide_and_query_localizes_same_bug() {
        let (m, trace, tree) = setup(testprogs::SQRTEST);
        let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
        let mut chain = reference_chain(&fixed);
        let dbg = Debugger::new(
            &m,
            &trace,
            DebugConfig {
                strategy: Strategy::DivideAndQuery,
                slicing: false,
            },
        );
        let out = dbg.run_program(&tree, &mut chain);
        let DebugResult::BugLocalized { unit, .. } = &out.result else {
            panic!("no bug: {}", out.render_transcript());
        };
        assert_eq!(unit, "decrement", "{}", out.render_transcript());
    }

    #[test]
    fn transcript_renders_like_the_paper() {
        let (m, trace, tree) = setup(testprogs::PQR);
        let fixed = compile(testprogs::PQR_FIXED).unwrap();
        let mut chain = reference_chain(&fixed);
        let out = Debugger::new(
            &m,
            &trace,
            DebugConfig {
                slicing: false,
                ..Default::default()
            },
        )
        .run_program(&tree, &mut chain);
        let rendered = out.render_transcript();
        assert!(rendered.contains("q(In a: 5, Out b: 10)?"), "{rendered}");
        assert!(rendered.contains("> yes"), "{rendered}");
        assert!(
            rendered.contains("An error is localized inside the body of r."),
            "{rendered}"
        );
    }

    #[test]
    fn misnamed_variable_blames_the_caller() {
        // §5.3.3's discussion: f is called with the wrong argument; every
        // subcomputation is correct for its inputs, so the calling
        // procedure is blamed.
        let src = "program t; var a, b, r: integer;
             procedure f(x: integer; var y: integer); begin y := x * 2 end;
             procedure caller(var r: integer);
             var a, b: integer;
             begin a := 1; b := 99; f(b, r) end;
             begin caller(r); writeln(r) end.";
        let (m, trace, tree) = setup(src);
        let mut chain = ChainOracle::new();
        chain.push(crate::oracle::FnOracle::new(
            "spec",
            |_m: &Module, t: &ExecTree, n| {
                let node = t.node(n);
                match node.name.as_str() {
                    // caller should produce r = 2 (from a), got 198.
                    "caller" => Answer::Incorrect {
                        wrong_output: Some(0),
                    },
                    // f(99) = 198 is correct for its inputs.
                    "f" => Answer::Correct,
                    _ => Answer::Correct,
                }
            },
        ));
        let out = Debugger::new(&m, &trace, DebugConfig::default()).run_program(&tree, &mut chain);
        assert_eq!(
            out.result,
            DebugResult::BugLocalized {
                unit: "caller".to_string(),
                rendering: "caller(Out r: 198)".to_string()
            }
        );
    }
}
