//! Transparent debugging relative to the original program (§6.1).
//!
//! "Despite the fact that the program is transformed into an internal
//! form, the debugger still presents the original program when
//! interacting with the user." The transformation's construct
//! [`Mapping`] says which parameters were synthesized from globals and
//! which encode exit conditions; this module renders queries accordingly:
//!
//! * parameters converted from globals are labelled as global-variable
//!   values ("input values on these global variables … values on output
//!   parameters and free global variables");
//! * exit-condition parameters disappear from the value list and become
//!   the paper's question about the control transfer itself: "Given
//!   these values …, is it correct to perform this non-local goto?".

use gadt_pascal::sema::Module;
use gadt_trace::{ExecTree, NodeId, NodeKind};
use gadt_transform::{Mapping, ParamOrigin};
use std::fmt::Write as _;

/// Renders one execution-tree node in terms of the *original* program.
pub fn render_query_original(
    mapping: &Mapping,
    module: &Module,
    tree: &ExecTree,
    node: NodeId,
) -> String {
    let n = tree.node(node);
    let NodeKind::Call {
        proc, is_function, ..
    } = &n.kind
    else {
        return tree.render_node(node);
    };
    let path = proc_path(module, *proc);
    let added = mapping.added_params.get(&path);
    let exit = mapping.exit_info.get(&path);

    let origin_of = |name: &str| -> Option<&ParamOrigin> {
        added?
            .iter()
            .find(|a| a.name.eq_ignore_ascii_case(name))
            .map(|a| &a.origin)
    };

    let mut s = String::new();
    let _ = write!(s, "{}(", n.name);
    let mut first = true;
    let push = |s: &mut String, text: String, first: &mut bool| {
        if !*first {
            s.push_str(", ");
        }
        s.push_str(&text);
        *first = false;
    };

    for (name, v) in &n.ins {
        match origin_of(name) {
            Some(ParamOrigin::Global(g)) => push(&mut s, format!("In global {g}: {v}"), &mut first),
            Some(ParamOrigin::ExitCondition) => {}
            None => push(&mut s, format!("In {name}: {v}"), &mut first),
        }
    }
    let mut result = None;
    let mut goto_note: Option<String> = None;
    for (name, v) in &n.outs {
        if *is_function && name == &n.name {
            result = Some(v);
            continue;
        }
        match origin_of(name) {
            Some(ParamOrigin::Global(g)) => {
                push(&mut s, format!("Out global {g}: {v}"), &mut first)
            }
            Some(ParamOrigin::ExitCondition) => {
                // §6.1: "the non-local goto is treated as one of the
                // results from the procedure call".
                let value = v.as_int().unwrap_or(0);
                if let Some((owner, label)) = exit.and_then(|_| mapping.exit_target(&path, value)) {
                    let owner_disp = if owner.is_empty() {
                        "the main program".to_string()
                    } else {
                        format!("`{owner}`")
                    };
                    goto_note = Some(format!(
                        " — performs the non-local goto to label {label} of {owner_disp}; is that correct?"
                    ));
                }
            }
            None => push(&mut s, format!("Out {name}: {v}"), &mut first),
        }
    }
    s.push(')');
    if let Some(v) = result {
        let _ = write!(s, " = {v}");
    }
    if let Some(g) = goto_note {
        s.push_str(&g);
    }
    s
}

/// The lowercase `/`-joined procedure path used as the mapping key.
fn proc_path(module: &Module, proc: gadt_pascal::sema::ProcId) -> String {
    let mut parts = Vec::new();
    let mut cur = Some(proc);
    while let Some(p) = cur {
        let info = module.proc(p);
        if p != gadt_pascal::sema::MAIN_PROC {
            parts.push(info.name.to_ascii_lowercase());
        }
        cur = info.parent;
    }
    parts.reverse();
    parts.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{prepare, run_traced};
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;

    #[test]
    fn global_params_render_as_globals() {
        let m = compile(testprogs::SECTION6_GLOBALS).unwrap();
        let prepared = prepare(&m).unwrap();
        let run = run_traced(&prepared, []).unwrap();
        let tm = &prepared.transformed.module;
        let p = run.tree.find_call(tm, "p").unwrap();
        let q = render_query_original(&prepared.transformed.mapping, tm, &run.tree, p);
        assert_eq!(q, "p(In global x: 10, Out y: 11, Out global z: 1)");
    }

    #[test]
    fn exit_params_render_as_goto_questions() {
        let m = compile(testprogs::SECTION6_GOTO).unwrap();
        let prepared = prepare(&m).unwrap();
        let run = run_traced(&prepared, []).unwrap();
        let tm = &prepared.transformed.module;
        let q_node = run.tree.find_call(tm, "q").unwrap();
        let q = render_query_original(&prepared.transformed.mapping, tm, &run.tree, q_node);
        assert!(
            q.contains("performs the non-local goto to label 9 of `p`"),
            "{q}"
        );
        assert!(
            !q.contains("exitcond"),
            "exit parameter must be hidden: {q}"
        );
    }

    #[test]
    fn untransformed_programs_render_unchanged() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let prepared = prepare(&m).unwrap();
        let run = run_traced(&prepared, []).unwrap();
        let tm = &prepared.transformed.module;
        let node = run.tree.find_call(tm, "computs").unwrap();
        let transparent = render_query_original(&prepared.transformed.mapping, tm, &run.tree, node);
        assert_eq!(transparent, run.tree.render_node(node));
    }

    #[test]
    fn normal_return_hides_exit_parameter_silently() {
        // A call that does NOT take the goto: exitcond = 0 → no note.
        let src = "program t; var trace: integer;
             procedure p(n: integer);
             label 9;
               procedure q(n: integer);
               begin
                 trace := trace + 1;
                 if n > 0 then goto 9;
               end;
             begin q(n); 9: trace := trace + 100; end;
             begin trace := 0; p(0); writeln(trace) end.";
        let m = compile(src).unwrap();
        let prepared = prepare(&m).unwrap();
        let run = run_traced(&prepared, []).unwrap();
        let tm = &prepared.transformed.module;
        let q_node = run.tree.find_call(tm, "q").unwrap();
        let q = render_query_original(&prepared.transformed.mapping, tm, &run.tree, q_node);
        assert!(!q.contains("non-local goto"), "{q}");
        assert!(!q.contains("exitcond"), "{q}");
    }
}
