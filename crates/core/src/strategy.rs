//! Pluggable execution-tree traversal strategies (ROADMAP item 3).
//!
//! §7 of the paper treats the traversal order as interchangeable for
//! *correctness* — any search that ends on a misbehaving unit whose
//! children all behaved localizes the same bug — but the number of
//! oracle questions per bug is the system's real quality metric. This
//! module makes the choice a first-class trait:
//!
//! * [`TopDownStrategy`] — the paper's traversal: ask the children of
//!   the known-incorrect focus left to right, descend into the first
//!   incorrect one.
//! * [`DivideAndQueryStrategy`] — Shapiro's heuristic: ask the live
//!   node whose live-subtree weight is closest to half the suspect
//!   count, halving the suspect set per answer.
//! * [`DqOptStrategy`] — Insa & Silva's *Optimal Divide and Query*
//!   (PAPERS.md): minimize the worst-case remaining suspect weight
//!   `max(w(n), W - w(n))`, breaking ties toward the deeper node —
//!   the provably question-optimal split over node weights.
//! * [`KnowledgeWeightedStrategy`] — the store-aware variant: nodes
//!   answerable from pooled knowledge (an [`AnswerProbe`]) cost zero,
//!   so the strategy drains free answers in best-split order first and
//!   computes the optimal split over the *unanswered* weight that is
//!   left. No prior strategy accounts for a persistent store; it
//!   reshapes the optimal frontier per session.
//!
//! A strategy is a *stateless* choice function over the current
//! [`Knowledge`]: the focus node (known incorrect, never re-asked),
//! the set of nodes already judged this session, and an optional probe
//! into pooled knowledge. Statelessness is what makes the no-re-ask
//! and convergence properties (`tests/properties.rs`) hold for every
//! implementation by construction: judged nodes are in `cleared` and
//! never come back, and an `Incorrect` answer strictly deepens the
//! focus.

use gadt_trace::{ExecTree, NodeId};
use std::collections::BTreeSet;

/// A side channel into pooled knowledge: can this node be answered
/// without consuming a live oracle turn?
///
/// [`crate::oracle::Oracle::judge`] is *consuming* — it counts as
/// a user interaction, persists the answer, and advances the session.
/// Weight computation needs the asymmetric read-only half: "would this
/// question be free?". Implementations must not count store hits or
/// misses and must not record anything (see
/// [`crate::stored::StoreProbe`]).
pub trait AnswerProbe: Send + Sync {
    /// Whether pooled knowledge holds a definite answer for `node`.
    fn is_answered(&self, tree: &ExecTree, node: NodeId) -> bool;
}

/// Everything a strategy may consult when choosing the next question.
pub struct Knowledge<'a> {
    tree: &'a ExecTree,
    focus: NodeId,
    cleared: &'a BTreeSet<NodeId>,
    probe: Option<&'a dyn AnswerProbe>,
}

impl<'a> Knowledge<'a> {
    /// Packages the session's current knowledge for one selection.
    pub fn new(
        tree: &'a ExecTree,
        focus: NodeId,
        cleared: &'a BTreeSet<NodeId>,
        probe: Option<&'a dyn AnswerProbe>,
    ) -> Self {
        Knowledge {
            tree,
            focus,
            cleared,
            probe,
        }
    }

    /// The node whose behaviour is *known* to be wrong. The bug is in
    /// its live subtree; the focus itself is never queried.
    pub fn focus(&self) -> NodeId {
        self.focus
    }

    /// Nodes already judged `Correct` or `DontKnow` this session —
    /// their subtrees are out of the suspect set and must never be
    /// re-asked.
    pub fn cleared(&self) -> &BTreeSet<NodeId> {
        self.cleared
    }

    /// Whether `node` has been judged this session.
    pub fn is_cleared(&self, node: NodeId) -> bool {
        self.cleared.contains(&node)
    }

    /// Whether pooled knowledge can answer `node` for free — without
    /// consuming an oracle turn, counting a store hit, or persisting
    /// anything. Always `false` when no probe is attached.
    pub fn is_answered(&self, node: NodeId) -> bool {
        self.probe
            .map(|p| p.is_answered(self.tree, node))
            .unwrap_or(false)
    }
}

/// An execution-tree traversal strategy: given the tree and the
/// session's knowledge, choose the next node to ask about, or `None`
/// when the focus's live subtree is exhausted (bug localized at the
/// focus).
pub trait TraversalStrategy: Send + Sync {
    /// The journal/config identifier (`top_down`, `divide_and_query`,
    /// `dq_opt`, `knowledge_weighted`, …).
    fn slug(&self) -> &'static str;

    /// The next node to query, or `None` to localize at the focus.
    ///
    /// Contract: the returned node must be a live descendant of
    /// `knowledge.focus()` — in its subtree, not cleared, and not the
    /// focus itself. The driver clears every judged node, so any
    /// implementation honouring the contract never re-asks.
    fn next_query(&self, tree: &ExecTree, knowledge: &Knowledge<'_>) -> Option<NodeId>;
}

/// All live (uncleared) descendants of `node`, excluding `node` itself.
/// A cleared node removes its whole subtree from the suspect set — a
/// `Correct`/`DontKnow` judgement covers everything beneath it.
pub fn live_descendants(tree: &ExecTree, node: NodeId, cleared: &BTreeSet<NodeId>) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut stack: Vec<NodeId> = tree.node(node).children.clone();
    while let Some(n) = stack.pop() {
        if cleared.contains(&n) {
            continue;
        }
        out.push(n);
        stack.extend(tree.node(n).children.iter().copied());
    }
    out
}

/// The paper's traversal: the first unjudged child of the focus, in
/// call order. Descending into an incorrect child is the driver's job
/// (it moves the focus); this reproduces the §3/§8 question order
/// byte for byte.
pub struct TopDownStrategy;

impl TraversalStrategy for TopDownStrategy {
    fn slug(&self) -> &'static str {
        "top_down"
    }

    fn next_query(&self, tree: &ExecTree, knowledge: &Knowledge<'_>) -> Option<NodeId> {
        tree.node(knowledge.focus())
            .children
            .iter()
            .copied()
            .find(|c| !knowledge.is_cleared(*c))
    }
}

/// Shapiro's divide-and-query pick: the live node whose live-subtree
/// weight is closest to half the remaining suspect count (first such
/// node in discovery order — the historical tie-break, pinned by the
/// strategy conformance suite).
pub struct DivideAndQueryStrategy;

impl TraversalStrategy for DivideAndQueryStrategy {
    fn slug(&self) -> &'static str {
        "divide_and_query"
    }

    fn next_query(&self, tree: &ExecTree, knowledge: &Knowledge<'_>) -> Option<NodeId> {
        let cleared = knowledge.cleared();
        let suspects = live_descendants(tree, knowledge.focus(), cleared);
        if suspects.is_empty() {
            return None;
        }
        let total = suspects.len() + 1;
        let mut best: Option<(NodeId, usize)> = None;
        for &c in &suspects {
            let w = live_descendants(tree, c, cleared).len() + 1;
            let d = (2 * w).abs_diff(total);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((c, d));
            }
        }
        best.map(|(c, _)| c)
    }
}

/// One candidate's split score under a node-weight function: the
/// worst-case suspect weight left after the answer. `Incorrect` leaves
/// the candidate's subtree (`down`); `Correct`/`DontKnow` removes it,
/// leaving `total - down`.
fn split_score(down: usize, total: usize) -> usize {
    down.max(total - down)
}

/// Minimizes `max(w(n), W - w(n))` over `candidates` with deterministic
/// tie-breaking: smaller subtree weight first (the deeper, more
/// committed probe), then smaller node id. `weight_of` maps a node to
/// its *individual* weight (1 for a live question, 0 for a free one).
fn optimal_split(
    tree: &ExecTree,
    cleared: &BTreeSet<NodeId>,
    candidates: &[NodeId],
    total: usize,
    weight_of: &dyn Fn(NodeId) -> usize,
) -> Option<NodeId> {
    let mut best: Option<(usize, usize, NodeId)> = None;
    for &c in candidates {
        let down: usize = weight_of(c)
            + live_descendants(tree, c, cleared)
                .into_iter()
                .map(weight_of)
                .sum::<usize>();
        let key = (split_score(down, total), down, c);
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }
    best.map(|(_, _, c)| c)
}

/// Insa & Silva's *Optimal Divide and Query* (PAPERS.md): pick the
/// live node minimizing the worst-case remaining suspect weight
/// `max(w(n), W − w(n))` over uniform node weights. On ties Shapiro's
/// heuristic keeps whichever candidate it happened to scan first; the
/// optimal strategy commits to the deeper subtree (smaller `w(n)`,
/// then smaller node id), which is what makes it a strict refinement —
/// never more questions, often fewer.
pub struct DqOptStrategy;

impl TraversalStrategy for DqOptStrategy {
    fn slug(&self) -> &'static str {
        "dq_opt"
    }

    fn next_query(&self, tree: &ExecTree, knowledge: &Knowledge<'_>) -> Option<NodeId> {
        let cleared = knowledge.cleared();
        let suspects = live_descendants(tree, knowledge.focus(), cleared);
        if suspects.is_empty() {
            return None;
        }
        // The focus is a candidate bug location too: it contributes one
        // unit of suspect weight that no answer below can remove.
        let total = suspects.len() + 1;
        optimal_split(tree, cleared, &suspects, total, &|_| 1)
    }
}

/// The store-aware strategy: nodes the [`AnswerProbe`] can answer are
/// *free* — asking them consumes no live oracle turn — so the weight
/// of a suspect subtree is the number of *unanswered* nodes in it.
///
/// Selection order:
/// 1. While any live suspect is answerable from pooled knowledge, ask
///    the answerable node with the best optimal-split score: free
///    questions drain the pool in maximum-information order before a
///    single live question is spent.
/// 2. Once no free knowledge applies to the suspect set, fall back to
///    the optimal split over the remaining (all-unanswered) weights —
///    exactly [`DqOptStrategy`]. Without a probe the two strategies
///    are indistinguishable.
pub struct KnowledgeWeightedStrategy;

impl TraversalStrategy for KnowledgeWeightedStrategy {
    fn slug(&self) -> &'static str {
        "knowledge_weighted"
    }

    fn next_query(&self, tree: &ExecTree, knowledge: &Knowledge<'_>) -> Option<NodeId> {
        let cleared = knowledge.cleared();
        let suspects = live_descendants(tree, knowledge.focus(), cleared);
        if suspects.is_empty() {
            return None;
        }
        let answered: BTreeSet<NodeId> = suspects
            .iter()
            .copied()
            .filter(|&n| knowledge.is_answered(n))
            .collect();
        let weight_of = |n: NodeId| usize::from(!answered.contains(&n));
        let total = 1 + suspects.iter().map(|&n| weight_of(n)).sum::<usize>();
        if !answered.is_empty() {
            let free: Vec<NodeId> = suspects
                .iter()
                .copied()
                .filter(|n| answered.contains(n))
                .collect();
            return optimal_split(tree, cleared, &free, total, &weight_of);
        }
        optimal_split(tree, cleared, &suspects, total, &weight_of)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;

    fn tree_of(src: &str) -> (gadt_pascal::sema::Module, ExecTree) {
        let m = compile(src).unwrap();
        let cfg = gadt_pascal::cfg::lower(&m);
        let trace = gadt_analysis::dyntrace::record_trace(&m, &cfg, []).unwrap();
        let tree = gadt_trace::build_tree(&m, &trace);
        (m, tree)
    }

    #[test]
    fn top_down_asks_children_in_order_and_skips_cleared() {
        let (_m, tree) = tree_of(testprogs::SQRTEST);
        let focus = tree
            .preorder()
            .into_iter()
            .find(|&n| tree.node(n).children.len() >= 2)
            .expect("sqrtest has a multi-child node");
        let mut cleared = BTreeSet::new();
        let k = Knowledge::new(&tree, focus, &cleared, None);
        let first = TopDownStrategy.next_query(&tree, &k).unwrap();
        assert_eq!(tree.node(focus).children[0], first);
        cleared.insert(first);
        let k = Knowledge::new(&tree, focus, &cleared, None);
        let second = TopDownStrategy.next_query(&tree, &k).unwrap();
        assert_eq!(tree.node(focus).children[1], second);
    }

    #[test]
    fn exhausted_subtree_localizes_at_focus() {
        let (_m, tree) = tree_of(testprogs::PQR);
        let cleared: BTreeSet<NodeId> = tree
            .preorder()
            .into_iter()
            .filter(|&n| n != tree.root)
            .collect();
        let k = Knowledge::new(&tree, tree.root, &cleared, None);
        for s in [
            &TopDownStrategy as &dyn TraversalStrategy,
            &DivideAndQueryStrategy,
            &DqOptStrategy,
            &KnowledgeWeightedStrategy,
        ] {
            assert_eq!(s.next_query(&tree, &k), None, "{}", s.slug());
        }
    }

    #[test]
    fn every_strategy_picks_a_live_descendant_of_the_focus() {
        let (_m, tree) = tree_of(testprogs::SQRTEST);
        let cleared = BTreeSet::new();
        let k = Knowledge::new(&tree, tree.root, &cleared, None);
        let live: BTreeSet<NodeId> = live_descendants(&tree, tree.root, &cleared)
            .into_iter()
            .collect();
        for s in [
            &TopDownStrategy as &dyn TraversalStrategy,
            &DivideAndQueryStrategy,
            &DqOptStrategy,
            &KnowledgeWeightedStrategy,
        ] {
            let n = s.next_query(&tree, &k).unwrap();
            assert!(live.contains(&n), "{} picked a non-suspect", s.slug());
        }
    }

    #[test]
    fn dq_opt_never_scores_worse_than_shapiro_on_the_first_pick() {
        // Both minimize the same objective; the optimal tie-break can
        // only match or improve Shapiro's worst-case remaining weight.
        let (_m, tree) = tree_of(testprogs::SQRTEST);
        let cleared = BTreeSet::new();
        let k = Knowledge::new(&tree, tree.root, &cleared, None);
        let score = |n: NodeId| {
            let w = live_descendants(&tree, n, &cleared).len() + 1;
            let total = live_descendants(&tree, tree.root, &cleared).len() + 1;
            split_score(w, total)
        };
        let shapiro = DivideAndQueryStrategy.next_query(&tree, &k).unwrap();
        let opt = DqOptStrategy.next_query(&tree, &k).unwrap();
        assert!(score(opt) <= score(shapiro));
    }

    #[test]
    fn knowledge_weighted_without_probe_matches_dq_opt() {
        let (_m, tree) = tree_of(testprogs::SQRTEST);
        let mut cleared = BTreeSet::new();
        loop {
            let k = Knowledge::new(&tree, tree.root, &cleared, None);
            let a = DqOptStrategy.next_query(&tree, &k);
            let b = KnowledgeWeightedStrategy.next_query(&tree, &k);
            assert_eq!(a, b);
            match a {
                Some(n) => {
                    cleared.insert(n);
                }
                None => break,
            }
        }
    }

    struct FixedProbe(BTreeSet<NodeId>);
    impl AnswerProbe for FixedProbe {
        fn is_answered(&self, _tree: &ExecTree, node: NodeId) -> bool {
            self.0.contains(&node)
        }
    }

    #[test]
    fn knowledge_weighted_prefers_free_questions() {
        let (_m, tree) = tree_of(testprogs::SQRTEST);
        let cleared = BTreeSet::new();
        // Mark every live node answered: whatever gets picked must be
        // one of the free ones.
        let all: BTreeSet<NodeId> = live_descendants(&tree, tree.root, &cleared)
            .into_iter()
            .collect();
        let probe = FixedProbe(all.clone());
        let k = Knowledge::new(&tree, tree.root, &cleared, Some(&probe));
        let n = KnowledgeWeightedStrategy.next_query(&tree, &k).unwrap();
        assert!(all.contains(&n));
        assert!(k.is_answered(n));

        // With exactly one node answered, that node is asked first even
        // though it is not the best uniform split.
        let one: NodeId = *all.iter().last().unwrap();
        let probe = FixedProbe([one].into_iter().collect());
        let k = Knowledge::new(&tree, tree.root, &cleared, Some(&probe));
        assert_eq!(KnowledgeWeightedStrategy.next_query(&tree, &k), Some(one));
    }

    #[test]
    fn knowledge_without_probe_answers_nothing() {
        let (_m, tree) = tree_of(testprogs::PQR);
        let cleared = BTreeSet::new();
        let k = Knowledge::new(&tree, tree.root, &cleared, None);
        for n in tree.preorder() {
            assert!(!k.is_answered(n));
        }
    }
}
