//! Resumable debugging sessions — the pull-based half of the §3 debugger.
//!
//! [`crate::Debugger`] drives a whole session in one call by invoking an
//! oracle callback for every question. That is fine for a CLI but
//! impossible for a server that must park a session *between* requests.
//! This module splits the traversal into an explicit state machine:
//!
//! * [`DebugState`] owns the traversal state — the current (possibly
//!   pruned) execution tree, the cursor, the transcript — but borrows
//!   nothing; callers pass the module / trace / mapping on each call.
//! * [`DebugHandle`] owns everything (`Arc`ed module and trace), exposing
//!   the no-argument [`DebugHandle::next_question`] /
//!   [`DebugHandle::answer`] pump that `gadt-serve` holds in its session
//!   table across requests.
//!
//! The synchronous [`crate::Debugger`] is a thin driver loop over
//! [`DebugState`]; both paths produce byte-identical transcripts (pinned
//! by `handle_pump_matches_chain_oracle_on_golden_session` below).

use crate::debugger::{DebugConfig, DebugOutcome, DebugResult, TranscriptEntry};
use crate::oracle::Answer;
use crate::strategy::{AnswerProbe, Knowledge, TraversalStrategy};
use gadt_analysis::dyntrace::DynTrace;
use gadt_analysis::slice_dynamic::{dynamic_slice_output, SliceStats};
use gadt_pascal::sema::Module;
use gadt_pascal::Value;
use gadt_trace::{ExecTree, NodeId, NodeKind};
use gadt_transform::Mapping;
use std::collections::BTreeSet;
use std::sync::Arc;

/// The judgement a client passes back to [`DebugHandle::answer`] — the
/// same three-way answer the oracle chain produces (§3's `yes` / `no` /
/// `no, error on output k` / `don't know`).
pub type Verdict = Answer;

/// One pending oracle question, rendered and addressed.
#[derive(Debug, Clone, PartialEq)]
pub struct Question {
    /// The execution-tree node being asked about (valid in
    /// [`DebugHandle::tree`] / [`DebugState::tree`] *at the time the
    /// question was produced* — slicing replaces the tree).
    pub node: NodeId,
    /// The unit's display name (procedure/function or loop).
    pub unit: String,
    /// The rendered query, e.g.
    /// `computs(In y: 3, Out r1: 12, Out r2: 9)`.
    pub query: String,
    /// The unit's input values at this invocation.
    pub ins: Vec<(String, Value)>,
    /// The unit's output values at this invocation.
    pub outs: Vec<(String, Value)>,
}

/// What one [`DebugHandle::answer`] call did to the session.
#[derive(Debug, Clone)]
pub enum Step {
    /// The answer was recorded; more questions remain.
    Continue,
    /// The answer's error indication triggered a dynamic slice: the tree
    /// was pruned to the corresponding execution tree (§5.3.3) and the
    /// traversal restarted on it. More questions remain.
    Sliced(SliceStats),
    /// The session finished with this verdict (a slice may still have
    /// been taken on the way — check [`DebugHandle::slices_taken`]).
    Done(DebugResult),
}

/// Borrow-free debugging state machine.
///
/// Owns the current execution tree and the session transcript; the
/// module, trace, and optional transparency mapping are passed to each
/// call so the state itself can live in a session table indefinitely.
/// [`DebugHandle`] packages the two halves together for callers that
/// can afford owned (`Arc`ed) program artifacts.
///
/// Traversal is delegated to a [`TraversalStrategy`]: the state tracks
/// the *focus* (the deepest node known incorrect — the bug is in its
/// live subtree) and the set of nodes judged `Correct`/`DontKnow` so
/// far; the strategy chooses the next question from those two facts.
/// Judged nodes stay cleared across focus changes, so no strategy ever
/// re-asks an answered node; only a slice (which replaces the tree,
/// invalidating node ids) resets the set.
pub struct DebugState {
    tree: ExecTree,
    config: DebugConfig,
    strategy: Box<dyn TraversalStrategy>,
    probe: Option<Box<dyn AnswerProbe>>,
    /// Deepest node known to misbehave; never queried itself.
    focus: NodeId,
    /// Nodes judged `Correct`/`DontKnow` (their subtrees are exonerated).
    cleared: BTreeSet<NodeId>,
    pending: Option<Question>,
    transcript: Vec<TranscriptEntry>,
    slices_taken: usize,
    slice_stats: Vec<SliceStats>,
    done: Option<DebugResult>,
}

fn render(module: &Module, mapping: Option<&Mapping>, tree: &ExecTree, node: NodeId) -> String {
    match mapping {
        Some(m) => crate::transparency::render_query_original(m, module, tree, node),
        None => tree.render_node(node),
    }
}

impl DebugState {
    /// Starts a session over `tree` from `start` (assumed incorrect, not
    /// queried). A session over a node with no suspects is born finished:
    /// [`DebugState::next_question`] returns `None` immediately.
    pub fn new(
        module: &Module,
        mapping: Option<&Mapping>,
        tree: ExecTree,
        start: NodeId,
        config: DebugConfig,
    ) -> DebugState {
        let strategy = config.strategy.implementation();
        DebugState::with_strategy(module, mapping, tree, start, config, strategy, None)
    }

    /// Starts a session with an explicit strategy implementation and an
    /// optional [`AnswerProbe`] into pooled knowledge (consulted by
    /// knowledge-weighted strategies; never consumes an oracle turn).
    /// [`DebugState::new`] delegates here with
    /// [`crate::Strategy::implementation`] and no probe.
    pub fn with_strategy(
        module: &Module,
        mapping: Option<&Mapping>,
        tree: ExecTree,
        start: NodeId,
        config: DebugConfig,
        strategy: Box<dyn TraversalStrategy>,
        probe: Option<Box<dyn AnswerProbe>>,
    ) -> DebugState {
        let mut state = DebugState {
            tree,
            config,
            strategy,
            probe,
            focus: start,
            cleared: BTreeSet::new(),
            pending: None,
            transcript: Vec::new(),
            slices_taken: 0,
            slice_stats: Vec::new(),
            done: None,
        };
        state.settle(module, mapping);
        state
    }

    /// Attaches (or replaces) the pooled-knowledge probe mid-session and
    /// recomputes the pending question — probe-aware strategies may pick
    /// a different node once free answers become visible.
    pub fn attach_probe(
        &mut self,
        module: &Module,
        mapping: Option<&Mapping>,
        probe: Box<dyn AnswerProbe>,
    ) {
        self.probe = Some(probe);
        self.settle(module, mapping);
    }

    /// The current (possibly pruned) execution tree.
    pub fn tree(&self) -> &ExecTree {
        &self.tree
    }

    /// The pending question, or `None` when the session is finished.
    /// Idempotent: asking twice without answering returns the same
    /// question.
    pub fn next_question(&self) -> Option<&Question> {
        self.pending.as_ref()
    }

    /// The verdict, once the session has finished.
    pub fn result(&self) -> Option<&DebugResult> {
        self.done.as_ref()
    }

    /// Whether the session has finished.
    pub fn is_done(&self) -> bool {
        self.done.is_some()
    }

    /// Every query asked so far, in order.
    pub fn transcript(&self) -> &[TranscriptEntry] {
        &self.transcript
    }

    /// How many times slicing pruned the tree so far.
    pub fn slices_taken(&self) -> usize {
        self.slices_taken
    }

    /// Size accounting for each slice taken, in order.
    pub fn slice_stats(&self) -> &[SliceStats] {
        &self.slice_stats
    }

    /// Answers the pending question and advances the traversal. Calling
    /// after the session finished returns [`Step::Done`] again without
    /// touching the transcript.
    pub fn answer(
        &mut self,
        module: &Module,
        trace: &DynTrace,
        mapping: Option<&Mapping>,
        verdict: Verdict,
        source: &str,
    ) -> Step {
        if let Some(done) = &self.done {
            return Step::Done(done.clone());
        }
        let q = self
            .pending
            .as_ref()
            .expect("unfinished session always has a pending question");
        let node = q.node;
        self.transcript.push(TranscriptEntry {
            query: q.query.clone(),
            unit: q.unit.clone(),
            answer: verdict.clone(),
            source: source.to_string(),
        });
        let mut sliced: Option<SliceStats> = None;
        match verdict {
            Answer::Correct | Answer::DontKnow => {
                // The judged subtree is out of the suspect set for the
                // rest of the session — no strategy may re-ask it.
                self.cleared.insert(node);
            }
            Answer::Incorrect { wrong_output } => {
                sliced = self.apply_slice(module, trace, node, wrong_output);
                // After a slice the search restarts at the pruned root
                // (§8 steps 2 and 4); node ids belong to the replaced
                // tree, so the cleared set must be dropped with it.
                // Without a slice the search descends into the incorrect
                // node, never returning to its siblings; everything
                // judged so far stays cleared.
                if sliced.is_some() {
                    self.focus = self.tree.root;
                    self.cleared.clear();
                } else {
                    self.focus = node;
                }
            }
        }
        self.settle(module, mapping);
        match (&self.done, sliced) {
            (Some(r), _) => Step::Done(r.clone()),
            (None, Some(stats)) => Step::Sliced(stats),
            (None, None) => Step::Continue,
        }
    }

    /// Consumes the state into the same [`DebugOutcome`] the synchronous
    /// driver returns. An unfinished session reports
    /// [`DebugResult::NoBugFound`].
    pub fn into_outcome(self) -> DebugOutcome {
        DebugOutcome {
            result: self.done.unwrap_or(DebugResult::NoBugFound),
            transcript: self.transcript,
            slices_taken: self.slices_taken,
            slice_stats: self.slice_stats,
        }
    }

    /// §5.3.3: when a *specific* wrong output of a multi-output call is
    /// flagged, slice on it and prune the subtree. Returns the slice
    /// stats when a non-empty prune was taken (and replaces the tree).
    fn apply_slice(
        &mut self,
        module: &Module,
        trace: &DynTrace,
        node: NodeId,
        wrong_output: Option<usize>,
    ) -> Option<SliceStats> {
        if !self.config.slicing {
            return None;
        }
        let k = wrong_output?;
        let call = match &self.tree.node(node).kind {
            NodeKind::Call { call, .. } => *call,
            NodeKind::Loop { .. } => return None,
        };
        if self.tree.node(node).outs.len() <= 1 {
            return None;
        }
        let slice = dynamic_slice_output(module, trace, call, k);
        let pruned = self.tree.prune(node, &slice);
        if pruned.is_empty() {
            return None;
        }
        self.slices_taken += 1;
        let stats = slice.stats();
        self.slice_stats.push(stats);
        self.tree = pruned;
        Some(stats)
    }

    /// Recomputes the pending question from the strategy, or finishes
    /// the session when the focus's live subtree is exhausted (bug
    /// localized at the focus).
    fn settle(&mut self, module: &Module, mapping: Option<&Mapping>) {
        self.pending = None;
        if self.done.is_some() {
            return;
        }
        let focus = self.focus;
        let next = {
            let knowledge = Knowledge::new(&self.tree, focus, &self.cleared, self.probe.as_deref());
            self.strategy.next_query(&self.tree, &knowledge)
        };
        match next {
            Some(n) => {
                let node = self.tree.node(n);
                self.pending = Some(Question {
                    node: n,
                    unit: node.name.clone(),
                    query: render(module, mapping, &self.tree, n),
                    ins: node.ins.clone(),
                    outs: node.outs.clone(),
                });
            }
            None => {
                self.done = Some(DebugResult::BugLocalized {
                    unit: self.tree.node(focus).name.clone(),
                    rendering: render(module, mapping, &self.tree, focus),
                });
            }
        }
    }
}

/// An owned, resumable debugging session.
///
/// Holds the program artifacts (`Arc`ed module and trace, cloned
/// mapping) alongside a [`DebugState`], so a server can park it in a
/// session table and pump it one request at a time:
///
/// ```
/// use gadt::{DebugConfig, DebugHandle, Step, Verdict};
/// use std::sync::Arc;
///
/// let src = gadt_pascal::testprogs::PQR;
/// let module = Arc::new(gadt_pascal::compile(src).unwrap());
/// let cfg = gadt_pascal::cfg::lower(&module);
/// let trace =
///     Arc::new(gadt_analysis::dyntrace::record_trace(&module, &cfg, []).unwrap());
/// let tree = gadt_trace::build_tree(&module, &trace);
///
/// let mut handle = DebugHandle::new(module, trace, None, tree, DebugConfig::default());
/// while let Some(q) = handle.next_question().cloned() {
///     // p misbehaves, q is fine, r misbehaves — §3's session.
///     let verdict = match q.unit.as_str() {
///         "q" => Verdict::Correct,
///         _ => Verdict::Incorrect { wrong_output: None },
///     };
///     if let Step::Done(result) = handle.answer(verdict) {
///         let gadt::DebugResult::BugLocalized { unit, .. } = result else {
///             panic!()
///         };
///         assert_eq!(unit, "r");
///     }
/// }
/// assert!(handle.is_done());
/// ```
pub struct DebugHandle {
    module: Arc<Module>,
    trace: Arc<DynTrace>,
    mapping: Option<Mapping>,
    state: DebugState,
}

impl DebugHandle {
    /// Starts a session at the root of `tree` (the whole-program symptom).
    /// With `Some(mapping)`, queries render in terms of the *original*
    /// program (§6.1 transparency).
    pub fn new(
        module: Arc<Module>,
        trace: Arc<DynTrace>,
        mapping: Option<Mapping>,
        tree: ExecTree,
        config: DebugConfig,
    ) -> DebugHandle {
        let root = tree.root;
        DebugHandle::with_start(module, trace, mapping, tree, root, config)
    }

    /// Starts a session from an arbitrary known-incorrect node.
    pub fn with_start(
        module: Arc<Module>,
        trace: Arc<DynTrace>,
        mapping: Option<Mapping>,
        tree: ExecTree,
        start: NodeId,
        config: DebugConfig,
    ) -> DebugHandle {
        let state = DebugState::new(&module, mapping.as_ref(), tree, start, config);
        DebugHandle {
            module,
            trace,
            mapping,
            state,
        }
    }

    /// Attaches a pooled-knowledge probe (e.g. a
    /// [`crate::stored::StoreProbe`] over a shared store) so that
    /// probe-aware strategies can treat answerable nodes as free. The
    /// pending question is recomputed immediately.
    pub fn with_probe(mut self, probe: Box<dyn crate::strategy::AnswerProbe>) -> DebugHandle {
        self.state
            .attach_probe(&self.module, self.mapping.as_ref(), probe);
        self
    }

    /// The pending question, or `None` when the session is finished.
    pub fn next_question(&self) -> Option<&Question> {
        self.state.next_question()
    }

    /// Answers the pending question as the interactive user.
    pub fn answer(&mut self, verdict: Verdict) -> Step {
        self.answer_from(verdict, "user")
    }

    /// Answers the pending question, attributing it to a knowledge
    /// source (e.g. `"stored answer"` when a server pool answered).
    pub fn answer_from(&mut self, verdict: Verdict, source: &str) -> Step {
        self.state.answer(
            &self.module,
            &self.trace,
            self.mapping.as_ref(),
            verdict,
            source,
        )
    }

    /// The current (possibly pruned) execution tree.
    pub fn tree(&self) -> &ExecTree {
        self.state.tree()
    }

    /// The module the session debugs.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Whether the session has finished.
    pub fn is_done(&self) -> bool {
        self.state.is_done()
    }

    /// The verdict, once the session has finished.
    pub fn result(&self) -> Option<&DebugResult> {
        self.state.result()
    }

    /// Every query asked so far, in order.
    pub fn transcript(&self) -> &[TranscriptEntry] {
        self.state.transcript()
    }

    /// How many times slicing pruned the tree so far.
    pub fn slices_taken(&self) -> usize {
        self.state.slices_taken()
    }

    /// Size accounting for each slice taken, in order.
    pub fn slice_stats(&self) -> &[SliceStats] {
        self.state.slice_stats()
    }

    /// Consumes the handle into a [`DebugOutcome`] (an unfinished
    /// session reports [`DebugResult::NoBugFound`]).
    pub fn into_outcome(self) -> DebugOutcome {
        self.state.into_outcome()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debugger::{Debugger, Strategy};
    use crate::oracle::{ChainOracle, CountingOracle, Oracle, ReferenceOracle};
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;

    fn setup(src: &str) -> (Module, DynTrace, ExecTree) {
        let m = compile(src).unwrap();
        let cfg = gadt_pascal::cfg::lower(&m);
        let trace = gadt_analysis::dyntrace::record_trace(&m, &cfg, []).unwrap();
        let tree = gadt_trace::build_tree(&m, &trace);
        (m, trace, tree)
    }

    /// Pumps a handle with a reference oracle, mirroring what the
    /// synchronous driver does, and returns the outcome.
    fn pump(
        module: Arc<Module>,
        trace: Arc<DynTrace>,
        tree: ExecTree,
        fixed: &Module,
        config: DebugConfig,
    ) -> DebugOutcome {
        let mut oracle = CountingOracle::new(ReferenceOracle::new(fixed, []).unwrap());
        let mut handle = DebugHandle::new(module.clone(), trace, None, tree, config);
        let mut steps = 0usize;
        while let Some(q) = handle.next_question() {
            let node = q.node;
            let verdict = oracle.judge(&module, handle.tree(), node);
            handle.answer_from(verdict, oracle.source_name());
            steps += 1;
            assert!(steps < 10_000, "runaway session");
        }
        handle.into_outcome()
    }

    /// Acceptance pin: the pump reproduces the golden §8 transcript (7
    /// questions, 2 slices, decrement) identically to the ChainOracle
    /// driver path.
    #[test]
    fn handle_pump_matches_chain_oracle_on_golden_session() {
        let (m, trace, tree) = setup(testprogs::SQRTEST);
        let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();

        let mut chain = ChainOracle::new();
        chain.push(CountingOracle::new(
            ReferenceOracle::new(&fixed, []).unwrap(),
        ));
        let golden =
            Debugger::new(&m, &trace, DebugConfig::default()).run_program(&tree, &mut chain);

        let pumped = pump(
            Arc::new(m),
            Arc::new(trace),
            tree,
            &fixed,
            DebugConfig::default(),
        );

        assert_eq!(golden.result, pumped.result);
        assert_eq!(golden.slices_taken, 2);
        assert_eq!(pumped.slices_taken, golden.slices_taken);
        assert_eq!(pumped.slice_stats, golden.slice_stats);
        assert_eq!(golden.total_queries(), 7);
        assert_eq!(pumped.total_queries(), golden.total_queries());
        for (g, p) in golden.transcript.iter().zip(pumped.transcript.iter()) {
            assert_eq!(g.query, p.query);
            assert_eq!(g.unit, p.unit);
            assert_eq!(g.answer, p.answer);
            assert_eq!(g.source, p.source);
        }
        assert_eq!(golden.render_transcript(), pumped.render_transcript());
    }

    #[test]
    fn handle_pump_matches_driver_under_divide_and_query() {
        let (m, trace, tree) = setup(testprogs::SQRTEST);
        let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
        let config = DebugConfig {
            strategy: Strategy::DivideAndQuery,
            slicing: false,
        };

        let mut chain = ChainOracle::new();
        chain.push(CountingOracle::new(
            ReferenceOracle::new(&fixed, []).unwrap(),
        ));
        let golden = Debugger::new(&m, &trace, config).run_program(&tree, &mut chain);

        let pumped = pump(Arc::new(m), Arc::new(trace), tree, &fixed, config);
        assert_eq!(golden.result, pumped.result);
        let g: Vec<&str> = golden.transcript.iter().map(|t| t.unit.as_str()).collect();
        let p: Vec<&str> = pumped.transcript.iter().map(|t| t.unit.as_str()).collect();
        assert_eq!(g, p);
    }

    #[test]
    fn answering_a_finished_session_is_idempotent() {
        let (m, trace, tree) = setup(testprogs::PQR);
        let mut handle = DebugHandle::new(
            Arc::new(m),
            Arc::new(trace),
            None,
            tree,
            DebugConfig::default(),
        );
        while handle.next_question().is_some() {
            handle.answer(Verdict::Correct);
        }
        let before = handle.transcript().len();
        let Step::Done(result) = handle.answer(Verdict::Correct) else {
            panic!("finished session must keep reporting Done");
        };
        assert_eq!(Some(&result), handle.result());
        assert_eq!(handle.transcript().len(), before);
    }

    #[test]
    fn sliced_step_reports_stats() {
        let (m, trace, tree) = setup(testprogs::SQRTEST);
        let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
        let mut oracle = CountingOracle::new(ReferenceOracle::new(&fixed, []).unwrap());
        let module = Arc::new(m);
        let mut handle = DebugHandle::new(
            module.clone(),
            Arc::new(trace),
            None,
            tree,
            DebugConfig::default(),
        );
        let mut sliced_steps = 0usize;
        while let Some(q) = handle.next_question() {
            let node = q.node;
            let verdict = oracle.judge(&module, handle.tree(), node);
            match handle.answer_from(verdict, oracle.source_name()) {
                Step::Sliced(stats) => {
                    sliced_steps += 1;
                    assert!(stats.events > 0);
                }
                Step::Continue | Step::Done(_) => {}
            }
        }
        // §8 takes two slices; neither ends the session immediately.
        assert_eq!(sliced_steps, 2);
        assert_eq!(handle.slices_taken(), 2);
    }
}
