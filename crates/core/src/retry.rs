//! Retrying without test results (§5.3.2).
//!
//! "Of course the reliability of testing is largely dependent on the
//! tester. Hence, if the bug is not localized with this combined method
//! we must repeat the debugging without using the test results."
//!
//! A test database can be *wrong* in the dangerous direction: a frame
//! whose sampled runs all passed may still hide the bug, so the lookup
//! answers "correct" for a call that actually misbehaved and the
//! debugger walks past the defective subtree. [`debug_with_retry`]
//! detects the failed localization and repeats the session with the test
//! lookup disabled.

use crate::debugger::{DebugConfig, DebugOutcome, DebugResult, Debugger};
use crate::oracle::{Answer, ChainOracle, Oracle};
use crate::session::{PreparedProgram, TracedRun};
use crate::testlookup::TestLookup;
use gadt_pascal::sema::Module;
use gadt_trace::{ExecTree, NodeId};

/// The combined outcome of a debug-with-retry session.
#[derive(Debug, Clone)]
pub struct RetryOutcome {
    /// The final outcome (from the retry when one happened).
    pub outcome: DebugOutcome,
    /// Whether the session had to repeat without test results.
    pub retried: bool,
    /// The first attempt's outcome when a retry happened.
    pub first_attempt: Option<DebugOutcome>,
}

/// Runs a GADT session with the §5.3.2 retry policy: first with the test
/// database installed, and — if no bug is localized (every unit was
/// cleared, which is impossible when the symptom is real unless some
/// knowledge source lied) — once more consulting only `user_oracle`.
///
/// `localization_rejected` lets the caller veto a localization (the
/// paper's user inspects the blamed unit body and finds nothing wrong);
/// pass `|_| false` to accept any.
pub fn debug_with_retry(
    prepared: &PreparedProgram,
    run: &TracedRun,
    lookup: TestLookup,
    user_oracle: impl Oracle,
    config: DebugConfig,
    localization_rejected: impl Fn(&DebugResult) -> bool,
) -> RetryOutcome {
    // Wrap the user oracle so it can be reused for the retry.
    let user = std::rc::Rc::new(std::cell::RefCell::new(user_oracle));

    struct Shared<O>(std::rc::Rc<std::cell::RefCell<O>>, String);
    impl<O: Oracle> Oracle for Shared<O> {
        fn judge(&mut self, module: &Module, tree: &ExecTree, node: NodeId) -> Answer {
            self.0.borrow_mut().judge(module, tree, node)
        }
        fn source_name(&self) -> &str {
            &self.1
        }
    }

    let first = {
        let mut chain = ChainOracle::new();
        chain.push(lookup);
        chain.push(Shared(user.clone(), "user".to_string()));
        Debugger::new(&prepared.transformed.module, &run.trace, config)
            .run_program(&run.tree, &mut chain)
    };

    let failed =
        matches!(first.result, DebugResult::NoBugFound) || localization_rejected(&first.result);
    if !failed {
        return RetryOutcome {
            outcome: first,
            retried: false,
            first_attempt: None,
        };
    }

    // Repeat without the test results (§5.3.2).
    let second = {
        let mut chain = ChainOracle::new();
        chain.push(Shared(user, "user".to_string()));
        Debugger::new(&prepared.transformed.module, &run.trace, config)
            .run_program(&run.tree, &mut chain)
    };
    RetryOutcome {
        outcome: second,
        retried: true,
        first_attempt: Some(first),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ReferenceOracle;
    use crate::session::{prepare, run_traced};
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;
    use gadt_tgen::cases::{TestDb, TestReport};

    /// A test database that *lies*: it recorded a passing report for the
    /// frame the buggy decrement call falls into, so the lookup clears a
    /// defective unit and the first pass walks past the bug.
    fn lying_lookup() -> TestLookup {
        let mut db = TestDb::new("sum2");
        db.add(TestReport {
            code: "default".into(),
            inputs: vec![],
            outputs: vec![],
            passed: true,
        });
        let mut lookup = TestLookup::new();
        // Every input classifies into the (falsely) passing frame.
        lookup.register("sum2", db, Box::new(|_| Some("default".into())));
        lookup
    }

    #[test]
    fn lying_test_db_causes_mislocalization_then_retry_succeeds() {
        let buggy = compile(testprogs::SQRTEST).unwrap();
        let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
        let prepared = prepare(&buggy).unwrap();
        let run = run_traced(&prepared, []).unwrap();

        let result = debug_with_retry(
            &prepared,
            &run,
            lying_lookup(),
            ReferenceOracle::new(&fixed, []).unwrap(),
            DebugConfig::default(),
            // The user rejects any localization that is not in decrement
            // (they looked at the blamed body and found nothing wrong).
            |r| !matches!(r, DebugResult::BugLocalized { unit, .. } if unit == "decrement"),
        );

        assert!(result.retried, "the lying database must force a retry");
        let first = result.first_attempt.expect("first attempt recorded");
        // First attempt: sum2 was cleared by the (wrong) test report, so
        // the bug was blamed on partialsums instead.
        assert!(
            matches!(&first.result, DebugResult::BugLocalized { unit, .. } if unit != "decrement"),
            "{}",
            first.render_transcript()
        );
        // The retry without test results finds the real bug.
        assert!(
            matches!(&result.outcome.result, DebugResult::BugLocalized { unit, .. } if unit == "decrement"),
            "{}",
            result.outcome.render_transcript()
        );
    }

    #[test]
    fn honest_db_needs_no_retry() {
        let buggy = compile(testprogs::SQRTEST).unwrap();
        let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
        let prepared = prepare(&buggy).unwrap();
        let run = run_traced(&prepared, []).unwrap();
        let result = debug_with_retry(
            &prepared,
            &run,
            TestLookup::new(),
            ReferenceOracle::new(&fixed, []).unwrap(),
            DebugConfig::default(),
            |_| false,
        );
        assert!(!result.retried);
        assert!(matches!(
            &result.outcome.result,
            DebugResult::BugLocalized { unit, .. } if unit == "decrement"
        ));
    }
}
