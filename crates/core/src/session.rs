//! The full GADT pipeline (§5, Figure 3): transformation → tracing →
//! debugging with assertions, test-case lookup, slicing, and a final
//! user-level oracle.

use crate::debugger::{DebugConfig, DebugOutcome, Debugger};
use crate::oracle::ChainOracle;
use gadt_analysis::dyntrace::{DependenceRecorder, DynTrace};
use gadt_pascal::cfg::{lower, ProgramCfg};
use gadt_pascal::error::Result;
use gadt_pascal::interp::Interpreter;
use gadt_pascal::sema::Module;
use gadt_pascal::value::Value;
use gadt_trace::{build_tree, ExecTree};
use gadt_transform::{transform, Transformed};

/// Phase I output: the transformed program, ready for tracing.
#[derive(Debug, Clone)]
pub struct PreparedProgram {
    /// Transformed module plus construct mapping.
    pub transformed: Transformed,
    /// The transformed module's CFG.
    pub cfg: ProgramCfg,
}

/// Runs the transformation phase on a module.
///
/// # Errors
/// Propagates transformation errors (see
/// [`gadt_transform::transform`]).
///
/// # Examples
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gadt::session::prepare;
/// use gadt_pascal::{sema::compile, testprogs};
/// let m = compile(testprogs::SQRTEST)?;
/// let prepared = prepare(&m)?;
/// assert!(prepared.transformed.mapping.added_params.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn prepare(module: &Module) -> Result<PreparedProgram> {
    let transformed = transform(module)?;
    let cfg = lower(&transformed.module);
    Ok(PreparedProgram { transformed, cfg })
}

/// Phase II output: the traced execution.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// The dynamic trace (dependences + call records).
    pub trace: DynTrace,
    /// The execution tree built from it.
    pub tree: ExecTree,
    /// The program's captured output.
    pub output: String,
}

/// Runs the tracing phase: executes the transformed program on `input`,
/// recording the dynamic trace and building the execution tree (§5.2).
///
/// # Errors
/// Propagates runtime errors of the subject program.
pub fn run_traced(
    prepared: &PreparedProgram,
    input: impl IntoIterator<Item = Value>,
) -> Result<TracedRun> {
    let module = &prepared.transformed.module;
    let cd = gadt_analysis::controldep::ProgramControlDeps::compute(module, &prepared.cfg);
    let mut rec = DependenceRecorder::new(&cd);
    let mut interp = Interpreter::with_cfg(module, prepared.cfg.clone());
    interp.set_input(input);
    let outcome = interp.run_with(&mut rec)?;
    let trace = rec.finish();
    let tree = build_tree(module, &trace);
    Ok(TracedRun {
        trace,
        tree,
        output: outcome.output_text().to_string(),
    })
}

/// Phase III: debugs a traced run with the given oracle chain.
///
/// The chain should be ordered as the paper prescribes (§5.3.1):
/// assertions, then test-case lookup, then the user-level oracle
/// (interactive or simulated), typically wrapped in a
/// [`crate::oracle::CountingOracle`] to measure interactions.
pub fn debug(
    prepared: &PreparedProgram,
    run: &TracedRun,
    oracle: &mut ChainOracle<'_>,
    config: DebugConfig,
) -> DebugOutcome {
    let dbg = Debugger::new(&prepared.transformed.module, &run.trace, config)
        .with_mapping(&prepared.transformed.mapping);
    dbg.run_program(&run.tree, oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debugger::DebugResult;
    use crate::oracle::{CountingOracle, ReferenceOracle};
    use crate::testlookup::TestLookup;
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;
    use gadt_tgen::{cases, frames, spec};

    /// The paper's §8 session, end to end: the full GADT system on
    /// sqrtest with the arrsum test database installed.
    #[test]
    fn paper_section8_session() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
        let prepared = prepare(&m).unwrap();
        let run = run_traced(&prepared, []).unwrap();

        // Build the arrsum test database (§5.3.2).
        let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
        let g = frames::generate_frames(&s, Default::default());
        let tc = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
        let db =
            cases::run_cases(&m, "arrsum", &tc, &|ins, r| cases::arrsum_oracle(ins, r)).unwrap();
        let mut lookup = TestLookup::new();
        lookup.register("arrsum", db, Box::new(cases::arrsum_frame_selector));

        let mut chain = ChainOracle::new();
        chain.push(lookup);
        chain.push(CountingOracle::new(
            ReferenceOracle::new(&fixed, []).unwrap(),
        ));

        let out = debug(&prepared, &run, &mut chain, DebugConfig::default());
        let DebugResult::BugLocalized { unit, .. } = &out.result else {
            panic!("{}", out.render_transcript());
        };
        assert_eq!(unit, "decrement");
        assert_eq!(out.slices_taken, 2);
        // The arrsum query was answered by the test database, not the
        // user: 7 queries total, 6 from the simulated user.
        assert_eq!(out.total_queries(), 7, "{}", out.render_transcript());
        let arrsum_entry = out
            .transcript
            .iter()
            .find(|t| t.unit == "arrsum")
            .expect("arrsum was queried");
        assert_eq!(arrsum_entry.source, "test database");
        assert_eq!(
            out.queries_from("reference"),
            6,
            "{}",
            out.render_transcript()
        );
    }

    #[test]
    fn session_on_program_needing_transformation() {
        // A buggy program with global side effects: the pipeline must
        // transform, trace, and localize.
        let src = "program t; var total: integer;
             procedure addsq(k: integer);
             begin total := total + k * k + 1 end; (* bug: + 1 *)
             procedure run3;
             begin addsq(1); addsq(2); addsq(3) end;
             begin total := 0; run3; writeln(total) end.";
        let fixed_src = src.replace("k * k + 1", "k * k");
        let m = compile(src).unwrap();
        let fixed = compile(&fixed_src).unwrap();
        let prepared = prepare(&m).unwrap();
        // The transformed program exposes `total` as a parameter.
        assert!(!prepared.transformed.mapping.added_params.is_empty());
        let run = run_traced(&prepared, []).unwrap();
        assert_eq!(run.output, "17\n"); // 0+2+5+10

        // Reference oracle over the *transformed* fixed program, so the
        // In/Out shapes match.
        let fixed_prepared = prepare(&fixed).unwrap();
        let mut chain = ChainOracle::new();
        chain.push(ReferenceOracle::new(&fixed_prepared.transformed.module, []).unwrap());
        // Keep the transformed reference module alive for the oracle.
        let out = {
            let mut chain2 = ChainOracle::new();
            let r = ReferenceOracle::new(&fixed_prepared.transformed.module, []).unwrap();
            chain2.push(r);
            debug(&prepared, &run, &mut chain2, DebugConfig::default())
        };
        let DebugResult::BugLocalized { unit, .. } = &out.result else {
            panic!("{}", out.render_transcript());
        };
        assert_eq!(unit, "addsq", "{}", out.render_transcript());
    }

    #[test]
    fn traced_run_output_matches_plain_run() {
        let m = compile(testprogs::SECTION6_GOTO).unwrap();
        let prepared = prepare(&m).unwrap();
        let run = run_traced(&prepared, []).unwrap();
        assert_eq!(run.output, "1001\n");
    }

    #[test]
    fn exit_parameters_visible_in_tree_after_transformation() {
        let m = compile(testprogs::SECTION6_GOTO).unwrap();
        let prepared = prepare(&m).unwrap();
        let run = run_traced(&prepared, []).unwrap();
        let tm = &prepared.transformed.module;
        let q = run.tree.find_call(tm, "q").unwrap();
        let rendering = run.tree.render_node(q);
        // q's exit condition (the §6.1 "non-local goto result") is an Out
        // value of the call.
        assert!(rendering.contains("exitcond_q: 1"), "{rendering}");
    }
}

#[cfg(test)]
mod transparency_session_tests {
    use super::*;
    use crate::debugger::DebugConfig;
    use crate::oracle::{Answer, ChainOracle, FnOracle};
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;

    /// §6.1: session transcripts over a transformed program present the
    /// original constructs — globals as globals, exit parameters as
    /// non-local-goto questions.
    #[test]
    fn session_transcripts_are_transparent() {
        let m = compile(testprogs::SECTION6_GOTO).unwrap();
        let prepared = prepare(&m).unwrap();
        let run = run_traced(&prepared, []).unwrap();
        let mut chain = ChainOracle::new();
        // Everything "incorrect" so the traversal visits q and records it.
        chain.push(FnOracle::new("probe", |_m: &Module, t: &ExecTree, n| {
            if t.node(n).name == "q" {
                Answer::Incorrect { wrong_output: None }
            } else {
                Answer::Incorrect { wrong_output: None }
            }
        }));
        let out = debug(&prepared, &run, &mut chain, DebugConfig::default());
        let q_entry = out
            .transcript
            .iter()
            .find(|t| t.unit == "q")
            .expect("q queried");
        assert!(
            q_entry
                .query
                .contains("performs the non-local goto to label 9"),
            "{}",
            q_entry.query
        );
        assert!(!q_entry.query.contains("exitcond"), "{}", q_entry.query);
    }
}

/// One-call convenience: debug `buggy_source` against `fixed_source` (the
/// reference implementation standing in for the user), with slicing
/// enabled and no test database.
///
/// # Errors
/// Propagates compile, transformation, and runtime errors of either
/// program.
///
/// # Examples
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gadt::debugger::DebugResult;
/// let outcome = gadt::session::quick_debug(
///     "program t; var r: integer;
///      function sq(x: integer): integer; begin sq := x * x + 1 end;
///      begin r := sq(6); writeln(r) end.",
///     "program t; var r: integer;
///      function sq(x: integer): integer; begin sq := x * x end;
///      begin r := sq(6); writeln(r) end.",
///     [],
/// )?;
/// assert!(matches!(outcome.result,
///     DebugResult::BugLocalized { ref unit, .. } if unit == "sq"));
/// # Ok(())
/// # }
/// ```
pub fn quick_debug(
    buggy_source: &str,
    fixed_source: &str,
    input: impl IntoIterator<Item = Value> + Clone,
) -> Result<DebugOutcome> {
    let buggy = gadt_pascal::sema::compile(buggy_source)?;
    let fixed = gadt_pascal::sema::compile(fixed_source)?;
    let prepared = prepare(&buggy)?;
    let run = run_traced(&prepared, input.clone())?;
    let mut chain = ChainOracle::new();
    chain.push(crate::oracle::CountingOracle::new(
        crate::oracle::ReferenceOracle::new(&fixed, input)?,
    ));
    Ok(debug(&prepared, &run, &mut chain, DebugConfig::default()))
}
