//! The full GADT pipeline (§5, Figure 3): transformation → tracing →
//! debugging with assertions, test-case lookup, slicing, and a final
//! user-level oracle. Batch entry points ([`run_traced_batch`],
//! [`trace_batch`]) trace many inputs in parallel; the `*_observed`
//! variants additionally record spans and counters into a
//! [`gadt_obs::Recorder`], from whose journal the historical
//! [`PhaseTimings`] roll-up is derived.

use crate::debugger::{DebugConfig, DebugOutcome, Debugger};
use crate::oracle::ChainOracle;
use gadt_analysis::dyntrace::{DependenceRecorder, DynTrace};
use gadt_exec::BatchExecutor;
use gadt_obs::{Journal, Recorder};
use gadt_pascal::cfg::{lower, ProgramCfg};
use gadt_pascal::error::Result;
use gadt_pascal::interp::{Interpreter, Limits, Monitor, Outcome};
use gadt_pascal::sema::Module;
use gadt_pascal::value::Value;
use gadt_trace::{build_tree, ExecTree};
use gadt_transform::{transform_observed, Transformed};
use gadt_vm::{Vm, VmProgram};
use std::sync::Arc;

/// The per-phase wall-clock roll-up, re-exported from `gadt-obs` where
/// it now lives (derive one from a journal via
/// [`gadt_obs::Journal::phase_timings`]).
pub use gadt_obs::PhaseTimings;

/// The execution-engine selector, re-exported from `gadt-vm` (select one
/// via [`PreparedProgram::with_engine`] or the facade's
/// `Compiled::with_engine`).
pub use gadt_vm::Engine;

/// Phase I output: the transformed program, ready for tracing.
#[derive(Debug, Clone)]
pub struct PreparedProgram {
    /// Transformed module plus construct mapping.
    pub transformed: Transformed,
    /// The transformed module's CFG, lowered once and shared by every
    /// run (including all batch workers — no per-run clone).
    pub cfg: Arc<ProgramCfg>,
    /// Which engine executes traced runs.
    engine: Engine,
    /// The compiled bytecode program, present iff `engine` is
    /// [`Engine::Vm`]. Compiled once, shared by every run (including all
    /// batch workers).
    vm: Option<Arc<VmProgram>>,
}

impl PreparedProgram {
    /// Selects the execution engine for every later traced run. For
    /// [`Engine::Vm`] this compiles the transformed CFG to bytecode once;
    /// the program is shared by all subsequent (and parallel) runs.
    /// Traces, slices, and journals are byte-identical across engines.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self.vm = match engine {
            Engine::TreeWalker => None,
            Engine::Vm => Some(Arc::new(VmProgram::compile(
                &self.transformed.module,
                &self.cfg,
            ))),
        };
        self
    }

    /// The selected execution engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Runs the transformed program on the selected engine.
    ///
    /// # Errors
    /// Propagates runtime errors of the subject program (identical
    /// across engines, message and span).
    pub fn execute(
        &self,
        input: Vec<Value>,
        limits: Limits,
        monitor: &mut dyn Monitor,
    ) -> Result<Outcome> {
        let module = &self.transformed.module;
        match &self.vm {
            None => {
                let mut interp = Interpreter::with_shared_cfg(module, Arc::clone(&self.cfg));
                interp.set_limits(limits);
                interp.set_input(input);
                interp.run_with(monitor)
            }
            Some(program) => {
                let mut vm = Vm::new(module, program);
                vm.set_limits(limits);
                vm.set_input(input);
                vm.run_with(monitor)
            }
        }
    }

    /// Monitor-free run: identical output, step count, final globals,
    /// and errors to [`PreparedProgram::execute`] with a no-op monitor,
    /// but on [`Engine::Vm`] all event construction and read/write-set
    /// bookkeeping is statically compiled out. This is the kill-check /
    /// verdict-only entry point.
    ///
    /// # Errors
    /// Same conditions as [`PreparedProgram::execute`].
    pub fn execute_fast(&self, input: Vec<Value>, limits: Limits) -> Result<Outcome> {
        let module = &self.transformed.module;
        match &self.vm {
            None => {
                let mut interp = Interpreter::with_shared_cfg(module, Arc::clone(&self.cfg));
                interp.set_limits(limits);
                interp.set_input(input);
                interp.run_with(&mut gadt_pascal::interp::NoopMonitor)
            }
            Some(program) => {
                let mut vm = Vm::new(module, program);
                vm.set_limits(limits);
                vm.set_input(input);
                vm.run()
            }
        }
    }
}

/// Runs the transformation phase on a module.
///
/// # Errors
/// Propagates transformation errors (see
/// [`gadt_transform::transform`]).
///
/// # Examples
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gadt::session::prepare;
/// use gadt_pascal::{sema::compile, testprogs};
/// let m = compile(testprogs::SQRTEST)?;
/// let prepared = prepare(&m)?;
/// assert!(prepared.transformed.mapping.added_params.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn prepare(module: &Module) -> Result<PreparedProgram> {
    prepare_observed(module, &mut Recorder::disabled())
}

/// [`prepare`] with instrumentation: the transformation runs inside a
/// `transform` span with its round/growth counters (see
/// [`gadt_transform::transform_observed`]), so a later
/// [`gadt_obs::Journal::phase_timings`] attributes Phase I correctly.
///
/// # Errors
/// Same as [`prepare`].
pub fn prepare_observed(module: &Module, rec: &mut Recorder) -> Result<PreparedProgram> {
    let transformed = transform_observed(module, rec)?;
    let cfg = lower(&transformed.module);
    let prepared = PreparedProgram {
        transformed,
        cfg: Arc::new(cfg),
        engine: Engine::TreeWalker,
        vm: None,
    };
    // Select the workspace-wide default engine (the compiled VM); the
    // tree-walker remains available via `with_engine` as the
    // differential reference.
    Ok(prepared.with_engine(Engine::default()))
}

/// Phase II output: the traced execution.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// The dynamic trace (dependences + call records).
    pub trace: DynTrace,
    /// The execution tree built from it.
    pub tree: ExecTree,
    /// The program's captured output.
    pub output: String,
    /// Which engine produced this run (provenance: server responses echo
    /// it without re-deriving it from the prepared program).
    pub engine: Engine,
    /// The interpreter limits the run executed under.
    pub limits: Limits,
}

/// Runs the tracing phase: executes the transformed program on `input`,
/// recording the dynamic trace and building the execution tree (§5.2).
///
/// # Errors
/// Propagates runtime errors of the subject program.
pub fn run_traced(
    prepared: &PreparedProgram,
    input: impl IntoIterator<Item = Value>,
) -> Result<TracedRun> {
    run_traced_limited(prepared, input, Limits::default())
}

/// Like [`run_traced`] but with interpreter [`Limits`] — the mutation
/// harness's entry point: injected faults routinely produce runaway loops
/// or unbounded recursion, and a step budget turns those into clean
/// runtime errors (classified as *crashed* mutants) instead of hangs.
///
/// # Errors
/// Propagates runtime errors of the subject program, including limit
/// exhaustion.
///
/// [`Limits`]: gadt_pascal::interp::Limits
pub fn run_traced_limited(
    prepared: &PreparedProgram,
    input: impl IntoIterator<Item = Value>,
    limits: gadt_pascal::interp::Limits,
) -> Result<TracedRun> {
    let module = &prepared.transformed.module;
    let cd = gadt_analysis::controldep::ProgramControlDeps::compute(module, &prepared.cfg);
    let mut rec = DependenceRecorder::new(&cd);
    let outcome = prepared.execute(input.into_iter().collect(), limits, &mut rec)?;
    let trace = rec.finish();
    let tree = build_tree(module, &trace);
    Ok(TracedRun {
        trace,
        tree,
        output: outcome.output_text().to_string(),
        engine: prepared.engine(),
        limits,
    })
}

/// Monitor-free, limit-bounded run — the mutation campaign's kill-check
/// screen: only the outcome (output, step count, final globals) or the
/// runtime error is produced, with no trace, tree, or event stream. On
/// [`Engine::Vm`] the observation machinery is statically compiled out;
/// results are byte-identical to a monitored [`run_traced_limited`]
/// run's outcome on either engine.
///
/// # Errors
/// Propagates runtime errors of the subject program, including limit
/// exhaustion.
pub fn run_fast_limited(
    prepared: &PreparedProgram,
    input: impl IntoIterator<Item = Value>,
    limits: Limits,
) -> Result<Outcome> {
    prepared.execute_fast(input.into_iter().collect(), limits)
}

/// Runs the tracing phase on many inputs in parallel: each input gets
/// its own interpreter and dependence recorder on one of `threads`
/// workers (`0` = all cores); the control-dependence analysis is
/// computed once and shared. Results come back in input order and are
/// identical to per-input [`run_traced`] calls.
///
/// # Errors
/// Propagates the runtime error of the lowest-indexed failing input —
/// the same error a sequential loop would surface first.
pub fn run_traced_batch(
    prepared: &PreparedProgram,
    inputs: Vec<Vec<Value>>,
    threads: usize,
) -> Result<Vec<TracedRun>> {
    run_traced_batch_observed(prepared, inputs, threads, &mut Recorder::disabled())
}

/// [`run_traced_batch`] with instrumentation: the batch runs inside a
/// `trace` span tagged with the input count; every input records its
/// trace sizes (`trace.runs`, `trace.events`, …) and execution-tree size
/// (`tree.nodes`) into a per-input recorder, merged back in input order
/// so the journal is thread-count invariant.
///
/// # Errors
/// Same as [`run_traced_batch`].
pub fn run_traced_batch_observed(
    prepared: &PreparedProgram,
    inputs: Vec<Vec<Value>>,
    threads: usize,
    rec: &mut Recorder,
) -> Result<Vec<TracedRun>> {
    let module = &prepared.transformed.module;
    let cd = gadt_analysis::controldep::ProgramControlDeps::compute(module, &prepared.cfg);
    let pool = BatchExecutor::new(threads);
    let span = gadt_obs::span!(rec, "trace", inputs = inputs.len());
    let result = pool.try_run_observed(inputs, rec, |_, input, irec| {
        let mut drec = DependenceRecorder::new(&cd);
        let outcome = prepared.execute(input, Limits::default(), &mut drec)?;
        let trace = drec.finish();
        let tree = build_tree(module, &trace);
        trace.observe(irec);
        tree.observe(irec);
        Ok(TracedRun {
            trace,
            tree,
            output: outcome.output_text().to_string(),
            engine: prepared.engine(),
            limits: Limits::default(),
        })
    });
    rec.exit(span);
    result
}

/// The result of a timed batch session: Phase I output, one traced run
/// per input, the observability journal of both phases, and the
/// per-phase timings derived from it.
#[derive(Debug)]
pub struct BatchTraced {
    /// Phase I output (shared by every run).
    pub prepared: PreparedProgram,
    /// One traced run per input, in input order.
    pub runs: Vec<TracedRun>,
    /// The structured journal of the transform and trace phases: spans,
    /// per-run trace/tree size counters, and transform round counts.
    pub journal: Journal,
    /// Wall-clock per phase, derived from `journal` (`debug` is zero;
    /// fill it via [`debug_timed`] when a debugging phase follows).
    pub timings: PhaseTimings,
}

/// Batch entry point: transforms `module` once, then traces every input
/// of the batch in parallel on `threads` workers (`0` = all cores),
/// recording per-phase wall-clock timings.
///
/// # Errors
/// Propagates transformation errors and the first (by input index)
/// runtime error.
///
/// # Examples
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gadt_pascal::{sema::compile, value::Value};
/// let m = compile(
///     "program t; var n, s, i: integer;
///      begin read(n); s := 0; for i := 1 to n do s := s + i; writeln(s) end.",
/// )?;
/// let inputs: Vec<Vec<Value>> = (1..=8).map(|n| vec![Value::Int(n)]).collect();
/// let batch = gadt::session::trace_batch(&m, inputs, 0)?;
/// assert_eq!(batch.runs.len(), 8);
/// assert_eq!(batch.runs[3].output, "10\n"); // 1+2+3+4
/// assert!(batch.timings.total() > std::time::Duration::ZERO);
/// assert_eq!(batch.journal.counter("trace.runs"), 8);
/// # Ok(())
/// # }
/// ```
pub fn trace_batch(
    module: &Module,
    inputs: Vec<Vec<Value>>,
    threads: usize,
) -> Result<BatchTraced> {
    let mut rec = Recorder::new();
    let prepared = prepare_observed(module, &mut rec)?;
    let runs = run_traced_batch_observed(&prepared, inputs, threads, &mut rec)?;
    let journal = rec.finish();
    let timings = journal.phase_timings();
    Ok(BatchTraced {
        prepared,
        runs,
        journal,
        timings,
    })
}

/// Like [`debug`] but also measures the phase's wall-clock, recording it
/// into `timings.debug` (accumulating across calls, so a batch of debug
/// sessions sums into one Phase III figure).
pub fn debug_timed(
    prepared: &PreparedProgram,
    run: &TracedRun,
    oracle: &mut ChainOracle<'_>,
    config: DebugConfig,
    timings: &mut PhaseTimings,
) -> DebugOutcome {
    let mut rec = Recorder::new();
    let outcome = debug_observed(prepared, run, oracle, config, &mut rec);
    timings.debug += rec.finish().phase_timings().debug;
    outcome
}

/// Phase III: debugs a traced run with the given oracle chain.
///
/// The chain should be ordered as the paper prescribes (§5.3.1):
/// assertions, then test-case lookup, then the user-level oracle
/// (interactive or simulated), typically wrapped in a
/// [`crate::oracle::CountingOracle`] to measure interactions.
pub fn debug(
    prepared: &PreparedProgram,
    run: &TracedRun,
    oracle: &mut ChainOracle<'_>,
    config: DebugConfig,
) -> DebugOutcome {
    debug_observed(prepared, run, oracle, config, &mut Recorder::disabled())
}

/// [`debug`] with instrumentation: the session runs inside a `debug`
/// span (tagged with the slicing setting), and every question lands in
/// the journal as a `question` point event with `unit`/`source`/`answer`
/// fields plus the counters `debug.questions` and
/// `debug.questions.by_source.<slug>`; every accepted prune adds a
/// `slice` event and `debug.slices`.
pub fn debug_observed(
    prepared: &PreparedProgram,
    run: &TracedRun,
    oracle: &mut ChainOracle<'_>,
    config: DebugConfig,
    rec: &mut Recorder,
) -> DebugOutcome {
    debug_observed_with_probe(prepared, run, oracle, config, None, rec)
}

/// [`debug_observed`] with an optional pooled-knowledge probe for
/// knowledge-aware traversal strategies (see
/// [`crate::strategy::AnswerProbe`]): the probe weighs nodes during
/// question selection without consuming oracle turns.
pub fn debug_observed_with_probe(
    prepared: &PreparedProgram,
    run: &TracedRun,
    oracle: &mut ChainOracle<'_>,
    config: DebugConfig,
    probe: Option<Box<dyn crate::strategy::AnswerProbe>>,
    rec: &mut Recorder,
) -> DebugOutcome {
    let span = gadt_obs::span!(rec, "debug", slicing = config.slicing);
    let outcome = {
        let mut dbg = Debugger::new(&prepared.transformed.module, &run.trace, config)
            .with_mapping(&prepared.transformed.mapping)
            .with_obs(rec);
        if let Some(p) = probe {
            dbg = dbg.with_probe(p);
        }
        dbg.run_program(&run.tree, oracle)
    };
    rec.exit(span);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debugger::DebugResult;
    use crate::oracle::{CountingOracle, ReferenceOracle};
    use crate::testlookup::TestLookup;
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;
    use gadt_tgen::{cases, frames, spec};

    /// The paper's §8 session, end to end: the full GADT system on
    /// sqrtest with the arrsum test database installed.
    #[test]
    fn paper_section8_session() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
        let prepared = prepare(&m).unwrap();
        let run = run_traced(&prepared, []).unwrap();

        // Build the arrsum test database (§5.3.2).
        let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
        let g = frames::generate_frames(&s, Default::default());
        let tc = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
        let db =
            cases::run_cases(&m, "arrsum", &tc, &|ins, r| cases::arrsum_oracle(ins, r)).unwrap();
        let mut lookup = TestLookup::new();
        lookup.register("arrsum", db, Box::new(cases::arrsum_frame_selector));

        let mut chain = ChainOracle::new();
        chain.push(lookup);
        chain.push(CountingOracle::new(
            ReferenceOracle::new(&fixed, []).unwrap(),
        ));

        let out = debug(&prepared, &run, &mut chain, DebugConfig::default());
        let DebugResult::BugLocalized { unit, .. } = &out.result else {
            panic!("{}", out.render_transcript());
        };
        assert_eq!(unit, "decrement");
        assert_eq!(out.slices_taken, 2);
        // The arrsum query was answered by the test database, not the
        // user: 7 queries total, 6 from the simulated user.
        assert_eq!(out.total_queries(), 7, "{}", out.render_transcript());
        let arrsum_entry = out
            .transcript
            .iter()
            .find(|t| t.unit == "arrsum")
            .expect("arrsum was queried");
        assert_eq!(arrsum_entry.source, "test database");
        assert_eq!(
            out.queries_from("reference"),
            6,
            "{}",
            out.render_transcript()
        );
    }

    #[test]
    fn session_on_program_needing_transformation() {
        // A buggy program with global side effects: the pipeline must
        // transform, trace, and localize.
        let src = "program t; var total: integer;
             procedure addsq(k: integer);
             begin total := total + k * k + 1 end; (* bug: + 1 *)
             procedure run3;
             begin addsq(1); addsq(2); addsq(3) end;
             begin total := 0; run3; writeln(total) end.";
        let fixed_src = src.replace("k * k + 1", "k * k");
        let m = compile(src).unwrap();
        let fixed = compile(&fixed_src).unwrap();
        let prepared = prepare(&m).unwrap();
        // The transformed program exposes `total` as a parameter.
        assert!(!prepared.transformed.mapping.added_params.is_empty());
        let run = run_traced(&prepared, []).unwrap();
        assert_eq!(run.output, "17\n"); // 0+2+5+10

        // Reference oracle over the *transformed* fixed program, so the
        // In/Out shapes match.
        let fixed_prepared = prepare(&fixed).unwrap();
        let mut chain = ChainOracle::new();
        chain.push(ReferenceOracle::new(&fixed_prepared.transformed.module, []).unwrap());
        // Keep the transformed reference module alive for the oracle.
        let out = {
            let mut chain2 = ChainOracle::new();
            let r = ReferenceOracle::new(&fixed_prepared.transformed.module, []).unwrap();
            chain2.push(r);
            debug(&prepared, &run, &mut chain2, DebugConfig::default())
        };
        let DebugResult::BugLocalized { unit, .. } = &out.result else {
            panic!("{}", out.render_transcript());
        };
        assert_eq!(unit, "addsq", "{}", out.render_transcript());
    }

    #[test]
    fn traced_run_output_matches_plain_run() {
        let m = compile(testprogs::SECTION6_GOTO).unwrap();
        let prepared = prepare(&m).unwrap();
        let run = run_traced(&prepared, []).unwrap();
        assert_eq!(run.output, "1001\n");
    }

    #[test]
    fn exit_parameters_visible_in_tree_after_transformation() {
        let m = compile(testprogs::SECTION6_GOTO).unwrap();
        let prepared = prepare(&m).unwrap();
        let run = run_traced(&prepared, []).unwrap();
        let tm = &prepared.transformed.module;
        let q = run.tree.find_call(tm, "q").unwrap();
        let rendering = run.tree.render_node(q);
        // q's exit condition (the §6.1 "non-local goto result") is an Out
        // value of the call.
        assert!(rendering.contains("exitcond_q: 1"), "{rendering}");
    }
}

#[cfg(test)]
mod batch_session_tests {
    use super::*;
    use crate::debugger::DebugResult;
    use crate::oracle::{CountingOracle, ReferenceOracle};
    use gadt_pascal::sema::compile;
    use std::time::Duration;

    const SUMMER: &str = "program t; var n, s, i: integer;
         begin read(n); s := 0; for i := 1 to n do s := s + i; writeln(s) end.";

    #[test]
    fn batch_tracing_equals_sequential_tracing() {
        let m = compile(SUMMER).unwrap();
        let prepared = prepare(&m).unwrap();
        let inputs: Vec<Vec<Value>> = (1..=6).map(|n| vec![Value::Int(n)]).collect();
        let sequential: Vec<TracedRun> = inputs
            .iter()
            .map(|i| run_traced(&prepared, i.clone()).unwrap())
            .collect();
        for threads in [1, 2, 8] {
            let batch = run_traced_batch(&prepared, inputs.clone(), threads).unwrap();
            assert_eq!(batch.len(), sequential.len());
            for (b, s) in batch.iter().zip(&sequential) {
                assert_eq!(b.output, s.output, "threads={threads}");
                assert_eq!(b.trace.events.len(), s.trace.events.len());
                assert_eq!(b.tree.render(b.tree.root), s.tree.render(s.tree.root));
            }
        }
    }

    #[test]
    fn batch_error_is_the_first_inputs_error() {
        // Input 2 underflows the read; inputs after it would too.
        let m = compile(SUMMER).unwrap();
        let prepared = prepare(&m).unwrap();
        let inputs = vec![vec![Value::Int(1)], vec![], vec![]];
        let err = run_traced_batch(&prepared, inputs, 4).unwrap_err();
        let seq_err = run_traced(&prepared, []).unwrap_err();
        assert_eq!(format!("{err}"), format!("{seq_err}"));
    }

    #[test]
    fn trace_batch_records_phase_timings_and_journal() {
        let m = compile(SUMMER).unwrap();
        let inputs: Vec<Vec<Value>> = (1..=4).map(|n| vec![Value::Int(n)]).collect();
        let batch = trace_batch(&m, inputs, 2).unwrap();
        assert_eq!(batch.runs.len(), 4);
        assert_eq!(batch.runs[2].output, "6\n");
        assert!(batch.timings.trace > Duration::ZERO);
        assert_eq!(batch.timings.debug, Duration::ZERO);
        assert_eq!(
            batch.timings.total(),
            batch.timings.transform + batch.timings.trace
        );
        let rendered = format!("{}", batch.timings);
        assert!(rendered.contains("transform"), "{rendered}");
        // The journal carries the structured view of the same phases.
        assert_eq!(batch.journal.counter("trace.runs"), 4);
        assert_eq!(
            batch.journal.counter("tree.built"),
            4,
            "{}",
            batch.journal.render_summary()
        );
        assert!(batch.journal.counter("trace.events") > 0);
        assert_eq!(batch.journal.phase_timings(), batch.timings);
    }

    #[test]
    fn traced_runs_echo_engine_and_limits_provenance() {
        let m = compile(SUMMER).unwrap();
        let prepared = prepare(&m).unwrap();
        let run = run_traced(&prepared, vec![Value::Int(3)]).unwrap();
        assert_eq!(run.engine, prepared.engine());
        assert_eq!(run.limits.max_steps, Limits::default().max_steps);

        let tight = Limits {
            max_steps: 1_000,
            max_depth: 32,
        };
        let limited = run_traced_limited(&prepared, vec![Value::Int(3)], tight).unwrap();
        assert_eq!(limited.limits.max_steps, 1_000);
        assert_eq!(limited.limits.max_depth, 32);

        let tree = prepared.clone().with_engine(Engine::TreeWalker);
        let batch = run_traced_batch(&tree, vec![vec![Value::Int(2)]], 1).unwrap();
        assert_eq!(batch[0].engine, Engine::TreeWalker);
    }

    #[test]
    fn debug_timed_accumulates_phase3_time() {
        let buggy = compile(
            "program t; var r: integer;
             function sq(x: integer): integer; begin sq := x * x + 1 end;
             begin r := sq(6); writeln(r) end.",
        )
        .unwrap();
        let fixed = compile(
            "program t; var r: integer;
             function sq(x: integer): integer; begin sq := x * x end;
             begin r := sq(6); writeln(r) end.",
        )
        .unwrap();
        let batch = trace_batch(&buggy, vec![vec![]], 1).unwrap();
        let mut timings = batch.timings;
        let mut chain = ChainOracle::new();
        chain.push(CountingOracle::new(
            ReferenceOracle::new(&fixed, []).unwrap(),
        ));
        let out = debug_timed(
            &batch.prepared,
            &batch.runs[0],
            &mut chain,
            DebugConfig::default(),
            &mut timings,
        );
        assert!(matches!(out.result, DebugResult::BugLocalized { ref unit, .. } if unit == "sq"));
        assert!(timings.debug > Duration::ZERO);
    }
}

#[cfg(test)]
mod transparency_session_tests {
    use super::*;
    use crate::debugger::DebugConfig;
    use crate::oracle::{Answer, ChainOracle, FnOracle};
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;

    /// §6.1: session transcripts over a transformed program present the
    /// original constructs — globals as globals, exit parameters as
    /// non-local-goto questions.
    #[test]
    fn session_transcripts_are_transparent() {
        let m = compile(testprogs::SECTION6_GOTO).unwrap();
        let prepared = prepare(&m).unwrap();
        let run = run_traced(&prepared, []).unwrap();
        let mut chain = ChainOracle::new();
        // Everything "incorrect" so the traversal visits q and records it.
        chain.push(FnOracle::new("probe", |_m: &Module, _t: &ExecTree, _n| {
            Answer::Incorrect { wrong_output: None }
        }));
        let out = debug(&prepared, &run, &mut chain, DebugConfig::default());
        let q_entry = out
            .transcript
            .iter()
            .find(|t| t.unit == "q")
            .expect("q queried");
        assert!(
            q_entry
                .query
                .contains("performs the non-local goto to label 9"),
            "{}",
            q_entry.query
        );
        assert!(!q_entry.query.contains("exitcond"), "{}", q_entry.query);
    }
}

/// One-call convenience: debug `buggy_source` against `fixed_source` (the
/// reference implementation standing in for the user), with slicing
/// enabled and no test database.
///
/// # Errors
/// Propagates compile, transformation, and runtime errors of either
/// program.
///
/// # Examples
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gadt::debugger::DebugResult;
/// let outcome = gadt::session::quick_debug(
///     "program t; var r: integer;
///      function sq(x: integer): integer; begin sq := x * x + 1 end;
///      begin r := sq(6); writeln(r) end.",
///     "program t; var r: integer;
///      function sq(x: integer): integer; begin sq := x * x end;
///      begin r := sq(6); writeln(r) end.",
///     [],
/// )?;
/// assert!(matches!(outcome.result,
///     DebugResult::BugLocalized { ref unit, .. } if unit == "sq"));
/// # Ok(())
/// # }
/// ```
pub fn quick_debug(
    buggy_source: &str,
    fixed_source: &str,
    input: impl IntoIterator<Item = Value> + Clone,
) -> Result<DebugOutcome> {
    let buggy = gadt_pascal::sema::compile(buggy_source)?;
    let fixed = gadt_pascal::sema::compile(fixed_source)?;
    let prepared = prepare(&buggy)?;
    let run = run_traced(&prepared, input.clone())?;
    let mut chain = ChainOracle::new();
    chain.push(crate::oracle::CountingOracle::new(
        crate::oracle::ReferenceOracle::new(&fixed, input)?,
    ));
    Ok(debug(&prepared, &run, &mut chain, DebugConfig::default()))
}
