//! Oracles: the sources of knowledge about *intended* program behaviour.
//!
//! Algorithmic debugging acquires "knowledge about the expected behavior
//! of the debugged program" through queries (§3). The paper's GADT system
//! consults, in order: assertions previously supplied by the user, the
//! test-case-lookup component, and finally the user (§5.3.1). Each of
//! these is an [`Oracle`] here; [`ChainOracle`] composes them and
//! [`CountingOracle`] measures what the paper calls "the number of user
//! interactions".

use gadt_pascal::sema::Module;
use gadt_pascal::value::Value;
use gadt_trace::{ExecTree, NodeId, NodeKind};
use std::collections::BTreeMap;
use std::fmt;

/// An oracle's verdict on one execution-tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Answer {
    /// The unit behaved as intended for these inputs.
    Correct,
    /// The unit misbehaved.
    Incorrect {
        /// Index (into the node's `outs`) of a wrong output value, when
        /// the judge can point at one — the paper's "no, error on first
        /// output variable", which is what activates slicing (§5.3.3).
        wrong_output: Option<usize>,
    },
    /// This oracle cannot judge the node; ask the next source.
    DontKnow,
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Answer::Correct => write!(f, "yes"),
            Answer::Incorrect { wrong_output: None } => write!(f, "no"),
            Answer::Incorrect {
                wrong_output: Some(k),
            } => write!(f, "no, error on output variable {}", k + 1),
            Answer::DontKnow => write!(f, "don't know"),
        }
    }
}

/// A source of intended-behaviour knowledge.
pub trait Oracle {
    /// Judges one node of the execution tree.
    fn judge(&mut self, module: &Module, tree: &ExecTree, node: NodeId) -> Answer;

    /// A short name for transcripts (`"user"`, `"test database"`, …).
    fn source_name(&self) -> &str;
}

/// Simulates the user from a *reference* (correct) implementation of the
/// same program: the intended behaviour of a unit on given inputs is what
/// the reference program's unit does on those inputs.
///
/// Judgement order:
/// 1. find a call of the same procedure with identical In values in the
///    reference execution tree and compare Out values;
/// 2. otherwise, if the procedure is top-level in the reference program,
///    execute it in isolation on the query's inputs;
/// 3. otherwise answer [`Answer::DontKnow`].
pub struct ReferenceOracle<'m> {
    reference: &'m Module,
    reference_tree: ExecTree,
    /// Lowered at most once — seeded by [`ReferenceOracle::new`]'s
    /// reference run, or lazily on the first isolated re-execution
    /// (judgement rule 2). Every later question shares it instead of
    /// re-lowering the reference module.
    cfg: std::sync::OnceLock<std::sync::Arc<gadt_pascal::cfg::ProgramCfg>>,
}

impl<'m> ReferenceOracle<'m> {
    /// Builds the oracle by running the reference program once (with the
    /// given input stream) and keeping its execution tree.
    ///
    /// # Errors
    /// Propagates reference-program runtime errors.
    pub fn new(
        reference: &'m Module,
        input: impl IntoIterator<Item = Value>,
    ) -> gadt_pascal::error::Result<Self> {
        let cfg = std::sync::Arc::new(gadt_pascal::cfg::lower(reference));
        let trace = gadt_analysis::dyntrace::record_trace_shared(
            reference,
            std::sync::Arc::clone(&cfg),
            input,
        )?;
        let reference_tree = gadt_trace::build_tree(reference, &trace);
        let cell = std::sync::OnceLock::new();
        let _ = cell.set(cfg);
        Ok(ReferenceOracle {
            reference,
            reference_tree,
            cfg: cell,
        })
    }

    /// Builds the oracle from an execution tree recorded earlier for the
    /// reference program — saves the reference re-run when many oracles
    /// over the same reference are constructed (mutation campaigns).
    pub fn from_tree(reference: &'m Module, reference_tree: ExecTree) -> Self {
        ReferenceOracle {
            reference,
            reference_tree,
            cfg: std::sync::OnceLock::new(),
        }
    }

    fn compare_outs(expected: &[(String, Value)], actual: &[(String, Value)]) -> Answer {
        if expected.len() != actual.len() {
            return Answer::Incorrect { wrong_output: None };
        }
        for (k, ((_, ev), (_, av))) in expected.iter().zip(actual).enumerate() {
            if ev != av {
                return Answer::Incorrect {
                    wrong_output: Some(k),
                };
            }
        }
        Answer::Correct
    }
}

impl Oracle for ReferenceOracle<'_> {
    fn judge(&mut self, module: &Module, tree: &ExecTree, node: NodeId) -> Answer {
        let n = tree.node(node);
        let NodeKind::Call { proc, .. } = &n.kind else {
            // Loop units have no In values to match on; judge only the
            // unambiguous case — exactly one loop instance with this name
            // in the reference run — by comparing final snapshots.
            if matches!(n.kind, NodeKind::Loop { .. }) {
                let matches: Vec<_> = self
                    .reference_tree
                    .preorder()
                    .into_iter()
                    .filter(|&rid| {
                        let r = self.reference_tree.node(rid);
                        matches!(r.kind, NodeKind::Loop { .. }) && r.name == n.name
                    })
                    .collect();
                if let [rid] = matches[..] {
                    let r = self.reference_tree.node(rid);
                    return Self::compare_outs(&r.outs, &n.outs);
                }
            }
            return Answer::DontKnow;
        };
        let name = module.proc(*proc).name.to_ascii_lowercase();

        // 1. Same-name call with identical In values in the reference run.
        for rid in self.reference_tree.preorder() {
            let r = self.reference_tree.node(rid);
            let NodeKind::Call { proc: rp, .. } = &r.kind else {
                continue;
            };
            if self.reference.proc(*rp).name.to_ascii_lowercase() != name {
                continue;
            }
            if r.ins == n.ins {
                return Self::compare_outs(&r.outs, &n.outs);
            }
        }

        // 2. Isolated re-execution of a top-level reference unit.
        if let Some(rp) = self.reference.proc_by_name(&name) {
            let rinfo = self.reference.proc(rp);
            if rinfo.parent == Some(gadt_pascal::sema::MAIN_PROC) {
                // Reconstruct the argument list from the node's In values
                // (by parameter order) — var params take their In value
                // when read, zero otherwise.
                let mut args = Vec::new();
                let mut ok = true;
                for &p in &rinfo.params {
                    let pname = self.reference.var(p).name.clone();
                    let from_ins = n.ins.iter().find(|(i, _)| *i == pname);
                    let from_outs = n.outs.iter().find(|(o, _)| *o == pname);
                    match from_ins {
                        Some((_, v)) => args.push(v.clone()),
                        None if from_outs.is_some() => {
                            args.push(Value::zero_of(&self.reference.var(p).ty));
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    let cfg = self.cfg.get_or_init(|| {
                        std::sync::Arc::new(gadt_pascal::cfg::lower(self.reference))
                    });
                    let mut interp = gadt_pascal::interp::Interpreter::with_shared_cfg(
                        self.reference,
                        std::sync::Arc::clone(cfg),
                    );
                    if let Ok(run) = interp.run_proc(rp, args) {
                        let mut expected: Vec<(String, Value)> = run
                            .outs
                            .iter()
                            .map(|(v, val)| (self.reference.var(*v).name.clone(), val.clone()))
                            .collect();
                        if let Some(res) = run.result {
                            expected.push((rinfo.name.clone(), res));
                        }
                        return Self::compare_outs(&expected, &n.outs);
                    }
                }
            }
        }
        Answer::DontKnow
    }

    fn source_name(&self) -> &str {
        "simulated user (reference implementation)"
    }
}

/// The mutation harness's *golden-reference* oracle: judges a mutant's
/// execution-tree nodes against the **un-mutated** ("golden") program,
/// replacing the human in automated bug-localization campaigns (after
/// Ohta & Mizuno's framework, PAPERS.md).
///
/// It is a [`ReferenceOracle`] over the golden program with a campaign-
/// appropriate source name; judgement rules are identical (tree match,
/// then isolated re-execution of top-level units, then
/// [`Answer::DontKnow`]).
pub struct GoldenOracle<'m> {
    inner: ReferenceOracle<'m>,
}

impl<'m> GoldenOracle<'m> {
    /// Builds the oracle by running the golden program once on `input`.
    ///
    /// # Errors
    /// Propagates golden-program runtime errors.
    pub fn new(
        golden: &'m Module,
        input: impl IntoIterator<Item = Value>,
    ) -> gadt_pascal::error::Result<Self> {
        Ok(GoldenOracle {
            inner: ReferenceOracle::new(golden, input)?,
        })
    }

    /// Builds the oracle from a pre-recorded golden execution tree — the
    /// per-mutant fast path: the campaign records the golden run once and
    /// clones its tree into each worker's oracle.
    pub fn from_tree(golden: &'m Module, golden_tree: ExecTree) -> Self {
        GoldenOracle {
            inner: ReferenceOracle::from_tree(golden, golden_tree),
        }
    }
}

impl Oracle for GoldenOracle<'_> {
    fn judge(&mut self, module: &Module, tree: &ExecTree, node: NodeId) -> Answer {
        self.inner.judge(module, tree, node)
    }

    fn source_name(&self) -> &str {
        "golden reference (un-mutated program)"
    }
}

/// An oracle answering from user-supplied *assertions*: boolean
/// expressions in the Pascal expression language over a unit's In/Out
/// names (the paper's partial specifications, after Drabent et al.;
/// evaluated by our interpreter instead of DICE incremental compilation).
#[derive(Default)]
pub struct AssertionOracle {
    /// Unit name (lowercase) → assertion expressions. A node is Correct
    /// if all assertions hold, Incorrect if any fails.
    assertions: BTreeMap<String, Vec<String>>,
    /// Unit name → per-output assertions `(output name, expr)`. A failing
    /// output assertion produces the §5.3.3 error indication ("error on
    /// output variable k") that activates slicing.
    output_assertions: BTreeMap<String, Vec<(String, String)>>,
}

impl AssertionOracle {
    /// Creates an empty assertion base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an assertion for a unit, e.g.
    /// `add: "r1 = s1 + s2"`.
    pub fn assert_unit(&mut self, unit: &str, expr: impl Into<String>) {
        self.assertions
            .entry(unit.to_ascii_lowercase())
            .or_default()
            .push(expr.into());
    }

    /// Registers an assertion about one *specific output variable* of a
    /// unit. When it fails, the oracle answers with an error indication
    /// pointing at that output — which is what lets the debugger slice.
    pub fn assert_output(
        &mut self,
        unit: &str,
        output: impl Into<String>,
        expr: impl Into<String>,
    ) {
        self.output_assertions
            .entry(unit.to_ascii_lowercase())
            .or_default()
            .push((output.into(), expr.into()));
    }

    /// Evaluates one assertion against a node's In/Out values by
    /// synthesizing and running a tiny program.
    fn eval(expr: &str, values: &[(String, Value)]) -> Option<bool> {
        let mut decls = String::new();
        let mut inits = String::new();
        for (name, v) in values {
            let ty = match v {
                Value::Int(_) => "integer".to_string(),
                Value::Real(_) => "real".to_string(),
                Value::Bool(_) => "boolean".to_string(),
                Value::Char(_) => "char".to_string(),
                Value::Str(_) => return None,
                Value::Array(a) => format!("array[{}..{}] of integer", a.lo, a.hi()),
            };
            decls.push_str(&format!("{name}: {ty}; "));
            match v {
                Value::Int(n) => inits.push_str(&format!("{name} := {n}; ")),
                Value::Real(x) => inits.push_str(&format!("{name} := {x:?}; ")),
                Value::Bool(b) => inits.push_str(&format!("{name} := {b}; ")),
                Value::Char(c) => inits.push_str(&format!("{name} := '{c}'; ")),
                Value::Array(a) => {
                    for (i, e) in a.elems.iter().enumerate() {
                        inits.push_str(&format!("{name}[{}] := {e}; ", a.lo + i as i64));
                    }
                }
                Value::Str(_) => return None,
            }
        }
        let src = format!(
            "program assertcheck; var {decls} gadt_ok: boolean;
             begin {inits} gadt_ok := {expr} end."
        );
        let m = gadt_pascal::sema::compile(&src).ok()?;
        let outcome = gadt_pascal::interp::Interpreter::new(&m).run().ok()?;
        outcome.global("gadt_ok").and_then(Value::as_bool)
    }
}

impl Oracle for AssertionOracle {
    fn judge(&mut self, _module: &Module, tree: &ExecTree, node: NodeId) -> Answer {
        let n = tree.node(node);
        let key = n.name.to_ascii_lowercase();
        let whole = self.assertions.get(&key);
        let per_output = self.output_assertions.get(&key);
        if whole.is_none() && per_output.is_none() {
            return Answer::DontKnow;
        }
        let exprs = whole.cloned().unwrap_or_default();
        let exprs = &exprs;
        let mut values: Vec<(String, Value)> = n.ins.clone();
        for (name, v) in &n.outs {
            if !values.iter().any(|(vn, _)| vn == name) {
                values.push((name.clone(), v.clone()));
            } else {
                // Out value supersedes the In value of the same variable.
                if let Some(slot) = values.iter_mut().find(|(vn, _)| vn == name) {
                    slot.1 = v.clone();
                }
            }
        }
        let mut all_known = true;
        // Per-output assertions first: they yield precise error
        // indications for slicing.
        if let Some(outs) = per_output {
            for (out_name, expr) in outs.clone() {
                match Self::eval(&expr, &values) {
                    Some(true) => {}
                    Some(false) => {
                        let k = n
                            .outs
                            .iter()
                            .position(|(name, _)| name.eq_ignore_ascii_case(&out_name));
                        return Answer::Incorrect { wrong_output: k };
                    }
                    None => all_known = false,
                }
            }
        }
        for expr in exprs {
            match Self::eval(expr, &values) {
                Some(true) => {}
                Some(false) => return Answer::Incorrect { wrong_output: None },
                None => all_known = false,
            }
        }
        if all_known {
            Answer::Correct
        } else {
            Answer::DontKnow
        }
    }

    fn source_name(&self) -> &str {
        "assertions"
    }
}

/// An oracle driven by a closure — handy for scripted tests and the
/// interactive front end.
pub struct FnOracle<F> {
    f: F,
    name: String,
}

impl<F> FnOracle<F>
where
    F: FnMut(&Module, &ExecTree, NodeId) -> Answer,
{
    /// Wraps a closure as an oracle.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnOracle {
            f,
            name: name.into(),
        }
    }
}

impl<F> Oracle for FnOracle<F>
where
    F: FnMut(&Module, &ExecTree, NodeId) -> Answer,
{
    fn judge(&mut self, module: &Module, tree: &ExecTree, node: NodeId) -> Answer {
        (self.f)(module, tree, node)
    }

    fn source_name(&self) -> &str {
        &self.name
    }
}

/// Wraps an oracle and counts how many queries actually reached it — the
/// paper's measure of user burden.
pub struct CountingOracle<O> {
    inner: O,
    count: usize,
}

impl<O: Oracle> CountingOracle<O> {
    /// Wraps `inner`.
    pub fn new(inner: O) -> Self {
        CountingOracle { inner, count: 0 }
    }

    /// Queries answered by the wrapped oracle so far.
    pub fn count(&self) -> usize {
        self.count
    }
}

impl<O: Oracle> Oracle for CountingOracle<O> {
    fn judge(&mut self, module: &Module, tree: &ExecTree, node: NodeId) -> Answer {
        self.count += 1;
        self.inner.judge(module, tree, node)
    }

    fn source_name(&self) -> &str {
        self.inner.source_name()
    }
}

/// Chains oracles: the first non-[`Answer::DontKnow`] answer wins.
/// Records which source answered (for transcripts), and — when a
/// persist sink is attached via [`ChainOracle::persist_answers_to`] —
/// writes every definite answer into the knowledge store so later
/// sessions replay it from disk.
#[derive(Default)]
pub struct ChainOracle<'a> {
    oracles: Vec<Box<dyn Oracle + 'a>>,
    /// Source name of the last answering oracle.
    last_source: String,
    /// Persist sink: definite answers land here keyed by
    /// `(unit, In-values)`.
    persist: Option<gadt_store::SharedStore>,
    /// First store-append error, if any (judging cannot propagate it).
    persist_error: Option<std::io::Error>,
}

impl<'a> ChainOracle<'a> {
    /// Creates an empty chain.
    pub fn new() -> Self {
        ChainOracle::default()
    }

    /// Appends an oracle to the chain (consulted after earlier ones).
    pub fn push(&mut self, oracle: impl Oracle + 'a) {
        self.oracles.push(Box::new(oracle));
    }

    /// Prepends an oracle — consulted before everything already in the
    /// chain. This is how the stored-knowledge oracle takes precedence
    /// over live sources in a replayed session.
    pub fn push_front(&mut self, oracle: impl Oracle + 'a) {
        self.oracles.insert(0, Box::new(oracle));
    }

    /// Attaches a persist sink: from now on every definite answer (from
    /// any source except the store itself) is recorded into `store`
    /// under the queried node's `(unit, In-values)` fingerprint.
    pub fn persist_answers_to(&mut self, store: gadt_store::SharedStore) {
        self.persist = Some(store);
    }

    /// The source that produced the last answer.
    pub fn last_source(&self) -> &str {
        &self.last_source
    }

    /// Takes the first store-append error encountered while persisting
    /// answers, if any — judging swallows it to keep the session going;
    /// callers that care (the facade) surface it afterwards.
    pub fn take_persist_error(&mut self) -> Option<std::io::Error> {
        self.persist_error.take()
    }
}

impl Oracle for ChainOracle<'_> {
    fn judge(&mut self, module: &Module, tree: &ExecTree, node: NodeId) -> Answer {
        for o in &mut self.oracles {
            match o.judge(module, tree, node) {
                Answer::DontKnow => continue,
                answer => {
                    self.last_source = o.source_name().to_string();
                    // Persist new knowledge — but never answers that
                    // came *from* the store: re-recording them under a
                    // different source would dirty the WAL and break
                    // replay byte-determinism.
                    if self.last_source != crate::stored::STORED_SOURCE {
                        if let (Some(store), Some(stored)) =
                            (&self.persist, crate::stored::answer_to_stored(&answer))
                        {
                            let n = tree.node(node);
                            let ins: Vec<Value> = n.ins.iter().map(|(_, v)| v.clone()).collect();
                            let result = store.lock().expect("store mutex poisoned").record_answer(
                                &n.name,
                                &ins,
                                stored,
                                &self.last_source,
                            );
                            if let Err(e) = result {
                                if self.persist_error.is_none() {
                                    self.persist_error = Some(e);
                                }
                            }
                        }
                    }
                    return answer;
                }
            }
        }
        self.last_source = "nobody".to_string();
        Answer::DontKnow
    }

    fn source_name(&self) -> &str {
        "oracle chain"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;

    fn tree_of(module: &Module) -> ExecTree {
        let cfg = gadt_pascal::cfg::lower(module);
        let trace = gadt_analysis::dyntrace::record_trace(module, &cfg, []).unwrap();
        gadt_trace::build_tree(module, &trace)
    }

    #[test]
    fn reference_oracle_judges_sqrtest_nodes() {
        let buggy = compile(testprogs::SQRTEST).unwrap();
        let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
        let tree = tree_of(&buggy);
        let mut oracle = ReferenceOracle::new(&fixed, []).unwrap();

        let judge = |o: &mut ReferenceOracle<'_>, name: &str| {
            let node = tree.find_call(&buggy, name).unwrap();
            o.judge(&buggy, &tree, node)
        };
        // sqrtest produced false, reference produces true → incorrect.
        assert_eq!(
            judge(&mut oracle, "sqrtest"),
            Answer::Incorrect {
                wrong_output: Some(0)
            }
        );
        // arrsum: [1,2] → 3 in both.
        assert_eq!(judge(&mut oracle, "arrsum"), Answer::Correct);
        // computs: r1 wrong (12 vs 9), r2 right → error on output 0.
        assert_eq!(
            judge(&mut oracle, "computs"),
            Answer::Incorrect {
                wrong_output: Some(0)
            }
        );
        // partialsums: s1 right (6), s2 wrong (6 vs 3) → output 1.
        assert_eq!(
            judge(&mut oracle, "partialsums"),
            Answer::Incorrect {
                wrong_output: Some(1)
            }
        );
        // add(6, 6) = 12 is correct *for those inputs* (isolated rerun).
        assert_eq!(judge(&mut oracle, "add"), Answer::Correct);
        // decrement(3) = 4, reference says 2 → incorrect.
        assert_eq!(
            judge(&mut oracle, "decrement"),
            Answer::Incorrect {
                wrong_output: Some(0)
            }
        );
        // increment(3) = 4 in both.
        assert_eq!(judge(&mut oracle, "increment"), Answer::Correct);
    }

    #[test]
    fn reference_oracle_handles_nested_procs_via_tree_match() {
        let buggy = compile(testprogs::PQR).unwrap();
        let fixed = compile(testprogs::PQR_FIXED).unwrap();
        let tree = tree_of(&buggy);
        let mut oracle = ReferenceOracle::new(&fixed, []).unwrap();
        let q = tree.find_call(&buggy, "q").unwrap();
        assert_eq!(oracle.judge(&buggy, &tree, q), Answer::Correct);
        let r = tree.find_call(&buggy, "r").unwrap();
        assert_eq!(
            oracle.judge(&buggy, &tree, r),
            Answer::Incorrect {
                wrong_output: Some(0)
            }
        );
    }

    #[test]
    fn assertion_oracle_checks_boolean_specs() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let tree = tree_of(&m);
        let mut oracle = AssertionOracle::new();
        oracle.assert_unit("add", "r1 = s1 + s2");
        oracle.assert_unit("test", "isok = (r1 = r2)");
        oracle.assert_unit("decrement", "decrement = y - 1");

        let add = tree.find_call(&m, "add").unwrap();
        assert_eq!(oracle.judge(&m, &tree, add), Answer::Correct);
        let test = tree.find_call(&m, "test").unwrap();
        assert_eq!(oracle.judge(&m, &tree, test), Answer::Correct);
        // decrement(3) = 4 violates its assertion.
        let dec = tree.find_call(&m, "decrement").unwrap();
        assert_eq!(
            oracle.judge(&m, &tree, dec),
            Answer::Incorrect { wrong_output: None }
        );
        // No assertion for computs.
        let computs = tree.find_call(&m, "computs").unwrap();
        assert_eq!(oracle.judge(&m, &tree, computs), Answer::DontKnow);
    }

    #[test]
    fn assertion_oracle_with_arrays() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let tree = tree_of(&m);
        let mut oracle = AssertionOracle::new();
        oracle.assert_unit("arrsum", "b = a[1] + a[2]");
        let arrsum = tree.find_call(&m, "arrsum").unwrap();
        assert_eq!(oracle.judge(&m, &tree, arrsum), Answer::Correct);
    }

    #[test]
    fn chain_takes_first_definite_answer() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let tree = tree_of(&m);
        let mut chain = ChainOracle::new();
        chain.push(FnOracle::new("first", |_m: &Module, _t: &ExecTree, _n| {
            Answer::DontKnow
        }));
        chain.push(FnOracle::new("second", |_m: &Module, _t: &ExecTree, _n| {
            Answer::Correct
        }));
        chain.push(FnOracle::new("third", |_m: &Module, _t: &ExecTree, _n| {
            Answer::Incorrect { wrong_output: None }
        }));
        let node = tree.find_call(&m, "add").unwrap();
        assert_eq!(chain.judge(&m, &tree, node), Answer::Correct);
        assert_eq!(chain.last_source(), "second");
    }

    #[test]
    fn counting_oracle_counts_only_reached_queries() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let tree = tree_of(&m);
        let mut chain = ChainOracle::new();
        chain.push(FnOracle::new("answers-add", {
            let m2 = compile(testprogs::SQRTEST).unwrap();
            let add_name = "add".to_string();
            move |mm: &Module, t: &ExecTree, n| {
                let _ = &m2;
                if t.node(n).name == add_name {
                    let _ = mm;
                    Answer::Correct
                } else {
                    Answer::DontKnow
                }
            }
        }));
        let counting =
            CountingOracle::new(FnOracle::new("user", |_m: &Module, _t: &ExecTree, _n| {
                Answer::Correct
            }));
        chain.push(counting);
        let add = tree.find_call(&m, "add").unwrap();
        let sqrtest = tree.find_call(&m, "sqrtest").unwrap();
        assert_eq!(chain.judge(&m, &tree, add), Answer::Correct);
        assert_eq!(chain.last_source(), "answers-add");
        assert_eq!(chain.judge(&m, &tree, sqrtest), Answer::Correct);
        assert_eq!(chain.last_source(), "user");
    }

    #[test]
    fn answers_display_like_the_paper() {
        assert_eq!(Answer::Correct.to_string(), "yes");
        assert_eq!(Answer::Incorrect { wrong_output: None }.to_string(), "no");
        assert_eq!(
            Answer::Incorrect {
                wrong_output: Some(0)
            }
            .to_string(),
            "no, error on output variable 1"
        );
        assert_eq!(Answer::DontKnow.to_string(), "don't know");
    }
}

#[cfg(test)]
mod output_assertion_tests {
    use super::*;
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;

    fn tree_of(module: &Module) -> ExecTree {
        let cfg = gadt_pascal::cfg::lower(module);
        let trace = gadt_analysis::dyntrace::record_trace(module, &cfg, []).unwrap();
        gadt_trace::build_tree(module, &trace)
    }

    #[test]
    fn failing_output_assertion_points_at_the_output() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let tree = tree_of(&m);
        let mut oracle = AssertionOracle::new();
        // computs should satisfy r1 = r2 (both compute sqr of the sum);
        // the buggy run has r1 = 12, r2 = 9.
        oracle.assert_output("computs", "r1", "r1 = r2");
        let computs = tree.find_call(&m, "computs").unwrap();
        assert_eq!(
            oracle.judge(&m, &tree, computs),
            Answer::Incorrect {
                wrong_output: Some(0)
            }
        );
    }

    #[test]
    fn passing_output_assertions_answer_correct() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let tree = tree_of(&m);
        let mut oracle = AssertionOracle::new();
        oracle.assert_output("partialsums", "s1", "s1 = y * (y + 1) div 2");
        let ps = tree.find_call(&m, "partialsums").unwrap();
        assert_eq!(oracle.judge(&m, &tree, ps), Answer::Correct);
    }

    #[test]
    fn output_assertions_drive_slicing_in_a_session() {
        // A session where *assertions alone* provide the error
        // indications: no reference oracle needed until deep inside.
        use crate::debugger::{DebugConfig, DebugResult, Debugger};
        let m = compile(testprogs::SQRTEST).unwrap();
        let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
        let cfg = gadt_pascal::cfg::lower(&m);
        let trace = gadt_analysis::dyntrace::record_trace(&m, &cfg, []).unwrap();
        let tree = gadt_trace::build_tree(&m, &trace);
        let mut assertions = AssertionOracle::new();
        assertions.assert_output("computs", "r1", "r1 = r2");
        let mut chain = ChainOracle::new();
        chain.push(assertions);
        chain.push(CountingOracle::new(
            ReferenceOracle::new(&fixed, []).unwrap(),
        ));
        let out = Debugger::new(&m, &trace, DebugConfig::default()).run_program(&tree, &mut chain);
        assert!(
            matches!(&out.result, DebugResult::BugLocalized { unit, .. } if unit == "decrement"),
            "{}",
            out.render_transcript()
        );
        // The computs query was answered by assertions, with slicing.
        let computs_entry = out.transcript.iter().find(|t| t.unit == "computs").unwrap();
        assert_eq!(computs_entry.source, "assertions");
        assert!(out.slices_taken >= 1);
    }
}
