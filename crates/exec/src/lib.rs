//! # gadt-exec
//!
//! A std-only parallel batch execution engine for the GADT pipeline.
//!
//! The paper's three phases (§5, Figure 3) are embarrassingly parallel
//! at the *batch* level: every T-GEN test case is an independent run of
//! the transformed program, every slicing criterion prunes the execution
//! tree independently, and every traced input is an independent
//! interpreter run. [`BatchExecutor`] fans such batches out to a fixed
//! pool of scoped worker threads and hands the results back **in input
//! order**, so parallel execution is observationally identical to the
//! sequential loop it replaces — the determinism guarantee the
//! integration suite (`tests/parallel_determinism.rs`) pins down.
//!
//! The implementation uses only `std`: [`std::thread::scope`] for
//! borrow-friendly workers, an atomic cursor for work stealing, and an
//! [`std::sync::mpsc`] channel to collect `(index, result)` pairs.
//! No external crates, no unsafe code.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// Worker stack size. The interpreter executes Pascal calls by native
/// recursion, so a worker's stack must absorb the deepest dynamic call
/// chain its job may reach (mutation campaigns deliberately run mutants
/// whose recursion guard was broken); the platform default of 2 MiB is
/// not enough headroom.
const WORKER_STACK_BYTES: usize = 16 * 1024 * 1024;

/// A fixed-width work scheduler for independent jobs.
///
/// Construction is cheap (no threads are kept alive between batches);
/// each [`BatchExecutor::run`] call spins up a scoped pool, drains the
/// batch, and joins. Results always come back in input order regardless
/// of which worker finished first, so `run` is a drop-in replacement
/// for a sequential `map` over the batch.
///
/// # Examples
/// ```
/// let pool = gadt_exec::BatchExecutor::new(4);
/// let squares = pool.run((1..=8).collect(), |_idx, n: i64| n * n);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25, 36, 49, 64]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BatchExecutor {
    threads: usize,
}

impl BatchExecutor {
    /// Creates an executor with an explicit worker count. `0` selects
    /// the host's available parallelism (at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        BatchExecutor { threads }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` over every item and returns the results in input order.
    ///
    /// `f` receives the item's index alongside the item, so callers can
    /// label or seed per-item work deterministically. With one worker
    /// (or at most one item) the batch runs inline on the calling
    /// thread — bit-for-bit the sequential loop, with no thread-spawn
    /// overhead.
    ///
    /// # Panics
    /// A panic inside `f` propagates to the caller once the scope joins.
    pub fn run<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        }

        // Work distribution: an atomic cursor over index-addressed job
        // slots. Each slot is taken exactly once; the mutexes are
        // uncontended (a slot has one consumer) and exist only to give
        // the scoped workers shared `&` access to owned items.
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let slots = &slots;
                let cursor = &cursor;
                let f = &f;
                std::thread::Builder::new()
                    .stack_size(WORKER_STACK_BYTES)
                    .spawn_scoped(scope, move || loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .expect("job slot poisoned")
                            .take()
                            .expect("job taken twice");
                        // A send only fails if the receiver is gone, which
                        // cannot happen while the scope holds it alive.
                        let _ = tx.send((i, f(i, item)));
                    })
                    .expect("spawn batch worker");
            }
            drop(tx);

            let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
            for (i, r) in rx {
                results[i] = Some(r);
            }
            results
                .into_iter()
                .map(|r| r.expect("worker dropped a job"))
                .collect()
        })
    }

    /// Like [`BatchExecutor::run`] but additionally streams each result
    /// through `sink` **in input order**, as soon as its turn arrives —
    /// the serialized-appender hook persistent consumers (one
    /// `gadt-store` writer fed by many workers) hang off the batch.
    ///
    /// Out-of-order finishes wait in a reorder buffer; `sink(i, &r)` is
    /// invoked on the calling thread for `i = 0, 1, 2, …` exactly once
    /// each, so a sink that appends to a write-ahead log produces the
    /// same bytes at any worker count. The full result vector is still
    /// returned in input order.
    ///
    /// # Panics
    /// A panic inside `f` propagates to the caller once the scope joins.
    pub fn run_with_sink<T, R, F, S>(&self, items: Vec<T>, f: F, mut sink: S) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
        S: FnMut(usize, &R),
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| {
                    let r = f(i, t);
                    sink(i, &r);
                    r
                })
                .collect();
        }

        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let slots = &slots;
                let cursor = &cursor;
                let f = &f;
                std::thread::Builder::new()
                    .stack_size(WORKER_STACK_BYTES)
                    .spawn_scoped(scope, move || loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .expect("job slot poisoned")
                            .take()
                            .expect("job taken twice");
                        let _ = tx.send((i, f(i, item)));
                    })
                    .expect("spawn batch worker");
            }
            drop(tx);

            // Reorder buffer: emit to the sink the moment the next
            // input index becomes available, not when the batch ends.
            let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
            let mut next_emit = 0usize;
            for (i, r) in rx {
                results[i] = Some(r);
                while next_emit < n {
                    match results[next_emit].as_ref() {
                        Some(ready) => {
                            sink(next_emit, ready);
                            next_emit += 1;
                        }
                        None => break,
                    }
                }
            }
            results
                .into_iter()
                .map(|r| r.expect("worker dropped a job"))
                .collect()
        })
    }

    /// The fallible form of [`BatchExecutor::run_with_sink`]: `sink`
    /// still sees **every** job's result (`Ok` and `Err` alike, in input
    /// order), then the lowest-indexed error, if any, is returned — so a
    /// persistent sink records the same prefix a sequential loop with
    /// late `?` would have seen.
    ///
    /// # Errors
    /// Returns the first (by input index) error produced by `f`.
    pub fn try_run_with_sink<T, R, E, F, S>(
        &self,
        items: Vec<T>,
        f: F,
        sink: S,
    ) -> Result<Vec<R>, E>
    where
        T: Send,
        R: Send,
        E: Send,
        F: Fn(usize, T) -> Result<R, E> + Sync,
        S: FnMut(usize, &Result<R, E>),
    {
        let results = self.run_with_sink(items, f, sink);
        let mut out = Vec::with_capacity(results.len());
        let mut first_err: Option<E> = None;
        for r in results {
            match r {
                Ok(v) => out.push(v),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Like [`BatchExecutor::run`] but observed: every job records into
    /// its own [`gadt_obs::Recorder`] (a [`Recorder::child`] of `rec`),
    /// and the finished per-job journals are adopted back into `rec` in
    /// **submission order** — the merge discipline that keeps journal
    /// fingerprints byte-identical at any thread count.
    ///
    /// [`Recorder::child`]: gadt_obs::Recorder::child
    pub fn run_observed<T, R, F>(&self, items: Vec<T>, rec: &mut gadt_obs::Recorder, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T, &mut gadt_obs::Recorder) -> R + Sync,
    {
        let template = rec.child();
        let pairs = self.run(items, |i, item| {
            let mut child = template.child();
            let r = f(i, item, &mut child);
            (r, child.finish())
        });
        let mut out = Vec::with_capacity(pairs.len());
        for (r, journal) in pairs {
            rec.adopt(journal, None);
            out.push(r);
        }
        out
    }

    /// The fallible form of [`BatchExecutor::run_observed`]: journals of
    /// **every** job (including failed ones) are adopted in submission
    /// order, then the lowest-indexed error, if any, is returned — so
    /// the observability record is identical whether or not the batch
    /// succeeded, and identical to the sequential loop's record.
    ///
    /// # Errors
    /// Returns the first (by input index) error produced by `f`.
    pub fn try_run_observed<T, R, E, F>(
        &self,
        items: Vec<T>,
        rec: &mut gadt_obs::Recorder,
        f: F,
    ) -> Result<Vec<R>, E>
    where
        T: Send,
        R: Send,
        E: Send,
        F: Fn(usize, T, &mut gadt_obs::Recorder) -> Result<R, E> + Sync,
    {
        let results = self.run_observed(items, rec, f);
        let mut out = Vec::with_capacity(results.len());
        let mut first_err: Option<E> = None;
        for r in results {
            match r {
                Ok(v) => out.push(v),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Like [`BatchExecutor::run`] but for fallible jobs: stops at
    /// nothing, then returns either every result (input order) or the
    /// error of the **lowest-indexed** failing job — the same error a
    /// sequential loop with `?` would surface, keeping error behaviour
    /// deterministic under parallelism.
    ///
    /// # Errors
    /// Returns the first (by input index) error produced by `f`.
    pub fn try_run<T, R, E, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>, E>
    where
        T: Send,
        R: Send,
        E: Send,
        F: Fn(usize, T) -> Result<R, E> + Sync,
    {
        let mut first_err: Option<E> = None;
        let results = self.run(items, f);
        let mut out = Vec::with_capacity(results.len());
        for r in results {
            match r {
                Ok(v) => out.push(v),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }
}

impl Default for BatchExecutor {
    /// An executor sized to the host's available parallelism.
    fn default() -> Self {
        BatchExecutor::new(0)
    }
}

/// A simple wall-clock stopwatch for phase timing.
///
/// [`Stopwatch::lap`] returns the time since construction or the last
/// lap — the building block behind the pipeline's `PhaseTimings`
/// observability hook in `gadt::session`.
#[derive(Debug)]
pub struct Stopwatch {
    last: Instant,
}

impl Stopwatch {
    /// Starts the stopwatch.
    pub fn start() -> Self {
        Stopwatch {
            last: Instant::now(),
        }
    }

    /// Returns the elapsed time since the start or the previous lap,
    /// and resets the lap origin.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now - self.last;
        self.last = now;
        d
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let pool = BatchExecutor::new(8);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.run(items, |i, x| {
            assert_eq!(i, x);
            // Stagger completion so out-of-order finishes are likely.
            if x % 7 == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let pool = BatchExecutor::new(0);
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = BatchExecutor::new(1);
        let main_thread = std::thread::current().id();
        let out = pool.run(vec![1, 2, 3], |_, x| {
            assert_eq!(std::thread::current().id(), main_thread);
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = BatchExecutor::new(4);
        let out: Vec<i32> = pool.run(Vec::<i32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items() {
        let pool = BatchExecutor::new(64);
        let out = pool.run(vec![10, 20], |_, x| x / 10);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn try_run_surfaces_lowest_index_error() {
        let pool = BatchExecutor::new(8);
        let items: Vec<usize> = (0..50).collect();
        let r: Result<Vec<usize>, String> = pool.try_run(items, |_, x| {
            if x == 13 || x == 31 {
                Err(format!("boom {x}"))
            } else {
                Ok(x)
            }
        });
        assert_eq!(r.unwrap_err(), "boom 13");
    }

    #[test]
    fn try_run_all_ok() {
        let pool = BatchExecutor::new(3);
        let r: Result<Vec<i64>, ()> = pool.try_run(vec![1i64, 2, 3], |_, x| Ok(x * x));
        assert_eq!(r.unwrap(), vec![1, 4, 9]);
    }

    #[test]
    fn borrowed_state_is_shared_across_workers() {
        let base = [100i64, 200, 300];
        let pool = BatchExecutor::new(4);
        let out = pool.run(vec![0usize, 1, 2], |_, i| base[i] + 1);
        assert_eq!(out, vec![101, 201, 301]);
    }

    #[test]
    fn sink_streams_in_input_order_at_any_thread_count() {
        for threads in [1, 2, 8] {
            let pool = BatchExecutor::new(threads);
            let mut seen: Vec<(usize, i64)> = Vec::new();
            let out = pool.run_with_sink(
                (0..40i64).collect(),
                |_, x| {
                    // Stagger so completion order differs from input order.
                    if x % 5 == 0 {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    x * 3
                },
                |i, r| seen.push((i, *r)),
            );
            assert_eq!(out, (0..40).map(|x| x * 3).collect::<Vec<_>>());
            let expect: Vec<(usize, i64)> = (0..40usize).map(|i| (i, i as i64 * 3)).collect();
            assert_eq!(seen, expect, "threads={threads}");
        }
    }

    #[test]
    fn try_run_with_sink_feeds_errors_to_the_sink() {
        let pool = BatchExecutor::new(4);
        let mut log = Vec::new();
        let r: Result<Vec<usize>, String> = pool.try_run_with_sink(
            (0..10usize).collect(),
            |_, x| {
                if x == 6 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            },
            |i, res| log.push((i, res.is_ok())),
        );
        assert_eq!(r.unwrap_err(), "boom");
        assert_eq!(log.len(), 10);
        assert_eq!(log[6], (6, false));
        assert!(log.iter().enumerate().all(|(k, (i, _))| k == *i));
    }

    #[test]
    fn observed_run_merges_journals_in_submission_order() {
        let pool = BatchExecutor::new(8);
        let mut rec = gadt_obs::Recorder::untimed();
        let out = pool.run_observed((0..20usize).collect(), &mut rec, |i, x, r| {
            // Stagger so completion order differs from submission order.
            if x % 3 == 0 {
                std::thread::sleep(Duration::from_micros(150));
            }
            r.event("job", &[("index", gadt_obs::FieldValue::from(i))]);
            r.incr("jobs");
            x
        });
        assert_eq!(out, (0..20).collect::<Vec<_>>());
        let j = rec.finish();
        assert_eq!(j.counter("jobs"), 20);
        let indices: Vec<u64> = j
            .events_named("job")
            .map(|e| match e.field("index") {
                Some(gadt_obs::FieldValue::UInt(n)) => *n,
                other => panic!("unexpected field {other:?}"),
            })
            .collect();
        assert_eq!(indices, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn observed_fingerprint_is_thread_count_invariant() {
        let journal_at = |threads: usize| {
            let pool = BatchExecutor::new(threads);
            let mut rec = gadt_obs::Recorder::new();
            pool.run_observed((0..12usize).collect(), &mut rec, |i, _x, r| {
                r.event("tick", &[("i", gadt_obs::FieldValue::from(i))]);
                r.add("ticks", 1);
            });
            rec.finish().fingerprint()
        };
        let one = journal_at(1);
        assert_eq!(one, journal_at(2));
        assert_eq!(one, journal_at(8));
    }

    #[test]
    fn try_run_observed_keeps_journals_of_failed_jobs() {
        let pool = BatchExecutor::new(4);
        let mut rec = gadt_obs::Recorder::untimed();
        let r: Result<Vec<usize>, String> =
            pool.try_run_observed((0..10usize).collect(), &mut rec, |_, x, rr| {
                rr.incr("attempts");
                if x == 4 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            });
        assert_eq!(r.unwrap_err(), "boom");
        assert_eq!(rec.finish().counter("attempts"), 10);
    }

    #[test]
    fn disabled_parent_disables_children() {
        let pool = BatchExecutor::new(4);
        let mut rec = gadt_obs::Recorder::disabled();
        pool.run_observed(vec![1, 2, 3], &mut rec, |_, _x, r| {
            r.incr("c");
        });
        assert!(rec.finish().is_empty());
    }

    #[test]
    fn stopwatch_laps_are_monotonic() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(1));
        let a = sw.lap();
        let b = sw.lap();
        assert!(a >= Duration::from_millis(1));
        assert!(b <= a + Duration::from_millis(50));
    }
}
