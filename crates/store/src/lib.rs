//! # gadt-store — the persistent crash-safe knowledge store
//!
//! The paper's central economy is *knowledge reuse*: every oracle answer
//! is expensive user time, and §2/§5.3.1 have the debugger answer
//! queries "automatically by checking the test database" instead of
//! re-asking. This crate makes that knowledge survive the process: test
//! reports, assertion-oracle answers keyed by `(unit, In-values)`
//! fingerprints, and campaign golden-reference verdicts all persist in
//! an append-only JSON-lines write-ahead log with atomic
//! snapshot/compaction.
//!
//! Guarantees (see [`store`] for the mechanics):
//!
//! * **crash-safe** — a truncated or corrupt tail is detected (every
//!   line must pass the `gadt-obs` JSON validator and decode as a known
//!   record) and the valid prefix recovered, never a panic;
//! * **deterministic** — identical sessions write byte-identical stores
//!   at any executor thread count: the encoder is canonical, appends are
//!   idempotent, and batch runners feed the store in input order;
//! * **versioned** — every file opens with a header line; files from a
//!   newer format version are refused, not silently mangled.
//!
//! Layering: this crate sits just above `gadt-pascal` (for
//! [`gadt_pascal::value::Value`])
//! and `gadt-obs` (for the JSON validator/escaper). `gadt-tgen` persists
//! its `TestDb` here, `gadt-core` consults it through a
//! `StoredKnowledgeOracle`, `gadt-mutate` reuses campaign verdicts, and
//! the root facade exposes it as `.with_store(path)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod record;
pub mod shard;
pub mod store;
mod tempdir;

pub use json::{obj, parse, Json};
pub use record::{
    answer_key, value_from_json, value_to_json, Record, StoredAnswer, StoredReport, FORMAT, VERSION,
};
pub use shard::{AnswerAppend, ShardedStore};
pub use store::{KnowledgeStore, RecoveryReport, SharedStore};
pub use tempdir::TempDir;
