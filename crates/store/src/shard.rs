//! Sharded knowledge stores for concurrent serving.
//!
//! A single [`KnowledgeStore`] serializes every append behind one mutex —
//! fine for a batch campaign, a bottleneck for a server multiplexing
//! many sessions. A [`ShardedStore`] splits the keyspace across `n`
//! independent WAL+snapshot stores in `shard-000/ … shard-NNN/`
//! subdirectories, routed by an FNV-1a hash of the (case-folded) unit
//! name, so appends about different units contend on different locks and
//! compaction runs shard-by-shard in the background.
//!
//! Determinism: the routing hash depends only on the unit name, every
//! shard inherits the [`KnowledgeStore`] guarantees (canonical encoding,
//! idempotent appends, crash recovery), and
//! [`ShardedStore::record_answers`] appends each batch in caller order —
//! so replaying the same sessions produces byte-identical shards at any
//! server thread count.

use crate::record::StoredAnswer;
use crate::store::{KnowledgeStore, SharedStore};
use gadt_pascal::value::Value;
use std::io;
use std::path::{Path, PathBuf};

/// One pending answer append: `(unit, In-values, answer, source)`.
pub type AnswerAppend = (String, Vec<Value>, StoredAnswer, String);

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A fixed-width shard directory name (`shard-007`).
fn shard_dir_name(i: usize) -> String {
    format!("shard-{i:03}")
}

/// A set of [`KnowledgeStore`]s sharded by unit name.
///
/// Cloning is cheap: clones share the same shard handles (the `Arc`ed
/// stores), so a clone sees — and contends on — the same data.
#[derive(Clone)]
pub struct ShardedStore {
    dir: PathBuf,
    shards: Vec<SharedStore>,
}

impl ShardedStore {
    /// Opens (or creates) a sharded store under `dir` with `shards`
    /// shards. When `dir` already holds `shard-*` subdirectories — a
    /// server restart — the existing shard count wins over the argument:
    /// the routing hash is only stable for the count the data was
    /// written with.
    ///
    /// # Errors
    /// Propagates I/O errors and per-shard recovery refusals (e.g. a
    /// newer format version).
    pub fn open(dir: impl AsRef<Path>, shards: usize) -> io::Result<ShardedStore> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut existing = 0usize;
        while dir.join(shard_dir_name(existing)).is_dir() {
            existing += 1;
        }
        let count = if existing > 0 {
            existing
        } else {
            shards.max(1)
        };
        let mut opened = Vec::with_capacity(count);
        for i in 0..count {
            opened.push(KnowledgeStore::open(dir.join(shard_dir_name(i)))?.into_shared());
        }
        Ok(ShardedStore {
            dir,
            shards: opened,
        })
    }

    /// The root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard handles, in index order.
    pub fn shards(&self) -> &[SharedStore] {
        &self.shards
    }

    /// Which shard a unit's knowledge lives in (stable: FNV-1a of the
    /// case-folded name, modulo the shard count).
    pub fn shard_index(&self, unit: &str) -> usize {
        (fnv1a(unit.to_ascii_lowercase().as_bytes()) % self.shards.len() as u64) as usize
    }

    /// The shard holding a unit's knowledge.
    pub fn shard_for(&self, unit: &str) -> &SharedStore {
        &self.shards[self.shard_index(unit)]
    }

    /// Looks up a stored oracle answer (counts a hit/miss on its shard).
    pub fn lookup_answer(&self, unit: &str, ins: &[Value]) -> Option<StoredAnswer> {
        self.shard_for(unit)
            .lock()
            .expect("shard mutex poisoned")
            .lookup_answer(unit, ins)
    }

    /// Checks for a stored answer without counting a hit or miss on its
    /// shard — the read-only probe used by knowledge-weighted traversal
    /// strategies to weigh questions (see `KnowledgeStore::peek_answer`).
    pub fn peek_answer(&self, unit: &str, ins: &[Value]) -> Option<StoredAnswer> {
        self.shard_for(unit)
            .lock()
            .expect("shard mutex poisoned")
            .peek_answer(unit, ins)
    }

    /// Appends a batch of oracle answers, grouped by shard: each touched
    /// shard is locked once, fed its sub-batch in caller order, and
    /// fsynced before the call returns — an acknowledged batch survives
    /// `kill -9`. Returns how many appends were new (idempotent
    /// duplicates don't count).
    ///
    /// # Errors
    /// Propagates I/O errors; earlier sub-batches may already be
    /// durable.
    pub fn record_answers(&self, batch: &[AnswerAppend]) -> io::Result<usize> {
        let mut by_shard: Vec<Vec<&AnswerAppend>> = vec![Vec::new(); self.shards.len()];
        for entry in batch {
            by_shard[self.shard_index(&entry.0)].push(entry);
        }
        let mut appended = 0usize;
        for (i, group) in by_shard.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut guard = self.shards[i].lock().expect("shard mutex poisoned");
            for (unit, ins, answer, source) in group.iter() {
                if guard.record_answer(unit, ins, answer.clone(), source)? {
                    appended += 1;
                }
            }
            guard.sync()?;
        }
        Ok(appended)
    }

    /// Compacts every shard whose WAL holds more than `threshold`
    /// records (snapshot rewrite + WAL reset). Returns how many shards
    /// were compacted — the background compactor's one-call tick.
    ///
    /// # Errors
    /// Propagates I/O errors from the snapshot rewrite.
    pub fn compact_if_needed(&self, threshold: usize) -> io::Result<usize> {
        let mut compacted = 0usize;
        for shard in &self.shards {
            let mut guard = shard.lock().expect("shard mutex poisoned");
            if guard.wal_records() > threshold {
                guard.compact()?;
                compacted += 1;
            }
        }
        Ok(compacted)
    }

    /// Compacts every shard unconditionally (clean-shutdown path).
    ///
    /// # Errors
    /// Propagates I/O errors from the snapshot rewrite.
    pub fn compact_all(&self) -> io::Result<usize> {
        let mut compacted = 0usize;
        for shard in &self.shards {
            shard.lock().expect("shard mutex poisoned").compact()?;
            compacted += 1;
        }
        Ok(compacted)
    }

    /// Total stored oracle answers across shards.
    pub fn answers_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard mutex poisoned").answers_len())
            .sum()
    }

    /// Total WAL records (beyond headers) across shards.
    pub fn total_wal_records(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard mutex poisoned").wal_records())
            .sum()
    }

    /// An FNV-1a fingerprint over every shard's on-disk bytes, in shard
    /// order — byte-identical shards at any thread count hash equal.
    ///
    /// # Errors
    /// Propagates I/O errors reading the shard files.
    pub fn disk_fingerprint(&self) -> io::Result<String> {
        let mut combined = String::new();
        for shard in &self.shards {
            let fp = shard
                .lock()
                .expect("shard mutex poisoned")
                .disk_fingerprint()?;
            combined.push_str(&fp);
            combined.push('/');
        }
        Ok(format!("{:016x}", fnv1a(combined.as_bytes())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn answer(unit: &str, n: i64) -> AnswerAppend {
        (
            unit.to_string(),
            vec![Value::Int(n)],
            StoredAnswer::Correct,
            "test".to_string(),
        )
    }

    #[test]
    fn routing_is_stable_and_case_insensitive() {
        let dir = TempDir::new("shard-route");
        let s = ShardedStore::open(dir.path(), 4).unwrap();
        assert_eq!(s.shard_count(), 4);
        assert_eq!(s.shard_index("ArrSum"), s.shard_index("arrsum"));
        assert_eq!(s.shard_index("decrement"), s.shard_index("decrement"));
    }

    #[test]
    fn batch_appends_route_and_round_trip() {
        let dir = TempDir::new("shard-batch");
        let s = ShardedStore::open(dir.path(), 3).unwrap();
        let units = ["sqrtest", "arrsum", "computs", "comput1", "decrement"];
        let batch: Vec<AnswerAppend> = units.iter().map(|u| answer(u, 7)).collect();
        assert_eq!(s.record_answers(&batch).unwrap(), units.len());
        // Idempotent: the same batch appends nothing new.
        assert_eq!(s.record_answers(&batch).unwrap(), 0);
        assert_eq!(s.answers_len(), units.len());
        for u in units {
            assert_eq!(
                s.lookup_answer(u, &[Value::Int(7)]),
                Some(StoredAnswer::Correct),
                "{u}"
            );
            assert_eq!(s.lookup_answer(u, &[Value::Int(8)]), None);
        }
    }

    #[test]
    fn reopen_preserves_existing_shard_count() {
        let dir = TempDir::new("shard-reopen");
        let s = ShardedStore::open(dir.path(), 5).unwrap();
        s.record_answers(&[answer("partialsums", 1)]).unwrap();
        drop(s);
        // A restart asking for a different count must keep the on-disk
        // layout (the routing hash is count-dependent).
        let reopened = ShardedStore::open(dir.path(), 2).unwrap();
        assert_eq!(reopened.shard_count(), 5);
        assert_eq!(
            reopened.lookup_answer("partialsums", &[Value::Int(1)]),
            Some(StoredAnswer::Correct)
        );
    }

    #[test]
    fn compaction_resets_wals_and_keeps_answers() {
        let dir = TempDir::new("shard-compact");
        let s = ShardedStore::open(dir.path(), 2).unwrap();
        let batch: Vec<AnswerAppend> = (0..10).map(|i| answer(&format!("u{i}"), i)).collect();
        s.record_answers(&batch).unwrap();
        assert!(s.total_wal_records() > 0);
        assert_eq!(s.compact_if_needed(0).unwrap(), 2);
        assert_eq!(s.total_wal_records(), 0);
        assert_eq!(s.answers_len(), 10);
        // Nothing above threshold now.
        assert_eq!(s.compact_if_needed(0).unwrap(), 0);
        assert_eq!(s.compact_all().unwrap(), 2);
    }

    #[test]
    fn fingerprint_is_order_insensitive_for_distinct_unit_batches() {
        // Appends about different units land in different shards (or the
        // same shard in first-occurrence order); replaying the same
        // per-unit sequences yields byte-identical shards.
        let d1 = TempDir::new("shard-fp1");
        let d2 = TempDir::new("shard-fp2");
        let s1 = ShardedStore::open(d1.path(), 4).unwrap();
        let s2 = ShardedStore::open(d2.path(), 4).unwrap();
        let batch: Vec<AnswerAppend> = (0..6).map(|i| answer(&format!("unit{i}"), i)).collect();
        s1.record_answers(&batch).unwrap();
        for entry in &batch {
            s2.record_answers(std::slice::from_ref(entry)).unwrap();
        }
        assert_eq!(
            s1.disk_fingerprint().unwrap(),
            s2.disk_fingerprint().unwrap()
        );
    }
}
